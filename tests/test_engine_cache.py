"""Tests for the two-tier partition cache (repro.engine.cache)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import PartitionCache, ShardedSyrennEngine
from repro.nn.activations import ReLULayer
from repro.nn.linear import FullyConnectedLayer
from repro.nn.network import Network
from repro.polytope.segment import LineSegment


def payload(value: float) -> dict[str, np.ndarray]:
    return {"ratios": np.array([0.0, value, 1.0])}


class TestMemoryTier:
    def test_hit_returns_stored_payload(self, tmp_path):
        cache = PartitionCache(directory=tmp_path, disk=False)
        cache.put(("net", "geo"), payload(0.5))
        stored = cache.get(("net", "geo"))
        np.testing.assert_array_equal(stored["ratios"], [0.0, 0.5, 1.0])
        assert cache.stats.memory.hits == 1
        assert cache.stats.memory.misses == 0

    def test_miss_counts_both_tiers_when_disk_disabled(self, tmp_path):
        cache = PartitionCache(directory=tmp_path, disk=False)
        assert cache.get(("net", "missing")) is None
        assert cache.stats.memory.misses == 1
        assert cache.stats.disk.misses == 1
        assert cache.stats.hits == 0

    def test_lru_eviction_order(self, tmp_path):
        cache = PartitionCache(max_entries=2, directory=tmp_path, disk=False)
        cache.put(("n", "a"), payload(0.1))
        cache.put(("n", "b"), payload(0.2))
        # Touch "a" so "b" becomes the least recently used entry.
        assert cache.get(("n", "a")) is not None
        cache.put(("n", "c"), payload(0.3))
        assert cache.stats.memory.evictions == 1
        assert cache.memory_keys() == [("n", "a"), ("n", "c")]
        assert cache.get(("n", "b")) is None           # evicted
        assert cache.get(("n", "a")) is not None       # survived
        assert cache.get(("n", "c")) is not None       # newest

    def test_put_same_key_does_not_grow(self, tmp_path):
        cache = PartitionCache(max_entries=2, directory=tmp_path, disk=False)
        for value in (0.1, 0.2, 0.3):
            cache.put(("n", "a"), payload(value))
        assert len(cache) == 1
        assert cache.stats.memory.evictions == 0
        np.testing.assert_array_equal(cache.get(("n", "a"))["ratios"], [0.0, 0.3, 1.0])

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            PartitionCache(max_entries=0, directory=tmp_path)


class TestDiskTier:
    def test_round_trip_through_disk(self, tmp_path):
        writer = PartitionCache(directory=tmp_path)
        writer.put(("net", "geo"), payload(0.25))
        assert writer.stats.disk.puts == 1
        # A fresh cache over the same directory models a second process.
        reader = PartitionCache(directory=tmp_path)
        stored = reader.get(("net", "geo"))
        np.testing.assert_array_equal(stored["ratios"], [0.0, 0.25, 1.0])
        assert reader.stats.memory.misses == 1
        assert reader.stats.disk.hits == 1
        # The disk hit was promoted: the next get is a memory hit.
        assert reader.get(("net", "geo")) is not None
        assert reader.stats.memory.hits == 1

    def test_eviction_does_not_lose_disk_copy(self, tmp_path):
        cache = PartitionCache(max_entries=1, directory=tmp_path)
        cache.put(("n", "a"), payload(0.1))
        cache.put(("n", "b"), payload(0.2))
        assert cache.stats.memory.evictions == 1
        # "a" was evicted from memory but comes back from disk.
        stored = cache.get(("n", "a"))
        np.testing.assert_array_equal(stored["ratios"], [0.0, 0.1, 1.0])
        assert cache.stats.disk.hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = PartitionCache(directory=tmp_path)
        cache.put(("net", "geo"), payload(0.5))
        cache.clear_memory()
        cache._disk_path(("net", "geo")).write_bytes(b"not an npz file")
        assert cache.get(("net", "geo")) is None
        assert cache.stats.disk.misses == 1

    def test_torn_write_is_a_miss_and_recoverable(self, tmp_path):
        """A truncated .npz (a torn write) must not poison the key forever."""
        cache = PartitionCache(directory=tmp_path)
        cache.put(("net", "geo"), payload(0.5))
        cache.clear_memory()
        path = cache._disk_path(("net", "geo"))
        path.write_bytes(path.read_bytes()[:20])  # valid zip magic, torn body
        assert cache.get(("net", "geo")) is None
        # The torn file was dropped, so a re-put repairs the disk tier.
        assert not path.exists()
        cache.put(("net", "geo"), payload(0.75))
        cache.clear_memory()
        np.testing.assert_array_equal(
            cache.get(("net", "geo"))["ratios"], [0.0, 0.75, 1.0]
        )

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = PartitionCache(directory=tmp_path)
        for index in range(3):
            cache.put(("net", f"geo{index}"), payload(0.5))
        leftovers = [p.name for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_contains_checks_both_tiers(self, tmp_path):
        cache = PartitionCache(directory=tmp_path)
        cache.put(("net", "geo"), payload(0.5))
        cache.clear_memory()
        assert ("net", "geo") in cache
        assert ("net", "other") not in cache

    def test_default_directory_honors_repro_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-root"))
        cache = PartitionCache()
        cache.put(("net", "geo"), payload(0.5))
        assert (tmp_path / "cache-root" / "partitions").exists()

    def test_as_dict_shape(self, tmp_path):
        cache = PartitionCache(max_entries=4, directory=tmp_path)
        cache.put(("n", "a"), payload(0.1))
        cache.get(("n", "a"))
        summary = cache.as_dict()
        assert summary["max_entries"] == 4
        assert summary["memory_entries"] == 1
        assert summary["disk_enabled"] is True
        assert summary["memory"]["hits"] == 1
        assert summary["disk"]["puts"] == 1


class TestCrossProcessReuse:
    def test_engine_reuses_partitions_across_instances(self, tmp_path, monkeypatch, rng):
        """Two engines sharing a tmp REPRO_CACHE_DIR share decompositions."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        network = Network(
            [
                FullyConnectedLayer.from_shape(2, 6, rng),
                ReLULayer(6),
                FullyConnectedLayer.from_shape(6, 2, rng),
            ]
        )
        segment = LineSegment([-1.0, -1.0], [1.0, 1.0])

        first_engine = ShardedSyrennEngine(workers=1)
        first = first_engine.transform_line(network, segment)
        assert first_engine.cache.stats.misses == 1
        assert first_engine.cache.stats.disk.puts == 1

        # A fresh engine (as another process would build it) hits the disk
        # tier instead of re-decomposing, and returns identical ratios.
        second_engine = ShardedSyrennEngine(workers=1)
        second = second_engine.transform_line(network, segment)
        assert second_engine.cache.stats.disk.hits == 1
        assert second_engine.scheduler.jobs_executed == 0
        assert second.ratios.tobytes() == first.ratios.tobytes()
