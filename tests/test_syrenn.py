"""Tests for the SyReNN substrate (1-D and 2-D linear-region decomposition)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import NotPiecewiseLinearError, ShapeError
from repro.nn.activations import HardTanhLayer
from repro.nn.linear import FullyConnectedLayer
from repro.nn.network import Network
from repro.polytope.segment import LineSegment
from repro.syrenn.line import transform_line
from repro.syrenn.plane import transform_plane
from tests.conftest import make_random_relu_network, make_random_tanh_network


class TestTransformLine:
    def test_toy_network_regions_match_paper(self, toy_network):
        """Equation 1 of the paper: LinRegions(N1, [-1, 2]) = {[-1,0], [0,1], [1,2]}."""
        partition = transform_line(
            toy_network, LineSegment(np.array([-1.0]), np.array([2.0]))
        )
        inputs = partition.breakpoint_inputs.ravel()
        np.testing.assert_allclose(inputs, [-1.0, 0.0, 1.0, 2.0], atol=1e-9)
        assert partition.num_regions == 3
        assert partition.num_key_points() == 6

    def test_modified_network_regions_move(self, toy_network_n2):
        """Figure 3(d): N2's middle boundary moves from 1 to 0.5."""
        partition = transform_line(
            toy_network_n2, LineSegment(np.array([-1.0]), np.array([2.0]))
        )
        inputs = partition.breakpoint_inputs.ravel()
        np.testing.assert_allclose(inputs, [-1.0, 0.0, 0.5, 2.0], atol=1e-9)

    def test_affine_segment_has_single_region(self, toy_network):
        partition = transform_line(
            toy_network, LineSegment(np.array([0.2]), np.array([0.8]))
        )
        assert partition.num_regions == 1

    def test_network_is_affine_within_each_region(self, rng):
        network = make_random_relu_network(rng, (3, 10, 8, 2))
        segment = LineSegment(rng.normal(size=3), rng.normal(size=3))
        partition = transform_line(network, segment)
        for region in partition.regions:
            left, right = region.vertices
            midpoint = 0.5 * (left + right)
            interpolated = 0.5 * (network.compute(left) + network.compute(right))
            np.testing.assert_allclose(network.compute(midpoint), interpolated, atol=1e-7)

    def test_breakpoints_are_region_boundaries(self, rng):
        network = make_random_relu_network(rng, (2, 12, 2))
        segment = LineSegment(np.array([-2.0, -2.0]), np.array([2.0, 2.0]))
        partition = transform_line(network, segment)
        # At every interior breakpoint, some hidden unit's pre-activation is 0.
        hidden_layer = network.layers[0]
        for ratio in partition.ratios[1:-1]:
            point = segment.point_at(float(ratio))
            preactivations = hidden_layer.forward(point[None, :])[0]
            assert np.min(np.abs(preactivations)) < 1e-6

    def test_hardtanh_breakpoints_found(self, rng):
        network = Network(
            [
                FullyConnectedLayer(np.array([[2.0]]), np.array([0.0])),
                HardTanhLayer(1),
                FullyConnectedLayer(np.array([[1.0]]), np.array([0.0])),
            ]
        )
        partition = transform_line(network, LineSegment(np.array([-2.0]), np.array([2.0])))
        inputs = sorted(partition.breakpoint_inputs.ravel())
        np.testing.assert_allclose(inputs, [-2.0, -0.5, 0.5, 2.0], atol=1e-9)

    def test_non_pwl_network_rejected(self, random_tanh_network):
        with pytest.raises(NotPiecewiseLinearError):
            transform_line(
                random_tanh_network,
                LineSegment(np.zeros(3), np.ones(3)),
            )

    def test_region_interior_points_lie_inside(self, toy_network):
        partition = transform_line(
            toy_network, LineSegment(np.array([-1.0]), np.array([2.0]))
        )
        for region in partition.regions:
            interior = region.interior_point[0]
            low, high = region.vertices[0][0], region.vertices[1][0]
            assert low < interior < high

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_partition_covers_segment_monotonically(self, seed):
        rng = np.random.default_rng(seed)
        network = make_random_relu_network(rng, (2, 8, 6, 3))
        segment = LineSegment(rng.normal(size=2) * 2, rng.normal(size=2) * 2)
        partition = transform_line(network, segment)
        ratios = partition.ratios
        assert ratios[0] == 0.0 and ratios[-1] == 1.0
        assert np.all(np.diff(ratios) > 0)


class TestTransformPlane:
    def make_plane(self, rng, network, scale: float = 2.0) -> np.ndarray:
        """A random square embedded in the network's input space."""
        dim = network.input_size
        origin = rng.normal(size=dim)
        direction_a = rng.normal(size=dim)
        direction_b = rng.normal(size=dim)
        return np.array(
            [
                origin,
                origin + scale * direction_a,
                origin + scale * (direction_a + direction_b),
                origin + scale * direction_b,
            ]
        )

    def test_partition_area_covers_input_polygon(self, rng):
        network = make_random_relu_network(rng, (3, 8, 6, 2))
        plane = self.make_plane(rng, network)
        partition = transform_plane(network, plane)
        assert partition.num_regions >= 1
        # Compare areas in the plane's own 2-D coordinates.
        from repro.polytope.polygon import polygon_area
        from repro.syrenn.plane import _plane_coordinates

        total_area = polygon_area(_plane_coordinates(plane))
        region_area = sum(region.area for region in partition.regions)
        assert region_area == pytest.approx(total_area, rel=1e-3)

    def test_network_affine_within_each_region(self, rng):
        network = make_random_relu_network(rng, (3, 8, 6, 2))
        plane = self.make_plane(rng, network)
        partition = transform_plane(network, plane)
        checked = 0
        for region in partition.regions:
            if region.num_vertices < 3 or region.area < 1e-6:
                continue
            vertices = region.input_vertices
            centroid = vertices.mean(axis=0)
            interpolated = np.mean(
                [network.compute(vertex) for vertex in vertices], axis=0
            )
            np.testing.assert_allclose(network.compute(centroid), interpolated, atol=1e-6)
            checked += 1
        assert checked >= 1

    def test_affine_network_single_region(self, rng):
        network = Network([FullyConnectedLayer.from_shape(4, 3, rng)])
        plane = self.make_plane(rng, network)
        partition = transform_plane(network, plane)
        assert partition.num_regions == 1

    def test_key_point_count(self, rng):
        network = make_random_relu_network(rng, (3, 6, 2))
        plane = self.make_plane(rng, network)
        partition = transform_plane(network, plane)
        assert partition.num_key_points() == sum(
            region.num_vertices for region in partition.regions
        )

    def test_rejects_non_planar_vertex_set(self, rng):
        network = make_random_relu_network(rng, (4, 6, 2))
        vertices = rng.normal(size=(5, 4))  # generic position: not coplanar
        with pytest.raises(ShapeError):
            transform_plane(network, vertices)

    def test_rejects_wrong_dimension(self, rng):
        network = make_random_relu_network(rng, (4, 6, 2))
        with pytest.raises(ShapeError):
            transform_plane(network, rng.normal(size=(4, 3)))

    def test_rejects_non_pwl_network(self, rng):
        network = make_random_tanh_network(rng, (3, 5, 2))
        plane = self.make_plane(rng, network)
        with pytest.raises(NotPiecewiseLinearError):
            transform_plane(network, plane)

    def test_interior_points_inside_plane_bounding_box(self, rng):
        network = make_random_relu_network(rng, (3, 8, 2))
        plane = self.make_plane(rng, network)
        partition = transform_plane(network, plane)
        lower = plane.min(axis=0) - 1e-6
        upper = plane.max(axis=0) + 1e-6
        for region in partition.regions:
            interior = region.interior_point
            assert np.all(interior >= lower) and np.all(interior <= upper)
