"""Unit tests for :mod:`repro.obs`: registry, traces, renderers, logging.

The cross-cutting guarantees — telemetry never changes repair bytes, and
worker-merged registries are deterministic — live in
``tests/test_obs_differential.py``; this module pins the local behaviour of
each piece.
"""

from __future__ import annotations

import io
import json

import pytest

import repro.obs as obs
from repro.obs import JsonLogger, MetricsRegistry, Trace, current_trace, use_trace
from repro.obs.prometheus import render_prometheus, render_summary


class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        family = registry.counter("hits_total", "Hits.", labels=("tier",))
        family.inc(tier="memory")
        family.inc(2, tier="memory")
        family.inc(tier="disk")
        assert family.value(tier="memory") == 3.0
        assert family.value(tier="disk") == 1.0
        assert family.value(tier="never") == 0.0

    def test_counter_rejects_negative_and_wrong_kind_calls(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)
        with pytest.raises(ValueError, match="not a gauge"):
            counter.set(3.0)
        with pytest.raises(ValueError, match="not a histogram"):
            counter.observe(0.5)

    def test_reregistration_returns_same_family_and_conflicts_raise(self):
        registry = MetricsRegistry()
        first = registry.counter("jobs_total", "Jobs.", labels=("status",))
        again = registry.counter("jobs_total", "ignored", labels=("status",))
        assert again is first
        with pytest.raises(ValueError, match="already registered as a counter"):
            registry.gauge("jobs_total")
        with pytest.raises(ValueError, match="already registered with labels"):
            registry.counter("jobs_total", labels=("kind",))

    def test_histogram_bucket_boundary_conflicts_raise(self):
        registry = MetricsRegistry()
        family = registry.histogram("h_seconds", buckets=(0.1, 1.0))
        assert registry.histogram("h_seconds", buckets=(0.1, 1.0)) is family
        # Two call sites silently disagreeing on boundaries would merge
        # incompatible bucket vectors; the registry refuses loudly instead.
        with pytest.raises(ValueError, match="already registered with buckets"):
            registry.histogram("h_seconds", buckets=(0.5, 1.0))
        with pytest.raises(ValueError, match="already registered with buckets"):
            registry.histogram("h_seconds")  # implied DEFAULT_BUCKETS differ too

    def test_invalid_metric_and_label_names_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad-name")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("fine_name", labels=("bad-label",))
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("h", buckets=(1.0, 1.0, 2.0))

    def test_label_order_is_name_sorted_not_call_site_order(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", labels=("zeta", "alpha"))
        family.inc(zeta="z", alpha="a")
        (series,) = registry.snapshot()["c_total"]["series"]
        assert list(series["labels"]) == ["alpha", "zeta"]

    def test_histogram_buckets_sum_and_count(self):
        registry = MetricsRegistry()
        family = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 7.0):
            family.observe(value)
        (series,) = registry.snapshot()["lat_seconds"]["series"]
        # Non-cumulative counts: <=0.1, <=1.0, overflow.
        assert series["buckets"] == [1, 2, 1]
        assert series["count"] == 4
        assert series["sum"] == pytest.approx(8.05)
        assert registry.snapshot()["lat_seconds"]["bounds"] == [0.1, 1.0]

    def test_snapshot_is_sorted_and_kind_filterable(self):
        registry = MetricsRegistry()
        registry.gauge("b_gauge").set(2.0)
        registry.counter("a_total").inc()
        registry.histogram("c_seconds").observe(0.01)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a_total", "b_gauge", "c_seconds"]
        assert list(registry.snapshot(kinds=("counter",))) == ["a_total"]

    def test_merge_adds_counters_and_histograms_last_writes_gauges(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        for registry, amount in ((left, 1), (right, 2)):
            registry.counter("n_total", labels=("k",)).inc(amount, k="x")
            registry.gauge("g").set(float(amount))
            registry.histogram("h", buckets=(1.0,)).observe(amount / 10)
        left.merge_snapshot(right.snapshot())
        assert left.counter("n_total", labels=("k",)).value(k="x") == 3.0
        assert left.gauge("g").value() == 2.0
        (series,) = left.snapshot()["h"]["series"]
        assert series["buckets"] == [2, 0]
        assert series["count"] == 2

    def test_merge_is_order_independent_for_counters(self):
        parts = []
        for index in range(3):
            registry = MetricsRegistry()
            registry.counter("n_total", labels=("w",)).inc(index + 1, w=str(index % 2))
            parts.append(registry.snapshot())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for part in parts:
            forward.merge_snapshot(part)
        for part in reversed(parts):
            backward.merge_snapshot(part)
        assert forward.snapshot() == backward.snapshot()

    def test_merge_rejects_bucket_count_mismatch(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.histogram("h", buckets=(1.0,)).observe(0.5)
        right.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError):
            left.merge_snapshot(right.snapshot())

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("n_total").inc()
        registry.reset()
        assert registry.snapshot() == {}


class TestTrace:
    def test_span_tree_nesting_and_export(self):
        trace = Trace("run", trace_id="trace-test")
        with use_trace(trace):
            with trace.span("outer", layer=2):
                with trace.span("inner"):
                    pass
            with trace.span("sibling"):
                pass
        trace.finish()
        exported = trace.export()
        assert exported["trace_id"] == "trace-test"
        root = exported["root"]
        assert root["name"] == "run"
        assert [child["name"] for child in root["children"]] == ["outer", "sibling"]
        outer = root["children"][0]
        assert outer["attributes"] == {"layer": 2}
        assert [child["name"] for child in outer["children"]] == ["inner"]
        # Leaf spans omit the (empty) children key to keep exports compact.
        assert "children" not in outer["children"][0]
        assert root["wall_seconds"] >= outer["wall_seconds"] >= 0.0
        assert outer["cpu_seconds"] >= 0.0

    def test_span_closes_on_exception(self):
        trace = Trace("run")
        with pytest.raises(RuntimeError):
            with trace.span("doomed"):
                raise RuntimeError("boom")
        with trace.span("after"):
            pass
        trace.finish()
        root = trace.export()["root"]
        # "after" is a sibling of "doomed", not its child: the stack popped.
        assert [child["name"] for child in root["children"]] == ["doomed", "after"]

    def test_adopt_grafts_under_current_span(self):
        parent = Trace("parent")
        child = Trace("worker.task")
        with child.span("engine.task"):
            pass
        child.finish()
        with use_trace(parent):
            with parent.span("engine.batch"):
                parent.adopt(child.export()["root"])
        parent.finish()
        batch = parent.export()["root"]["children"][0]
        assert batch["name"] == "engine.batch"
        assert [grand["name"] for grand in batch["children"]] == ["worker.task"]
        assert batch["children"][0]["children"][0]["name"] == "engine.task"

    def test_use_trace_scopes_the_contextvar(self):
        assert current_trace() is None
        trace = Trace("scoped")
        with use_trace(trace):
            assert current_trace() is trace
        assert current_trace() is None


class TestFacade:
    def test_span_is_noop_unless_enabled_and_traced(self):
        with obs.isolated(start_enabled=False):
            assert obs.span("anything") is obs._NOOP
        with obs.isolated():
            # Enabled but no active trace: still the no-op singleton.
            assert obs.span("anything") is obs._NOOP
            trace = Trace("run")
            with use_trace(trace):
                with obs.span("real", key="value"):
                    pass
            trace.finish()
            assert trace.export()["root"]["children"][0]["name"] == "real"

    def test_isolated_swaps_registry_and_flag(self):
        before_enabled = obs.enabled()
        before_registry = obs.registry()
        with obs.isolated() as registry:
            assert obs.enabled()
            obs.counter("repro_test_total").inc()
            assert registry.snapshot()["repro_test_total"]["series"][0]["value"] == 1.0
        assert obs.enabled() == before_enabled
        assert obs.registry() is before_registry
        assert "repro_test_total" not in obs.snapshot()

    def test_capture_and_absorb_round_trip(self):
        with obs.isolated():
            parent_trace = Trace("parent")
            with use_trace(parent_trace):
                obs.counter("repro_parent_total").inc()
                with obs.capture("worker.task", task_kind="line") as captured:
                    obs.counter("repro_child_total").inc(2)
                    with obs.span("engine.task"):
                        pass
                    payload = captured.telemetry()
                # Worker-side counts never leaked into the parent registry.
                assert "repro_child_total" not in obs.snapshot()
                payload = json.loads(json.dumps(payload))  # survives the pickle/json trip
                obs.absorb(payload)
            parent_trace.finish()
            assert obs.counter("repro_child_total").value() == 2.0
            assert obs.counter("repro_parent_total").value() == 1.0
            adopted = parent_trace.export()["root"]["children"][0]
            assert adopted["name"] == "worker.task"
            assert adopted["attributes"] == {"task_kind": "line"}


class TestPrometheusExposition:
    def test_golden_document(self):
        registry = MetricsRegistry()
        requests = registry.counter(
            "repro_cache_requests_total", "Cache lookups.", labels=("result", "tier")
        )
        requests.inc(3, tier="memory", result="hit")
        requests.inc(tier="disk", result='mi"ss\n')
        registry.gauge("repro_jobs_running", "Running jobs.").set(2.0)
        solve = registry.histogram(
            "repro_lp_solve_seconds", "LP solve wall time.", labels=("backend",),
            buckets=(0.01, 0.1),
        )
        solve.observe(0.005, backend="scipy")
        solve.observe(0.05, backend="scipy")
        solve.observe(5.0, backend="scipy")
        text = render_prometheus(registry.snapshot())
        assert text == (
            "# HELP repro_cache_requests_total Cache lookups.\n"
            "# TYPE repro_cache_requests_total counter\n"
            'repro_cache_requests_total{result="hit",tier="memory"} 3\n'
            'repro_cache_requests_total{result="mi\\"ss\\n",tier="disk"} 1\n'
            "# HELP repro_jobs_running Running jobs.\n"
            "# TYPE repro_jobs_running gauge\n"
            "repro_jobs_running 2\n"
            "# HELP repro_lp_solve_seconds LP solve wall time.\n"
            "# TYPE repro_lp_solve_seconds histogram\n"
            'repro_lp_solve_seconds_bucket{backend="scipy",le="0.01"} 1\n'
            'repro_lp_solve_seconds_bucket{backend="scipy",le="0.1"} 2\n'
            'repro_lp_solve_seconds_bucket{backend="scipy",le="+Inf"} 3\n'
            'repro_lp_solve_seconds_sum{backend="scipy"} 5.055\n'
            'repro_lp_solve_seconds_count{backend="scipy"} 3\n'
        )

    def test_empty_registry_renders_empty_string(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""

    def test_summary_table(self):
        registry = MetricsRegistry()
        registry.counter("repro_rounds_total").inc(4)
        registry.histogram("repro_seconds", buckets=(1.0,)).observe(0.5)
        summary = render_summary(registry.snapshot())
        assert "repro_rounds_total" in summary
        assert "n=1 mean=0.500000s" in summary
        assert render_summary(MetricsRegistry().snapshot()) == "(no metrics recorded)"


class TestJsonLogger:
    def test_one_json_line_per_event_with_fields(self):
        stream = io.StringIO()
        logger = JsonLogger("info", stream=stream)
        logger.info("job_state", job_id="job-1", status="done")
        logger.error("job_state", job_id="job-2", status="failed")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "job_state"
        assert first["level"] == "info"
        assert first["job_id"] == "job-1"
        assert isinstance(first["ts"], float)

    def test_level_filtering_and_off(self):
        stream = io.StringIO()
        logger = JsonLogger("warning", stream=stream)
        logger.debug("noise")
        logger.info("noise")
        logger.warning("signal")
        assert len(stream.getvalue().splitlines()) == 1
        silent = JsonLogger("off", stream=stream)
        silent.error("nothing")
        assert len(stream.getvalue().splitlines()) == 1

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            JsonLogger("loud")

    def test_non_serializable_fields_fall_back_to_str(self):
        stream = io.StringIO()
        JsonLogger("info", stream=stream).info("event", path=io.StringIO)
        assert json.loads(stream.getvalue())["path"].startswith("<class")
