"""Tests for the synthetic dataset generators (digits, corruptions, images, ACAS)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.acas import (
    ADVISORY_NAMES,
    CLEAR_OF_CONFLICT,
    STRONG_LEFT,
    STRONG_RIGHT,
    WEAK_LEFT,
    AcasScenario,
    denormalize_state,
    generate_acas_dataset,
    ground_truth_advisory,
    normalize_state,
    phi8_property,
    sample_scenario,
)
from repro.datasets.corruptions import (
    brightness_corrupt,
    corrupt_batch,
    fog_corrupt,
    noise_corrupt,
)
from repro.datasets.digits import DEFAULT_SIDE, generate_digit_dataset, render_digit
from repro.datasets.imagenet_mini import (
    CLASS_NAMES,
    generate_mini_imagenet,
    render_class_image,
)
from repro.utils.rng import ensure_rng


class TestDigits:
    def test_render_digit_shape_and_range(self, rng):
        image = render_digit(3, rng)
        assert image.shape == (DEFAULT_SIDE * DEFAULT_SIDE,)
        assert np.all(image >= 0.0) and np.all(image <= 1.0)

    def test_render_digit_rejects_invalid_digit(self, rng):
        with pytest.raises(ValueError):
            render_digit(10, rng)

    def test_different_digits_differ(self):
        rng = ensure_rng(0)
        one = render_digit(1, rng, noise=0.0)
        eight = render_digit(8, rng, noise=0.0)
        assert np.sum(eight > 0.5) > np.sum(one > 0.5)

    def test_generate_digit_dataset_shapes_and_balance(self):
        dataset = generate_digit_dataset(train_per_class=5, test_per_class=3, seed=0)
        assert dataset.train_images.shape == (50, dataset.input_size)
        assert dataset.test_images.shape == (30, dataset.input_size)
        assert dataset.num_classes == 10
        counts = np.bincount(dataset.train_labels, minlength=10)
        assert np.all(counts == 5)

    def test_generation_is_deterministic(self):
        first = generate_digit_dataset(train_per_class=2, test_per_class=1, seed=7)
        second = generate_digit_dataset(train_per_class=2, test_per_class=1, seed=7)
        np.testing.assert_array_equal(first.train_images, second.train_images)
        np.testing.assert_array_equal(first.train_labels, second.train_labels)


class TestCorruptions:
    def test_fog_stays_in_range_and_brightens(self, rng):
        image = render_digit(5, rng)
        foggy = fog_corrupt(image, severity=1.0, rng=rng)
        assert foggy.shape == image.shape
        assert np.all(foggy >= 0.0) and np.all(foggy <= 1.0)
        assert foggy.mean() > image.mean()

    def test_fog_severity_zero_is_identity(self, rng):
        image = render_digit(2, rng)
        np.testing.assert_allclose(fog_corrupt(image, severity=0.0, rng=rng), image)

    def test_fog_requires_square_image(self, rng):
        with pytest.raises(ValueError):
            fog_corrupt(np.zeros(10), rng=rng)

    def test_fog_severity_monotone_in_haze(self, rng):
        image = np.zeros(DEFAULT_SIDE * DEFAULT_SIDE)
        mild = fog_corrupt(image, severity=0.3, rng=ensure_rng(1))
        heavy = fog_corrupt(image, severity=1.0, rng=ensure_rng(1))
        assert heavy.mean() > mild.mean()

    def test_brightness_and_noise(self, rng):
        image = np.full(16, 0.5)
        np.testing.assert_allclose(brightness_corrupt(image, 0.6), np.ones(16))
        noisy = noise_corrupt(image, scale=0.1, rng=rng)
        assert noisy.shape == image.shape
        assert np.all(noisy >= 0.0) and np.all(noisy <= 1.0)

    def test_corrupt_batch(self, rng):
        batch = np.vstack([render_digit(digit, rng) for digit in range(3)])
        corrupted = corrupt_batch(batch, fog_corrupt, severity=1.0, rng=rng)
        assert corrupted.shape == batch.shape


class TestMiniImageNet:
    def test_render_class_image_shape(self, rng):
        image = render_class_image(0, rng)
        assert image.shape == (3 * 16 * 16,)
        assert np.all(image >= 0.0) and np.all(image <= 1.0)

    def test_invalid_class_rejected(self, rng):
        with pytest.raises(ValueError):
            render_class_image(len(CLASS_NAMES), rng)

    def test_adversarial_images_differ_from_clean(self):
        clean = render_class_image(2, ensure_rng(0), adversarial=False)
        shifted = render_class_image(2, ensure_rng(0), adversarial=True)
        assert not np.allclose(clean, shifted)

    def test_generate_mini_imagenet_shapes(self):
        dataset = generate_mini_imagenet(
            train_per_class=3, validation_per_class=2, adversarial_per_class=2, seed=0
        )
        assert dataset.num_classes == 9
        assert dataset.train_images.shape == (27, dataset.input_size)
        assert dataset.validation_images.shape == (18, dataset.input_size)
        assert dataset.adversarial_images.shape == (18, dataset.input_size)
        assert set(np.unique(dataset.train_labels)) == set(range(9))


class TestAcasSimulator:
    def test_normalization_roundtrip(self, rng):
        scenario = sample_scenario(rng)
        raw = scenario.as_array()
        np.testing.assert_allclose(denormalize_state(normalize_state(raw)), raw, atol=1e-9)

    def test_normalized_range(self, rng):
        states = np.array([sample_scenario(rng).as_array() for _ in range(100)])
        normalized = normalize_state(states)
        assert np.all(normalized >= -1.0 - 1e-9) and np.all(normalized <= 1.0 + 1e-9)

    def test_far_away_is_clear_of_conflict(self):
        scenario = AcasScenario(rho=55000.0, theta=0.5, psi=0.0, v_own=300.0, v_int=300.0)
        assert ground_truth_advisory(scenario) == CLEAR_OF_CONFLICT

    def test_diverging_intruder_is_clear_of_conflict(self):
        # Intruder ahead but flying away faster than we approach.
        scenario = AcasScenario(rho=5000.0, theta=0.0, psi=0.0, v_own=200.0, v_int=900.0)
        assert ground_truth_advisory(scenario) == CLEAR_OF_CONFLICT

    def test_close_encounter_turns_away_from_intruder(self):
        left_intruder = AcasScenario(rho=5000.0, theta=0.5, psi=np.pi, v_own=400.0, v_int=400.0)
        right_intruder = AcasScenario(rho=5000.0, theta=-0.5, psi=np.pi, v_own=400.0, v_int=400.0)
        assert ground_truth_advisory(left_intruder) == STRONG_RIGHT
        assert ground_truth_advisory(right_intruder) == STRONG_LEFT

    def test_moderate_encounter_weak_turn(self):
        scenario = AcasScenario(
            rho=28000.0, theta=-1.0, psi=0.0, v_own=700.0, v_int=200.0
        )
        assert ground_truth_advisory(scenario) in (CLEAR_OF_CONFLICT, WEAK_LEFT)

    def test_dataset_generation(self):
        dataset = generate_acas_dataset(train_size=200, test_size=50, seed=0)
        assert dataset.train_states.shape == (200, 5)
        assert dataset.test_labels.shape == (50,)
        assert dataset.num_classes == len(ADVISORY_NAMES) == 5
        assert set(np.unique(dataset.train_labels)).issubset(set(range(5)))

    def test_phi8_property_allows_only_safe_advisories_in_box(self, rng):
        safety = phi8_property()
        raw = rng.uniform(safety.raw_lower, safety.raw_upper, size=(500, 5))
        advisories = np.array([ground_truth_advisory(AcasScenario(*row)) for row in raw])
        assert set(np.unique(advisories)).issubset(set(safety.allowed))

    def test_phi8_satisfied_on_masks(self):
        safety = phi8_property()
        predictions = np.array([CLEAR_OF_CONFLICT, WEAK_LEFT, STRONG_RIGHT])
        np.testing.assert_array_equal(safety.satisfied_on(predictions), [True, True, False])

    def test_random_slice_shape_and_containment(self, rng):
        safety = phi8_property()
        vertices = safety.random_slice(rng)
        assert vertices.shape == (4, 5)
        lower, upper = safety.normalized_lower, safety.normalized_upper
        assert np.all(vertices >= lower - 1e-9) and np.all(vertices <= upper + 1e-9)

    def test_random_slice_varies_exactly_two_dimensions(self, rng):
        safety = phi8_property()
        vertices = safety.random_slice(rng, varied_dims=(0, 3))
        varying = np.array([len(np.unique(np.round(vertices[:, dim], 12))) > 1 for dim in range(5)])
        np.testing.assert_array_equal(varying, [True, False, False, True, False])

    def test_sample_states_inside_box(self, rng):
        safety = phi8_property()
        samples = safety.sample_states(100, rng)
        raw = denormalize_state(samples)
        assert np.all(raw >= safety.raw_lower - 1e-6)
        assert np.all(raw <= safety.raw_upper + 1e-6)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_ground_truth_is_deterministic(self, seed):
        scenario = sample_scenario(ensure_rng(seed))
        assert ground_truth_advisory(scenario) == ground_truth_advisory(scenario)
