"""Tests for the multi-layer repair and repair-layer-search extensions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ddnn import DecoupledNetwork
from repro.core.multi_layer import (
    drawdown_score,
    iterative_point_repair,
    search_repair_layer,
)
from repro.core.specs import PointRepairSpec
from repro.exceptions import RepairError
from repro.polytope.hpolytope import HPolytope
from tests.conftest import make_random_relu_network


def equation2_spec() -> PointRepairSpec:
    return PointRepairSpec(
        points=np.array([[0.5], [1.5]]),
        constraints=[
            HPolytope.from_interval(1, 0, -1.0, -0.8),
            HPolytope.from_interval(1, 0, -0.2, 0.0),
        ],
    )


class TestIterativePointRepair:
    def test_single_feasible_round_matches_point_repair(self, toy_network):
        result = iterative_point_repair(toy_network, [0, 2], equation2_spec(), norm="l1")
        assert result.satisfied
        assert result.repaired_layers == [0]
        assert len(result.per_layer_results) == 1
        assert result.total_delta_l1_norm > 0.0
        assert equation2_spec().is_satisfied_by(result.network)

    def test_already_satisfied_specification_needs_no_repair(self, toy_network):
        already_true = PointRepairSpec(
            points=np.array([[0.5]]),
            constraints=[HPolytope.from_interval(1, 0, -1.0, 0.0)],
        )
        result = iterative_point_repair(toy_network, [0, 2], already_true)
        assert result.satisfied
        assert result.repaired_layers == []
        assert result.per_layer_results == []

    def test_infeasible_layers_are_skipped(self, rng):
        network = make_random_relu_network(rng, (2, 6, 4, 3))
        # Two identical points demanding different labels: infeasible for any
        # single layer (and indeed for the whole network).
        point = rng.normal(size=2)
        spec = PointRepairSpec.from_labels(
            np.vstack([point, point]), [0, 1], num_classes=3, margin=1e-3
        )
        layers = network.parameterized_layer_indices()
        result = iterative_point_repair(network, layers, spec)
        assert not result.satisfied
        assert result.repaired_layers == []
        assert len(result.per_layer_results) == len(layers)

    def test_empty_layer_list_rejected(self, toy_network):
        with pytest.raises(RepairError):
            iterative_point_repair(toy_network, [], equation2_spec())

    def test_multiple_rounds_without_early_stop(self, toy_network):
        result = iterative_point_repair(
            toy_network, [0, 2], equation2_spec(), norm="l1", stop_when_satisfied=False
        )
        assert result.satisfied
        # Both rounds ran; both were feasible (the second one repairs an
        # already-satisfying network, so its minimal delta is zero).
        assert len(result.per_layer_results) == 2
        assert result.per_layer_results[1].delta_l1_norm == pytest.approx(0.0, abs=1e-7)

    def test_accepts_ddnn_input(self, toy_network):
        ddnn = DecoupledNetwork.from_network(toy_network)
        result = iterative_point_repair(ddnn, [0], equation2_spec())
        assert result.satisfied


class TestSearchRepairLayer:
    def test_search_finds_feasible_layer_and_scores(self, toy_network):
        spec = equation2_spec()
        search = search_repair_layer(
            toy_network, spec, score=lambda result: result.delta_l1_norm, norm="l1"
        )
        assert search.found
        assert search.best_result is not None and search.best_result.feasible
        assert set(search.scores) <= {0, 2}
        assert search.best_score == pytest.approx(min(search.scores.values()))

    def test_search_respects_candidate_order_and_stop_threshold(self, toy_network):
        spec = equation2_spec()
        search = search_repair_layer(
            toy_network,
            spec,
            score=lambda result: 0.0,
            candidate_layers=[2, 0],
            stop_at_score=0.0,
            norm="l1",
        )
        # The threshold is met by the first candidate, so only layer 2 is tried.
        assert list(search.scores) == [2]

    def test_search_reports_infeasible_layers(self, rng):
        network = make_random_relu_network(rng, (2, 6, 4, 3))
        point = rng.normal(size=2)
        spec = PointRepairSpec.from_labels(
            np.vstack([point, point]), [0, 1], num_classes=3, margin=1e-3
        )
        search = search_repair_layer(network, spec, score=lambda result: 0.0)
        assert not search.found
        assert np.isnan(search.best_score)
        assert sorted(search.infeasible_layers) == network.parameterized_layer_indices()

    def test_drawdown_score_function(self, rng):
        network = make_random_relu_network(rng, (4, 10, 3))
        held_out = rng.normal(size=(30, 4))
        held_out_labels = network.predict(held_out)
        points = rng.normal(size=(3, 4))
        labels = rng.integers(0, 3, size=3)
        spec = PointRepairSpec.from_labels(points, labels, num_classes=3, margin=1e-4)
        score = drawdown_score(network, held_out, held_out_labels)
        search = search_repair_layer(network, spec, score=score, norm="l1")
        if search.found:
            # Drawdown is measured against a set the buggy network got 100%
            # right, so it can never be negative here.
            assert search.best_score >= -1e-9
