"""Tests for the LP modelling layer, norm objectives, and the backend portfolio."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.obs as obs
from repro.exceptions import LPError
from repro.lp.backends import (
    available_backends,
    backend_capabilities,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.lp.backends.highs_native import HIGHSPY_AVAILABLE, HighsNativeBackend
from repro.lp.expression import LinearExpression
from repro.lp.model import LPModel, WarmStart
from repro.lp.norms import add_l1_objective, add_linf_objective, add_norm_objective
from repro.lp.status import LPStatus

BACKENDS = ("scipy", "simplex")

#: Every spec the equivalence oracle runs: all registered backends (the
#: ``highs`` alias included, and ``highs_native`` in whichever mode the
#: environment provides — native or degraded) plus a racing portfolio.
PORTFOLIO = available_backends() + ("race:scipy,simplex",)


class TestLPModelConstruction:
    def test_add_variables_returns_indices(self):
        model = LPModel()
        indices = model.add_variables(3, "delta")
        assert list(indices) == [0, 1, 2]
        assert model.num_variables == 3
        assert model.variable_name(1) == "delta[1]"

    def test_invalid_bounds_rejected(self):
        model = LPModel()
        with pytest.raises(LPError):
            model.add_variable(lower=1.0, upper=0.0)

    def test_block_shape_validation(self):
        model = LPModel()
        model.add_variables(2)
        with pytest.raises(LPError):
            model.add_leq_block(np.ones((1, 3)), [1.0])
        with pytest.raises(LPError):
            model.add_leq_block(np.ones((2, 2)), [1.0])
        with pytest.raises(LPError):
            model.add_leq_block(np.ones((1, 1)), [1.0], columns=[5])

    def test_num_constraints_counts_rows(self):
        model = LPModel()
        model.add_variables(2)
        model.add_leq_block(np.eye(2), np.ones(2))
        model.add_eq_block(np.ones((1, 2)), [1.0])
        assert model.num_constraints == 3

    def test_objective_coefficient_validation(self):
        model = LPModel()
        model.add_variable()
        with pytest.raises(LPError):
            model.set_objective_coefficient(5, 1.0)

    def test_empty_model_solves_trivially(self):
        solution = LPModel().solve()
        assert solution.status is LPStatus.OPTIMAL
        assert solution.objective == 0.0

    def test_standard_form_shapes(self):
        model = LPModel()
        indices = model.add_variables(2, lower=0.0)
        model.add_leq_block(np.eye(2), np.ones(2), indices)
        model.add_eq_block(np.ones((1, 2)), [1.0], indices)
        c, a_ub, b_ub, a_eq, b_eq, bounds = model.standard_form()
        assert c.shape == (2,)
        assert a_ub.shape == (2, 2)
        assert a_eq.shape == (1, 2)
        assert bounds.shape == (2, 2)
        assert np.all(bounds[:, 0] == 0.0)


@pytest.mark.parametrize("backend", BACKENDS)
class TestBackendsOnKnownProblems:
    def test_simple_bounded_minimization(self, backend):
        # minimize x + y  s.t.  x + y >= 1, x, y >= 0   → optimum 1.
        model = LPModel()
        x, y = model.add_variable(lower=0.0), model.add_variable(lower=0.0)
        model.add_geq(LinearExpression({x: 1.0, y: 1.0}), 1.0)
        model.set_objective_coefficient(x, 1.0)
        model.set_objective_coefficient(y, 1.0)
        solution = model.solve(backend)
        assert solution.status is LPStatus.OPTIMAL
        assert solution.objective == pytest.approx(1.0, abs=1e-6)

    def test_equality_constraint(self, backend):
        # minimize x subject to x == 3.
        model = LPModel()
        x = model.add_variable()
        model.add_eq(LinearExpression({x: 1.0}), 3.0)
        model.set_objective_coefficient(x, 1.0)
        solution = model.solve(backend)
        assert solution.status is LPStatus.OPTIMAL
        assert solution.values[x] == pytest.approx(3.0, abs=1e-6)

    def test_infeasible_detected(self, backend):
        model = LPModel()
        x = model.add_variable()
        model.add_leq(LinearExpression({x: 1.0}), 0.0)
        model.add_geq(LinearExpression({x: 1.0}), 1.0)
        solution = model.solve(backend)
        assert solution.status is LPStatus.INFEASIBLE

    def test_unbounded_detected(self, backend):
        model = LPModel()
        x = model.add_variable()
        model.add_leq(LinearExpression({x: 1.0}), 5.0)
        model.set_objective_coefficient(x, 1.0)  # minimize x, unbounded below
        solution = model.solve(backend)
        assert solution.status in (LPStatus.UNBOUNDED, LPStatus.INFEASIBLE, LPStatus.ERROR)
        assert solution.status is not LPStatus.OPTIMAL

    def test_negative_rhs_handled(self, backend):
        # minimize x subject to -x <= -2  (i.e. x >= 2).
        model = LPModel()
        x = model.add_variable(lower=0.0)
        model.add_leq_block(np.array([[-1.0]]), [-2.0], [x])
        model.set_objective_coefficient(x, 1.0)
        solution = model.solve(backend)
        assert solution.status is LPStatus.OPTIMAL
        assert solution.values[x] == pytest.approx(2.0, abs=1e-6)

    def test_box_bounds_respected(self, backend):
        model = LPModel()
        x = model.add_variable(lower=-2.0, upper=2.0)
        model.set_objective_coefficient(x, 1.0)
        solution = model.solve(backend)
        assert solution.status is LPStatus.OPTIMAL
        assert solution.values[x] == pytest.approx(-2.0, abs=1e-6)


class TestNormObjectives:
    def test_linf_objective_value(self):
        # Force delta = (3, -1); the linf objective should be 3.
        model = LPModel()
        delta = model.add_variables(2)
        model.add_eq_block(np.eye(2), [3.0, -1.0], delta)
        add_linf_objective(model, delta)
        solution = model.solve()
        assert solution.objective == pytest.approx(3.0, abs=1e-6)

    def test_l1_objective_value(self):
        model = LPModel()
        delta = model.add_variables(2)
        model.add_eq_block(np.eye(2), [3.0, -1.0], delta)
        add_l1_objective(model, delta)
        solution = model.solve()
        assert solution.objective == pytest.approx(4.0, abs=1e-6)

    def test_l1_prefers_sparse_solutions(self):
        # x + y >= 1 with l1 objective: any point on the segment is optimal
        # with total norm 1; the solver must achieve exactly 1.
        model = LPModel()
        delta = model.add_variables(2)
        model.add_leq_block(np.array([[-1.0, -1.0]]), [-1.0], delta)
        add_l1_objective(model, delta)
        solution = model.solve()
        assert solution.objective == pytest.approx(1.0, abs=1e-6)

    def test_combined_norm_accepted(self):
        model = LPModel()
        delta = model.add_variables(2)
        model.add_eq_block(np.eye(2), [1.0, 1.0], delta)
        add_norm_objective(model, delta, "l1+linf")
        solution = model.solve()
        assert solution.status is LPStatus.OPTIMAL

    def test_unknown_norm_rejected(self):
        model = LPModel()
        delta = model.add_variables(1)
        with pytest.raises(LPError):
            add_norm_objective(model, delta, "l7")

    def test_empty_block_rejected(self):
        model = LPModel()
        with pytest.raises(LPError):
            add_linf_objective(model, np.array([], dtype=int))
        with pytest.raises(LPError):
            add_l1_objective(model, np.array([], dtype=int))


class TestBackendRegistry:
    def test_available_backends(self):
        names = available_backends()
        assert "scipy" in names and "simplex" in names and "highs_native" in names

    def test_unknown_backend_rejected(self):
        with pytest.raises(LPError):
            get_backend("gurobi")

    def test_default_backend(self):
        assert get_backend(None).name == "scipy"

    def test_race_spec_instantiates_members_in_order(self):
        race = get_backend("race:simplex,scipy")
        assert race.name == "race:simplex,scipy"
        assert [member.name for member in race.backends] == ["simplex", "scipy"]
        assert race.preferred.name == "simplex"
        # The portfolio's capabilities are the preferred member's.
        assert race.supports_sparse is get_backend("simplex").supports_sparse
        assert race.warm_start_is_exact is get_backend("simplex").warm_start_is_exact

    @pytest.mark.parametrize("spec", ["race:", "race:scipy", "race:scipy,scipy"])
    def test_malformed_race_specs_rejected(self, spec):
        with pytest.raises(LPError):
            get_backend(spec)

    def test_race_of_unknown_member_rejected(self):
        with pytest.raises(LPError):
            get_backend("race:scipy,gurobi")

    def test_register_backend_roundtrip(self):
        class StubBackend(get_backend("simplex").__class__):
            name = "stub_for_registry_test"

        register_backend("stub_for_registry_test", StubBackend)
        try:
            assert "stub_for_registry_test" in available_backends()
            assert isinstance(get_backend("stub_for_registry_test"), StubBackend)
            # Registered stubs can immediately join a racing portfolio.
            race = get_backend("race:scipy,stub_for_registry_test")
            assert [member.name for member in race.backends][1] == "stub_for_registry_test"
        finally:
            unregister_backend("stub_for_registry_test")
        assert "stub_for_registry_test" not in available_backends()

    def test_race_prefix_not_registrable(self):
        with pytest.raises(LPError):
            register_backend("race:sneaky", get_backend("simplex").__class__)

    def test_capability_probe_reports_degradation(self):
        probe = backend_capabilities("highs_native")
        assert probe["name"] == "highs_native"
        assert probe["available"] is HIGHSPY_AVAILABLE
        assert probe["supports_sparse"] is True
        assert probe["members"] == []

    def test_capability_probe_recurses_into_races(self):
        probe = backend_capabilities("race:highs_native,scipy")
        assert [member["name"] for member in probe["members"]] == ["highs_native", "scipy"]
        # A race is only "available" when every member's solver is present.
        assert probe["available"] is HIGHSPY_AVAILABLE


class TestBackendAgreement:
    """Property-based cross-check of the two backends on random feasible LPs."""

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_backends_agree_on_random_feasible_lps(self, data):
        num_vars = data.draw(st.integers(1, 4))
        num_rows = data.draw(st.integers(1, 5))
        rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
        matrix = rng.normal(size=(num_rows, num_vars))
        interior = rng.normal(size=num_vars)
        rhs = matrix @ interior + rng.uniform(0.1, 1.0, size=num_rows)

        solutions = {}
        for backend in BACKENDS:
            model = LPModel()
            delta = model.add_variables(num_vars, lower=-50.0, upper=50.0)
            model.add_leq_block(matrix, rhs, delta)
            add_l1_objective(model, delta)
            solutions[backend] = model.solve(backend)

        for backend, solution in solutions.items():
            assert solution.status is LPStatus.OPTIMAL, backend
            values = solution.values[:num_vars]
            assert np.all(matrix @ values <= rhs + 1e-6)
        assert solutions["scipy"].objective == pytest.approx(
            solutions["simplex"].objective, abs=1e-5, rel=1e-5
        )


class TestBackendPortfolioOracle:
    """Property-based equivalence oracle over the whole backend portfolio.

    Random standard forms with a *known* status class (feasible-bounded,
    infeasible, unbounded) are solved by every registered backend — aliases,
    the (possibly degraded) native backend, and a racing spec included — in
    both dense and sparse representations.  All solves must agree on status,
    and on the objective within tolerance when optimal.  This is the
    contract solver racing leans on: any member's status answer can stand in
    for any other's.
    """

    @staticmethod
    def _build(kind: str, rng: np.random.Generator, num_vars: int, num_rows: int) -> LPModel:
        model = LPModel()
        if kind == "unbounded":
            # Free variables, minimized, constrained from above only: the
            # objective improves without limit along -e1 from the feasible
            # origin, so every solver must report UNBOUNDED.
            delta = model.add_variables(num_vars)
            model.add_leq_block(np.eye(num_vars), rng.uniform(1.0, 5.0, size=num_vars), delta)
            model.set_objective_coefficient(int(delta[0]), 1.0)
            return model
        # Box-bounded variables rule unboundedness out; a guaranteed
        # interior point rules (accidental) infeasibility in.
        delta = model.add_variables(num_vars, lower=-50.0, upper=50.0)
        matrix = rng.normal(size=(num_rows, num_vars))
        interior = rng.uniform(-1.0, 1.0, size=num_vars)
        rhs = matrix @ interior + rng.uniform(0.1, 1.0, size=num_rows)
        model.add_leq_block(matrix, rhs, delta)
        if kind == "infeasible":
            # An inconsistent pair on top: sum(x) <= t and sum(x) >= t + 1.
            row = np.ones((1, num_vars))
            threshold = float(rng.normal())
            model.add_leq_block(row, [threshold], delta)
            model.add_leq_block(-row, [-(threshold + 1.0)], delta)
        add_l1_objective(model, delta)
        return model

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_portfolio_agrees_on_random_standard_forms(self, data):
        kind = data.draw(st.sampled_from(["feasible", "infeasible", "unbounded"]))
        sparse = data.draw(st.booleans())
        num_vars = data.draw(st.integers(1, 4))
        num_rows = data.draw(st.integers(1, 5))
        seed = data.draw(st.integers(0, 10_000))

        expected = {
            "feasible": LPStatus.OPTIMAL,
            "infeasible": LPStatus.INFEASIBLE,
            "unbounded": LPStatus.UNBOUNDED,
        }[kind]
        solutions = {}
        for backend in PORTFOLIO:
            # A fresh, identically-seeded generator per backend: every member
            # of the portfolio sees the exact same standard form.
            model = self._build(kind, np.random.default_rng(seed), num_vars, num_rows)
            solutions[backend] = model.solve(backend, sparse=sparse)

        statuses = {backend: solution.status for backend, solution in solutions.items()}
        assert set(statuses.values()) == {expected}, statuses
        if expected is LPStatus.OPTIMAL:
            objectives = [solution.objective for solution in solutions.values()]
            for objective in objectives[1:]:
                assert objective == pytest.approx(objectives[0], abs=1e-5, rel=1e-5)


class TestScipyWarmStartFallback:
    """The scipy backend must account for every handle it cannot exploit."""

    @staticmethod
    def _simple_form():
        model = LPModel()
        x = model.add_variable(lower=0.0)
        model.add_leq_block(np.array([[-1.0]]), [-2.0], [x])
        model.set_objective_coefficient(x, 1.0)
        return model.standard_form()

    def test_default_method_counts_rejected_handle(self):
        form = self._simple_form()
        backend = get_backend("scipy")
        handle = WarmStart(backend="scipy", values=np.array([2.0]))
        with obs.isolated():
            solution = backend.solve(*form, warm_start=handle)
            counted = obs.counter(
                "repro_lp_warmstart_fallback_total", labels=("backend", "reason")
            ).value(backend="scipy", reason="method_rejects_x0")
        # HiGHS takes no x0: the solve is cold, and — unlike a solve that was
        # never handed a handle — the drop is visible in telemetry.
        assert solution.status is LPStatus.OPTIMAL
        assert solution.warm_start_used is False
        assert counted == 1.0

    def test_no_handle_supplied_counts_nothing(self):
        form = self._simple_form()
        backend = get_backend("scipy")
        with obs.isolated():
            solution = backend.solve(*form)
            counted = obs.counter(
                "repro_lp_warmstart_fallback_total", labels=("backend", "reason")
            ).value(backend="scipy", reason="method_rejects_x0")
        assert solution.warm_start_used is False
        assert counted == 0.0

    # scipy deprecates "revised simplex" (the one linprog method with x0);
    # the shape-mismatch path is only reachable through it, so tolerate the
    # deprecation here rather than suite-wide.
    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_shape_mismatch_counted(self):
        from repro.lp.backends.scipy_backend import ScipyBackend

        form = self._simple_form()
        backend = ScipyBackend(method="revised simplex")
        stale = WarmStart(backend="scipy", values=np.array([1.0, 2.0, 3.0]))
        with obs.isolated():
            solution = backend.solve(*form, warm_start=stale)
            counted = obs.counter(
                "repro_lp_warmstart_fallback_total", labels=("backend", "reason")
            ).value(backend="scipy", reason="shape_mismatch")
        assert solution.status is LPStatus.OPTIMAL
        assert solution.warm_start_used is False
        assert counted == 1.0


class TestHighsNativeDegraded:
    """Without ``highspy`` the native backend degrades — loudly."""

    def test_degradation_is_flagged(self):
        if HIGHSPY_AVAILABLE:
            pytest.skip("highspy installed; degraded path not reachable")
        backend = HighsNativeBackend()
        assert backend.available is False
        form = TestScipyWarmStartFallback._simple_form()
        with obs.isolated():
            solution = backend.solve(*form)
            counted = obs.counter(
                "repro_lp_backend_fallback_total", labels=("backend", "reason")
            ).value(backend="highs_native", reason="highspy_missing")
        assert solution.status is LPStatus.OPTIMAL
        assert counted == 1.0

    def test_degraded_backend_accepts_scipy_handles(self):
        if HIGHSPY_AVAILABLE:
            pytest.skip("highspy installed; degraded path not reachable")
        backend = HighsNativeBackend()
        assert backend.accepts_handle(WarmStart(backend="scipy", values=np.zeros(1)))
        assert backend.accepts_handle(WarmStart(backend="highs_native", values=np.zeros(1)))
        assert not backend.accepts_handle(WarmStart(backend="simplex", values=np.zeros(1)))


@pytest.mark.requires_highspy
class TestHighsNativeBackend:
    """Native-API behaviour; the whole class skips without ``highspy``."""

    def test_native_solve_matches_scipy(self):
        model = LPModel()
        delta = model.add_variables(3, lower=-10.0, upper=10.0)
        rng = np.random.default_rng(3)
        matrix = rng.normal(size=(4, 3))
        rhs = matrix @ rng.uniform(-1, 1, size=3) + 0.5
        model.add_leq_block(matrix, rhs, delta)
        add_l1_objective(model, delta)
        native = model.solve("highs_native")
        reference = model.solve("scipy")
        assert native.status is LPStatus.OPTIMAL
        assert native.objective == pytest.approx(reference.objective, abs=1e-6)

    def test_native_mints_basis_handles(self):
        model = LPModel()
        x = model.add_variable(lower=0.0)
        model.add_leq_block(np.array([[-1.0]]), [-2.0], [x])
        model.set_objective_coefficient(x, 1.0)
        backend = get_backend("highs_native")
        solution = backend.solve(*model.standard_form())
        assert solution.warm_start is not None
        assert solution.warm_start.backend == "highs_native"
        assert "col_status" in solution.warm_start.payload
        assert "row_status" in solution.warm_start.payload
        assert "token" in solution.warm_start.payload

    def test_payloadless_handle_on_append_not_reported_used(self):
        """On the append path a handle whose payload was never installed
        must not be reported as used — ``warm_start_used`` means *this*
        handle steered the solve, not merely "warm state existed"."""
        model = LPModel()
        delta = model.add_variables(2, lower=-5.0, upper=5.0)
        model.add_leq_block(np.array([[1.0, 1.0]]), [4.0], delta)
        add_l1_objective(model, delta)
        session = model.incremental_session(backend="highs_native")
        first = session.solve()
        assert first.status is LPStatus.OPTIMAL
        model.add_leq_block(np.array([[-1.0, 0.0]]), [-1.0], delta)
        session.append_rows()
        bare = WarmStart(backend="highs_native", values=first.values)
        second = session.solve(warm_start=bare)
        assert second.status is LPStatus.OPTIMAL
        assert second.warm_start_used is False

    def test_foreign_handle_on_append_installed_via_basis(self):
        """A handle minted by a *different* native instance is genuinely
        installed (basis extended with basic slacks), so reporting it used
        is honest."""
        model = LPModel()
        delta = model.add_variables(2, lower=-5.0, upper=5.0)
        model.add_leq_block(np.array([[1.0, 1.0]]), [4.0], delta)
        add_l1_objective(model, delta)
        foreign = get_backend("highs_native").solve(*model.standard_form(sparse=True))
        assert foreign.warm_start is not None and foreign.warm_start.payload
        session = model.incremental_session(backend="highs_native")
        first = session.solve()
        assert first.status is LPStatus.OPTIMAL
        model.add_leq_block(np.array([[-1.0, 0.0]]), [-1.0], delta)
        session.append_rows()
        second = session.solve(warm_start=foreign.warm_start)
        assert second.status is LPStatus.OPTIMAL
        assert second.warm_start_used is True

    def test_incremental_session_reuses_basis(self):
        model = LPModel()
        delta = model.add_variables(2, lower=-5.0, upper=5.0)
        model.add_leq_block(np.array([[1.0, 1.0]]), [4.0], delta)
        add_l1_objective(model, delta)
        session = model.incremental_session(backend="highs_native")
        first = session.solve()
        assert first.status is LPStatus.OPTIMAL
        model.add_leq_block(np.array([[-1.0, 0.0]]), [-1.0], delta)
        session.append_rows()
        second = session.solve(warm_start=first.warm_start)
        assert second.status is LPStatus.OPTIMAL
        assert second.warm_start_used is True

    def test_exactness_honestly_reported(self):
        backend = get_backend("highs_native")
        assert backend.warm_start_is_exact is False
