"""Tests for the LP modelling layer, norm objectives, and both backends."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import LPError
from repro.lp.backends import available_backends, get_backend
from repro.lp.expression import LinearExpression
from repro.lp.model import LPModel
from repro.lp.norms import add_l1_objective, add_linf_objective, add_norm_objective
from repro.lp.status import LPStatus

BACKENDS = ("scipy", "simplex")


class TestLPModelConstruction:
    def test_add_variables_returns_indices(self):
        model = LPModel()
        indices = model.add_variables(3, "delta")
        assert list(indices) == [0, 1, 2]
        assert model.num_variables == 3
        assert model.variable_name(1) == "delta[1]"

    def test_invalid_bounds_rejected(self):
        model = LPModel()
        with pytest.raises(LPError):
            model.add_variable(lower=1.0, upper=0.0)

    def test_block_shape_validation(self):
        model = LPModel()
        model.add_variables(2)
        with pytest.raises(LPError):
            model.add_leq_block(np.ones((1, 3)), [1.0])
        with pytest.raises(LPError):
            model.add_leq_block(np.ones((2, 2)), [1.0])
        with pytest.raises(LPError):
            model.add_leq_block(np.ones((1, 1)), [1.0], columns=[5])

    def test_num_constraints_counts_rows(self):
        model = LPModel()
        model.add_variables(2)
        model.add_leq_block(np.eye(2), np.ones(2))
        model.add_eq_block(np.ones((1, 2)), [1.0])
        assert model.num_constraints == 3

    def test_objective_coefficient_validation(self):
        model = LPModel()
        model.add_variable()
        with pytest.raises(LPError):
            model.set_objective_coefficient(5, 1.0)

    def test_empty_model_solves_trivially(self):
        solution = LPModel().solve()
        assert solution.status is LPStatus.OPTIMAL
        assert solution.objective == 0.0

    def test_standard_form_shapes(self):
        model = LPModel()
        indices = model.add_variables(2, lower=0.0)
        model.add_leq_block(np.eye(2), np.ones(2), indices)
        model.add_eq_block(np.ones((1, 2)), [1.0], indices)
        c, a_ub, b_ub, a_eq, b_eq, bounds = model.standard_form()
        assert c.shape == (2,)
        assert a_ub.shape == (2, 2)
        assert a_eq.shape == (1, 2)
        assert bounds.shape == (2, 2)
        assert np.all(bounds[:, 0] == 0.0)


@pytest.mark.parametrize("backend", BACKENDS)
class TestBackendsOnKnownProblems:
    def test_simple_bounded_minimization(self, backend):
        # minimize x + y  s.t.  x + y >= 1, x, y >= 0   → optimum 1.
        model = LPModel()
        x, y = model.add_variable(lower=0.0), model.add_variable(lower=0.0)
        model.add_geq(LinearExpression({x: 1.0, y: 1.0}), 1.0)
        model.set_objective_coefficient(x, 1.0)
        model.set_objective_coefficient(y, 1.0)
        solution = model.solve(backend)
        assert solution.status is LPStatus.OPTIMAL
        assert solution.objective == pytest.approx(1.0, abs=1e-6)

    def test_equality_constraint(self, backend):
        # minimize x subject to x == 3.
        model = LPModel()
        x = model.add_variable()
        model.add_eq(LinearExpression({x: 1.0}), 3.0)
        model.set_objective_coefficient(x, 1.0)
        solution = model.solve(backend)
        assert solution.status is LPStatus.OPTIMAL
        assert solution.values[x] == pytest.approx(3.0, abs=1e-6)

    def test_infeasible_detected(self, backend):
        model = LPModel()
        x = model.add_variable()
        model.add_leq(LinearExpression({x: 1.0}), 0.0)
        model.add_geq(LinearExpression({x: 1.0}), 1.0)
        solution = model.solve(backend)
        assert solution.status is LPStatus.INFEASIBLE

    def test_unbounded_detected(self, backend):
        model = LPModel()
        x = model.add_variable()
        model.add_leq(LinearExpression({x: 1.0}), 5.0)
        model.set_objective_coefficient(x, 1.0)  # minimize x, unbounded below
        solution = model.solve(backend)
        assert solution.status in (LPStatus.UNBOUNDED, LPStatus.INFEASIBLE, LPStatus.ERROR)
        assert solution.status is not LPStatus.OPTIMAL

    def test_negative_rhs_handled(self, backend):
        # minimize x subject to -x <= -2  (i.e. x >= 2).
        model = LPModel()
        x = model.add_variable(lower=0.0)
        model.add_leq_block(np.array([[-1.0]]), [-2.0], [x])
        model.set_objective_coefficient(x, 1.0)
        solution = model.solve(backend)
        assert solution.status is LPStatus.OPTIMAL
        assert solution.values[x] == pytest.approx(2.0, abs=1e-6)

    def test_box_bounds_respected(self, backend):
        model = LPModel()
        x = model.add_variable(lower=-2.0, upper=2.0)
        model.set_objective_coefficient(x, 1.0)
        solution = model.solve(backend)
        assert solution.status is LPStatus.OPTIMAL
        assert solution.values[x] == pytest.approx(-2.0, abs=1e-6)


class TestNormObjectives:
    def test_linf_objective_value(self):
        # Force delta = (3, -1); the linf objective should be 3.
        model = LPModel()
        delta = model.add_variables(2)
        model.add_eq_block(np.eye(2), [3.0, -1.0], delta)
        add_linf_objective(model, delta)
        solution = model.solve()
        assert solution.objective == pytest.approx(3.0, abs=1e-6)

    def test_l1_objective_value(self):
        model = LPModel()
        delta = model.add_variables(2)
        model.add_eq_block(np.eye(2), [3.0, -1.0], delta)
        add_l1_objective(model, delta)
        solution = model.solve()
        assert solution.objective == pytest.approx(4.0, abs=1e-6)

    def test_l1_prefers_sparse_solutions(self):
        # x + y >= 1 with l1 objective: any point on the segment is optimal
        # with total norm 1; the solver must achieve exactly 1.
        model = LPModel()
        delta = model.add_variables(2)
        model.add_leq_block(np.array([[-1.0, -1.0]]), [-1.0], delta)
        add_l1_objective(model, delta)
        solution = model.solve()
        assert solution.objective == pytest.approx(1.0, abs=1e-6)

    def test_combined_norm_accepted(self):
        model = LPModel()
        delta = model.add_variables(2)
        model.add_eq_block(np.eye(2), [1.0, 1.0], delta)
        add_norm_objective(model, delta, "l1+linf")
        solution = model.solve()
        assert solution.status is LPStatus.OPTIMAL

    def test_unknown_norm_rejected(self):
        model = LPModel()
        delta = model.add_variables(1)
        with pytest.raises(LPError):
            add_norm_objective(model, delta, "l7")

    def test_empty_block_rejected(self):
        model = LPModel()
        with pytest.raises(LPError):
            add_linf_objective(model, np.array([], dtype=int))
        with pytest.raises(LPError):
            add_l1_objective(model, np.array([], dtype=int))


class TestBackendRegistry:
    def test_available_backends(self):
        names = available_backends()
        assert "scipy" in names and "simplex" in names

    def test_unknown_backend_rejected(self):
        with pytest.raises(LPError):
            get_backend("gurobi")

    def test_default_backend(self):
        assert get_backend(None).name == "scipy"


class TestBackendAgreement:
    """Property-based cross-check of the two backends on random feasible LPs."""

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_backends_agree_on_random_feasible_lps(self, data):
        num_vars = data.draw(st.integers(1, 4))
        num_rows = data.draw(st.integers(1, 5))
        rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
        matrix = rng.normal(size=(num_rows, num_vars))
        interior = rng.normal(size=num_vars)
        rhs = matrix @ interior + rng.uniform(0.1, 1.0, size=num_rows)

        solutions = {}
        for backend in BACKENDS:
            model = LPModel()
            delta = model.add_variables(num_vars, lower=-50.0, upper=50.0)
            model.add_leq_block(matrix, rhs, delta)
            add_l1_objective(model, delta)
            solutions[backend] = model.solve(backend)

        for backend, solution in solutions.items():
            assert solution.status is LPStatus.OPTIMAL, backend
            values = solution.values[:num_vars]
            assert np.all(matrix @ values <= rhs + 1e-6)
        assert solutions["scipy"].objective == pytest.approx(
            solutions["simplex"].objective, abs=1e-5, rel=1e-5
        )
