"""The observability hard constraint: telemetry never touches numerics.

Three pins, all run over the same CEGIS repair workload:

1. **Byte identity.**  The repaired parameters are byte-for-byte identical
   with telemetry enabled and disabled, at ``workers=1`` (inline tasks) and
   ``workers=4`` (the spawn pool's capture/absorb path).  If any
   instrumented call site ever influenced an LP tableau, a partition, or
   iteration order, this matrix breaks.
2. **Merge determinism.**  The counter content of the registry after a
   ``workers=4`` run equals the ``workers=1`` run exactly — the per-task
   capture deltas absorbed in task order reconstruct the serial counts —
   modulo the explicitly worker-count-dependent ``repro_worker_*`` families.
   (Histograms are excluded: their bucket placement depends on wall-clock.)
3. **Profiler passivity.**  The same bytes again with a
   :class:`~repro.obs.SamplingProfiler` actively sampling the repair — the
   profiler reads interpreter frames, so a divergence here would mean
   sampling perturbed numeric state.
"""

from __future__ import annotations

import numpy as np

import repro.obs as obs
from repro.driver import RepairDriver
from repro.engine import ShardedSyrennEngine
from repro.nn.activations import ReLULayer
from repro.nn.linear import FullyConnectedLayer
from repro.nn.network import Network
from repro.obs import SamplingProfiler, Trace, use_trace
from repro.polytope.hpolytope import HPolytope
from repro.utils.rng import ensure_rng
from repro.verify import SyrennVerifier, VerificationSpec


def build_workload() -> tuple[Network, VerificationSpec]:
    """A small plane-spec repair that needs a couple of CEGIS rounds."""
    rng = ensure_rng(5)
    width = 6
    network = Network(
        [
            FullyConnectedLayer.from_shape(2, width, rng),
            ReLULayer(width),
            FullyConnectedLayer.from_shape(width, width, rng),
            ReLULayer(width),
            FullyConnectedLayer.from_shape(width, 3, rng),
        ]
    )
    preds = network.predict(rng.uniform(-1.0, 1.0, size=(400, 2)))
    winner = int(np.bincount(preds, minlength=3).argmax())
    spec = VerificationSpec()
    constraint = HPolytope.argmax_region(3, winner, 1e-3)
    # Four quadrant planes, so engine batches hold several tasks and a
    # workers=4 run genuinely exercises the pooled capture/absorb path.
    for x0, y0 in ((-1, -1), (0, -1), (-1, 0), (0, 0)):
        spec.add_plane(
            [[x0, y0], [x0 + 1, y0], [x0 + 1, y0 + 1], [x0, y0 + 1]], constraint
        )
    return network, spec


def run_repair(
    workers: int, with_obs: bool, with_profiler: bool = False
) -> tuple[list[bytes], dict]:
    """One full driver run; returns (repaired parameter bytes, obs snapshot).

    ``with_profiler`` runs the whole repair under an aggressively-sampling
    :class:`SamplingProfiler` (1ms interval) and asserts it actually
    collected stacks, so the byte-identity comparison is made against a
    profiler that demonstrably ran.
    """
    network, spec = build_workload()
    profiler = SamplingProfiler(interval=0.001) if with_profiler else None
    with obs.isolated(start_enabled=with_obs):
        trace = Trace("differential") if with_obs else None
        context = use_trace(trace) if trace is not None else _null_context()
        if profiler is not None:
            profiler.start()
        try:
            with context:
                with ShardedSyrennEngine(workers=workers, cache=False) as engine:
                    driver = RepairDriver(
                        network, spec, SyrennVerifier(engine=engine), engine=engine,
                        max_rounds=6,
                    )
                    outcome = driver.run()
        finally:
            if profiler is not None:
                profiler.stop()
        snapshot = obs.snapshot()
    if profiler is not None:
        assert profiler.sample_count >= 1 and profiler.folded()
    assert outcome.status == "certified"
    parameters = [
        outcome.network.value.layers[index].get_parameters().tobytes()
        for index in outcome.network.repairable_layer_indices()
    ]
    return parameters, snapshot


def _null_context():
    from contextlib import nullcontext

    return nullcontext()


def comparable_counters(snapshot: dict) -> dict:
    """The worker-count-independent registry content.

    Counter families only — histogram bucket placement is wall-clock — and
    never the ``repro_worker_*`` namespace, which is worker-count-dependent
    by contract (e.g. each worker process decodes the network payload once).
    """
    return {
        name: entry
        for name, entry in snapshot.items()
        if entry["kind"] == "counter" and not name.startswith("repro_worker_")
    }


class TestTelemetryNeverTouchesNumerics:
    def test_byte_identity_matrix(self):
        """obs {on,off} × workers {1,4}: one set of repaired bytes."""
        reference, _ = run_repair(workers=1, with_obs=False)
        assert reference  # the workload actually repaired something
        for workers in (1, 4):
            for with_obs in (False, True):
                if workers == 1 and not with_obs:
                    continue
                parameters, snapshot = run_repair(workers, with_obs)
                assert parameters == reference, (
                    f"repair bytes diverged at workers={workers} obs={with_obs}"
                )
                if with_obs:
                    assert "repro_driver_rounds_total" in snapshot
                else:
                    assert snapshot == {}

    def test_byte_identity_with_profiler_sampling(self):
        """A 1ms-interval profiler over the repair changes nothing."""
        reference, _ = run_repair(workers=1, with_obs=False)
        for workers in (1, 4):
            parameters, snapshot = run_repair(workers, with_obs=True, with_profiler=True)
            assert parameters == reference, (
                f"repair bytes diverged under profiling at workers={workers}"
            )
            assert "repro_driver_rounds_total" in snapshot

    def test_worker_merge_reconstructs_serial_counters(self):
        """workers=4 counters ≡ workers=1 counters, modulo repro_worker_*."""
        _, serial = run_repair(workers=1, with_obs=True)
        _, pooled = run_repair(workers=4, with_obs=True)
        assert comparable_counters(pooled) == comparable_counters(serial)
        # The pooled run really did go through the capture/absorb path.
        assert any(name.startswith("repro_worker_") for name in pooled)
        assert "repro_engine_batches_total" in pooled
