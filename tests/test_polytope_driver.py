"""Tests for polytope-CEGIS: driver mode="polytope" and the pool key fixes.

Three layers of pinning:

* **pool dedup regressions** — the signed-zero / float32 key-normalization
  bugs (equal counterexamples must never evade dedup, or the driver's stall
  detection can be fooled forever), activation-pattern-aware region keys,
  and the region checkpoint/resume round-trip;
* a **differential matrix** (backend × sparse × workers × incremental)
  pinning the polytope driver's round-1 repair byte-identical to one-shot
  :func:`~repro.core.polytope_repair.polytope_repair` on the same spec — the
  two must build the same LP row for row when every region is violated;
* **loop tests** for certification end to end: cold vs incremental vs
  engine-parallel runs byte-identical, region counterexamples flowing
  through checkpoint/resume, and the per-region key-point reduction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ddnn import DecoupledNetwork
from repro.core.polytope_repair import (
    count_key_points,
    decompose_spec_entry,
    polytope_repair,
    reduce_to_key_points,
    region_key_points,
)
from repro.core.specs import (
    PolytopeRepairSpec,
    classification_constraint,
    dedupe_exact_vertices,
)
from repro.driver import CounterexamplePool, RepairDriver
from repro.engine import ShardedSyrennEngine
from repro.engine.jobs import contiguous_spans
from repro.exceptions import RepairError, SpecificationError
from repro.polytope.hpolytope import HPolytope
from repro.polytope.segment import LineSegment
from repro.syrenn.line import transform_line
from repro.utils.rng import ensure_rng
from repro.verify import (
    Counterexample,
    RegionCounterexample,
    SyrennVerifier,
    VerificationSpec,
)
from tests.conftest import make_random_relu_network

CONSTRAINT = HPolytope([[1.0, 0.0]], [0.5])


def point_ce(values, constraint=CONSTRAINT, margin=1.0, region=0) -> Counterexample:
    return Counterexample(
        point=np.asarray(values), constraint=constraint, margin=margin, region_index=region
    )


def region_ce(
    vertices, interior, worst=0, constraint=CONSTRAINT, margin=1.0, region=0
) -> RegionCounterexample:
    vertices = np.atleast_2d(np.asarray(vertices, dtype=np.float64))
    return RegionCounterexample(
        point=vertices[worst],
        constraint=constraint,
        margin=margin,
        region_index=region,
        activation_point=np.asarray(interior, dtype=np.float64),
        vertices=vertices,
    )


@pytest.fixture(scope="module")
def polytope_scenario():
    """A seeded scenario whose specification violates *every* linear region.

    The required class is one the buggy network never predicts on the spec
    geometry, so each linear region has at least one violating vertex.  That
    makes the polytope driver's round-1 pool expand to exactly the key
    points one-shot Algorithm 2 generates — the differential tests depend
    on it and re-assert it as a precondition.
    """
    rng = ensure_rng(3)
    # Small enough that the educational simplex backend solves the one-shot
    # LP too (the differential matrix covers both backends).
    network = make_random_relu_network(rng, (2, 6, 5, 3))
    predictions = network.predict(rng.uniform(-1.0, 1.0, size=(500, 2)))
    loser = int(np.argmin(np.bincount(predictions, minlength=3)))
    spec = PolytopeRepairSpec()
    spec.add_segment(
        LineSegment([-1.0, -0.5], [1.0, 0.75]), classification_constraint(3, loser, 1e-3)
    )
    spec.add_plane(
        [[-0.6, -0.6], [0.6, -0.6], [0.6, 0.6], [-0.6, 0.6]],
        classification_constraint(3, loser, 1e-3),
    )
    verifier = SyrennVerifier(region_counterexamples=True)
    report = verifier.verify(network, VerificationSpec.from_polytope_spec(spec))
    assert report.num_violated == report.num_regions  # every spec region violated
    assert len(report.counterexamples) == report.linear_regions_checked
    return network, spec


def layer_bytes(network) -> list[bytes]:
    ddnn = (
        network
        if isinstance(network, DecoupledNetwork)
        else DecoupledNetwork.from_network(network)
    )
    return [
        ddnn.value.layers[index].get_parameters().tobytes()
        for index in ddnn.repairable_layer_indices()
    ]


class TestPoolKeyNormalization:
    """Regression tests for the dedup-key bugs (signed zero, dtype)."""

    def test_negative_zero_point_is_a_duplicate(self):
        pool = CounterexamplePool()
        assert pool.add(point_ce([0.0, 1.0]))
        assert not pool.add(point_ce([-0.0, 1.0]))
        assert len(pool) == 1

    def test_rounding_minted_negative_zero_is_a_duplicate(self):
        # np.round(-1e-12, 9) == -0.0: the sign bit is minted *by* rounding,
        # so normalization must collapse signed zero after the rounding step.
        pool = CounterexamplePool(decimals=9)
        assert pool.add(point_ce([0.0, 1.0]))
        assert not pool.add(point_ce([-1e-12, 1.0]))

    def test_float32_duplicate_is_rejected(self):
        pool = CounterexamplePool()
        assert pool.add(point_ce(np.array([0.25, 1.0], dtype=np.float64)))
        assert not pool.add(point_ce(np.array([0.25, 1.0], dtype=np.float32)))

    def test_negative_zero_region_vertex_is_a_duplicate(self):
        pool = CounterexamplePool()
        assert pool.add(region_ce([[0.0, 0.0], [1.0, 0.0]], [0.5, 0.0]))
        assert not pool.add(region_ce([[-0.0, 0.0], [1.0, 0.0]], [0.5, 0.0]))

    def test_counterexample_coerces_to_float64(self):
        ce = Counterexample(
            point=np.array([0.25, 1.0], dtype=np.float32),
            constraint=CONSTRAINT,
            margin=np.float32(0.5),
            region_index=0,
            activation_point=np.array([0.1, 0.2], dtype=np.float32),
        )
        assert ce.point.dtype == np.float64
        assert ce.activation_point.dtype == np.float64
        assert isinstance(ce.margin, float)

    def test_region_counterexample_validation(self):
        with pytest.raises(SpecificationError):
            RegionCounterexample(
                point=np.zeros(2), constraint=CONSTRAINT, margin=1.0, region_index=0
            )
        with pytest.raises(SpecificationError):
            RegionCounterexample(
                point=np.zeros(2),
                constraint=CONSTRAINT,
                margin=1.0,
                region_index=0,
                vertices=np.zeros((2, 2)),
            )


class TestPoolRegionCounterexamples:
    def test_region_dedup_ignores_worst_vertex_and_margin(self):
        # Across repair rounds the same violating region may surface with a
        # different worst vertex and margin; it is still the same region.
        pool = CounterexamplePool()
        vertices = [[0.0, 0.0], [1.0, 0.0], [0.5, 1.0]]
        assert pool.add(region_ce(vertices, [0.5, 0.3], worst=0, margin=2.0))
        assert not pool.add(region_ce(vertices, [0.5, 0.3], worst=2, margin=0.25))
        # A different linear region (different interior) is new.
        assert pool.add(region_ce(vertices, [0.25, 0.1], worst=0))

    def test_region_and_point_keys_never_collide(self):
        pool = CounterexamplePool()
        vertices = np.array([[0.0, 0.0]])
        assert pool.add(region_ce(vertices, [0.0, 0.0]))
        assert pool.add(point_ce([0.0, 0.0]))
        assert len(pool) == 2

    def test_point_spec_expands_regions_to_vertices(self):
        pool = CounterexamplePool()
        pool.add(region_ce([[0.0, 0.0], [1.0, 0.0], [0.5, 1.0]], [0.5, 0.3]))
        pool.add(point_ce([2.0, 2.0]))
        assert pool.num_key_points == 4
        spec = pool.point_spec(margin=0.125)
        assert spec.num_points == 4
        np.testing.assert_array_equal(spec.activation_points[0], [0.5, 0.3])
        np.testing.assert_array_equal(spec.activation_points[2], [0.5, 0.3])
        np.testing.assert_array_equal(spec.activation_points[3], [2.0, 2.0])
        np.testing.assert_allclose(spec.constraints[0].b, [0.375])

    def test_point_spec_start_slices_entries_not_points(self):
        pool = CounterexamplePool()
        pool.add(region_ce([[0.0, 0.0], [1.0, 0.0]], [0.5, 0.0]))
        pool.add(region_ce([[3.0, 0.0], [4.0, 0.0], [3.5, 1.0]], [3.5, 0.3]))
        suffix = pool.point_spec(start=1)
        assert suffix.num_points == 3
        np.testing.assert_array_equal(suffix.points[0], [3.0, 0.0])

    def test_checkpoint_roundtrip_with_regions(self, tmp_path):
        pool = CounterexamplePool(decimals=7)
        pool.add(region_ce([[0.0, 0.0], [1.0, 0.0], [0.5, 1.0]], [0.5, 0.3], margin=0.75))
        pool.add(point_ce([2.0, 2.0], margin=0.5))
        path = tmp_path / "region-pool.npz"
        pool.save(path)
        restored = CounterexamplePool.load(path)
        assert len(restored) == 2
        assert restored.num_key_points == 4
        loaded = restored.counterexamples[0]
        assert isinstance(loaded, RegionCounterexample)
        np.testing.assert_array_equal(
            loaded.vertices, pool.counterexamples[0].vertices
        )
        assert not isinstance(restored.counterexamples[1], RegionCounterexample)
        # Restored entries are still duplicates of their originals.
        assert not restored.add(pool.counterexamples[0])
        assert not restored.add(pool.counterexamples[1])

    def test_unsatisfied_checks_every_region_vertex(self, toy_network):
        pool = CounterexamplePool()
        # N₁(-1) = 1 > 0.5 violates; N₁(0.5) = -0.5 satisfies.  The region
        # below is unsatisfied only because of its *second* vertex.
        pool.add(
            RegionCounterexample(
                point=np.array([0.5]),
                constraint=HPolytope([[1.0]], [0.5]),
                margin=1.0,
                region_index=0,
                activation_point=np.array([0.25]),
                vertices=np.array([[0.5], [-1.0]]),
            )
        )
        pool.add(point_ce([0.5], constraint=HPolytope([[1.0]], [0.5])))
        assert pool.unsatisfied(toy_network) == [0]


class TestKeyPointReduction:
    """The per-region refactor of Algorithm 2's reduction."""

    def test_reduce_matches_per_region_composition(self, rng):
        network = make_random_relu_network(rng, (2, 8, 6, 3))
        spec = PolytopeRepairSpec()
        spec.add_segment(
            LineSegment([-1.0, 0.0], [1.0, 0.5]), classification_constraint(3, 0)
        )
        spec.add_plane(
            [[-1.0, -1.0], [1.0, -1.0], [0.0, 1.0]], classification_constraint(3, 1)
        )
        key_points, activations, constraints = reduce_to_key_points(network, spec)
        rebuilt_points, rebuilt_activations = [], []
        for entry in spec.entries:
            for region in decompose_spec_entry(network, entry.region):
                points, acts, cons = region_key_points(
                    region.vertices, region.interior, entry.constraint
                )
                rebuilt_points.extend(points)
                rebuilt_activations.extend(acts)
                assert all(c is entry.constraint for c in cons)
        assert np.array(key_points).tobytes() == np.array(rebuilt_points).tobytes()
        assert np.array(activations).tobytes() == np.array(rebuilt_activations).tobytes()
        assert len(constraints) == len(key_points)

    def test_table2_line_spec_counts_unchanged(self, rng):
        """Table-2-shaped fog-line specs: one key point per (region, endpoint)."""
        network = make_random_relu_network(rng, (6, 10, 8, 4))
        lines = [
            LineSegment(rng.uniform(-1, 1, 6), rng.uniform(-1, 1, 6)) for _ in range(3)
        ]
        spec = PolytopeRepairSpec.from_segments(
            lines, [classification_constraint(4, i % 4) for i in range(3)]
        )
        expected = sum(
            2 * len(transform_line(network, line).regions) for line in lines
        )
        assert count_key_points(network, spec) == expected

    def test_duplicate_plane_vertices_do_not_bloat_the_lp(self, rng):
        network = make_random_relu_network(rng, (2, 8, 6, 3))
        triangle = [[-1.0, -1.0], [1.0, -1.0], [0.0, 1.0]]
        clean = PolytopeRepairSpec()
        clean.add_plane(triangle, classification_constraint(3, 0))
        doubled = PolytopeRepairSpec()
        doubled.add_plane(
            triangle + triangle, classification_constraint(3, 0)
        )
        assert count_key_points(network, doubled) == count_key_points(network, clean)
        points, _, _ = reduce_to_key_points(network, doubled)
        assert len(points) > 0

    def test_dedupe_exact_vertices_preserves_order(self):
        vertices = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0], [2.0, 2.0]])
        np.testing.assert_array_equal(
            dedupe_exact_vertices(vertices), [[1.0, 0.0], [0.0, 1.0], [2.0, 2.0]]
        )
        clean = np.array([[3.0, 1.0], [0.0, 1.0]])
        assert dedupe_exact_vertices(clean) is clean

    def test_contiguous_spans(self):
        assert contiguous_spans([]) == []
        assert contiguous_spans([7]) == [(0, 1)]
        assert contiguous_spans([0, 0, 1, 1, 1, 4]) == [(0, 2), (2, 5), (5, 6)]


class TestPolytopeDriverDifferential:
    """Round 1 of the polytope driver must equal one-shot Algorithm 2.

    On an all-regions-violated spec the round-1 pool expands to exactly the
    key points ``reduce_to_key_points`` generates, in the same order, so the
    repair LP — and therefore the applied delta — must be byte-identical,
    across LP backends, sparse/dense assembly, worker counts, and the
    incremental session path.
    """

    @pytest.mark.parametrize(
        "backend,sparse,incremental,workers",
        [
            ("scipy", True, False, 1),
            ("scipy", False, False, 1),
            ("scipy", True, True, 1),
            ("scipy", False, True, 1),
            ("scipy", True, True, 4),
            ("simplex", False, False, 1),
            ("simplex", True, True, 1),
        ],
    )
    def test_round1_matches_one_shot(
        self, polytope_scenario, backend, sparse, incremental, workers
    ):
        network, spec = polytope_scenario
        layer = DecoupledNetwork.from_network(network).repairable_layer_indices()[-1]
        one_shot = polytope_repair(
            network, layer, spec, backend=backend, sparse=sparse
        )
        assert one_shot.feasible

        def run(engine=None):
            return RepairDriver(
                network,
                spec,
                SyrennVerifier(),
                mode="polytope",
                layer_schedule=[layer],
                max_rounds=1,
                repair_margin=0.0,
                backend=backend,
                sparse=sparse,
                incremental=incremental,
                engine=engine,
            ).run()

        if workers > 1:
            with ShardedSyrennEngine(workers=workers, cache=False) as engine:
                report = run(engine)
        else:
            report = run()

        # Precondition: the pool expanded to one-shot's exact key points.
        assert report.rounds[0].pool_key_points == one_shot.num_key_points
        assert report.rounds[0].repair_feasible
        assert layer_bytes(report.network) == layer_bytes(one_shot.network)

    def test_polytope_pool_entries_are_regions(self, polytope_scenario):
        network, spec = polytope_scenario
        driver = RepairDriver(
            network, spec, SyrennVerifier(), mode="polytope", max_rounds=1
        )
        driver.run()
        assert len(driver.pool) > 0
        assert all(
            isinstance(entry, RegionCounterexample)
            for entry in driver.pool.counterexamples
        )


class TestPolytopeDriverLoop:
    def test_certifies_and_modes_match(self, polytope_scenario):
        network, spec = polytope_scenario
        cold = RepairDriver(
            network, spec, SyrennVerifier(), mode="polytope", max_rounds=10
        ).run()
        incremental = RepairDriver(
            network,
            spec,
            SyrennVerifier(),
            mode="polytope",
            max_rounds=10,
            incremental=True,
            max_new_counterexamples=8,
        ).run()
        assert cold.status == "certified" and cold.certified
        assert incremental.status == "certified"
        assert cold.mode == incremental.mode == "polytope"
        assert cold.unsatisfied_pool_indices == []
        assert incremental.unsatisfied_pool_indices == []
        assert incremental.value_only_rounds > 0
        summary = cold.as_dict()
        assert summary["mode"] == "polytope"
        assert summary["rounds"][0]["pool_key_points"] >= summary["rounds"][0]["pool_size"]

    def test_incremental_engine_run_matches_cold_serial(self, polytope_scenario):
        network, spec = polytope_scenario
        cold = RepairDriver(
            network,
            spec,
            SyrennVerifier(),
            mode="polytope",
            max_rounds=10,
            max_new_counterexamples=8,
        ).run()
        with ShardedSyrennEngine(workers=4, cache=False) as engine:
            parallel = RepairDriver(
                network,
                spec,
                SyrennVerifier(),
                mode="polytope",
                max_rounds=10,
                incremental=True,
                max_new_counterexamples=8,
                engine=engine,
            ).run()
        assert cold.status == parallel.status == "certified"
        assert cold.num_rounds == parallel.num_rounds
        assert (
            cold.final_report.region_statuses == parallel.final_report.region_statuses
        )
        assert cold.final_report.region_margins == parallel.final_report.region_margins
        assert layer_bytes(cold.network) == layer_bytes(parallel.network)

    def test_region_checkpoint_resume_through_driver(self, polytope_scenario, tmp_path):
        network, spec = polytope_scenario
        path = tmp_path / "region-checkpoint.npz"
        first = RepairDriver(
            network,
            spec,
            SyrennVerifier(),
            mode="polytope",
            max_rounds=1,
            checkpoint_path=path,
            delta_bound=1e-12,
        ).run()
        assert first.status == "infeasible"
        assert path.exists()
        resumed = RepairDriver(
            network,
            spec,
            SyrennVerifier(),
            mode="polytope",
            max_rounds=10,
            checkpoint_path=path,
        )
        assert len(resumed.pool) == first.pool_size
        assert all(
            isinstance(entry, RegionCounterexample)
            for entry in resumed.pool.counterexamples
        )
        report = resumed.run()
        assert report.status == "certified"
        # Round 0 re-finds only already-pooled regions: dedup must hold.
        assert report.rounds[0].new_counterexamples == 0
        assert report.rounds[0].repair_attempted

    def test_verifier_flag_restored_after_run(self, polytope_scenario):
        network, spec = polytope_scenario
        verifier = SyrennVerifier()
        assert verifier.region_counterexamples is False
        RepairDriver(
            network, spec, verifier, mode="polytope", max_rounds=10
        ).run()
        assert verifier.region_counterexamples is False

    def test_value_only_region_counterexamples_match_slow_path(self, polytope_scenario):
        network, spec = polytope_scenario
        vspec = VerificationSpec.from_polytope_spec(spec)
        slow = SyrennVerifier(region_counterexamples=True).verify(network, vspec)
        fast_verifier = SyrennVerifier(region_counterexamples=True, value_only=True)
        fast_verifier.verify(network, vspec)  # populate the fast-path slot
        fast = fast_verifier.verify(network, vspec)
        assert fast.value_only
        assert slow.region_statuses == fast.region_statuses
        assert slow.region_margins == fast.region_margins
        assert len(slow.counterexamples) == len(fast.counterexamples)
        for a, b in zip(slow.counterexamples, fast.counterexamples):
            assert isinstance(b, RegionCounterexample)
            assert a.point.tobytes() == b.point.tobytes()
            assert a.vertices.tobytes() == b.vertices.tobytes()
            assert a.margin == b.margin
            assert a.region_index == b.region_index
            assert (
                a.resolved_activation_point().tobytes()
                == b.resolved_activation_point().tobytes()
            )

    def test_mode_validation(self, polytope_scenario):
        network, spec = polytope_scenario
        with pytest.raises(RepairError):
            RepairDriver(network, spec, SyrennVerifier(), mode="points")
        with pytest.raises(RepairError):
            RepairDriver(network, spec, SyrennVerifier())  # PolytopeRepairSpec, point mode
        # A plain VerificationSpec is accepted in polytope mode.
        driver = RepairDriver(
            network,
            VerificationSpec.from_polytope_spec(spec),
            SyrennVerifier(),
            mode="polytope",
            max_rounds=1,
        )
        assert driver.mode == "polytope"
