"""Tests for the verification subsystem (repro.verify)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ddnn import DecoupledNetwork
from repro.core.point_repair import point_repair
from repro.core.specs import PointRepairSpec
from repro.exceptions import SpecificationError
from repro.nn.activations import ReLULayer, TanhLayer
from repro.nn.linear import FullyConnectedLayer
from repro.nn.network import Network
from repro.polytope.hpolytope import HPolytope
from repro.polytope.segment import LineSegment
from repro.verify import (
    Box,
    GridVerifier,
    RandomVerifier,
    RegionStatus,
    SyrennVerifier,
    VerificationSpec,
)

@pytest.fixture
def plane_network(rng) -> Network:
    """A small random PWL classifier over the plane."""
    return Network(
        [
            FullyConnectedLayer.from_shape(2, 8, rng),
            ReLULayer(8),
            FullyConnectedLayer.from_shape(8, 3, rng),
        ]
    )


def toy_spec(violated: bool) -> VerificationSpec:
    """A segment spec on N₁ (fixture network): y ≤ 0.5 fails only near x = -1."""
    spec = VerificationSpec()
    segment = (
        LineSegment([-1.0], [2.0]) if violated else LineSegment([0.0], [2.0])
    )
    spec.add_segment(segment, HPolytope([[1.0]], [0.5]))
    return spec


class TestVerificationSpec:
    def test_region_kinds(self):
        spec = VerificationSpec()
        spec.add_segment(LineSegment([0.0, 0.0], [1.0, 1.0]), HPolytope([[1.0, 0.0]], [1.0]))
        spec.add_plane([[0, 0], [1, 0], [0, 1]], HPolytope([[1.0, 0.0]], [1.0]))
        spec.add_box([0, 0], [1, 1], HPolytope([[1.0, 0.0]], [1.0]))
        assert spec.num_regions == 3

    def test_plane_needs_three_vertices(self):
        with pytest.raises(SpecificationError):
            VerificationSpec().add_plane([[0, 0], [1, 1]], HPolytope([[1.0, 0.0]], [1.0]))

    def test_box_validation(self):
        with pytest.raises(SpecificationError):
            Box([1.0], [0.0])

    def test_empty_spec_rejected(self, toy_network):
        with pytest.raises(SpecificationError):
            SyrennVerifier().verify(toy_network, VerificationSpec())

    def test_dimension_mismatch_rejected(self, toy_network):
        spec = VerificationSpec()
        spec.add_segment(LineSegment([0.0, 0.0], [1.0, 1.0]), HPolytope([[1.0]], [1.0]))
        with pytest.raises(SpecificationError):
            GridVerifier().verify(toy_network, spec)


class TestSyrennVerifier:
    def test_certifies_clean_segment(self, toy_network):
        report = SyrennVerifier().verify(toy_network, toy_spec(violated=False))
        assert report.region_statuses == [RegionStatus.CERTIFIED]
        assert report.certified and report.clean
        assert not report.counterexamples
        assert report.region_margins[0] <= 0.0

    def test_finds_violation_with_margin(self, toy_network):
        # N₁(-1) = 1, so the worst margin against y ≤ 0.5 is exactly 0.5.
        report = SyrennVerifier().verify(toy_network, toy_spec(violated=True))
        assert report.region_statuses == [RegionStatus.VIOLATED]
        assert not report.certified
        worst = max(report.counterexamples, key=lambda c: c.margin)
        assert worst.margin == pytest.approx(0.5)
        assert worst.point == pytest.approx(np.array([-1.0]))
        assert worst.activation_point is not None

    def test_counterexamples_are_real(self, plane_network):
        spec = VerificationSpec()
        spec.add_plane(
            [[-1, -1], [1, -1], [1, 1], [-1, 1]], HPolytope.argmax_region(3, 0)
        )
        report = SyrennVerifier().verify(plane_network, spec)
        for cex in report.counterexamples:
            output = plane_network.compute(cex.point)
            assert cex.constraint.violation(output) == pytest.approx(cex.margin, abs=1e-9)

    def test_box_matches_equivalent_plane(self, plane_network):
        constraint = HPolytope.argmax_region(3, 0)
        as_box = VerificationSpec()
        as_box.add_box([-1, -0.5], [1, 0.5], constraint)
        as_plane = VerificationSpec()
        as_plane.add_plane([[-1, -0.5], [1, -0.5], [1, 0.5], [-1, 0.5]], constraint)
        box_report = SyrennVerifier().verify(plane_network, as_box)
        plane_report = SyrennVerifier().verify(plane_network, as_plane)
        assert box_report.region_statuses == plane_report.region_statuses
        assert box_report.region_margins[0] == pytest.approx(plane_report.region_margins[0])

    def test_degenerate_and_high_dimensional_boxes(self, plane_network):
        constraint = HPolytope.argmax_region(3, 0)
        spec = VerificationSpec()
        spec.add_box([0.3, 0.3], [0.3, 0.3], constraint)       # a single point
        spec.add_box([0.0, 0.3], [1.0, 0.3], constraint)       # a segment
        report = SyrennVerifier().verify(plane_network, spec)
        assert all(
            status in (RegionStatus.CERTIFIED, RegionStatus.VIOLATED)
            for status in report.region_statuses
        )
        # A ≥3-D box is beyond the 1-D/2-D SyReNN substrate.
        wide = Network([FullyConnectedLayer.from_shape(3, 2, np.random.default_rng(0))])
        spec3 = VerificationSpec()
        spec3.add_box([0, 0, 0], [1, 1, 1], HPolytope([[1.0, 0.0]], [10.0]))
        report3 = SyrennVerifier().verify(wide, spec3)
        assert report3.region_statuses == [RegionStatus.UNKNOWN]

    def test_non_pwl_network_rejected(self):
        network = Network(
            [
                FullyConnectedLayer(np.array([[1.0]]), np.array([0.0])),
                TanhLayer(1),
                FullyConnectedLayer(np.array([[1.0]]), np.array([0.0])),
            ]
        )
        spec = VerificationSpec()
        spec.add_segment(LineSegment([0.0], [1.0]), HPolytope([[1.0]], [10.0]))
        from repro.exceptions import NotPiecewiseLinearError

        with pytest.raises(NotPiecewiseLinearError):
            SyrennVerifier().verify(network, spec)

    def test_partition_cache_reused_across_rounds(self, toy_network):
        verifier = SyrennVerifier(cache_partitions=True)
        spec = toy_spec(violated=True)
        ddnn = DecoupledNetwork.from_network(toy_network)
        verifier.verify(ddnn, spec)
        assert len(verifier._cache) == 1
        # A value-channel edit keeps the activation channel (and the cache key).
        ddnn.apply_parameter_delta(2, np.zeros(ddnn.value.layers[2].num_parameters))
        verifier.verify(ddnn, spec)
        assert len(verifier._cache) == 1
        # A rebuilt-but-identical spec hits the same cache entry, while a
        # geometrically different region gets its own.
        verifier.verify(ddnn, toy_spec(violated=True))
        assert len(verifier._cache) == 1
        verifier.verify(ddnn, toy_spec(violated=False))
        assert len(verifier._cache) == 2

    def test_cache_keyed_by_geometry_not_object_identity(self, toy_network):
        """Mutating a spec in place must not serve stale decompositions."""
        verifier = SyrennVerifier(cache_partitions=True)
        spec = toy_spec(violated=True)
        first = verifier.verify(toy_network, spec)
        assert first.region_statuses == [RegionStatus.VIOLATED]
        # Swap the region for the clean segment inside the *same* spec object.
        spec.regions[0].region = LineSegment([0.0], [2.0])
        second = verifier.verify(toy_network, spec)
        assert second.region_statuses == [RegionStatus.CERTIFIED]

    def test_ddnn_vertices_pinned_to_region(self, toy_network):
        """Repairing the pooled vertices certifies the region (Appendix B)."""
        spec = toy_spec(violated=True)
        report = SyrennVerifier().verify(
            DecoupledNetwork.from_network(toy_network), spec
        )
        points = np.array([c.point for c in report.counterexamples])
        activations = np.array([c.activation_point for c in report.counterexamples])
        constraints = [
            HPolytope(c.constraint.a, c.constraint.b - 1e-6)
            for c in report.counterexamples
        ]
        repair_spec = PointRepairSpec(
            points=points, constraints=constraints, activation_points=activations
        )
        result = point_repair(toy_network, 2, repair_spec)
        assert result.feasible
        after = SyrennVerifier().verify(result.network, spec)
        assert after.certified


class TestSamplingVerifiers:
    @pytest.mark.parametrize("verifier_class", [GridVerifier, RandomVerifier])
    def test_never_certifies(self, toy_network, verifier_class):
        report = verifier_class().verify(toy_network, toy_spec(violated=False))
        assert report.region_statuses == [RegionStatus.UNKNOWN]
        assert not report.certified
        assert report.clean

    def test_agreement_with_exact_verifier(self, toy_network, plane_network):
        """No sampling verifier may report clean where SyReNN proves violated."""
        specs = [toy_spec(violated=True), toy_spec(violated=False)]
        plane_spec = VerificationSpec()
        plane_spec.add_plane(
            [[-1, -1], [1, -1], [1, 1], [-1, 1]], HPolytope.argmax_region(3, 0)
        )
        for network, spec in [
            (toy_network, specs[0]),
            (toy_network, specs[1]),
            (plane_network, plane_spec),
        ]:
            exact = SyrennVerifier().verify(network, spec)
            for sampler in (GridVerifier(resolution=32), RandomVerifier(512, seed=3)):
                sampled = sampler.verify(network, spec)
                for exact_status, sampled_status in zip(
                    exact.region_statuses, sampled.region_statuses
                ):
                    assert sampled_status is not RegionStatus.CERTIFIED
                    if exact_status is RegionStatus.VIOLATED:
                        assert sampled_status is RegionStatus.VIOLATED
                    else:
                        assert sampled_status is RegionStatus.UNKNOWN

    def test_counterexamples_sorted_and_capped(self, toy_network):
        verifier = GridVerifier(resolution=64, max_counterexamples_per_region=5)
        report = verifier.verify(toy_network, toy_spec(violated=True))
        margins = [c.margin for c in report.counterexamples]
        assert len(margins) == 5
        assert margins == sorted(margins, reverse=True)

    def test_box_sampling(self, plane_network, rng):
        spec = VerificationSpec()
        spec.add_box([-1, -1], [1, 1], HPolytope([[1e6, 0.0, 0.0]], [-1e9]))
        for verifier in (GridVerifier(resolution=5), RandomVerifier(64, seed=0)):
            report = verifier.verify(plane_network, spec)
            assert report.region_statuses == [RegionStatus.VIOLATED]
            assert report.points_checked > 0

    def test_grid_box_lattice_capped(self, rng):
        wide = Network([FullyConnectedLayer.from_shape(5, 2, rng)])
        spec = VerificationSpec()
        spec.add_box([0] * 5, [1] * 5, HPolytope([[1.0, 0.0]], [1e9]))
        verifier = GridVerifier(resolution=16, max_points_per_region=1000)
        report = verifier.verify(wide, spec)
        assert report.points_checked <= 1000

    def test_polygon_grid_has_no_duplicate_points(self):
        from repro.verify.sampling import _polygon_grid

        pentagon = np.array(
            [[0.0, 0.0], [2.0, 0.0], [3.0, 1.5], [1.0, 3.0], [-1.0, 1.5]]
        )
        points = _polygon_grid(pentagon, resolution=8)
        unique = np.unique(np.round(points, 9), axis=0)
        assert unique.shape[0] == points.shape[0]
        # Every polygon vertex is still sampled (worst margins sit at corners).
        for vertex in pentagon:
            assert np.any(np.all(np.isclose(points, vertex), axis=1))

    def test_random_verifier_reproducible(self, toy_network):
        reports = [
            RandomVerifier(num_samples=64, seed=42).verify(toy_network, toy_spec(True))
            for _ in range(2)
        ]
        first, second = (np.array([c.point for c in r.counterexamples]) for r in reports)
        np.testing.assert_array_equal(first, second)


class TestVerificationReport:
    def test_accounting_and_as_dict(self, toy_network):
        spec = VerificationSpec()
        spec.add_segment(LineSegment([-1.0], [2.0]), HPolytope([[1.0]], [0.5]))
        spec.add_segment(LineSegment([0.0], [2.0]), HPolytope([[1.0]], [0.5]))
        report = SyrennVerifier().verify(toy_network, spec)
        assert report.num_regions == 2
        assert report.num_certified + report.num_violated + report.num_unknown == 2
        summary = report.as_dict()
        assert summary["num_violated"] == 1
        assert summary["num_certified"] == 1
        assert summary["certified"] is False
        assert summary["points_checked"] == report.points_checked
