"""Tests for the perf-regression sentinel (benchmarks/sentinel.py).

The acceptance bar: the sentinel must *demonstrably* catch an injected
regression — a doctored telemetry document with a synthetic slowdown makes
``main()`` exit nonzero — while clean artifacts pass, new series never
fail, and every run (pass or fail) lands in the history JSONL.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import sentinel  # noqa: E402  - benchmarks/ is not a package


def service_document(
    *,
    speedup: float = 3.0,
    warm_p99_ms: float = 50.0,
    warm_mean_ms: float = 40.0,
    lp_sum: float = 0.2,
    lp_count: int = 10,
) -> dict:
    """A minimal BENCH_service.json with an embedded telemetry block."""
    return {
        "benchmark": "service",
        "warm_speedup": speedup,
        "warm": {"latency_p99_ms": warm_p99_ms, "latency_mean_ms": warm_mean_ms},
        "telemetry": {
            "metrics": {
                "repro_lp_solve_seconds": {
                    "kind": "histogram",
                    "bounds": [0.1, 1.0],
                    "series": [
                        {
                            "labels": {"backend": "scipy"},
                            "buckets": [lp_count, 0, 0],
                            "sum": lp_sum,
                            "count": lp_count,
                        }
                    ],
                }
            }
        },
    }


def incremental_document(
    *,
    round_seconds: float = 0.5,
    speedup: float = 2.0,
    backends: dict | None = None,
) -> dict:
    return {
        "benchmark": "incremental",
        "results": [
            {
                "incremental": {"mean_round_seconds": round_seconds},
                "round_speedup": speedup,
                "backends": backends or {},
            }
        ],
    }


def imagenet_document(*, results: list[dict] | None = None) -> dict:
    """A minimal BENCH_imagenet_scaling.json."""
    if results is None:
        results = [
            {"constraint_rows": 800, "round_seconds_mean": 0.2, "peak_rss_bytes": 2.0e8},
            {"constraint_rows": 4000, "round_seconds_mean": 1.1, "peak_rss_bytes": 2.6e8},
        ]
    return {"benchmark": "imagenet_scaling", "results": results}


def backend_entry(slug: str, round_seconds: float, *, available: bool = True) -> dict:
    """One per-backend portfolio entry as bench_incremental records it."""
    return {
        "slug": slug,
        "available": available,
        "warm_start_is_exact": True,
        "cold_mean_round_seconds": round_seconds * 2.0,
        "incremental_mean_round_seconds": round_seconds,
        "round_speedup": 2.0,
        "rounds": 5,
        "warm_started_rounds": 4,
        "total_seconds": 1.0,
    }


def write(path: Path, document: dict) -> str:
    path.write_text(json.dumps(document))
    return str(path)


class TestExtract:
    def test_service_series_and_directions(self):
        series = sentinel.extract(service_document())
        assert series["service_warm_speedup"] == {"value": 3.0, "direction": "higher"}
        assert series["service_warm_p99_ms"] == {"value": 50.0, "direction": "lower"}
        assert series["service_lp_solve_total_seconds"]["value"] == pytest.approx(0.2)
        assert series["service_lp_solve_mean_seconds"]["value"] == pytest.approx(0.02)

    def test_incremental_series(self):
        series = sentinel.extract(incremental_document())
        assert series["incremental_mean_round_seconds"]["value"] == 0.5
        assert series["incremental_round_speedup"] == {"value": 2.0, "direction": "higher"}

    def test_per_backend_round_cost_series(self):
        document = incremental_document(
            backends={
                "scipy": backend_entry("scipy", 0.2),
                "race:highs_native,scipy": backend_entry(
                    "race_highs_native_scipy", 0.3, available=False
                ),
            }
        )
        series = sentinel.extract(document)
        assert series["incremental_backend_scipy_round_seconds"] == {
            "value": 0.2,
            "direction": "lower",
        }
        # Degraded portfolio entries still grade — they measure the spec's
        # real cost (racing overhead included) in this environment.
        assert series["incremental_backend_race_highs_native_scipy_round_seconds"][
            "value"
        ] == pytest.approx(0.3)

    def test_per_backend_series_average_across_rations(self):
        document = incremental_document(
            backends={"scipy": backend_entry("scipy", 0.2)}
        )
        document["results"].append(
            {
                "incremental": {"mean_round_seconds": 0.5},
                "round_speedup": 2.0,
                "backends": {"scipy": backend_entry("scipy", 0.4)},
            }
        )
        series = sentinel.extract(document)
        assert series["incremental_backend_scipy_round_seconds"]["value"] == pytest.approx(0.3)

    def test_documents_without_backend_tables_extract_cleanly(self):
        document = incremental_document()
        series = sentinel.extract(document)
        assert not any(name.startswith("incremental_backend_") for name in series)

    def test_imagenet_grades_largest_workload_of_the_sweep(self):
        series = sentinel.extract(imagenet_document())
        assert series["imagenet_round_seconds"] == {"value": 1.1, "direction": "lower"}
        assert series["imagenet_peak_rss_bytes"] == {
            "value": 2.6e8,
            "direction": "lower",
        }

    def test_imagenet_empty_results_extract_cleanly(self):
        assert sentinel.extract(imagenet_document(results=[])) == {}

    def test_lp_histogram_joins_from_any_benchmark_kind(self):
        document = service_document()
        document["benchmark"] = "lp_scaling"
        assert "lp_scaling_lp_solve_mean_seconds" in sentinel.extract(document)

    def test_nan_and_infinity_are_dropped(self):
        document = service_document(speedup=float("nan"))
        document["warm"]["latency_p99_ms"] = float("inf")
        series = sentinel.extract(document)
        assert "service_warm_speedup" not in series
        assert "service_warm_p99_ms" not in series

    def test_document_without_telemetry_still_extracts_stats(self):
        document = service_document()
        del document["telemetry"]
        series = sentinel.extract(document)
        assert "service_warm_speedup" in series
        assert "service_lp_solve_total_seconds" not in series


class TestCompare:
    BASELINE = {
        "tolerance": 1.0,
        "series": {
            "warm_p99_ms": {"value": 50.0, "direction": "lower", "tolerance": 1.0},
            "speedup": {"value": 3.0, "direction": "higher", "tolerance": 0.5},
        },
    }

    def test_within_tolerance_passes(self):
        measured = {
            "warm_p99_ms": {"value": 80.0, "direction": "lower"},
            "speedup": {"value": 2.5, "direction": "higher"},
        }
        rows, regressions = sentinel.compare(measured, self.BASELINE)
        assert regressions == []
        assert all(row["verdict"] == "ok" for row in rows)

    def test_lower_is_better_regression(self):
        measured = {"warm_p99_ms": {"value": 101.0, "direction": "lower"}}
        _, regressions = sentinel.compare(measured, self.BASELINE)
        assert len(regressions) == 1 and "warm_p99_ms" in regressions[0]

    def test_higher_is_better_regression(self):
        measured = {"speedup": {"value": 1.9, "direction": "higher"}}
        _, regressions = sentinel.compare(measured, self.BASELINE)
        assert len(regressions) == 1 and "speedup" in regressions[0]

    def test_improvements_never_fail(self):
        measured = {
            "warm_p99_ms": {"value": 1.0, "direction": "lower"},
            "speedup": {"value": 300.0, "direction": "higher"},
        }
        _, regressions = sentinel.compare(measured, self.BASELINE)
        assert regressions == []

    def test_new_series_reported_but_never_fail(self):
        measured = {"brand_new_ms": {"value": 1e9, "direction": "lower"}}
        rows, regressions = sentinel.compare(measured, self.BASELINE)
        assert regressions == []
        verdicts = {row["series"]: row["verdict"] for row in rows}
        assert verdicts["brand_new_ms"] == "new"
        # ... and a silently-dropped benchmark is visible in the rows.
        assert verdicts["warm_p99_ms"] == "missing-from-artifacts"
        assert verdicts["speedup"] == "missing-from-artifacts"


class TestMainEndToEnd:
    def grade(self, tmp_path: Path, documents: list[dict], *extra: str) -> int:
        artifacts = [
            write(tmp_path / f"BENCH_{index}.json", document)
            for index, document in enumerate(documents)
        ]
        return sentinel.main(
            [
                *artifacts,
                "--baseline", str(tmp_path / "baseline.json"),
                "--history", str(tmp_path / "history.jsonl"),
                *extra,
            ]
        )

    def test_write_baseline_then_clean_artifacts_pass(self, tmp_path):
        documents = [service_document(), incremental_document()]
        assert self.grade(tmp_path, documents, "--write-baseline") == 0
        baseline = json.loads((tmp_path / "baseline.json").read_text())
        assert "service_warm_p99_ms" in baseline["series"]
        assert self.grade(tmp_path, documents) == 0

    def test_injected_slowdown_exits_nonzero(self, tmp_path):
        assert self.grade(tmp_path, [service_document()], "--write-baseline") == 0
        # A synthetic 200x latency cliff plus a collapsed warm-cache
        # speedup: far past any noise tolerance.
        doctored = service_document(
            speedup=3.0 / 200.0,
            warm_p99_ms=50.0 * 200.0,
            warm_mean_ms=40.0 * 200.0,
            lp_sum=0.2 * 200.0,
        )
        assert self.grade(tmp_path, [doctored]) == 1
        history = [
            json.loads(line)
            for line in (tmp_path / "history.jsonl").read_text().splitlines()
        ]
        assert [record["ok"] for record in history] == [False]
        assert any("service_warm_p99_ms" in r for r in history[0]["regressions"])

    def test_history_accumulates_run_over_run(self, tmp_path):
        assert self.grade(tmp_path, [service_document()], "--write-baseline") == 0
        assert self.grade(tmp_path, [service_document()]) == 0
        assert self.grade(tmp_path, [service_document(warm_p99_ms=50.0 * 500)]) == 1
        history = [
            json.loads(line)
            for line in (tmp_path / "history.jsonl").read_text().splitlines()
        ]
        assert [record["ok"] for record in history] == [True, False]
        assert history[0]["values"]["service_warm_p99_ms"] == 50.0

    def test_tolerance_override_widens_every_series(self, tmp_path):
        assert self.grade(tmp_path, [service_document()], "--write-baseline") == 0
        doctored = [service_document(warm_p99_ms=50.0 * 200.0)]
        assert self.grade(tmp_path, doctored) == 1
        assert self.grade(tmp_path, doctored, "--tolerance", "1000") == 0

    def test_no_series_and_unreadable_artifacts_exit_2(self, tmp_path):
        assert sentinel.main(
            [str(tmp_path / "missing.json"), "--baseline", str(tmp_path / "b.json")]
        ) == 2
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        assert sentinel.main([str(broken), "--baseline", str(tmp_path / "b.json")]) == 2

    def test_grading_without_a_baseline_exits_2(self, tmp_path):
        artifact = write(tmp_path / "BENCH_service.json", service_document())
        assert sentinel.main(
            [artifact, "--baseline", str(tmp_path / "nope.json"),
             "--history", str(tmp_path / "history.jsonl")]
        ) == 2
