"""Tests for repro.lp.expression."""

from __future__ import annotations

import numpy as np
from hypothesis import given, strategies as st

from repro.lp.expression import LinearExpression


class TestLinearExpressionBasics:
    def test_variable_constructor(self):
        expr = LinearExpression.variable(3, 2.0)
        assert expr.coefficient(3) == 2.0
        assert expr.coefficient(0) == 0.0
        assert expr.constant == 0.0

    def test_zero_coefficients_dropped(self):
        expr = LinearExpression({0: 0.0, 1: 2.0})
        assert 0 not in expr.coefficients
        assert expr.coefficients == {1: 2.0}

    def test_addition_of_expressions(self):
        left = LinearExpression({0: 1.0, 1: 2.0}, constant=1.0)
        right = LinearExpression({1: -2.0, 2: 3.0}, constant=2.0)
        total = left + right
        assert total.coefficient(0) == 1.0
        assert total.coefficient(1) == 0.0
        assert 1 not in total.coefficients  # cancelled term removed
        assert total.coefficient(2) == 3.0
        assert total.constant == 3.0

    def test_addition_of_scalar(self):
        expr = LinearExpression({0: 1.0}) + 5.0
        assert expr.constant == 5.0
        expr = 5.0 + LinearExpression({0: 1.0})
        assert expr.constant == 5.0

    def test_subtraction(self):
        expr = LinearExpression({0: 2.0}, 1.0) - LinearExpression({0: 1.0}, 4.0)
        assert expr.coefficient(0) == 1.0
        assert expr.constant == -3.0
        reversed_expr = 1.0 - LinearExpression({0: 1.0})
        assert reversed_expr.coefficient(0) == -1.0
        assert reversed_expr.constant == 1.0

    def test_scalar_multiplication(self):
        expr = LinearExpression({0: 2.0, 1: -1.0}, 3.0) * 2.0
        assert expr.coefficient(0) == 4.0
        assert expr.coefficient(1) == -2.0
        assert expr.constant == 6.0

    def test_evaluate(self):
        expr = LinearExpression({0: 2.0, 2: -1.0}, constant=0.5)
        value = expr.evaluate(np.array([1.0, 99.0, 3.0]))
        assert value == 2.0 - 3.0 + 0.5

    def test_repr_contains_terms(self):
        text = repr(LinearExpression({1: 2.0}, constant=1.0))
        assert "x1" in text


class TestLinearExpressionProperties:
    @given(
        coefficients=st.dictionaries(
            st.integers(0, 5), st.floats(-10, 10, allow_nan=False), max_size=5
        ),
        constant=st.floats(-10, 10, allow_nan=False),
        scale=st.floats(-5, 5, allow_nan=False),
    )
    def test_scaling_matches_evaluation(self, coefficients, constant, scale):
        expr = LinearExpression(coefficients, constant)
        point = np.linspace(-1.0, 1.0, 6)
        scaled = expr * scale
        assert np.isclose(scaled.evaluate(point), scale * expr.evaluate(point), atol=1e-9)

    @given(
        first=st.dictionaries(st.integers(0, 5), st.floats(-10, 10, allow_nan=False), max_size=5),
        second=st.dictionaries(st.integers(0, 5), st.floats(-10, 10, allow_nan=False), max_size=5),
    )
    def test_addition_matches_evaluation(self, first, second):
        point = np.linspace(-2.0, 2.0, 6)
        left, right = LinearExpression(first), LinearExpression(second)
        assert np.isclose(
            (left + right).evaluate(point),
            left.evaluate(point) + right.evaluate(point),
            atol=1e-9,
        )

    @given(
        coefficients=st.dictionaries(
            st.integers(0, 5), st.floats(-10, 10, allow_nan=False), max_size=5
        )
    )
    def test_negation_roundtrip(self, coefficients):
        expr = LinearExpression(coefficients, 1.0)
        double_negated = -(-expr)
        point = np.linspace(-1.0, 1.0, 6)
        assert np.isclose(double_negated.evaluate(point), expr.evaluate(point), atol=1e-12)
