"""Tests for the convex-geometry substrate (segments, polygons, H-polytopes)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ShapeError, SpecificationError
from repro.polytope.hpolytope import HPolytope
from repro.polytope.polygon import (
    VertexPolygon,
    clip_by_function,
    convex_hull,
    polygon_area,
    split_by_function,
)
from repro.polytope.segment import LineSegment


class TestLineSegment:
    def test_point_at_endpoints(self):
        segment = LineSegment([0.0, 0.0], [2.0, 4.0])
        np.testing.assert_allclose(segment.point_at(0.0), [0.0, 0.0])
        np.testing.assert_allclose(segment.point_at(1.0), [2.0, 4.0])
        np.testing.assert_allclose(segment.midpoint(), [1.0, 2.0])

    def test_points_at_batch(self):
        segment = LineSegment([0.0], [1.0])
        points = segment.points_at(np.array([0.0, 0.25, 1.0]))
        np.testing.assert_allclose(points.ravel(), [0.0, 0.25, 1.0])

    def test_points_at_rejects_matrix(self):
        with pytest.raises(ShapeError):
            LineSegment([0.0], [1.0]).points_at(np.zeros((2, 2)))

    def test_length_and_direction(self):
        segment = LineSegment([0.0, 0.0], [3.0, 4.0])
        assert segment.length == pytest.approx(5.0)
        np.testing.assert_allclose(segment.direction, [3.0, 4.0])
        assert segment.dimension == 2

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            LineSegment([0.0], [1.0, 2.0])

    def test_sample_stays_on_segment(self, rng):
        segment = LineSegment([0.0, 1.0], [2.0, 3.0])
        samples = segment.sample(50, rng)
        # Every sample must satisfy the segment's parametric equation.
        ts = (samples[:, 0] - 0.0) / 2.0
        np.testing.assert_allclose(samples[:, 1], 1.0 + 2.0 * ts, atol=1e-12)
        assert np.all(ts >= 0.0) and np.all(ts <= 1.0)


class TestPolygonPrimitives:
    def test_polygon_area_square(self):
        square = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
        assert polygon_area(square) == pytest.approx(1.0)

    def test_polygon_area_degenerate(self):
        assert polygon_area(np.array([[0.0, 0.0], [1.0, 1.0]])) == 0.0

    def test_polygon_area_requires_2d(self):
        with pytest.raises(ShapeError):
            polygon_area(np.zeros((3, 3)))

    def test_convex_hull_of_square_with_interior_point(self):
        points = np.array([[0, 0], [1, 0], [1, 1], [0, 1], [0.5, 0.5]], dtype=float)
        hull = convex_hull(points)
        assert hull.shape[0] == 4
        assert polygon_area(hull) == pytest.approx(1.0)

    def test_convex_hull_collinear(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        hull = convex_hull(points)
        assert hull.shape[0] <= 3

    def test_clip_square_by_halfplane(self):
        square = np.array([[0.0, 0.0], [2.0, 0.0], [2.0, 2.0], [0.0, 2.0]])
        # Keep x <= 1, i.e. the function 1 - x >= 0.
        values = 1.0 - square[:, 0]
        clipped = clip_by_function(square, values, keep_positive=True)
        assert polygon_area(clipped[:, :2]) == pytest.approx(2.0)

    def test_split_preserves_total_area(self):
        square = np.array([[0.0, 0.0], [2.0, 0.0], [2.0, 2.0], [0.0, 2.0]])
        values = square[:, 0] - 0.75
        positive, negative = split_by_function(square, values)
        total = polygon_area(positive[:, :2]) + polygon_area(negative[:, :2])
        assert total == pytest.approx(4.0)

    def test_clip_no_overlap_returns_empty(self):
        triangle = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        values = np.full(3, -1.0)
        clipped = clip_by_function(triangle, values, keep_positive=True)
        assert clipped.shape[0] == 0

    def test_clip_requires_matching_values(self):
        with pytest.raises(ShapeError):
            clip_by_function(np.zeros((3, 2)), np.zeros(2), keep_positive=True)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        offset=st.floats(-0.9, 0.9),
    )
    def test_split_area_conservation_property(self, seed, offset):
        rng = np.random.default_rng(seed)
        # A random convex polygon (hull of random points in the unit square).
        hull = convex_hull(rng.uniform(0.0, 1.0, size=(8, 2)))
        if hull.shape[0] < 3:
            return
        values = hull[:, 0] - (0.5 + offset / 2.0)
        positive, negative = split_by_function(hull, values)
        total = 0.0
        for part in (positive, negative):
            if part.shape[0] >= 3:
                total += polygon_area(part[:, :2])
        assert total == pytest.approx(polygon_area(hull), rel=1e-6, abs=1e-9)


class TestVertexPolygon:
    def make_square(self) -> VertexPolygon:
        plane = np.array([[0.0, 0.0], [2.0, 0.0], [2.0, 2.0], [0.0, 2.0]])
        attributes = np.hstack([plane, plane.sum(axis=1, keepdims=True)])
        return VertexPolygon(plane, attributes)

    def test_properties(self):
        polygon = self.make_square()
        assert polygon.num_vertices == 4
        assert polygon.area == pytest.approx(4.0)
        assert not polygon.is_degenerate()
        np.testing.assert_allclose(polygon.centroid_plane_point(), [1.0, 1.0])
        np.testing.assert_allclose(polygon.centroid_attributes(), [1.0, 1.0, 2.0])

    def test_split_interpolates_attributes(self):
        polygon = self.make_square()
        # Split on the function x - 1 (affine in the plane coordinates).
        function_values = polygon.plane_points[:, 0] - 1.0
        positive, negative = polygon.split(function_values)
        assert positive is not None and negative is not None
        assert positive.area + negative.area == pytest.approx(4.0)
        # The attribute column that stored x + y must remain equal to x + y
        # at the newly created crossing vertices.
        for part in (positive, negative):
            np.testing.assert_allclose(
                part.attributes[:, 2], part.attributes[:, 0] + part.attributes[:, 1], atol=1e-9
            )

    def test_split_entirely_on_one_side(self):
        polygon = self.make_square()
        positive, negative = polygon.split(np.full(4, 1.0))
        assert positive is not None and negative is None

    def test_degenerate_split_dropped(self):
        polygon = self.make_square()
        # A function that is zero on one edge and positive elsewhere produces
        # a degenerate "negative" piece which must be dropped.
        function_values = polygon.plane_points[:, 0]
        positive, negative = polygon.split(function_values)
        assert positive is not None
        assert negative is None

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            VertexPolygon(np.zeros((3, 3)), np.zeros((3, 1)))
        with pytest.raises(ShapeError):
            VertexPolygon(np.zeros((3, 2)), np.zeros((2, 1)))


class TestHPolytope:
    def test_interval_contains(self):
        box = HPolytope.from_interval(2, 0, -1.0, 1.0)
        assert box.contains(np.array([0.5, 100.0]))
        assert not box.contains(np.array([2.0, 0.0]))

    def test_interval_validation(self):
        with pytest.raises(SpecificationError):
            HPolytope.from_interval(2, 5, 0.0, 1.0)
        with pytest.raises(SpecificationError):
            HPolytope.from_interval(2, 0, 1.0, 0.0)

    def test_argmax_region(self):
        region = HPolytope.argmax_region(3, winner=1, margin=0.1)
        assert region.num_constraints == 2
        assert region.contains(np.array([0.0, 1.0, 0.5]))
        assert not region.contains(np.array([1.0, 0.5, 0.0]))
        # Margin makes near-ties fail.
        assert not region.contains(np.array([0.95, 1.0, 0.0]))

    def test_argmax_region_validation(self):
        with pytest.raises(SpecificationError):
            HPolytope.argmax_region(3, winner=3)
        with pytest.raises(SpecificationError):
            HPolytope.argmax_region(3, winner=0, margin=-1.0)

    def test_violation_measure(self):
        box = HPolytope.from_interval(1, 0, 0.0, 1.0)
        assert box.violation(np.array([2.0])) == pytest.approx(1.0)
        assert box.violation(np.array([0.5])) <= 0.0

    def test_intersect(self):
        first = HPolytope.from_interval(2, 0, 0.0, 1.0)
        second = HPolytope.from_interval(2, 1, 0.0, 1.0)
        both = first.intersect(second)
        assert both.num_constraints == 4
        assert both.contains(np.array([0.5, 0.5]))
        assert not both.contains(np.array([0.5, 2.0]))

    def test_intersect_dimension_mismatch(self):
        with pytest.raises(SpecificationError):
            HPolytope.from_interval(2, 0, 0.0, 1.0).intersect(
                HPolytope.from_interval(3, 0, 0.0, 1.0)
            )

    def test_contains_batch_matches_scalar(self, rng):
        region = HPolytope.argmax_region(4, winner=2, margin=0.05)
        points = rng.normal(size=(50, 4))
        mask = region.contains_batch(points)
        assert mask.shape == (50,)
        for point, flag in zip(points, mask):
            assert flag == region.contains(point)

    def test_violation_batch_matches_scalar(self, rng):
        box = HPolytope.from_interval(3, 1, -0.5, 0.5)
        points = rng.normal(size=(40, 3))
        margins = box.violation_batch(points)
        for point, margin in zip(points, margins):
            assert margin == pytest.approx(box.violation(point))

    def test_batch_shape_validation(self):
        box = HPolytope.from_interval(2, 0, 0.0, 1.0)
        with pytest.raises(ShapeError):
            box.contains_batch(np.zeros((3, 5)))
        with pytest.raises(ShapeError):
            box.violation_batch(np.zeros((3, 5)))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 5000), winner=st.integers(0, 4))
    def test_argmax_region_matches_argmax(self, seed, winner):
        rng = np.random.default_rng(seed)
        region = HPolytope.argmax_region(5, winner)
        outputs = rng.normal(size=5)
        assert region.contains(outputs, tolerance=0.0) == (int(np.argmax(outputs)) == winner) or (
            # Ties are the only disagreement allowed.
            np.sum(outputs == outputs.max()) > 1
        )


def _reference_clip(vertices, function_values, keep_positive):
    """The pre-vectorization per-vertex clipping loop, kept as an oracle."""
    from repro.polytope.polygon import CLIP_TOLERANCE

    vertices = np.asarray(vertices, dtype=np.float64)
    values = np.asarray(function_values, dtype=np.float64)
    if not keep_positive:
        values = -values
    kept_rows = []
    count = vertices.shape[0]
    for index in range(count):
        current, nxt = vertices[index], vertices[(index + 1) % count]
        current_value, next_value = values[index], values[(index + 1) % count]
        if current_value >= -CLIP_TOLERANCE:
            kept_rows.append(current)
        crosses = (current_value > CLIP_TOLERANCE and next_value < -CLIP_TOLERANCE) or (
            current_value < -CLIP_TOLERANCE and next_value > CLIP_TOLERANCE
        )
        if crosses:
            ratio = current_value / (current_value - next_value)
            kept_rows.append(current + ratio * (nxt - current))
    if not kept_rows:
        return np.zeros((0, vertices.shape[1]))
    return np.array(kept_rows)


class TestVectorizedClipping:
    """The vectorized edge walk must match the reference loop bit for bit."""

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000), keep_positive=st.booleans())
    def test_matches_reference_loop(self, seed, keep_positive):
        rng = np.random.default_rng(seed)
        count = int(rng.integers(3, 9))
        vertices = rng.normal(size=(count, 4))
        values = rng.normal(size=count)
        # Exercise on-boundary vertices too.
        values[rng.random(count) < 0.2] = 0.0
        fast = clip_by_function(vertices, values, keep_positive)
        slow = _reference_clip(vertices, values, keep_positive)
        assert fast.shape == slow.shape
        assert fast.tobytes() == slow.tobytes()

    def test_all_inside_and_all_outside(self):
        square = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
        inside = clip_by_function(square, np.ones(4), keep_positive=True)
        np.testing.assert_array_equal(inside, square)
        outside = clip_by_function(square, np.ones(4), keep_positive=False)
        assert outside.shape == (0, 2)

    def test_empty_input(self):
        empty = clip_by_function(np.zeros((0, 2)), np.zeros(0), keep_positive=True)
        assert empty.shape == (0, 2)


class TestSubdivisionHelpers:
    def test_segment_subdivide_matches_points_at(self):
        segment = LineSegment([0.0, -2.0], [1.0, 2.0])
        pieces = segment.subdivide(4)
        boundaries = segment.points_at(np.linspace(0.0, 1.0, 5))
        for index, piece in enumerate(pieces):
            np.testing.assert_array_equal(piece.start, boundaries[index])
            np.testing.assert_array_equal(piece.end, boundaries[index + 1])
        with pytest.raises(ValueError):
            segment.subdivide(0)

    def test_fan_wedges_partition_area_and_orientation(self):
        from repro.polytope.polygon import fan_wedges

        hexagon = np.array(
            [[np.cos(a), np.sin(a)] for a in np.linspace(0, 2 * np.pi, 7)[:-1]]
        )
        wedges = fan_wedges(hexagon, 3)
        assert len(wedges) == 3
        total = sum(polygon_area(wedge) for wedge in wedges)
        assert total == pytest.approx(polygon_area(hexagon))
        for wedge in wedges:
            np.testing.assert_array_equal(wedge[0], hexagon[0])
        with pytest.raises(ValueError):
            fan_wedges(hexagon, 0)
        with pytest.raises(ShapeError):
            fan_wedges(hexagon[:2], 2)
