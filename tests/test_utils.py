"""Tests for repro.utils (rng, validation, timing, serialization)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.serialization import (
    config_digest,
    default_cache_dir,
    load_arrays,
    save_arrays,
)
from repro.utils.timing import Stopwatch, TimeBudget
from repro.utils.validation import (
    check_finite,
    check_matrix,
    check_positive_int,
    check_probability,
    check_vector,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        assert ensure_rng(7).integers(0, 1000) == ensure_rng(7).integers(0, 1000)

    def test_different_seeds_differ(self):
        draws_a = ensure_rng(1).integers(0, 2**31, size=8)
        draws_b = ensure_rng(2).integers(0, 2**31, size=8)
        assert not np.array_equal(draws_a, draws_b)

    def test_generator_passed_through(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")

    def test_spawn_rngs_are_independent(self):
        children = spawn_rngs(ensure_rng(0), 3)
        assert len(children) == 3
        values = [child.integers(0, 2**31) for child in children]
        assert len(set(values)) > 1

    def test_spawn_rngs_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(ensure_rng(0), -1)


class TestValidation:
    def test_check_vector_accepts_list(self):
        result = check_vector([1, 2, 3])
        assert result.dtype == np.float64
        assert result.shape == (3,)

    def test_check_vector_rejects_matrix(self):
        with pytest.raises(ShapeError):
            check_vector(np.zeros((2, 2)))

    def test_check_vector_size_mismatch(self):
        with pytest.raises(ShapeError):
            check_vector([1.0, 2.0], size=3)

    def test_check_matrix_accepts_nested_list(self):
        result = check_matrix([[1, 2], [3, 4]])
        assert result.shape == (2, 2)

    def test_check_matrix_shape_enforced(self):
        with pytest.raises(ShapeError):
            check_matrix(np.zeros((2, 3)), rows=3)
        with pytest.raises(ShapeError):
            check_matrix(np.zeros((2, 3)), cols=2)

    def test_check_matrix_rejects_vector(self):
        with pytest.raises(ShapeError):
            check_matrix([1.0, 2.0])

    def test_check_finite(self):
        with pytest.raises(ShapeError):
            check_finite(np.array([1.0, np.nan]))
        array = np.array([1.0, 2.0])
        assert check_finite(array) is array

    def test_check_positive_int(self):
        assert check_positive_int(5) == 5
        with pytest.raises(ValueError):
            check_positive_int(0)
        with pytest.raises(ValueError):
            check_positive_int(2.5)

    def test_check_probability(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5)


class TestStopwatch:
    def test_phases_accumulate(self):
        watch = Stopwatch()
        with watch.phase("a"):
            time.sleep(0.01)
        with watch.phase("a"):
            time.sleep(0.01)
        with watch.phase("b"):
            pass
        totals = watch.totals()
        assert totals["a"] >= 0.02
        assert "b" in totals

    def test_add_and_total(self):
        watch = Stopwatch()
        watch.add("x", 1.5)
        watch.add("x", 0.5)
        assert watch.total("x") == pytest.approx(2.0)
        assert watch.total("missing") == 0.0

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            Stopwatch().add("x", -1.0)

    def test_other_is_nonnegative(self):
        watch = Stopwatch()
        watch.add("x", 1e9)  # more than elapsed
        assert watch.other() == 0.0

    def test_other_accounts_unattributed_time(self):
        watch = Stopwatch()
        with watch.phase("a"):
            time.sleep(0.01)
        time.sleep(0.02)  # unattributed
        unattributed = watch.other()
        assert unattributed >= 0.015
        # other() is elapsed-minus-phases, so it can never exceed elapsed().
        assert unattributed <= watch.elapsed()

    def test_phases_record_cpu_time(self):
        watch = Stopwatch()
        with watch.phase("spin"):
            total = 0
            for value in range(200_000):
                total += value
        with watch.phase("sleep"):
            time.sleep(0.02)
        cpu = watch.cpu_totals()
        assert cpu["spin"] > 0.0
        assert watch.cpu_total("spin") == cpu["spin"]
        assert watch.cpu_total("missing") == 0.0
        # Sleeping burns wall-clock but (almost) no CPU.
        assert watch.total("sleep") >= 0.02
        assert cpu["sleep"] < watch.total("sleep")

    def test_add_cpu_seconds_channel(self):
        watch = Stopwatch()
        watch.add("x", 1.0, cpu_seconds=0.75)
        watch.add("x", 1.0, cpu_seconds=0.25)
        assert watch.cpu_total("x") == pytest.approx(1.0)
        with pytest.raises(ValueError):
            watch.add("x", 1.0, cpu_seconds=-0.5)

    def test_wall_cpu_now_returns_monotonic_pair(self):
        from repro.utils.timing import wall_cpu_now

        wall_a, cpu_a = wall_cpu_now()
        wall_b, cpu_b = wall_cpu_now()
        assert wall_b >= wall_a
        assert cpu_b >= cpu_a


class TestTimeBudget:
    def test_unlimited_budget_never_exhausts(self):
        budget = TimeBudget(None)
        assert not budget.exhausted()
        assert budget.remaining() is None

    def test_zero_budget_exhausts_immediately(self):
        budget = TimeBudget(0.0)
        assert budget.exhausted()
        assert budget.remaining() == 0.0

    def test_budget_exhausts_after_elapsing(self):
        budget = TimeBudget(0.02)
        assert not budget.exhausted()
        time.sleep(0.03)
        assert budget.exhausted()
        assert budget.remaining() == 0.0

    def test_remaining_decreases_monotonically(self):
        budget = TimeBudget(10.0)
        first = budget.remaining()
        time.sleep(0.01)
        second = budget.remaining()
        assert second < first <= 10.0


class TestSerialization:
    def test_config_digest_stable_and_order_independent(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})

    def test_config_digest_differs(self):
        assert config_digest({"a": 1}) != config_digest({"a": 2})

    def test_save_and_load_roundtrip(self, tmp_path):
        arrays = {"w": np.arange(6.0).reshape(2, 3), "b": np.zeros(3)}
        path = tmp_path / "sub" / "arrays.npz"
        save_arrays(path, arrays)
        loaded = load_arrays(path)
        assert set(loaded) == {"w", "b"}
        np.testing.assert_array_equal(loaded["w"], arrays["w"])

    def test_roundtrip_preserves_dtype_and_shape(self, tmp_path):
        arrays = {"ints": np.arange(4), "floats": np.linspace(0, 1, 5)}
        path = tmp_path / "arrays.npz"
        save_arrays(path, arrays)
        loaded = load_arrays(path)
        assert loaded["ints"].dtype == arrays["ints"].dtype
        assert loaded["floats"].shape == (5,)

    def test_config_digest_handles_non_json_values(self):
        # Paths and tuples go through the default=str fallback deterministically.
        from pathlib import Path

        first = config_digest({"path": Path("/tmp/x"), "size": (3, 4)})
        second = config_digest({"size": (3, 4), "path": Path("/tmp/x")})
        assert first == second
        assert len(first) == 16

    def test_default_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom-cache"))
        assert default_cache_dir() == tmp_path / "custom-cache"

    def test_default_cache_dir_without_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        path = default_cache_dir()
        assert path.name == "repro-prdnn"
        assert path.is_absolute()

    def test_cache_dir_override_reaches_model_zoo(self, monkeypatch, tmp_path):
        # The driver checkpoints and the zoo cache must both respect the
        # override so CI sandboxes never write to $HOME.
        from repro.models.zoo import ModelZoo

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "zoo"))
        zoo = ModelZoo()
        path = zoo._cache_path("unit", {"a": 1})
        assert path.parent == tmp_path / "zoo"


class TestNetworkSerialization:
    def test_encode_decode_round_trip(self, toy_network):
        from repro.utils.serialization import decode_network, encode_network

        restored = decode_network(encode_network(toy_network))
        points = np.linspace(-2.0, 2.0, 7)[:, None]
        np.testing.assert_array_equal(
            restored.compute(points), toy_network.compute(points)
        )

    def test_fingerprint_stable_across_copies(self, toy_network):
        from repro.utils.serialization import network_fingerprint

        assert network_fingerprint(toy_network) == network_fingerprint(
            toy_network.copy()
        )

    def test_fingerprint_sees_parameter_free_architecture(self, rng):
        """Same weights, different activation layer → different fingerprint."""
        from repro.nn.activations import HardTanhLayer, LeakyReLULayer, ReLULayer
        from repro.nn.linear import FullyConnectedLayer
        from repro.nn.network import Network
        from repro.utils.serialization import network_fingerprint

        first = FullyConnectedLayer.from_shape(2, 4, rng)
        second = FullyConnectedLayer.from_shape(4, 2, rng)

        def with_activation(activation):
            return Network([first.copy(), activation, second.copy()])

        relu = network_fingerprint(with_activation(ReLULayer(4)))
        hardtanh = network_fingerprint(with_activation(HardTanhLayer(4)))
        assert relu != hardtanh
        # Scalar layer configuration matters too (LeakyReLU slope).
        gentle = network_fingerprint(with_activation(LeakyReLULayer(4, 0.01)))
        steep = network_fingerprint(with_activation(LeakyReLULayer(4, 0.5)))
        assert gentle != steep

    def test_fingerprint_sees_static_layer_array_state(self, rng):
        """Same weights, different NormalizeLayer stats → different fingerprint."""
        from repro.nn.linear import FullyConnectedLayer
        from repro.nn.network import Network
        from repro.nn.reshape import NormalizeLayer
        from repro.utils.serialization import network_fingerprint

        dense = FullyConnectedLayer.from_shape(2, 3, rng)

        def with_normalization(means, stds):
            return Network([NormalizeLayer(means, stds), dense.copy()])

        identity = network_fingerprint(with_normalization([0.0, 0.0], [1.0, 1.0]))
        shifted = network_fingerprint(with_normalization([5.0, -3.0], [2.0, 7.0]))
        assert identity != shifted

    def test_fingerprint_covers_ddnn_channels(self, toy_network):
        from repro.core.ddnn import DecoupledNetwork
        from repro.utils.serialization import network_fingerprint

        ddnn = DecoupledNetwork.from_network(toy_network)
        base = network_fingerprint(ddnn)
        edited = ddnn.copy()
        layer_index = edited.repairable_layer_indices()[0]
        edited.apply_parameter_delta(
            layer_index,
            np.full_like(edited.value.layers[layer_index].get_parameters(), 0.25),
        )
        assert network_fingerprint(edited) != base


class TestDeriveSeeds:
    def test_pure_function_of_root_stream_index(self):
        from repro.utils.rng import derive_seeds

        assert derive_seeds(7, 3) == derive_seeds(7, 3)
        assert derive_seeds(7, 3) != derive_seeds(8, 3)
        assert derive_seeds(7, 3, stream=2) != derive_seeds(7, 3, stream=1)
        assert len(set(derive_seeds(7, 100))) == 100
        with pytest.raises(ValueError):
            derive_seeds(7, -1)
