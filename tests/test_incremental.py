"""Tests for the incremental CEGIS infrastructure.

Three layers of pinning:

* a **property-based oracle** (hypothesis) for the paper's partition-
  invariance claim — value-channel point repair never changes the
  activation network's linear-region geometry, which is what makes the
  value-only re-verification fast path sound by construction;
* a **differential matrix** (hls4ml-style ``parametrize`` over backend ×
  sparse × warm-start × workers) asserting incremental driver runs
  reproduce cold runs on the strengthened ACAS φ8 spec — byte-identically
  whenever the backend's warm start is exact;
* unit tests for the new pieces: :class:`LPSession` append/solve,
  :class:`WarmStart` handling in both backends, the engine's
  ``evaluate_regions`` job, and the driver's incremental bookkeeping.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.ddnn import DecoupledNetwork
from repro.core.point_repair import IncrementalPointRepairSession, point_repair
from repro.core.specs import PointRepairSpec
from repro.datasets.acas import phi8_property
from repro.driver import RepairDriver
from repro.engine import ShardedSyrennEngine
from repro.engine.jobs import chunk_spans
from repro.exceptions import EngineError, LPError, RepairError
from repro.experiments.task3_acas import Task3Setup, strengthened_verification_spec
from repro.lp.backends import get_backend
from repro.lp.model import LPModel, WarmStart
from repro.lp.norms import add_norm_objective
from repro.lp.status import LPStatus
from repro.models.acas_models import build_acas_network
from repro.polytope.segment import LineSegment
from repro.syrenn.line import transform_line
from repro.syrenn.plane import transform_plane
from repro.syrenn.regions import geometry_digest
from repro.utils.rng import ensure_rng
from repro.utils.serialization import network_fingerprint
from repro.verify import SyrennVerifier
from tests.conftest import make_random_relu_network


@pytest.fixture(scope="module")
def acas_phi8():
    """A small untrained ACAS advisory network plus the strengthened φ8 spec."""
    seed_rng = ensure_rng(7)
    network = build_acas_network(hidden_size=8, hidden_layers=2, seed=7)
    safety_property = phi8_property()
    slices = [safety_property.random_slice(seed_rng) for _ in range(3)]
    empty = np.zeros((0, 5))
    setup = Task3Setup(network, safety_property, slices, empty, empty, 0)
    return network, strengthened_verification_spec(network, setup)


def value_parameters(report) -> list[bytes]:
    return [
        report.network.value.layers[index].get_parameters().tobytes()
        for index in report.network.repairable_layer_indices()
    ]


def assert_reports_identical(first, second) -> None:
    assert first.region_statuses == second.region_statuses
    assert first.region_margins == second.region_margins
    assert first.points_checked == second.points_checked
    assert first.linear_regions_checked == second.linear_regions_checked
    assert len(first.counterexamples) == len(second.counterexamples)
    for a, b in zip(first.counterexamples, second.counterexamples):
        assert a.point.tobytes() == b.point.tobytes()
        assert a.margin == b.margin
        assert a.region_index == b.region_index
        assert a.resolved_activation_point().tobytes() == (
            b.resolved_activation_point().tobytes()
        )


class TestPartitionInvariance:
    """The paper's Theorem 4.6, pinned as a property-based oracle.

    Value-channel repair must leave the activation network — and therefore
    every linear-region boundary — untouched, byte for byte.  This is the
    soundness argument of the value-only re-verification fast path: if these
    digests could move, re-evaluating cached vertex sets would be wrong.
    """

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_geometry_digests_unchanged_by_point_repair(self, seed):
        rng = ensure_rng(seed)
        network = make_random_relu_network(rng, (2, 8, 6, 3))
        ddnn = DecoupledNetwork.from_network(network)
        segment = LineSegment(rng.uniform(-1, 0, 2), rng.uniform(0.5, 1.5, 2))
        square = np.array([[-1.0, -1.0], [1.0, -1.0], [1.0, 1.0], [-1.0, 1.0]])

        def digests(ddnn_under_test) -> tuple:
            activation = ddnn_under_test.activation
            line = transform_line(activation, segment)
            plane = transform_plane(activation, square)
            return (
                network_fingerprint(activation),
                geometry_digest(segment),
                tuple(geometry_digest(region.vertices) for region in line.regions),
                tuple(
                    geometry_digest(region.input_vertices) for region in plane.regions
                ),
            )

        before = digests(ddnn)
        points = rng.uniform(-1.0, 1.0, size=(4, 2))
        labels = rng.integers(0, 3, size=4)
        spec = PointRepairSpec.from_labels(points, labels, num_classes=3, margin=1e-4)
        result = point_repair(
            ddnn, ddnn.repairable_layer_indices()[-1], spec
        )
        assume(result.feasible)
        assert result.delta is not None
        after = digests(result.network)
        # Byte-identical digests per region: the partition geometry did not
        # move, even though the repaired function did.
        assert after == before
        assert network_fingerprint(result.network.activation) == before[0]

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_value_only_fast_path_is_exact_on_random_networks(self, seed):
        """Fast-path reports equal slow-path reports on the repaired DDNN."""
        rng = ensure_rng(seed)
        network = make_random_relu_network(rng, (2, 8, 6, 3))
        ddnn = DecoupledNetwork.from_network(network)
        from repro.polytope.hpolytope import HPolytope
        from repro.verify import VerificationSpec

        spec = VerificationSpec()
        winner = int(np.bincount(network.predict(rng.uniform(-1, 1, (64, 2)))).argmax())
        spec.add_plane(
            [[-1, -1], [1, -1], [1, 1], [-1, 1]],
            HPolytope.argmax_region(3, winner, 1e-4),
        )
        layer_index = ddnn.repairable_layer_indices()[-1]
        delta = 0.05 * rng.normal(size=ddnn.value.layers[layer_index].num_parameters)
        repaired = ddnn.copy()
        repaired.apply_parameter_delta(layer_index, delta)

        fast = SyrennVerifier(value_only=True)
        fast.verify(ddnn, spec)  # populate the fast-path slot
        fast_report = fast.verify(repaired, spec)
        slow_report = SyrennVerifier().verify(repaired, spec)
        assert fast_report.value_only
        assert fast.value_only_verifications == 1
        assert_reports_identical(slow_report, fast_report)


class TestIncrementalDifferential:
    """Incremental driver runs must reproduce cold runs on the φ8 spec."""

    @pytest.mark.parametrize(
        "backend,sparse,warm,workers",
        [
            ("scipy", True, True, 1),
            ("scipy", False, True, 1),
            ("scipy", True, False, 1),
            ("scipy", True, True, 2),
            ("simplex", False, False, 1),
            ("simplex", True, True, 1),
        ],
    )
    def test_incremental_matches_cold(self, acas_phi8, backend, sparse, warm, workers):
        network, spec = acas_phi8

        def run(incremental, engine=None):
            return RepairDriver(
                network,
                spec,
                SyrennVerifier(engine=engine),
                max_rounds=20,
                incremental=incremental,
                warm_start=warm,
                max_new_counterexamples=4,
                backend=backend,
                sparse=sparse,
            ).run()

        cold = run(False)
        if workers > 1:
            with ShardedSyrennEngine(workers=workers, cache=False) as engine:
                incremental = run(True, engine=engine)
        else:
            incremental = run(True)

        assert cold.status == "certified"
        assert incremental.status == "certified"
        assert incremental.incremental and not cold.incremental
        assert incremental.value_only_rounds > 0
        assert incremental.unsatisfied_pool_indices == []

        exact = not warm or get_backend(backend).warm_start_is_exact
        if exact:
            # Bit-for-bit: same verdicts, margins, round trajectory, deltas.
            assert incremental.num_rounds == cold.num_rounds
            assert (
                incremental.final_report.region_statuses
                == cold.final_report.region_statuses
            )
            assert (
                incremental.final_report.region_margins
                == cold.final_report.region_margins
            )
            assert value_parameters(incremental) == value_parameters(cold)
            for cold_round, incremental_round in zip(cold.rounds, incremental.rounds):
                assert incremental_round.pool_size == cold_round.pool_size
                assert incremental_round.layer_index == cold_round.layer_index
        else:
            # The simplex hot start pivots differently, so a degenerate
            # optimal face may resolve to a different — equally optimal —
            # vertex; the contract is then verdict-level, and at least one
            # round must actually have consumed the handle.
            assert incremental.warm_started_rounds > 0
            assert (
                incremental.final_report.region_statuses
                == cold.final_report.region_statuses
            )

    def test_rationed_intake_caps_pool_growth(self, acas_phi8):
        network, spec = acas_phi8
        report = RepairDriver(
            network,
            spec,
            SyrennVerifier(),
            max_rounds=20,
            incremental=True,
            max_new_counterexamples=2,
        ).run()
        assert report.status == "certified"
        assert all(record.new_counterexamples <= 2 for record in report.rounds)
        # Rationing must force a genuinely multi-round run on this workload.
        assert report.num_rounds >= 4

    def test_driver_round_records_incremental_fields(self, acas_phi8):
        network, spec = acas_phi8
        report = RepairDriver(
            network,
            spec,
            SyrennVerifier(),
            max_rounds=20,
            incremental=True,
            backend="simplex",
            max_new_counterexamples=4,
        ).run()
        assert report.status == "certified"
        repaired = [r for r in report.rounds if r.repair_attempted]
        assert repaired[0].lp_rows_appended > 0
        assert report.lp_rows_appended == sum(r.lp_rows_appended for r in report.rounds)
        # The simplex backend reports iteration counts and, from round 1 on,
        # consumes its own warm-start handles.
        assert all(r.lp_iterations is not None for r in repaired)
        assert report.warm_started_rounds >= 1
        assert report.value_only_rounds == sum(r.verify_value_only for r in report.rounds)
        summary = report.as_dict()
        for key in (
            "incremental",
            "lp_rows_appended",
            "warm_started_rounds",
            "value_only_rounds",
            "lp_iterations",
        ):
            assert key in summary
        assert summary["rounds"][0]["verify_value_only"] is False

    def test_driver_restores_callers_value_only_flag(self, acas_phi8):
        network, spec = acas_phi8
        verifier = SyrennVerifier()
        assert verifier.value_only is False
        RepairDriver(
            network, spec, verifier, max_rounds=20, incremental=True
        ).run()
        assert verifier.value_only is False

    def test_incremental_requires_batched_engine(self, acas_phi8):
        network, spec = acas_phi8
        with pytest.raises(RepairError):
            RepairDriver(
                network, spec, SyrennVerifier(), incremental=True, batched=False
            )
        with pytest.raises(RepairError):
            RepairDriver(
                network, spec, SyrennVerifier(), max_new_counterexamples=0
            )


class TestIncrementalRepairSession:
    def toy_pool_spec(self, rng, count):
        network = make_random_relu_network(rng, (2, 8, 6, 3))
        points = rng.uniform(-1.0, 1.0, size=(count, 2))
        labels = rng.integers(0, 3, size=count)
        return network, PointRepairSpec.from_labels(
            points, labels, num_classes=3, margin=1e-4
        )

    def test_session_matches_cold_point_repair(self, rng):
        network, spec = self.toy_pool_spec(rng, 6)
        layer_index = network.parameterized_layer_indices()[-1]
        cold = point_repair(network, layer_index, spec)

        session = IncrementalPointRepairSession(network, layer_index)
        for index in range(spec.num_points):
            session.append_points(
                PointRepairSpec(
                    points=spec.points[index : index + 1],
                    constraints=spec.constraints[index : index + 1],
                )
            )
        result = session.solve()
        assert cold.feasible and result.feasible
        assert result.num_key_points == spec.num_points
        assert result.num_constraint_rows == cold.num_constraint_rows
        # Point-by-point appends reproduce the one-shot batched LP exactly.
        assert result.delta.tobytes() == cold.delta.tobytes()

    def test_session_solves_are_monotone_supersets(self, rng):
        network, spec = self.toy_pool_spec(rng, 5)
        layer_index = network.parameterized_layer_indices()[-1]
        session = IncrementalPointRepairSession(network, layer_index, backend="simplex")
        objectives = []
        for index in range(spec.num_points):
            session.append_points(
                PointRepairSpec(
                    points=spec.points[index : index + 1],
                    constraints=spec.constraints[index : index + 1],
                )
            )
            result = session.solve()
            assert result.feasible
            objectives.append(result.objective_value)
        # Each round adds constraints, so the minimal norm cannot shrink.
        assert all(b >= a - 1e-9 for a, b in zip(objectives, objectives[1:]))
        assert session.last_solution.warm_start_used  # round 2+ hot-started


class TestLPSession:
    def build_model(self, rows, rng, num_variables=5):
        model = LPModel()
        delta = model.add_variables(num_variables, "d")
        add_norm_objective(model, delta, "linf")
        model.add_leq_block(
            rng.normal(size=(rows, num_variables)), rng.normal(size=rows) + 3.0, delta
        )
        return model, delta

    @pytest.mark.parametrize("backend", ["scipy", "simplex"])
    @pytest.mark.parametrize("sparse", [True, False])
    def test_appended_session_matches_cold_model(self, rng, backend, sparse):
        model, delta = self.build_model(6, rng)
        session = model.incremental_session(sparse=sparse, backend=backend)
        first = session.solve()
        extra = rng.normal(size=(3, 5))
        rhs = rng.normal(size=3) + 4.0
        model.add_leq_block(extra, rhs, delta)
        assert session.append_rows() == 3
        second = session.solve()

        cold_rng = ensure_rng(12345)
        cold_model, cold_delta = self.build_model(6, cold_rng)
        cold_first = cold_model.solve(backend, sparse=sparse)
        cold_model.add_leq_block(extra, rhs, cold_delta)
        cold_second = cold_model.solve(backend, sparse=sparse)
        assert first.values.tobytes() == cold_first.values.tobytes()
        assert second.values.tobytes() == cold_second.values.tobytes()
        assert session.num_rows == cold_model.num_constraints

    def test_append_rows_rejects_new_variables(self, rng):
        model, _ = self.build_model(4, rng)
        session = model.incremental_session()
        model.add_variable("late")
        with pytest.raises(LPError):
            session.append_rows()
        with pytest.raises(LPError):
            session.standard_form()

    def test_tail_blocks_pin_rows_to_the_bottom(self, rng):
        model = LPModel()
        delta = model.add_variables(5, "d")
        model.add_leq_block(rng.normal(size=(4, 5)), rng.normal(size=4) + 3.0, delta)
        add_norm_objective(model, delta, "linf")  # two 5-row tail blocks
        session = model.incremental_session(sparse=False, tail_blocks=2)
        _, a_before, *_ = session.standard_form()
        model.add_leq_block(np.ones((1, 5)), [10.0], delta)
        session.append_rows()
        _, a_after, b_after, *_ = session.standard_form()
        # The appended row sits *above* the pinned norm tail...
        np.testing.assert_array_equal(a_after[4], np.concatenate([np.ones(5), [0.0]]))
        # ...and the tail still occupies the bottom rows.
        np.testing.assert_array_equal(a_after[-10:], a_before[-10:])
        assert b_after.shape[0] == a_after.shape[0]

    def test_tail_blocks_validation_and_empty_model(self):
        model = LPModel()
        with pytest.raises(LPError):
            model.incremental_session(tail_blocks=1)
        session = model.incremental_session()
        solution = session.solve()
        assert solution.status is LPStatus.OPTIMAL
        assert solution.values.size == 0

    def test_foreign_warm_start_is_dropped(self, rng):
        model, _ = self.build_model(4, rng)
        session = model.incremental_session(backend="scipy")
        foreign = WarmStart(backend="simplex", values=np.zeros(5), payload={"n": 5})
        solution = session.solve(warm_start=foreign)
        assert solution.status is LPStatus.OPTIMAL
        assert not solution.warm_start_used


class TestWarmStartBackends:
    def fence_model(self):
        """min ||d||_inf subject to d_i >= 0.5 — optimum 0.5."""
        model = LPModel()
        delta = model.add_variables(4, "d")
        add_norm_objective(model, delta, "linf")
        model.add_leq_block(-np.eye(4), -np.full(4, 0.5), delta)
        return model, delta

    def test_simplex_dual_warm_start_matches_cold_objective(self):
        model, delta = self.fence_model()
        session = model.incremental_session(backend="simplex", sparse=False)
        first = session.solve()
        assert first.warm_start is not None and first.warm_start.payload is not None
        model.add_leq_block(np.array([[-1.0, -1.0, 0.0, 0.0]]), [-1.4], delta)
        session.append_rows()
        warm = session.solve(warm_start=first.warm_start)
        assert warm.warm_start_used
        cold = model.solve("simplex")
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)
        # The hot start skips phase 1 entirely: far fewer pivots than cold.
        assert warm.iterations < cold.iterations

    def test_simplex_warm_start_detects_appended_infeasibility(self):
        model, delta = self.fence_model()
        session = model.incremental_session(backend="simplex", sparse=False)
        first = session.solve()
        model.add_leq_block(np.eye(4)[:1], [0.1], delta)  # d0 <= 0.1 contradicts
        session.append_rows()
        warm = session.solve(warm_start=first.warm_start)
        assert warm.status is LPStatus.INFEASIBLE
        assert warm.warm_start_used

    def test_simplex_incompatible_payload_falls_back_cold(self):
        model, _ = self.fence_model()
        session = model.incremental_session(backend="simplex", sparse=False)
        stale = WarmStart(
            backend="simplex", values=np.zeros(4), payload={"n": 99, "num_eq": 0}
        )
        solution = session.solve(warm_start=stale)
        assert solution.status is LPStatus.OPTIMAL
        assert not solution.warm_start_used

    def test_scipy_highs_ignores_warm_start_exactly(self):
        model, delta = self.fence_model()
        session = model.incremental_session(backend="scipy")
        first = session.solve()
        model.add_leq_block(np.array([[-1.0, -1.0, 0.0, 0.0]]), [-1.4], delta)
        session.append_rows()
        warm = session.solve(warm_start=first.warm_start)
        cold = model.solve("scipy")
        assert not warm.warm_start_used
        assert warm.values.tobytes() == cold.values.tobytes()
        assert warm.iterations is not None

    def test_warm_start_exactness_flags(self):
        assert get_backend("scipy").warm_start_is_exact
        assert not get_backend("simplex").warm_start_is_exact

    def test_scipy_x0_method_falls_back_cold_when_guess_rejected(self):
        """A warm handle must never produce a spurious failure (base contract).

        ``revised simplex`` is the one linprog method that consumes ``x0``;
        once appended rows cut off the previous optimum, linprog rejects the
        guess (status 4) — the backend must silently retry cold instead of
        surfacing LPStatus.ERROR.
        """
        import warnings

        from repro.lp.backends.scipy_backend import ScipyBackend

        backend = ScipyBackend("revised simplex")
        assert not backend.warm_start_is_exact
        model, delta = self.fence_model()
        with warnings.catch_warnings():
            # scipy deprecates the method; the fallback contract is what we
            # pin here, not the method's lifecycle.
            warnings.simplefilter("ignore", DeprecationWarning)
            first = backend.solve(*model.standard_form(sparse=False))
            assert first.status is LPStatus.OPTIMAL
            # The cut makes the prior optimum (0.5, 0.5, ...) infeasible,
            # so the guess cannot seed a basic feasible solution.
            model.add_leq_block(np.array([[-1.0, -1.0, 0.0, 0.0]]), [-1.4], delta)
            warm = backend.solve(
                *model.standard_form(sparse=False), warm_start=first.warm_start
            )
            cold = backend.solve(*model.standard_form(sparse=False))
        assert warm.status is LPStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)


class TestEvaluateRegionsJob:
    def test_chunk_spans_cover_and_validate(self):
        assert chunk_spans(5, 2) == [(0, 2), (2, 4), (4, 5)]
        assert chunk_spans(0, 4) == []
        with pytest.raises(EngineError):
            chunk_spans(3, 0)

    def test_evaluate_regions_matches_inprocess_ddnn(self, rng):
        network = make_random_relu_network(rng, (2, 8, 6, 3))
        ddnn = DecoupledNetwork.from_network(network)
        vertices = rng.uniform(-1, 1, size=(37, 2))
        activations = rng.uniform(-1, 1, size=(37, 2))
        expected = ddnn.compute(vertices, activations)
        engine = ShardedSyrennEngine(workers=1, cache=False)
        outputs = engine.evaluate_regions(ddnn, vertices, activations, chunk_rows=8)
        np.testing.assert_array_equal(outputs, expected)
        # Chunking is deterministic: 37 rows in 8-row chunks is 5 tasks.
        assert engine.scheduler.jobs_executed == 5
        with pytest.raises(EngineError):
            engine.evaluate_regions(ddnn, vertices, activations[:5])
