"""Tests for the declarative driver configuration (repro.driver.config).

The load-bearing property is the differential one: a driver built from a
``DriverConfig`` that travelled through JSON must run *byte-identically* to
one built from the historical loose keywords — same statuses, same rounds,
same repaired parameters — because that is what lets the job daemon promise
that a submitted job equals an in-process run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.driver import DriverConfig, RepairDriver
from repro.exceptions import RepairError
from repro.nn.activations import ReLULayer
from repro.nn.linear import FullyConnectedLayer
from repro.nn.network import Network
from repro.polytope.hpolytope import HPolytope
from repro.verify import SyrennVerifier, VerificationSpec


@pytest.fixture
def scenario(rng):
    """A seeded plane/box scenario the driver certifies in a few rounds."""
    network = Network(
        [
            FullyConnectedLayer.from_shape(2, 8, rng),
            ReLULayer(8),
            FullyConnectedLayer.from_shape(8, 6, rng),
            ReLULayer(6),
            FullyConnectedLayer.from_shape(6, 3, rng),
        ]
    )
    preds = network.predict(rng.uniform(-1.0, 1.0, size=(400, 2)))
    winner = int(np.bincount(preds, minlength=3).argmax())
    spec = VerificationSpec()
    spec.add_plane(
        [[-1, -1], [1, -1], [1, 1], [-1, 1]],
        HPolytope.argmax_region(3, winner, 1e-4),
    )
    spec.add_box([-0.5, -1.0], [0.5, 1.0], HPolytope.argmax_region(3, winner, 1e-4))
    return network, spec


TIMING_KEYS = {"seconds", "repair_seconds", "timing"}


def comparable(report) -> dict:
    """A report's run-defining content: everything except wall-clock times."""
    summary = {k: v for k, v in report.as_dict().items() if k not in TIMING_KEYS}
    summary["final_report"].pop("seconds", None)
    summary["rounds"] = [
        {k: v for k, v in record.items() if k not in TIMING_KEYS}
        for record in summary["rounds"]
    ]
    return summary


def parameter_bytes(network) -> list[bytes]:
    return [
        layer.get_parameters().tobytes()
        for layer in network.value.layers
        if layer.num_parameters
    ]


class TestDriverConfig:
    def test_json_round_trip_is_lossless(self):
        config = DriverConfig(
            mode="polytope",
            layer_schedule=[4, 2],
            max_rounds=7,
            incremental=True,
            max_new_counterexamples=3,
            norm="l1",
            delta_bound=0.5,
        )
        restored = DriverConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert restored == config
        assert restored.layer_schedule == (4, 2)  # lists normalize to tuples

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(RepairError, match="unknown driver config keys"):
            DriverConfig.from_dict({"max_round": 5})

    def test_validation_matches_driver(self):
        with pytest.raises(RepairError):
            DriverConfig(max_rounds=0)
        with pytest.raises(RepairError):
            DriverConfig(mode="lines")
        with pytest.raises(RepairError):
            DriverConfig(layer_schedule=[])
        with pytest.raises(RepairError):
            DriverConfig(incremental=True, batched=False)
        with pytest.raises(RepairError):
            DriverConfig(max_new_counterexamples=0)

    def test_replace_revalidates(self):
        config = DriverConfig(max_rounds=5)
        assert config.replace(max_rounds=6).max_rounds == 6
        with pytest.raises(RepairError):
            config.replace(max_rounds=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DriverConfig().max_rounds = 3


class TestDriverConstruction:
    def test_legacy_keywords_still_work(self, scenario):
        """The historical keyword call sites build the equivalent config."""
        network, spec = scenario
        driver = RepairDriver(
            network, spec, SyrennVerifier(), max_rounds=6, norm="l1", incremental=True
        )
        assert driver.config == DriverConfig(max_rounds=6, norm="l1", incremental=True)
        assert driver.max_rounds == 6 and driver.norm == "l1" and driver.incremental

    def test_config_and_keywords_cannot_mix(self, scenario):
        network, spec = scenario
        with pytest.raises(RepairError, match="not both"):
            RepairDriver(
                network, spec, SyrennVerifier(), config=DriverConfig(), max_rounds=3
            )

    def test_unknown_keyword_rejected(self, scenario):
        network, spec = scenario
        with pytest.raises(TypeError):
            RepairDriver(network, spec, SyrennVerifier(), max_round=3)


class TestConfigDifferential:
    @pytest.mark.parametrize("incremental", [False, True])
    def test_json_config_run_matches_keyword_run(self, scenario, incremental):
        """Keyword run vs JSON-round-tripped config run: byte-identical."""
        network, spec = scenario
        keyword_report = RepairDriver(
            network,
            spec,
            SyrennVerifier(),
            max_rounds=8,
            norm="l1",
            incremental=incremental,
        ).run()

        wire = json.loads(
            json.dumps(
                DriverConfig(max_rounds=8, norm="l1", incremental=incremental).to_dict()
            )
        )
        config_report = RepairDriver(
            network, spec, SyrennVerifier(), config=DriverConfig.from_dict(wire)
        ).run()

        assert keyword_report.status == "certified"
        assert comparable(keyword_report) == comparable(config_report)
        assert parameter_bytes(keyword_report.network) == parameter_bytes(
            config_report.network
        )

    def test_spec_wire_round_trip_runs_byte_identically(self, scenario):
        """The spec's JSON form drives the same run as the original spec."""
        network, spec = scenario
        wire_spec = VerificationSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        original = RepairDriver(network, spec, SyrennVerifier(), max_rounds=8).run()
        travelled = RepairDriver(network, wire_spec, SyrennVerifier(), max_rounds=8).run()
        assert comparable(original) == comparable(travelled)
        assert parameter_bytes(original.network) == parameter_bytes(travelled.network)


class TestOnRoundCallback:
    def test_callback_streams_every_round(self, scenario):
        network, spec = scenario
        streamed = []
        report = RepairDriver(
            network,
            spec,
            SyrennVerifier(),
            max_rounds=8,
            on_round=streamed.append,
        ).run()
        assert [r.round_index for r in streamed] == [r.round_index for r in report.rounds]
        # The callback sees finished records: identical to the report's.
        assert [r.as_dict() for r in streamed] == [r.as_dict() for r in report.rounds]

    def test_callback_exceptions_abort_the_run(self, scenario):
        network, spec = scenario

        def explode(record):
            raise RuntimeError("stop here")

        with pytest.raises(RuntimeError, match="stop here"):
            RepairDriver(
                network, spec, SyrennVerifier(), max_rounds=8, on_round=explode
            ).run()
