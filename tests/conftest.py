"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp.backends import backend_capabilities
from repro.models.toy import paper_network_n1, paper_network_n2
from repro.nn.activations import ReLULayer, TanhLayer
from repro.nn.linear import FullyConnectedLayer
from repro.nn.network import Network
from repro.utils.rng import ensure_rng


def pytest_collection_modifyitems(config, items):
    """Skip ``requires_highspy`` tests when the native bindings are absent.

    The registry's capability probe — not an import attempt here — is the
    source of truth, so the marker and the runtime degradation path can
    never disagree about what "available" means.
    """
    if backend_capabilities("highs_native")["available"]:
        return
    skip = pytest.mark.skip(reason="highspy is not installed (native HiGHS backend degraded)")
    for item in items:
        if "requires_highspy" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return ensure_rng(12345)


@pytest.fixture
def toy_network() -> Network:
    """The paper's running-example network N₁ (Figure 3(a))."""
    return paper_network_n1()


@pytest.fixture
def toy_network_n2() -> Network:
    """The paper's modified network N₂ (Figure 3(b))."""
    return paper_network_n2()


def make_random_relu_network(
    rng: np.random.Generator,
    layer_sizes: tuple[int, ...] = (4, 8, 6, 3),
) -> Network:
    """A small random fully-connected ReLU network (helper for many tests)."""
    layers = []
    for index in range(len(layer_sizes) - 1):
        layers.append(
            FullyConnectedLayer.from_shape(layer_sizes[index], layer_sizes[index + 1], rng)
        )
        if index < len(layer_sizes) - 2:
            layers.append(ReLULayer(layer_sizes[index + 1]))
    return Network(layers)


def make_random_tanh_network(
    rng: np.random.Generator,
    layer_sizes: tuple[int, ...] = (3, 6, 4, 2),
) -> Network:
    """A small random fully-connected Tanh network (non-PWL activations)."""
    layers = []
    for index in range(len(layer_sizes) - 1):
        layers.append(
            FullyConnectedLayer.from_shape(layer_sizes[index], layer_sizes[index + 1], rng)
        )
        if index < len(layer_sizes) - 2:
            layers.append(TanhLayer(layer_sizes[index + 1]))
    return Network(layers)


@pytest.fixture
def random_relu_network(rng) -> Network:
    """A small random ReLU network."""
    return make_random_relu_network(rng)


@pytest.fixture
def random_tanh_network(rng) -> Network:
    """A small random Tanh network."""
    return make_random_tanh_network(rng)
