"""Tests for the out-of-core repair pipeline.

Four layers of pinning:

* a **differential matrix**: driver runs with a ``memory_budget`` — tiny
  (single-point chunks plus pool spilling), ragged (a few points per
  chunk), and huge (one chunk) — × incremental on/off reproduce the
  unbudgeted run byte for byte on the strengthened ACAS φ8 spec and on an
  MNIST-fog digits spec, including with a 4-worker engine sharding chunk
  production;
* a **property-based oracle** (hypothesis): *any* chunk partition of the
  Jacobian→LP row stream yields the same LP solution bytes as the dense
  in-memory path — the determinism contract of
  :class:`~repro.core.jacobian.JacobianChunkStream`;
* unit tests for the new tiers: chunk-stream assembly and telemetry, the
  batched finite-difference checker against the closed-form Jacobians,
  pool spill semantics (windowing, dedup across spilled segments,
  ``point_spec`` equality, save/load round trips, the atomic-save
  kill-injection), and the exhaustively-certifying sampling verifier;
* an **end-to-end** driver-certified SqueezeNet-mini repair under a small
  memory budget, with entries spilled to disk and a certified report
  byte-identical to the unbudgeted run.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro.core.ddnn import DecoupledNetwork
from repro.core.jacobian import (
    DEFAULT_CHUNK_BYTES,
    JacobianChunkStream,
    encode_constraints_padded,
    finite_difference_jacobians,
)
from repro.core.point_repair import point_repair
from repro.core.specs import PointRepairSpec
from repro.datasets.acas import phi8_property
from repro.datasets.corruptions import fog_corrupt
from repro.datasets.digits import render_digit
from repro.driver import RepairDriver
from repro.driver.pool import CounterexamplePool
from repro.engine import ShardedSyrennEngine
from repro.experiments.task1_imagenet import (
    classifier_perturbation_workload,
    driver_certified_repair,
    pointwise_verification_spec,
)
from repro.experiments.task3_acas import Task3Setup, strengthened_verification_spec
from repro.models.acas_models import build_acas_network
from repro.polytope.hpolytope import HPolytope
from repro.utils.rng import ensure_rng
from repro.verify.base import Counterexample, RegionStatus, VerificationSpec
from repro.verify.sampling import GridVerifier
from tests.conftest import make_random_relu_network
from tests.test_incremental import assert_reports_identical, value_parameters

#: A budget so small every tier degenerates: single-point chunk batches,
#: single-column CSR pieces, and a pool window that spills on every add.
TINY_BUDGET = 4_096
#: A budget producing ragged chunk batches (a few points each).
RAGGED_BUDGET = 262_144
#: A budget nothing ever exceeds: the chunked code path with one chunk.
HUGE_BUDGET = 1 << 30


@pytest.fixture(scope="module")
def acas_phi8():
    """A small untrained ACAS advisory network plus the strengthened φ8 spec."""
    seed_rng = ensure_rng(7)
    network = build_acas_network(hidden_size=8, hidden_layers=2, seed=7)
    safety_property = phi8_property()
    slices = [safety_property.random_slice(seed_rng) for _ in range(3)]
    empty = np.zeros((0, 5))
    setup = Task3Setup(network, safety_property, slices, empty, empty, 0)
    return network, strengthened_verification_spec(network, setup)


def small_workload(seed: int = 0, num_points: int = 7, shape=(4, 10, 6, 3)):
    """A random ReLU network plus a pointwise classification repair spec."""
    rng = ensure_rng(seed)
    network = make_random_relu_network(rng, shape)
    ddnn = DecoupledNetwork.from_network(network)
    points = rng.uniform(-1.0, 1.0, size=(num_points, shape[0]))
    labels = rng.integers(0, shape[-1], size=num_points)
    spec = PointRepairSpec.from_labels(
        points, labels, num_classes=shape[-1], margin=1e-4
    )
    return ddnn, ddnn.repairable_layer_indices()[-1], spec


def canonical(matrix) -> sp.csr_matrix:
    block = sp.csr_matrix(matrix)
    block.sum_duplicates()
    block.sort_indices()
    return block


def assert_same_standard_form(blocks, dense_lhs, dense_rhs) -> None:
    """The stacked CSR blocks equal the canonical CSR of the dense encode."""
    stacked = canonical(sp.vstack([block for block, _ in blocks]))
    reference = canonical(dense_lhs)
    assert stacked.shape == reference.shape
    assert stacked.indptr.tobytes() == reference.indptr.tobytes()
    assert stacked.indices.tobytes() == reference.indices.tobytes()
    assert stacked.data.tobytes() == reference.data.tobytes()
    rhs = np.concatenate([rhs for _, rhs in blocks])
    assert rhs.tobytes() == dense_rhs.tobytes()


class TestChunkStreamAssembly:
    """The stream's CSR blocks reassemble the dense encode byte for byte."""

    @pytest.mark.parametrize("chunk_bytes", [1, 2_048, DEFAULT_CHUNK_BYTES])
    def test_blocks_assemble_dense_standard_form(self, chunk_bytes):
        ddnn, layer, spec = small_workload()
        dense_lhs, dense_rhs = encode_constraints_padded(ddnn, layer, spec)
        stream = JacobianChunkStream(ddnn, layer, spec, max_chunk_bytes=chunk_bytes)
        blocks = list(stream)
        assert len(blocks) == len(stream)
        assert_same_standard_form(blocks, dense_lhs, dense_rhs)

    def test_explicit_single_point_batches(self):
        # One point per batch forces the pad-to-two encode for every batch.
        ddnn, layer, spec = small_workload()
        dense_lhs, dense_rhs = encode_constraints_padded(ddnn, layer, spec)
        stream = JacobianChunkStream(ddnn, layer, spec, points_per_batch=1)
        blocks = list(stream)
        assert len(blocks) == spec.num_points
        assert_same_standard_form(blocks, dense_lhs, dense_rhs)

    def test_engine_sharded_production_matches_serial(self):
        ddnn, layer, spec = small_workload(num_points=9)
        serial = list(
            JacobianChunkStream(ddnn, layer, spec, points_per_batch=2)
        )
        with ShardedSyrennEngine(workers=4, cache=False) as engine:
            sharded = list(
                JacobianChunkStream(
                    ddnn, layer, spec, points_per_batch=2, engine=engine
                )
            )
        assert len(sharded) == len(serial)
        for (serial_block, serial_rhs), (shard_block, shard_rhs) in zip(
            serial, sharded
        ):
            assert shard_block.data.tobytes() == serial_block.data.tobytes()
            assert shard_block.indices.tobytes() == serial_block.indices.tobytes()
            assert shard_rhs.tobytes() == serial_rhs.tobytes()

    def test_chunk_telemetry_counts_pieces_by_layer(self):
        ddnn, layer, spec = small_workload()
        with obs.isolated() as registry:
            stream = JacobianChunkStream(ddnn, layer, spec, points_per_batch=3)
            list(stream)
            snapshot = registry.snapshot()["repro_jacobian_chunks_total"]
            (series,) = snapshot["series"]
            assert series["labels"] == {"layer": str(layer)}
            assert series["value"] == float(stream.chunks_produced)
        assert stream.chunks_produced >= len(stream)

    def test_rejects_nonpositive_budget(self):
        ddnn, layer, spec = small_workload()
        with pytest.raises(ValueError):
            JacobianChunkStream(ddnn, layer, spec, max_chunk_bytes=0)


class TestFiniteDifferenceBatch:
    """The batched checker matches the closed-form Jacobians per slice."""

    def test_matches_closed_form_on_column_slice(self):
        ddnn, layer, spec = small_workload(num_points=4)
        _, jacobians = ddnn.batch_parameter_jacobian(
            layer, spec.points, spec.activation_points
        )
        columns = np.array([0, 3, jacobians.shape[2] - 1])
        estimated = finite_difference_jacobians(
            ddnn, layer, spec.points, spec.activation_points, columns=columns
        )
        assert estimated.shape == (spec.num_points, ddnn.output_size, columns.size)
        np.testing.assert_allclose(
            estimated, jacobians[:, :, columns], rtol=1e-6, atol=1e-7
        )

    def test_restores_parameters_on_exit(self):
        ddnn, layer, spec = small_workload(num_points=2)
        before = ddnn.value.layers[layer].get_parameters().copy()
        finite_difference_jacobians(
            ddnn, layer, spec.points, spec.activation_points, columns=np.array([1])
        )
        assert ddnn.value.layers[layer].get_parameters().tobytes() == before.tobytes()


class TestChunkedRepairDifferential:
    """point_repair with any chunk budget solves the same LP, byte for byte."""

    @pytest.mark.parametrize("chunk_bytes", [1, 2_048, HUGE_BUDGET])
    @pytest.mark.parametrize("sparse", [True, False])
    def test_chunked_matches_dense(self, chunk_bytes, sparse):
        ddnn, layer, spec = small_workload()
        dense = point_repair(ddnn, layer, spec, sparse=sparse)
        chunked = point_repair(
            ddnn, layer, spec, sparse=sparse, max_chunk_bytes=chunk_bytes
        )
        assert chunked.feasible == dense.feasible
        assert chunked.delta.tobytes() == dense.delta.tobytes()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6), chunk_bytes=st.integers(1, 1 << 16))
    def test_any_partition_yields_identical_solutions(self, seed, chunk_bytes):
        ddnn, layer, spec = small_workload(seed=seed, num_points=5)
        dense = point_repair(ddnn, layer, spec, sparse=True)
        chunked = point_repair(
            ddnn, layer, spec, sparse=True, max_chunk_bytes=chunk_bytes
        )
        assert chunked.feasible == dense.feasible
        if dense.feasible:
            assert chunked.delta.tobytes() == dense.delta.tobytes()


def make_counterexample(rng, dimension: int = 6, outputs: int = 3) -> Counterexample:
    """A synthetic point counterexample with a one-row output constraint."""
    return Counterexample(
        point=rng.uniform(-1.0, 1.0, dimension),
        constraint=HPolytope(
            rng.uniform(-1.0, 1.0, (1, outputs)), rng.uniform(-1.0, 1.0, 1)
        ),
        margin=float(rng.uniform(0.1, 1.0)),
        region_index=int(rng.integers(0, 100)),
        activation_point=rng.uniform(-1.0, 1.0, dimension),
    )


class TestPoolSpill:
    """The disk-spill tier changes residency, never contents."""

    def fill(self, pool: CounterexamplePool, count: int = 40, seed: int = 3):
        rng = ensure_rng(seed)
        added = [make_counterexample(rng) for _ in range(count)]
        for counterexample in added:
            assert pool.add(counterexample)
        return added

    def test_spills_bound_residency_and_preserve_order(self, tmp_path):
        pool = CounterexamplePool(max_resident_bytes=1_000, spill_dir=tmp_path)
        added = self.fill(pool)
        assert len(pool) == len(added)
        assert pool.spilled_entries > 0
        assert pool.resident_bytes <= 1_000
        for stored, original in zip(pool.counterexamples, added):
            assert stored.point.tobytes() == original.point.tobytes()
            assert stored.margin == original.margin
            assert stored.constraint.a.tobytes() == original.constraint.a.tobytes()

    def test_point_spec_identical_to_unbounded_pool(self, tmp_path):
        bounded = CounterexamplePool(max_resident_bytes=1_000, spill_dir=tmp_path)
        unbounded = CounterexamplePool()
        rng = ensure_rng(11)
        for counterexample in [make_counterexample(rng) for _ in range(30)]:
            bounded.add(counterexample)
            unbounded.add(counterexample)
        assert bounded.spilled_entries > 0 and unbounded.spilled_entries == 0
        for margin, start in [(0.0, 0), (1e-4, 7)]:
            a = bounded.point_spec(margin=margin, start=start)
            b = unbounded.point_spec(margin=margin, start=start)
            assert a.points.tobytes() == b.points.tobytes()
            assert a.activation_points.tobytes() == b.activation_points.tobytes()
            for left, right in zip(a.constraints, b.constraints):
                assert left.a.tobytes() == right.a.tobytes()
                assert left.b.tobytes() == right.b.tobytes()

    def test_dedup_sees_spilled_entries(self, tmp_path):
        pool = CounterexamplePool(max_resident_bytes=1_000, spill_dir=tmp_path)
        added = self.fill(pool)
        assert pool.spilled_entries > 0
        # Every entry — including long-spilled ones — is still a duplicate:
        # the dedup keys never leave memory.
        for counterexample in added:
            assert not pool.add(counterexample)
        assert len(pool) == len(added)

    def test_worst_margin_and_key_points_never_touch_disk(self, tmp_path):
        pool = CounterexamplePool(max_resident_bytes=1_000, spill_dir=tmp_path)
        added = self.fill(pool)
        assert pool.worst_margin == max(entry.margin for entry in added)
        assert pool.num_key_points == len(added)

    def test_save_load_round_trip_across_spill_tiers(self, tmp_path):
        pool = CounterexamplePool(max_resident_bytes=1_000, spill_dir=tmp_path / "a")
        added = self.fill(pool)
        checkpoint = tmp_path / "pool.npz"
        pool.save(checkpoint)
        # Reload bounded (spills during the reload itself) and unbounded.
        bounded = CounterexamplePool.load(
            checkpoint, max_resident_bytes=1_000, spill_dir=tmp_path / "b"
        )
        unbounded = CounterexamplePool.load(checkpoint)
        assert bounded.spilled_entries > 0 and unbounded.spilled_entries == 0
        for restored in (bounded, unbounded):
            assert len(restored) == len(added)
            for stored, original in zip(restored.counterexamples, added):
                assert stored.point.tobytes() == original.point.tobytes()
                assert (
                    stored.resolved_activation_point().tobytes()
                    == original.resolved_activation_point().tobytes()
                )

    def test_spill_counter_telemetry(self, tmp_path):
        with obs.isolated() as registry:
            pool = CounterexamplePool(max_resident_bytes=1_000, spill_dir=tmp_path)
            self.fill(pool)
            assert pool.spilled_entries > 0
            snapshot = registry.snapshot()["repro_pool_spilled_entries_total"]
            (series,) = snapshot["series"]
            assert series["value"] == float(pool.spilled_entries)


class TestAtomicCheckpoint:
    """A kill mid-save can never tear an existing checkpoint."""

    def test_interrupted_save_leaves_previous_checkpoint_intact(
        self, tmp_path, monkeypatch
    ):
        rng = ensure_rng(5)
        pool = CounterexamplePool()
        first = [make_counterexample(rng) for _ in range(4)]
        for counterexample in first:
            pool.add(counterexample)
        checkpoint = tmp_path / "pool.npz"
        pool.save(checkpoint)
        good_bytes = checkpoint.read_bytes()

        pool.add(make_counterexample(rng))

        # Inject the kill between the temp-file write and the rename: the
        # atomic-save contract says the previous checkpoint must survive.
        import repro.utils.serialization as serialization

        def killed(src, dst):
            raise OSError("injected kill between write and rename")

        monkeypatch.setattr(serialization.os, "replace", killed)
        with pytest.raises(OSError, match="injected kill"):
            pool.save(checkpoint)
        monkeypatch.undo()

        assert checkpoint.read_bytes() == good_bytes
        restored = CounterexamplePool.load(checkpoint)
        assert len(restored) == len(first)
        for stored, original in zip(restored.counterexamples, first):
            assert stored.point.tobytes() == original.point.tobytes()


class TestDriverDifferential:
    """Budgeted driver runs reproduce unbudgeted runs byte for byte."""

    def run(self, network, spec, *, memory_budget=None, incremental=True, engine=None):
        from repro.verify import SyrennVerifier

        return RepairDriver(
            network,
            spec,
            SyrennVerifier(engine=engine),
            max_rounds=20,
            incremental=incremental,
            max_new_counterexamples=4,
            sparse=True,
            memory_budget=memory_budget,
        ).run()

    @pytest.mark.parametrize("incremental", [False, True])
    @pytest.mark.parametrize(
        "memory_budget", [TINY_BUDGET, RAGGED_BUDGET, HUGE_BUDGET]
    )
    def test_budgeted_matches_unbudgeted_on_acas(
        self, acas_phi8, memory_budget, incremental
    ):
        network, spec = acas_phi8
        reference = self.run(network, spec, incremental=incremental)
        budgeted = self.run(
            network, spec, memory_budget=memory_budget, incremental=incremental
        )
        assert reference.status == "certified"
        assert budgeted.status == "certified"
        assert budgeted.num_rounds == reference.num_rounds
        assert value_parameters(budgeted) == value_parameters(reference)
        assert_reports_identical(budgeted.final_report, reference.final_report)
        for reference_round, budgeted_round in zip(
            reference.rounds, budgeted.rounds
        ):
            assert budgeted_round.pool_size == reference_round.pool_size
            assert budgeted_round.lp_rows_appended == reference_round.lp_rows_appended

    def test_budgeted_four_worker_engine_matches_serial(self, acas_phi8):
        network, spec = acas_phi8
        reference = self.run(network, spec)
        with ShardedSyrennEngine(workers=4, cache=False) as engine:
            budgeted = self.run(
                network, spec, memory_budget=RAGGED_BUDGET, engine=engine
            )
        assert budgeted.status == "certified"
        assert value_parameters(budgeted) == value_parameters(reference)
        assert_reports_identical(budgeted.final_report, reference.final_report)

    def test_budgeted_matches_unbudgeted_on_fogged_digits(self):
        # The MNIST-fog flavor of the matrix: fog-corrupted rendered digits
        # through a small ReLU classifier, repaired pointwise by the driver
        # with and without a tiny memory budget.
        rng = ensure_rng(2)
        side = 8
        network = make_random_relu_network(rng, (side * side, 12, 4))
        images = np.stack(
            [
                fog_corrupt(render_digit(digit, rng, side=side), 0.5, rng)
                for digit in (0, 1, 2, 3, 4, 7)
            ]
        )
        labels = np.argmax(network.compute(images), axis=1)
        # Ask for a margin the network does not currently meet, so at least
        # one region is violated and the driver has actual repair work.
        spec = pointwise_verification_spec(images, labels, 4, margin=0.05)

        def run(memory_budget):
            return RepairDriver(
                network,
                spec,
                GridVerifier(certify_exhaustive=True),
                max_rounds=8,
                incremental=True,
                sparse=True,
                memory_budget=memory_budget,
            ).run()

        reference = run(None)
        budgeted = run(TINY_BUDGET)
        assert reference.status == "certified"
        assert budgeted.status == "certified"
        assert budgeted.num_rounds == reference.num_rounds
        assert value_parameters(budgeted) == value_parameters(reference)
        assert_reports_identical(budgeted.final_report, reference.final_report)


class TestCertifyExhaustive:
    """Single-point regions become provable under ``certify_exhaustive``."""

    def build(self, seed=4):
        rng = ensure_rng(seed)
        network = make_random_relu_network(rng, (3, 8, 3))
        point = rng.uniform(-1.0, 1.0, 3)
        label = int(np.argmax(network.compute(point)))
        return network, point, label

    def test_degenerate_clean_region_is_certified(self):
        network, point, label = self.build()
        spec = pointwise_verification_spec(point[None, :], [label], 3, margin=0.0)
        report = GridVerifier(certify_exhaustive=True).verify(network, spec)
        assert report.region_statuses == [RegionStatus.CERTIFIED]
        assert report.certified

    def test_without_flag_clean_region_stays_unknown(self):
        network, point, label = self.build()
        spec = pointwise_verification_spec(point[None, :], [label], 3, margin=0.0)
        report = GridVerifier().verify(network, spec)
        assert report.region_statuses == [RegionStatus.UNKNOWN]
        assert not report.certified

    def test_violated_degenerate_region_reports_counterexample(self):
        network, point, label = self.build()
        wrong = (label + 1) % 3
        spec = pointwise_verification_spec(point[None, :], [wrong], 3, margin=1e6)
        report = GridVerifier(certify_exhaustive=True).verify(network, spec)
        assert report.region_statuses == [RegionStatus.VIOLATED]
        assert len(report.counterexamples) == 1
        assert not report.certified

    def test_nondegenerate_region_is_never_certified(self):
        network, point, label = self.build()
        spec = pointwise_verification_spec(point[None, :], [label], 3, margin=0.0)
        spec.add_box(
            point - 0.1,
            point + 0.1,
            spec.regions[0].constraint,
            name="a real box",
        )
        report = GridVerifier(certify_exhaustive=True).verify(network, spec)
        assert report.region_statuses[0] == RegionStatus.CERTIFIED
        assert report.region_statuses[1] == RegionStatus.UNKNOWN
        assert not report.certified

    def test_stacked_fast_path_matches_per_region_sweep(self):
        # All-degenerate specs take the one-stacked-pass sweep; mixing in a
        # real box forces the per-region path.  Same points, same verdicts.
        network, point, label = self.build()
        rng = ensure_rng(9)
        points = rng.uniform(-1.0, 1.0, size=(5, 3))
        labels = np.argmax(network.compute(points), axis=1)
        spec = pointwise_verification_spec(points, labels, 3, margin=0.0)
        fast = GridVerifier(certify_exhaustive=True).verify(network, spec)
        slow_spec = pointwise_verification_spec(points, labels, 3, margin=0.0)
        slow_spec.add_box(
            points[0] - 0.05, points[0] + 0.05, spec.regions[0].constraint, name="box"
        )
        slow = GridVerifier(certify_exhaustive=True).verify(network, slow_spec)
        assert fast.region_statuses == slow.region_statuses[: len(points)]


class TestSqueezeNetWorkload:
    """The scalable classifier-perturbation workload and its certified repair."""

    @pytest.fixture(scope="class")
    def workload(self):
        return classifier_perturbation_workload(24, side=8, seed=1)

    def test_workload_invariants(self, workload):
        assert workload.num_points == 24
        assert workload.constraint_rows == 24 * (workload.num_classes - 1)
        original_logits = workload.original.compute(workload.points)
        assert (np.argmax(original_logits, axis=1) == workload.labels).all()
        # Every point genuinely violates on the buggy network.
        buggy_logits = workload.buggy.compute(workload.points)
        assert (np.argmax(buggy_logits, axis=1) != workload.labels).any()

    def test_bug_is_exactly_invertible(self, workload):
        # Restoring the classifier parameters reproduces the original's
        # outputs byte for byte — the feasibility witness at any scale.
        repaired = workload.buggy.copy()
        layer = repaired.layers[workload.classifier_layer]
        layer.set_parameters(
            workload.original.layers[workload.classifier_layer].get_parameters()
        )
        assert (
            repaired.compute(workload.points).tobytes()
            == workload.original.compute(workload.points).tobytes()
        )

    def test_driver_certifies_under_small_budget_with_spills(self, workload):
        report, driver = driver_certified_repair(workload, memory_budget=64 * 1024)
        assert report.status == "certified"
        assert report.certified
        assert report.num_rounds == 2
        assert driver.pool.spilled_entries > 0
        assert driver.pool.resident_bytes <= 16 * 1024
        # The repaired network satisfies the verification spec outright.
        clean = GridVerifier(certify_exhaustive=True).verify(
            report.network.value, workload.verification_spec()
        )
        assert clean.certified

    def test_budgeted_run_matches_unbudgeted_run(self, workload):
        budgeted, _ = driver_certified_repair(workload, memory_budget=64 * 1024)
        unbudgeted, _ = driver_certified_repair(workload)
        assert budgeted.status == unbudgeted.status == "certified"
        assert budgeted.num_rounds == unbudgeted.num_rounds
        assert value_parameters(budgeted) == value_parameters(unbudgeted)
        assert_reports_identical(budgeted.final_report, unbudgeted.final_report)

    def test_workload_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            classifier_perturbation_workload(0)
        with pytest.raises(ValueError):
            classifier_perturbation_workload(4, num_classes=9, bug_class=9)
