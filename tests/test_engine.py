"""Tests for the parallel execution engine (repro.engine).

The differential tests pin the acceptance guarantee of the subsystem: an
engine-backed run at any worker count — including ``workers=4`` across a
``spawn`` pool — produces byte-identical partitions, verification verdicts,
and repair deltas to the serial path, on the ACAS φ8 specification.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.acas import phi8_property
from repro.driver import RepairDriver
from repro.engine import (
    JobScheduler,
    ShardedSyrennEngine,
    geometry_digest,
    merge_line_partitions,
    shard_polygon,
    shard_segment,
)
from repro.exceptions import EngineError, JobCancelledError
from repro.experiments.task3_acas import Task3Setup, strengthened_verification_spec
from repro.models.acas_models import build_acas_network
from repro.nn.activations import ReLULayer
from repro.nn.linear import FullyConnectedLayer
from repro.nn.network import Network
from repro.polytope.hpolytope import HPolytope
from repro.polytope.segment import LineSegment
from repro.syrenn.line import transform_line
from repro.utils.rng import derive_seeds, ensure_rng
from repro.utils.timing import TimeBudget
from repro.verify import (
    GridVerifier,
    RandomVerifier,
    SyrennVerifier,
    VerificationSpec,
    Verifier,
)


@pytest.fixture
def plane_network(rng) -> Network:
    return Network(
        [
            FullyConnectedLayer.from_shape(2, 8, rng),
            ReLULayer(8),
            FullyConnectedLayer.from_shape(8, 6, rng),
            ReLULayer(6),
            FullyConnectedLayer.from_shape(6, 3, rng),
        ]
    )


@pytest.fixture
def mixed_spec() -> VerificationSpec:
    spec = VerificationSpec()
    constraint = HPolytope.argmax_region(3, 0, 1e-4)
    spec.add_plane([[-1, -1], [1, -1], [1, 1], [-1, 1]], constraint)
    spec.add_segment(LineSegment([-1.0, 0.0], [1.0, 0.0]), constraint)
    spec.add_box([-0.5, -1.0], [0.5, 1.0], constraint)
    spec.add_box([0.25, 0.25], [0.25, 0.25], constraint)  # degenerate: a point
    return spec


@pytest.fixture(scope="module")
def acas_phi8():
    """A small untrained ACAS advisory network plus the φ8 slice spec."""
    seed_rng = ensure_rng(7)
    network = build_acas_network(hidden_size=8, hidden_layers=2, seed=7)
    safety_property = phi8_property()
    slices = [safety_property.random_slice(seed_rng) for _ in range(3)]
    empty = np.zeros((0, 5))
    setup = Task3Setup(network, safety_property, slices, empty, empty, 0)
    spec = strengthened_verification_spec(network, setup)
    return network, spec


def assert_reports_identical(first, second) -> None:
    assert first.region_statuses == second.region_statuses
    assert first.region_margins == second.region_margins
    assert first.points_checked == second.points_checked
    assert first.linear_regions_checked == second.linear_regions_checked
    assert len(first.counterexamples) == len(second.counterexamples)
    for a, b in zip(first.counterexamples, second.counterexamples):
        assert a.point.tobytes() == b.point.tobytes()
        assert a.margin == b.margin
        assert a.region_index == b.region_index
        if a.activation_point is not None:
            assert a.activation_point.tobytes() == b.activation_point.tobytes()


class TestSharding:
    def test_shard_segment_endpoints(self):
        segment = LineSegment([0.0, 0.0], [4.0, 8.0])
        shards = shard_segment(segment, 4)
        assert len(shards) == 4
        np.testing.assert_array_equal(shards[0].start, segment.start)
        np.testing.assert_array_equal(shards[-1].end, segment.end)
        for earlier, later in zip(shards, shards[1:]):
            np.testing.assert_array_equal(earlier.end, later.start)

    def test_shard_segment_single_is_identity(self):
        segment = LineSegment([0.0], [1.0])
        assert shard_segment(segment, 1) == [segment]

    def test_shard_polygon_covers_and_caps(self):
        square = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
        wedges = shard_polygon(square, 2)
        assert len(wedges) == 2
        # A square's fan has two triangles, so requesting more caps there.
        assert len(shard_polygon(square, 8)) == 2
        from repro.polytope.polygon import polygon_area

        total = sum(polygon_area(wedge) for wedge in wedges)
        assert total == pytest.approx(1.0)

    def test_merge_line_partitions_refines_serial(self, plane_network):
        segment = LineSegment([-1.0, -1.0], [1.0, 1.0])
        serial = transform_line(plane_network, segment)
        shards = shard_segment(segment, 3)
        merged = merge_line_partitions(
            segment, [transform_line(plane_network, shard).ratios for shard in shards]
        )
        # Every serial breakpoint must appear in the merged (refined) set.
        for ratio in serial.ratios:
            assert np.min(np.abs(merged.ratios - ratio)) < 1e-7
        assert merged.ratios[0] == 0.0 and merged.ratios[-1] == 1.0
        assert np.all(np.diff(merged.ratios) > 0)

    def test_geometry_digest_separates_shard_layouts(self):
        segment = LineSegment([0.0], [1.0])
        assert geometry_digest(segment) == geometry_digest(segment, shards=1)
        assert geometry_digest(segment, shards=2) != geometry_digest(segment)


class TestJobScheduler:
    def test_priority_order_with_submission_tiebreak(self):
        dispatched = []

        def executor(tasks):
            dispatched.extend(tasks)
            return [task * 10 for task in tasks]

        scheduler = JobScheduler(executor=executor)
        scheduler.submit(1, priority=5)
        scheduler.submit(2, priority=0)
        scheduler.submit(3, priority=0)
        jobs = [scheduler.submit(4, priority=-1)]
        scheduler.gather(jobs)
        assert dispatched == [4, 2, 3, 1]

    def test_gather_returns_results_in_given_order(self):
        scheduler = JobScheduler(executor=lambda tasks: [task + 1 for task in tasks])
        jobs = scheduler.submit_many([10, 20, 30])
        assert scheduler.gather(list(reversed(jobs))) == [31, 21, 11]
        assert scheduler.jobs_executed == 3

    def test_cancelled_job_is_never_dispatched(self):
        dispatched = []

        def executor(tasks):
            dispatched.extend(tasks)
            return tasks

        scheduler = JobScheduler(executor=executor)
        keep = scheduler.submit("keep")
        drop = scheduler.submit("drop")
        assert scheduler.cancel(drop)
        with pytest.raises(JobCancelledError):
            scheduler.gather([keep, drop])
        assert dispatched == ["keep"]
        assert scheduler.gather([keep, drop], on_cancelled="none") == ["keep", None]

    def test_exhausted_budget_cancels_pending(self):
        scheduler = JobScheduler(executor=lambda tasks: tasks)
        jobs = scheduler.submit_many([1, 2, 3])
        results = scheduler.gather(jobs, budget=TimeBudget(0.0), on_cancelled="none")
        assert results == [None, None, None]
        assert scheduler.jobs_cancelled == 3
        assert scheduler.jobs_executed == 0

    def test_budget_interrupts_between_batches(self):
        import time as time_module

        def slow_executor(tasks):
            time_module.sleep(0.02)
            return tasks

        scheduler = JobScheduler(executor=slow_executor, batch_size=1)
        jobs = scheduler.submit_many(list(range(10)))
        results = scheduler.gather(jobs, budget=TimeBudget(0.01), on_cancelled="none")
        # The first batch ran (budget was fresh), later ones were cancelled.
        assert results[0] == 0
        assert None in results
        assert 0 < scheduler.jobs_executed < 10

    def test_engine_decomposition_honors_budget(self, plane_network):
        engine = ShardedSyrennEngine(workers=1, cache=False)
        segments = [
            LineSegment([-1.0, float(i) / 8.0], [1.0, float(i) / 8.0]) for i in range(8)
        ]
        with pytest.raises(JobCancelledError):
            engine.transform_lines(plane_network, segments, budget=TimeBudget(0.0))

    def test_map_unordered_yields_all_indexed_results(self):
        scheduler = JobScheduler(executor=lambda tasks: [task * 2 for task in tasks])
        results = dict(scheduler.map_unordered([5, 6, 7]))
        assert results == {0: 10, 1: 12, 2: 14}

    def test_batch_size_bounds_dispatches(self):
        sizes = []

        def executor(tasks):
            sizes.append(len(tasks))
            return tasks

        scheduler = JobScheduler(executor=executor, batch_size=2)
        scheduler.gather(scheduler.submit_many(list(range(5))))
        assert sizes == [2, 2, 1]
        assert scheduler.batches_dispatched == 3

    def test_gather_stops_once_requested_jobs_settle(self):
        executed = []

        def executor(tasks):
            executed.extend(tasks)
            return tasks

        scheduler = JobScheduler(executor=executor, batch_size=1)
        urgent = scheduler.submit("urgent", priority=-1)
        background = scheduler.submit_many(["bg0", "bg1", "bg2"])
        assert scheduler.gather([urgent]) == ["urgent"]
        # Background work was not drained on the urgent job's behalf...
        assert executed == ["urgent"]
        assert scheduler.pending() == 3
        # ...and is still there for its own gather later.
        assert scheduler.gather(background) == ["bg0", "bg1", "bg2"]

    def test_cobatched_jobs_keep_their_results(self):
        """Jobs dispatched in the same batch as a gathered job stay settled."""
        scheduler = JobScheduler(executor=lambda tasks: [task * 2 for task in tasks])
        first = scheduler.submit(1)
        second = scheduler.submit(2)  # same batch as `first`
        assert scheduler.gather([first]) == [2]
        assert second.done  # executed alongside first, result retained
        assert scheduler.gather([second]) == [4]

    def test_executor_length_mismatch_rejected(self):
        scheduler = JobScheduler(executor=lambda tasks: [])
        with pytest.raises(EngineError):
            scheduler.gather([scheduler.submit(1)])

    def test_default_executor_runs_callables(self):
        scheduler = JobScheduler()
        job = scheduler.submit(lambda: 42)
        assert scheduler.gather([job]) == [42]


class TestEngineValidation:
    def test_rejects_bad_configuration(self):
        with pytest.raises(EngineError):
            ShardedSyrennEngine(workers=0)
        with pytest.raises(EngineError):
            ShardedSyrennEngine(shards_per_region=0)

    def test_stats_shape(self):
        engine = ShardedSyrennEngine(workers=1, cache=False)
        stats = engine.stats()
        assert stats["workers"] == 1
        assert stats["cache"] is None
        assert stats["jobs_executed"] == 0


class TestSerialEquivalence:
    """workers=1 must preserve today's exact serial behavior bit for bit."""

    def test_transform_line_matches_syrenn(self, plane_network, tmp_path):
        segment = LineSegment([-1.0, 0.5], [1.0, -0.5])
        serial = transform_line(plane_network, segment)
        engine = ShardedSyrennEngine(workers=1, cache=False)
        assert engine.transform_line(plane_network, segment).ratios.tobytes() == (
            serial.ratios.tobytes()
        )

    def test_verifier_reports_identical(self, plane_network, mixed_spec):
        serial = SyrennVerifier().verify(plane_network, mixed_spec)
        engine = ShardedSyrennEngine(workers=1, cache=False)
        backed = SyrennVerifier(engine=engine).verify(plane_network, mixed_spec)
        assert_reports_identical(serial, backed)

    def test_cached_second_pass_identical(self, plane_network, mixed_spec, tmp_path):
        from repro.engine import PartitionCache

        engine = ShardedSyrennEngine(
            workers=1, cache=PartitionCache(directory=tmp_path)
        )
        verifier = SyrennVerifier(engine=engine)
        first = verifier.verify(plane_network, mixed_spec)
        executed = engine.scheduler.jobs_executed
        second = verifier.verify(plane_network, mixed_spec)
        assert engine.scheduler.jobs_executed == executed  # served from cache
        assert engine.cache.stats.memory.hits > 0
        assert_reports_identical(first, second)

    def test_grid_verifier_identical_through_engine(self, plane_network, mixed_spec):
        serial = GridVerifier(resolution=8).verify(plane_network, mixed_spec)
        engine = ShardedSyrennEngine(workers=1, cache=False)
        backed = GridVerifier(resolution=8, engine=engine).verify(plane_network, mixed_spec)
        assert_reports_identical(serial, backed)

    def test_sharded_refinement_keeps_verdicts(self, plane_network, mixed_spec):
        serial = SyrennVerifier().verify(plane_network, mixed_spec)
        engine = ShardedSyrennEngine(workers=1, shards_per_region=3, cache=False)
        sharded = SyrennVerifier(engine=engine).verify(plane_network, mixed_spec)
        assert serial.region_statuses == sharded.region_statuses
        np.testing.assert_allclose(serial.region_margins, sharded.region_margins, atol=1e-9)
        # The refinement checks at least as many linear regions.
        assert sharded.linear_regions_checked >= serial.linear_regions_checked


class TestEngineWiring:
    def test_driver_detaches_engine_after_run(self, plane_network, mixed_spec):
        verifier = SyrennVerifier()
        with ShardedSyrennEngine(workers=1, cache=False) as engine:
            report = RepairDriver(
                plane_network, mixed_spec, verifier, engine=engine, max_rounds=6
            ).run()
        assert report.status == "certified"
        assert report.engine_stats is not None
        assert report.engine_stats["jobs_executed"] > 0
        # The caller-owned verifier is restored, not left engine-backed.
        assert verifier.engine is None

    def test_driver_reports_stats_of_the_engine_actually_used(
        self, plane_network, mixed_spec
    ):
        """verifier's own engine wins over the driver-level one for stats."""
        with ShardedSyrennEngine(workers=1, cache=False) as used:
            with ShardedSyrennEngine(workers=1, cache=False) as unused:
                report = RepairDriver(
                    plane_network,
                    mixed_spec,
                    SyrennVerifier(engine=used),
                    engine=unused,
                    max_rounds=6,
                ).run()
        assert report.engine_stats["jobs_executed"] == used.scheduler.jobs_executed
        assert report.engine_stats["jobs_executed"] > 0
        assert unused.scheduler.jobs_executed == 0

    def test_no_stats_when_verifier_cannot_hold_an_engine(
        self, plane_network, mixed_spec
    ):
        """An engine the verification never ran through is not reported."""

        class EnginelessVerifier(Verifier):
            """A custom verifier with no engine support at all."""

            name = "engineless"

            def __init__(self):
                super().__init__()
                self._inner = SyrennVerifier()

            def verify(self, network, spec):
                return self._inner.verify(network, spec)

        with ShardedSyrennEngine(workers=1, cache=False) as engine:
            report = RepairDriver(
                plane_network,
                mixed_spec,
                EnginelessVerifier(),
                engine=engine,
                max_rounds=6,
            ).run()
        assert report.status == "certified"
        assert report.engine_stats is None
        assert engine.scheduler.jobs_executed == 0

    def test_cache_partitions_false_bypasses_engine_cache(
        self, plane_network, mixed_spec, tmp_path
    ):
        from repro.engine import PartitionCache

        engine = ShardedSyrennEngine(
            workers=1, cache=PartitionCache(directory=tmp_path)
        )
        SyrennVerifier(cache_partitions=False, engine=engine).verify(
            plane_network, mixed_spec
        )
        assert engine.cache.stats.memory.puts == 0
        assert engine.cache.stats.disk.puts == 0
        assert list(tmp_path.iterdir()) == []

    def test_evaluate_batches_ignores_activation_for_plain_network(
        self, plane_network
    ):
        """Matches Verifier._evaluate: activation points only apply to DDNNs."""
        points = np.array([[0.1, -0.2], [0.4, 0.3]])
        engine = ShardedSyrennEngine(workers=1, cache=False)
        outputs = engine.evaluate_batches(
            plane_network, [points], activation_points=[points[0]]
        )
        np.testing.assert_array_equal(outputs[0], plane_network.compute(points))
        with pytest.raises(EngineError):
            engine.evaluate_batches(
                plane_network, [points, points], activation_points=[points[0]]
            )


class TestWorkerRng:
    def test_derive_seeds_deterministic_and_stream_separated(self):
        assert derive_seeds(123, 4) == derive_seeds(123, 4)
        assert derive_seeds(123, 4) != derive_seeds(124, 4)
        assert derive_seeds(123, 4, stream=1) != derive_seeds(123, 4)

    def test_random_verifier_identical_at_any_worker_count(
        self, plane_network, mixed_spec
    ):
        with ShardedSyrennEngine(workers=1, cache=False) as serial_engine:
            first = RandomVerifier(64, seed=3, engine=serial_engine).verify(
                plane_network, mixed_spec
            )
        with ShardedSyrennEngine(workers=2, cache=False) as pooled_engine:
            second = RandomVerifier(64, seed=3, engine=pooled_engine).verify(
                plane_network, mixed_spec
            )
        assert_reports_identical(first, second)

    def test_successive_sweeps_probe_fresh_points(self, plane_network, mixed_spec):
        engine = ShardedSyrennEngine(workers=1, cache=False)
        verifier = RandomVerifier(16, seed=5, engine=engine)
        first = verifier.verify(plane_network, mixed_spec)
        second = verifier.verify(plane_network, mixed_spec)
        assert first.counterexamples and second.counterexamples
        assert (
            first.counterexamples[0].point.tobytes()
            != second.counterexamples[0].point.tobytes()
        )


class TestParallelDifferential:
    """The acceptance differential: workers=4 ≡ workers=1 on the ACAS φ8 spec."""

    def test_phi8_partitions_verdicts_and_deltas_identical(self, acas_phi8):
        network, spec = acas_phi8
        serial_report = SyrennVerifier().verify(network, spec)

        with ShardedSyrennEngine(workers=4, cache=False) as engine:
            # Partitions: byte-identical linear regions for every spec region.
            normalized = [np.asarray(entry.region, dtype=np.float64) for entry in spec.regions]
            parallel_regions = engine.decompose(network, normalized)
            serial_engine = ShardedSyrennEngine(workers=1, cache=False)
            serial_regions = serial_engine.decompose(network, normalized)
            assert len(parallel_regions) == len(serial_regions)
            for parallel, serial in zip(parallel_regions, serial_regions):
                assert len(parallel) == len(serial)
                for a, b in zip(parallel, serial):
                    assert a.vertices.tobytes() == b.vertices.tobytes()
                    assert a.interior.tobytes() == b.interior.tobytes()

            # Verdicts: the engine-backed verifier reproduces the serial report.
            parallel_report = SyrennVerifier(engine=engine).verify(network, spec)
            assert_reports_identical(serial_report, parallel_report)

            # Repair deltas: the engine-backed CEGIS driver lands on the same
            # certified network, parameter for parameter.
            parallel_driver = RepairDriver(
                network, spec, SyrennVerifier(engine=engine), engine=engine, max_rounds=4
            )
            parallel_outcome = parallel_driver.run()

        serial_driver = RepairDriver(network, spec, SyrennVerifier(), max_rounds=4)
        serial_outcome = serial_driver.run()
        assert serial_outcome.status == "certified"
        assert parallel_outcome.status == "certified"
        assert parallel_outcome.num_rounds == serial_outcome.num_rounds
        for layer_index in serial_outcome.network.repairable_layer_indices():
            serial_flat = serial_outcome.network.value.layers[layer_index].get_parameters()
            parallel_flat = parallel_outcome.network.value.layers[layer_index].get_parameters()
            assert serial_flat.tobytes() == parallel_flat.tobytes()

        # The engine-backed driver surfaces scheduler/cache statistics.
        assert parallel_outcome.engine_stats is not None
        assert parallel_outcome.engine_stats["workers"] == 4
        assert parallel_outcome.engine_stats["jobs_executed"] > 0
        assert "engine" in parallel_outcome.as_dict()

    def test_engine_built_spec_matches_serial_spec(self, acas_phi8):
        network, spec = acas_phi8
        setup = Task3Setup(
            network,
            phi8_property(),
            [np.asarray(entry.region) for entry in spec.regions[:0]],
            np.zeros((0, 5)),
            np.zeros((0, 5)),
            0,
        )
        # Rebuild the strengthened spec through the engine and compare.
        seed_rng = ensure_rng(7)
        setup.repair_slices = [setup.safety_property.random_slice(seed_rng) for _ in range(3)]
        with ShardedSyrennEngine(workers=2, cache=False) as engine:
            engine_spec = strengthened_verification_spec(network, setup, engine=engine)
        assert engine_spec.num_regions == spec.num_regions
        for ours, theirs in zip(engine_spec.regions, spec.regions):
            assert np.asarray(ours.region).tobytes() == np.asarray(theirs.region).tobytes()
            assert ours.constraint.a.tobytes() == theirs.constraint.a.tobytes()
