"""Tests for the individual layer types (linear, conv, activations, pooling, reshape)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import LayerError, ShapeError
from repro.nn.activations import (
    HardTanhLayer,
    LeakyReLULayer,
    ReLULayer,
    SigmoidLayer,
    TanhLayer,
)
from repro.nn.conv import Conv2DLayer, conv_output_size, window_indices
from repro.nn.layer import LayerKind
from repro.nn.linear import FullyConnectedLayer
from repro.nn.pooling import AvgPool2DLayer, GlobalAvgPoolLayer, MaxPool2DLayer
from repro.nn.reshape import FlattenLayer, NormalizeLayer


class TestFullyConnectedLayer:
    def test_forward_matches_matrix_formula(self, rng):
        layer = FullyConnectedLayer.from_shape(4, 3, rng)
        batch = rng.normal(size=(5, 4))
        expected = batch @ layer.weights.T + layer.biases
        np.testing.assert_allclose(layer.forward(batch), expected)

    def test_shape_properties(self, rng):
        layer = FullyConnectedLayer.from_shape(4, 3, rng)
        assert layer.input_size == 4
        assert layer.output_size == 3
        assert layer.kind is LayerKind.PARAMETERIZED
        assert layer.num_parameters == 4 * 3 + 3

    def test_wrong_input_size_rejected(self, rng):
        layer = FullyConnectedLayer.from_shape(4, 3, rng)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((2, 5)))

    def test_parameter_roundtrip(self, rng):
        layer = FullyConnectedLayer.from_shape(4, 3, rng)
        flat = layer.get_parameters()
        other = FullyConnectedLayer(np.zeros((3, 4)), np.zeros(3))
        other.set_parameters(flat)
        np.testing.assert_allclose(other.weights, layer.weights)
        np.testing.assert_allclose(other.biases, layer.biases)

    def test_set_parameters_wrong_size_rejected(self, rng):
        layer = FullyConnectedLayer.from_shape(4, 3, rng)
        with pytest.raises(LayerError):
            layer.set_parameters(np.zeros(7))

    def test_backward_input_is_transpose(self, rng):
        layer = FullyConnectedLayer.from_shape(4, 3, rng)
        grad_output = rng.normal(size=(2, 3))
        np.testing.assert_allclose(
            layer.backward_input(grad_output, None), grad_output @ layer.weights
        )

    def test_parameter_jacobian_structure(self, rng):
        layer = FullyConnectedLayer.from_shape(3, 2, rng)
        downstream = rng.normal(size=(4, 2))
        u = rng.normal(size=3)
        jacobian = layer.parameter_jacobian(downstream, u)
        assert jacobian.shape == (4, layer.num_parameters)
        # Column for weight (k, l) must equal downstream[:, k] * u[l].
        np.testing.assert_allclose(jacobian[:, 0 * 3 + 1], downstream[:, 0] * u[1])
        np.testing.assert_allclose(jacobian[:, 1 * 3 + 2], downstream[:, 1] * u[2])
        # Bias columns equal downstream columns.
        np.testing.assert_allclose(jacobian[:, 6:], downstream)

    def test_backward_parameters_matches_finite_differences(self, rng):
        layer = FullyConnectedLayer.from_shape(3, 2, rng)
        batch = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss() -> float:
            return float(np.sum((layer.forward(batch) - target) ** 2) / 2)

        grad_output = layer.forward(batch) - target
        analytic = layer.backward_parameters(grad_output, batch)
        params = layer.get_parameters()
        numeric = np.zeros_like(params)
        eps = 1e-6
        for index in range(params.size):
            perturbed = params.copy()
            perturbed[index] += eps
            layer.set_parameters(perturbed)
            up = loss()
            perturbed[index] -= 2 * eps
            layer.set_parameters(perturbed)
            down = loss()
            layer.set_parameters(params)
            numeric[index] = (up - down) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)


class TestActivationLayers:
    @pytest.mark.parametrize(
        "layer",
        [ReLULayer(4), LeakyReLULayer(4, 0.1), HardTanhLayer(4), TanhLayer(4), SigmoidLayer(4)],
        ids=["relu", "leaky", "hardtanh", "tanh", "sigmoid"],
    )
    def test_shapes_and_kind(self, layer):
        assert layer.kind is LayerKind.ACTIVATION
        assert layer.input_size == layer.output_size == 4
        assert layer.num_parameters == 0
        output = layer.forward(np.linspace(-2, 2, 4)[None, :])
        assert output.shape == (1, 4)

    def test_relu_values(self):
        layer = ReLULayer(3)
        np.testing.assert_allclose(
            layer.forward(np.array([[-1.0, 0.0, 2.0]])), [[0.0, 0.0, 2.0]]
        )

    def test_leaky_relu_values(self):
        layer = LeakyReLULayer(2, negative_slope=0.1)
        np.testing.assert_allclose(layer.forward(np.array([[-1.0, 2.0]])), [[-0.1, 2.0]])

    def test_hardtanh_clips(self):
        layer = HardTanhLayer(3)
        np.testing.assert_allclose(
            layer.forward(np.array([[-3.0, 0.5, 3.0]])), [[-1.0, 0.5, 1.0]]
        )

    def test_sigmoid_stable_for_large_inputs(self):
        layer = SigmoidLayer(2)
        output = layer.forward(np.array([[1000.0, -1000.0]]))
        assert np.all(np.isfinite(output))
        np.testing.assert_allclose(output, [[1.0, 0.0]], atol=1e-12)

    def test_piecewise_linear_flags(self):
        assert ReLULayer(1).is_piecewise_linear
        assert LeakyReLULayer(1).is_piecewise_linear
        assert HardTanhLayer(1).is_piecewise_linear
        assert not TanhLayer(1).is_piecewise_linear
        assert not SigmoidLayer(1).is_piecewise_linear

    def test_breakpoints(self):
        assert ReLULayer(1).piecewise_breakpoints() == (0.0,)
        assert HardTanhLayer(1).piecewise_breakpoints() == (-1.0, 1.0)
        with pytest.raises(LayerError):
            FlattenLayer(1).piecewise_breakpoints()

    @pytest.mark.parametrize(
        "layer",
        [ReLULayer(5), LeakyReLULayer(5), HardTanhLayer(5), TanhLayer(5), SigmoidLayer(5)],
        ids=["relu", "leaky", "hardtanh", "tanh", "sigmoid"],
    )
    def test_linearization_exact_at_center(self, layer, rng):
        preactivation = rng.normal(size=5) * 2.0
        linearization = layer.linearize(preactivation)
        np.testing.assert_allclose(
            linearization.apply(preactivation[None, :]),
            layer.forward(preactivation[None, :]),
            atol=1e-9,
        )

    def test_relu_linearization_masks(self):
        layer = ReLULayer(3)
        linearization = layer.linearize(np.array([-1.0, 2.0, -0.5]))
        values = np.array([[10.0, 10.0, 10.0]])
        np.testing.assert_allclose(linearization.apply(values), [[0.0, 10.0, 0.0]])

    def test_decoupled_forward_matches_linearize(self, rng):
        layer = TanhLayer(4)
        activation_preactivation = rng.normal(size=(3, 4))
        value_preactivation = rng.normal(size=(3, 4))
        batched = layer.decoupled_forward(activation_preactivation, value_preactivation)
        for row in range(3):
            linearization = layer.linearize(activation_preactivation[row])
            np.testing.assert_allclose(
                batched[row], linearization.apply(value_preactivation[row][None, :])[0]
            )

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            ReLULayer(0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_backward_input_matches_derivative(self, seed):
        rng = np.random.default_rng(seed)
        layer = TanhLayer(4)
        point = rng.normal(size=(1, 4))
        grad = layer.backward_input(np.ones((1, 4)), point)
        numeric = np.zeros(4)
        eps = 1e-6
        for index in range(4):
            up, down = point.copy(), point.copy()
            up[0, index] += eps
            down[0, index] -= eps
            numeric[index] = (layer.forward(up) - layer.forward(down))[0, index] / (2 * eps)
        np.testing.assert_allclose(grad[0], numeric, atol=1e-6)


class TestConvGeometry:
    def test_conv_output_size(self):
        assert conv_output_size(16, 3, 1, 1) == 16
        assert conv_output_size(16, 2, 2, 0) == 8
        with pytest.raises(LayerError):
            conv_output_size(5, 2, 2, 0)

    def test_window_indices_shapes(self):
        rows, cols, out_h, out_w = window_indices(4, 4, 2, 2, 2, 0)
        assert out_h == out_w == 2
        assert rows.shape == cols.shape == (4, 4)


class TestConv2DLayer:
    def make_layer(self, rng, **kwargs):
        defaults = dict(input_height=5, input_width=5, padding=1, rng=rng)
        defaults.update(kwargs)
        return Conv2DLayer.from_shape(2, 3, 3, **defaults)

    def test_shapes(self, rng):
        layer = self.make_layer(rng)
        assert layer.input_size == 2 * 5 * 5
        assert layer.output_size == 3 * 5 * 5
        assert layer.kind is LayerKind.PARAMETERIZED
        assert layer.num_parameters == 3 * 2 * 3 * 3 + 3

    def test_forward_matches_naive_convolution(self, rng):
        layer = self.make_layer(rng)
        image = rng.normal(size=(1, 2, 5, 5))
        output = layer.forward(image.reshape(1, -1)).reshape(3, 5, 5)
        padded = np.pad(image[0], ((0, 0), (1, 1), (1, 1)))
        for out_channel in range(3):
            for row in range(5):
                for col in range(5):
                    patch = padded[:, row:row + 3, col:col + 3]
                    expected = np.sum(patch * layer.kernels[out_channel]) + layer.biases[out_channel]
                    assert output[out_channel, row, col] == pytest.approx(expected)

    def test_wrong_input_size_rejected(self, rng):
        layer = self.make_layer(rng)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((1, 10)))

    def test_kernel_shape_validated(self):
        with pytest.raises(ShapeError):
            Conv2DLayer(np.zeros((2, 3, 3)), input_height=5, input_width=5)

    def test_parameter_roundtrip(self, rng):
        layer = self.make_layer(rng)
        flat = layer.get_parameters()
        layer.set_parameters(flat * 2.0)
        np.testing.assert_allclose(layer.get_parameters(), flat * 2.0)

    def test_backward_input_matches_finite_differences(self, rng):
        layer = self.make_layer(rng, input_height=4, input_width=4)
        point = rng.normal(size=(1, layer.input_size))
        weights = rng.normal(size=(1, layer.output_size))
        analytic = layer.backward_input(weights, point)[0]
        numeric = np.zeros(layer.input_size)
        eps = 1e-6
        for index in range(layer.input_size):
            up, down = point.copy(), point.copy()
            up[0, index] += eps
            down[0, index] -= eps
            difference = (layer.forward(up) - layer.forward(down))[0]
            numeric[index] = float(weights[0] @ difference) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_parameter_jacobian_matches_finite_differences(self, rng):
        layer = Conv2DLayer.from_shape(1, 2, 2, input_height=3, input_width=3, rng=rng)
        downstream = rng.normal(size=(2, layer.output_size))
        u = rng.normal(size=layer.input_size)
        analytic = layer.parameter_jacobian(downstream, u)
        params = layer.get_parameters()
        numeric = np.zeros_like(analytic)
        eps = 1e-6
        for index in range(params.size):
            perturbed = params.copy()
            perturbed[index] += eps
            layer.set_parameters(perturbed)
            up = downstream @ layer.forward(u[None, :])[0]
            perturbed[index] -= 2 * eps
            layer.set_parameters(perturbed)
            down = downstream @ layer.forward(u[None, :])[0]
            layer.set_parameters(params)
            numeric[:, index] = (up - down) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_stride_two_output_geometry(self, rng):
        layer = Conv2DLayer.from_shape(
            1, 2, 2, input_height=4, input_width=4, stride=2, padding=0, rng=rng
        )
        assert layer.output_height == layer.output_width == 2
        assert layer.forward(np.zeros((1, 16))).shape == (1, 2 * 4)


class TestPoolingLayers:
    def test_maxpool_forward(self):
        layer = MaxPool2DLayer(1, 4, 4, pool_size=2)
        image = np.arange(16.0).reshape(1, -1)
        output = layer.forward(image).reshape(2, 2)
        np.testing.assert_allclose(output, [[5.0, 7.0], [13.0, 15.0]])

    def test_maxpool_kind_and_linearization(self):
        layer = MaxPool2DLayer(1, 4, 4, pool_size=2)
        assert layer.kind is LayerKind.ACTIVATION
        assert layer.is_piecewise_linear
        preactivation = np.arange(16.0)
        linearization = layer.linearize(preactivation)
        # The linearization selects the same entries max pooling selected.
        np.testing.assert_allclose(
            linearization.apply(preactivation[None, :]), layer.forward(preactivation[None, :])
        )
        # Applied to different values it still selects positions 5, 7, 13, 15.
        other = np.linspace(0.0, 1.5, 16)[None, :]
        np.testing.assert_allclose(linearization.apply(other), other[:, [5, 7, 13, 15]])

    def test_maxpool_decoupled_forward_uses_activation_argmax(self):
        layer = MaxPool2DLayer(1, 2, 2, pool_size=2)
        activation = np.array([[0.0, 10.0, 0.0, 0.0]])  # winner is index 1
        value = np.array([[5.0, -7.0, 3.0, 1.0]])
        np.testing.assert_allclose(layer.decoupled_forward(activation, value), [[-7.0]])

    def test_maxpool_backward_routes_to_argmax(self):
        layer = MaxPool2DLayer(1, 2, 2, pool_size=2)
        forward_input = np.array([[1.0, 4.0, 2.0, 3.0]])
        grad = layer.backward_input(np.array([[1.0]]), forward_input)
        np.testing.assert_allclose(grad, [[0.0, 1.0, 0.0, 0.0]])

    def test_avgpool_forward_and_kind(self):
        layer = AvgPool2DLayer(1, 4, 4, pool_size=2)
        assert layer.kind is LayerKind.STATIC
        image = np.arange(16.0).reshape(1, -1)
        output = layer.forward(image).reshape(2, 2)
        np.testing.assert_allclose(output, [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_backward_distributes_evenly(self):
        layer = AvgPool2DLayer(1, 2, 2, pool_size=2)
        grad = layer.backward_input(np.array([[4.0]]), np.zeros((1, 4)))
        np.testing.assert_allclose(grad, [[1.0, 1.0, 1.0, 1.0]])

    def test_global_avg_pool(self):
        layer = GlobalAvgPoolLayer(2, 2, 2)
        values = np.concatenate([np.full(4, 2.0), np.arange(4.0)])[None, :]
        np.testing.assert_allclose(layer.forward(values), [[2.0, 1.5]])
        grad = layer.backward_input(np.array([[4.0, 8.0]]), values)
        np.testing.assert_allclose(grad[0, :4], 1.0)
        np.testing.assert_allclose(grad[0, 4:], 2.0)

    def test_wrong_pool_input_size_rejected(self):
        layer = MaxPool2DLayer(1, 4, 4, pool_size=2)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((1, 15)))


class TestReshapeLayers:
    def test_flatten_is_identity(self):
        layer = FlattenLayer(6)
        values = np.arange(6.0)[None, :]
        np.testing.assert_array_equal(layer.forward(values), values)
        np.testing.assert_array_equal(layer.backward_input(values, values), values)
        assert layer.kind is LayerKind.STATIC

    def test_flatten_rejects_bad_size(self):
        with pytest.raises(ValueError):
            FlattenLayer(0)

    def test_normalize_layer(self):
        layer = NormalizeLayer(np.array([1.0, 2.0]), np.array([2.0, 4.0]))
        np.testing.assert_allclose(layer.forward(np.array([[3.0, 6.0]])), [[1.0, 1.0]])
        np.testing.assert_allclose(
            layer.backward_input(np.array([[1.0, 1.0]]), None), [[0.5, 0.25]]
        )

    def test_normalize_rejects_nonpositive_std(self):
        with pytest.raises(ValueError):
            NormalizeLayer(np.zeros(2), np.array([1.0, 0.0]))
