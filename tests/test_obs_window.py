"""Unit and property tests for the windowed-observability layer.

Three modules under test:

* :mod:`repro.obs.window` — snapshot deltas (reset-safe), the shared
  fixed-bucket quantile estimator, and :class:`WindowStore` aggregates.
  The hypothesis suites pin the two algebraic claims the docstrings make:
  ``merge_snapshot`` is associative and commutative for counters and
  histograms, and a window's counter total equals the increments it
  observed regardless of where a source reset lands.
* :mod:`repro.obs.health` — :class:`SloSpec` validation/round-trip and the
  healthy/degraded/unhealthy grading, including vacuous health on no data.
* :mod:`repro.obs.profile` — :class:`SamplingProfiler` output format and
  the forced start-sample guarantee.

Everything here drives :class:`WindowStore` with explicit synthetic
timestamps — no clock reads — so every aggregate is bit-reproducible.
"""

from __future__ import annotations

import json
import threading
import time

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.obs import (
    DEGRADED,
    HEALTHY,
    UNHEALTHY,
    MetricsRegistry,
    SamplingProfiler,
    SloSpec,
    WindowStore,
    evaluate,
    histogram_quantile,
    quantiles_with_count,
    snapshot_delta,
)

# Histogram observations are quarter-integers (dyadic rationals): their
# sums are exact in binary floating point, so the associativity and
# commutativity assertions below compare for strict equality instead of
# hiding behind a tolerance.
BOUNDS = (0.5, 2.0, 8.0)


@st.composite
def registry_snapshots(draw):
    """A snapshot of a small registry with one counter and one histogram."""
    registry = MetricsRegistry()
    counter = registry.counter("c_total", "Counts.", labels=("kind",))
    hist = registry.histogram("h_seconds", "Seconds.", labels=("kind",), buckets=BOUNDS)
    pair = st.tuples(st.sampled_from(("a", "b")), st.integers(0, 64))
    for kind, amount in draw(st.lists(pair, max_size=8)):
        counter.inc(float(amount), kind=kind)
    for kind, quarters in draw(st.lists(pair, max_size=8)):
        hist.observe(quarters / 4.0, kind=kind)
    return registry.snapshot()


def counter_snapshot(value: float, name: str = "c_total") -> dict:
    return {
        name: {
            "kind": "counter",
            "help": "",
            "labels": ["kind"],
            "series": [{"labels": {"kind": "a"}, "value": float(value)}],
        }
    }


class TestMergeSnapshotProperties:
    @given(registry_snapshots(), registry_snapshots())
    def test_merge_is_commutative(self, a, b):
        """A+B == B+A for counters and histograms (gauges are last-write)."""
        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge_snapshot(a)
        ab.merge_snapshot(b)
        ba.merge_snapshot(b)
        ba.merge_snapshot(a)
        assert ab.snapshot() == ba.snapshot()

    @given(registry_snapshots(), registry_snapshots(), registry_snapshots())
    def test_merge_is_associative(self, a, b, c):
        """(A+B)+C == A+(B+C): worker deltas can merge in any grouping."""
        left = MetricsRegistry()
        for part in (a, b, c):
            left.merge_snapshot(part)
        inner = MetricsRegistry()
        inner.merge_snapshot(b)
        inner.merge_snapshot(c)
        right = MetricsRegistry()
        right.merge_snapshot(a)
        right.merge_snapshot(inner.snapshot())
        assert left.snapshot() == right.snapshot()


class TestWindowStoreProperties:
    @given(st.lists(st.integers(0, 50), min_size=2, max_size=20))
    def test_counter_total_without_resets(self, increments):
        """A monotone cumulative series windows to its post-anchor increments."""
        store = WindowStore()
        cumulative = 0
        for index, increment in enumerate(increments):
            cumulative += increment
            store.observe(counter_snapshot(cumulative), at=float(index))
        assert store.counter_sum("c_total") == float(sum(increments[1:]))

    @given(st.lists(st.integers(0, 50), min_size=3, max_size=20), st.data())
    def test_counter_total_with_a_detectable_reset(self, increments, data):
        """A reset contributes its post-restart value in full, never a negative."""
        reset_at = data.draw(st.integers(1, len(increments) - 1), label="reset_at")
        store = WindowStore()
        values = []
        cumulative = 0
        for index, increment in enumerate(increments):
            if index == reset_at:
                cumulative = 0
            cumulative += increment
            values.append(cumulative)
        # Only a value that actually went *down* is a detectable reset; a
        # restart that instantly overtakes the old count is invisible by
        # construction (that ambiguity is inherent to cumulative series).
        assume(values[reset_at] < values[reset_at - 1])
        for index, value in enumerate(values):
            store.observe(counter_snapshot(value), at=float(index))
        assert store.counter_sum("c_total") == float(sum(increments[1:]))
        assert store.counter_sum("c_total") >= 0.0

    @given(st.lists(st.integers(0, 64).map(lambda q: q / 4.0), min_size=1, max_size=16))
    def test_histogram_count_and_mean_accumulate(self, values):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", buckets=BOUNDS)
        store = WindowStore()
        store.observe(registry.snapshot(), at=0.0)  # anchor on an empty registry
        for index, value in enumerate(values):
            hist.observe(value)
            store.observe(registry.snapshot(), at=float(index + 1))
        assert store.observation_count("h_seconds") == len(values)
        assert store.mean("h_seconds") == sum(values) / len(values)


class TestSnapshotDelta:
    def test_counter_and_new_family_deltas(self):
        previous = counter_snapshot(5.0)
        current = counter_snapshot(8.0)
        current["new_total"] = counter_snapshot(2.0, name="new_total")["new_total"]
        delta = snapshot_delta(previous, current)
        assert delta["c_total"]["series"][0]["value"] == 3.0
        # A family absent from the previous snapshot contributes in full.
        assert delta["new_total"]["series"][0]["value"] == 2.0

    def test_counter_reset_takes_current_value_in_full(self):
        delta = snapshot_delta(counter_snapshot(100.0), counter_snapshot(4.0))
        assert delta["c_total"]["series"][0]["value"] == 4.0

    def test_gauges_copy_current(self):
        gauge = {
            "g": {"kind": "gauge", "help": "", "labels": [],
                  "series": [{"labels": {}, "value": 7.0}]}
        }
        assert snapshot_delta({}, gauge)["g"]["series"][0]["value"] == 7.0

    def test_histogram_delta_and_reset(self):
        def hist(buckets, total, sum_value):
            return {
                "h": {"kind": "histogram", "help": "", "labels": [],
                      "bounds": [1.0, 2.0],
                      "series": [{"labels": {}, "buckets": buckets,
                                  "count": total, "sum": sum_value}]}
            }

        delta = snapshot_delta(hist([2, 1, 0], 3, 2.5), hist([3, 2, 1], 6, 7.5))
        (series,) = delta["h"]["series"]
        assert series["buckets"] == [1, 1, 1]
        assert series["count"] == 3
        assert series["sum"] == 5.0
        # A bucket going backwards means the source restarted.
        reset = snapshot_delta(hist([2, 1, 0], 3, 2.5), hist([1, 0, 0], 1, 0.5))
        (series,) = reset["h"]["series"]
        assert series["buckets"] == [1, 0, 0]
        assert series["count"] == 1
        assert series["sum"] == 0.5


class TestHistogramQuantile:
    def test_empty_histogram_has_no_quantile(self):
        assert histogram_quantile((1.0, 2.0), (0, 0, 0), 0.99) is None

    def test_interpolates_inside_the_target_bucket(self):
        # Two observations in the first bucket [0, 1]: the median sits at
        # the bucket's halfway point.
        assert histogram_quantile((1.0, 2.0, 4.0), (2, 0, 0, 0), 0.5) == 0.5
        # [1, 1, 1] across (1, 2, 4): p50 rank 1.5 lands halfway into (1, 2].
        assert histogram_quantile((1.0, 2.0, 4.0), (1, 1, 1, 0), 0.5) == 1.5

    def test_overflow_bucket_clamps_to_top_finite_boundary(self):
        assert histogram_quantile((1.0, 2.0, 4.0), (0, 0, 0, 3), 0.5) == 4.0

    def test_quantile_out_of_range_raises(self):
        with pytest.raises(ValueError, match="quantile"):
            histogram_quantile((1.0,), (1, 0), 1.5)

    def test_quantiles_with_count_reports_honest_n(self):
        result = quantiles_with_count([0.5, 1.5, 3.0], (0.5, 0.99), (1.0, 2.0, 4.0))
        assert result["n"] == 3
        assert result["p50"] == 1.5
        # p99 is clamped inside the top occupied bucket, not extrapolated
        # past anything a sample actually experienced.
        assert result["p99"] <= 4.0
        assert quantiles_with_count([], (0.5,), (1.0,)) == {"n": 0, "p50": None}


class TestWindowStore:
    def test_first_observation_only_anchors(self):
        store = WindowStore()
        store.observe(counter_snapshot(10.0), at=1.0)
        assert store.deltas() == []
        assert store.counter_sum("c_total") == 0.0
        assert store.rate("c_total") is None

    def test_rate_and_label_subset_filtering(self):
        registry = MetricsRegistry()
        family = registry.counter("jobs_total", labels=("kind", "status"))
        store = WindowStore()
        store.observe(registry.snapshot(), at=0.0)
        family.inc(3, kind="repair", status="done")
        family.inc(1, kind="verify", status="done")
        family.inc(1, kind="repair", status="failed")
        store.observe(registry.snapshot(), at=10.0)
        assert store.counter_sum("jobs_total") == 5.0
        assert store.counter_sum("jobs_total", {"status": "done"}) == 4.0
        assert store.counter_sum("jobs_total", {"kind": "repair"}) == 4.0
        assert store.rate("jobs_total", {"status": "done"}) == 0.4
        assert store.ratio("jobs_total", {"status": "failed"}) == 0.2
        # No increments at all in the family: the ratio is undefined.
        assert store.ratio("absent_total", {"status": "failed"}) is None

    def test_window_argument_limits_the_lookback(self):
        store = WindowStore()
        for index, value in enumerate((0.0, 10.0, 11.0, 12.0)):
            store.observe(counter_snapshot(value), at=float(index * 100))
        assert store.counter_sum("c_total") == 12.0
        # Only the two most recent deltas end within the last 150 seconds
        # (lookback is measured from the newest delta's end).
        assert store.counter_sum("c_total", window=150.0) == 2.0
        assert store.span_seconds(window=150.0) == 200.0

    def test_non_increasing_timestamp_reanchors(self):
        store = WindowStore()
        store.observe(counter_snapshot(0.0), at=5.0)
        store.observe(counter_snapshot(3.0), at=5.0)  # same clock reading
        assert store.deltas() == []
        store.observe(counter_snapshot(4.0), at=6.0)
        assert store.counter_sum("c_total") == 1.0

    def test_max_deltas_bounds_retention(self):
        store = WindowStore(max_deltas=2)
        for index in range(5):
            store.observe(counter_snapshot(float(index)), at=float(index))
        assert len(store.deltas()) == 2
        assert store.counter_sum("c_total") == 2.0
        with pytest.raises(ValueError, match="max_deltas"):
            WindowStore(max_deltas=0)

    def test_merge_interleaves_by_end_time(self):
        left, right = WindowStore(), WindowStore()
        left.observe(counter_snapshot(0.0), at=0.0)
        left.observe(counter_snapshot(2.0), at=2.0)
        right.observe(counter_snapshot(0.0), at=1.0)
        right.observe(counter_snapshot(5.0), at=3.0)
        merged = left.merge(right)
        assert [delta.end for delta in merged.deltas()] == [2.0, 3.0]
        assert merged.counter_sum("c_total") == 7.0

    def test_histogram_quantile_over_the_window(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", buckets=(1.0, 2.0, 4.0))
        store = WindowStore()
        store.observe(registry.snapshot(), at=0.0)
        for value in (0.5, 1.5, 3.0, 3.5):
            hist.observe(value)
        store.observe(registry.snapshot(), at=1.0)
        assert store.observation_count("h_seconds") == 4
        # Counts [1, 1, 2] across (1, 2, 4): rank 2 lands exactly on the
        # upper edge of the (1, 2] bucket.
        assert store.quantile("h_seconds", 0.5) == 2.0
        assert store.quantile("absent_seconds", 0.5) is None


class TestSloSpec:
    def fail_ratio_spec(self, **overrides) -> SloSpec:
        fields = dict(
            name="job_failure_ratio",
            series="jobs_total",
            agg="ratio",
            numerator={"status": "failed"},
            degraded=0.1,
            unhealthy=0.5,
        )
        fields.update(overrides)
        return SloSpec(**fields)

    def test_validation_rejects_malformed_specs(self):
        with pytest.raises(ValueError, match="op"):
            self.fail_ratio_spec(op="<")
        with pytest.raises(ValueError, match="aggregation"):
            self.fail_ratio_spec(agg="p999")
        with pytest.raises(ValueError, match="numerator"):
            SloSpec(name="x", series="s", agg="ratio", degraded=0.1)
        with pytest.raises(ValueError, match="beyond"):
            self.fail_ratio_spec(degraded=0.5, unhealthy=0.1)
        with pytest.raises(ValueError, match="beyond"):
            self.fail_ratio_spec(op=">=", degraded=0.1, unhealthy=0.5)

    def test_round_trips_through_json(self):
        spec = self.fail_ratio_spec(labels={"kind": "repair"}, window=60.0)
        rebuilt = SloSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert rebuilt == spec
        with pytest.raises(ValueError, match="unknown SLO spec fields"):
            SloSpec.from_dict({**spec.as_dict(), "threshold": 1.0})

    def test_grading_lower_is_better(self):
        spec = self.fail_ratio_spec()
        assert spec.grade(None) == (HEALTHY, f"{spec.name}: no data in window (vacuously healthy)")
        assert spec.grade(0.05)[0] == HEALTHY
        assert spec.grade(0.2)[0] == DEGRADED
        status, reason = spec.grade(0.9)
        assert status == UNHEALTHY
        assert "violates <= 0.5" in reason

    def test_grading_higher_is_better(self):
        spec = SloSpec(
            name="cache_hit_ratio", series="cache_total", agg="ratio",
            numerator={"result": "hit"}, op=">=", degraded=0.8, unhealthy=0.2,
        )
        assert spec.grade(0.9)[0] == HEALTHY
        assert spec.grade(0.5)[0] == DEGRADED
        assert spec.grade(0.1)[0] == UNHEALTHY

    def _store_with_failures(self, done: int, failed: int) -> WindowStore:
        registry = MetricsRegistry()
        family = registry.counter("jobs_total", labels=("status",))
        store = WindowStore()
        store.observe(registry.snapshot(), at=0.0)
        family.inc(done, status="done")
        family.inc(failed, status="failed")
        store.observe(registry.snapshot(), at=10.0)
        return store

    def test_evaluate_worst_verdict_wins(self):
        specs = [
            self.fail_ratio_spec(),
            SloSpec(name="job_rate", series="jobs_total", agg="rate", degraded=1e6),
        ]
        verdict = evaluate(specs, self._store_with_failures(done=8, failed=2))
        assert verdict["status"] == DEGRADED  # ratio 0.2 degrades, rate is fine
        assert verdict["window_seconds"] == 10.0
        assert len(verdict["reasons"]) == 1 and "job_failure_ratio" in verdict["reasons"][0]
        by_name = {entry["name"]: entry for entry in verdict["slos"]}
        assert by_name["job_failure_ratio"]["value"] == 0.2
        assert by_name["job_rate"]["status"] == HEALTHY
        assert SloSpec.from_dict(by_name["job_rate"]["spec"]).agg == "rate"

        unhealthy = evaluate(specs, self._store_with_failures(done=2, failed=8))
        assert unhealthy["status"] == UNHEALTHY

    def test_evaluate_empty_store_is_vacuously_healthy(self):
        verdict = evaluate([self.fail_ratio_spec()], WindowStore())
        assert verdict["status"] == HEALTHY
        assert verdict["reasons"] == []
        assert "vacuously" in verdict["slos"][0]["reason"]


class TestSamplingProfiler:
    def test_forced_start_sample_captures_the_caller(self):
        # A one-minute interval: the only sample is the synchronous one
        # taken inside start(), which must still see this very function.
        profiler = SamplingProfiler(interval=60.0, thread_ids=(threading.get_ident(),))
        profiler.start()
        profiler.stop()
        document = profiler.as_dict()
        assert document["samples"] >= 1
        assert document["interval_seconds"] == 60.0
        assert "test_forced_start_sample_captures_the_caller" in document["folded"]
        assert sum(document["stacks"].values()) >= 1

    def test_folded_lines_parse_as_stack_and_count(self):
        with SamplingProfiler(interval=0.001) as profiler:
            deadline = time.monotonic() + 0.5
            while time.monotonic() < deadline and profiler.sample_count < 5:
                sum(range(200))
        assert profiler.sample_count >= 2
        for line in profiler.folded().splitlines():
            stack, _, count = line.rpartition(" ")
            assert int(count) >= 1
            for frame in stack.split(";"):
                module, name, lineno = frame.rsplit(":", 2)
                assert module and name and int(lineno) >= 1

    def test_stop_is_idempotent_and_output_stable(self):
        profiler = SamplingProfiler(interval=0.001).start()
        profiler.stop()
        frozen = profiler.folded()
        profiler.stop()
        assert profiler.folded() == frozen

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError, match="interval"):
            SamplingProfiler(interval=0.0)
