"""Tests for Decoupled DNNs: the paper's Theorems 4.4, 4.5, and 4.6."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ddnn import DecoupledNetwork
from repro.core.jacobian import finite_difference_jacobian, specification_jacobians
from repro.core.linearize import linearization_exact_at_center, linearize_activation
from repro.core.specs import PointRepairSpec
from repro.exceptions import ShapeError, UnsupportedLayerError
from repro.nn.activations import ReLULayer, SigmoidLayer, TanhLayer
from repro.nn.conv import Conv2DLayer
from repro.nn.linear import FullyConnectedLayer
from repro.nn.network import Network
from repro.nn.pooling import MaxPool2DLayer
from repro.polytope.hpolytope import HPolytope
from repro.polytope.segment import LineSegment
from repro.syrenn.line import transform_line
from tests.conftest import make_random_relu_network, make_random_tanh_network


def make_conv_network(rng) -> Network:
    """A small conv/maxpool/dense network for DDNN tests."""
    return Network(
        [
            Conv2DLayer.from_shape(1, 3, 3, input_height=6, input_width=6, padding=1, rng=rng),
            ReLULayer(3 * 6 * 6),
            MaxPool2DLayer(3, 6, 6, pool_size=2),
            FullyConnectedLayer.from_shape(3 * 3 * 3, 4, rng),
        ]
    )


class TestLinearize:
    def test_linearize_activation_requires_activation_layer(self, rng):
        with pytest.raises(TypeError):
            linearize_activation(FullyConnectedLayer.from_shape(2, 2, rng), np.zeros(2))

    @pytest.mark.parametrize("layer", [ReLULayer(4), TanhLayer(4), SigmoidLayer(4)])
    def test_exact_at_center(self, layer, rng):
        assert linearization_exact_at_center(layer, rng.normal(size=4))


class TestTheorem44Equivalence:
    """Theorem 4.4: the trivially decoupled DDNN equals the original network."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_relu_network_equivalence(self, seed):
        rng = np.random.default_rng(seed)
        network = make_random_relu_network(rng, (4, 9, 7, 3))
        ddnn = DecoupledNetwork.from_network(network)
        batch = rng.normal(size=(6, 4))
        np.testing.assert_allclose(ddnn.compute(batch), network.compute(batch), atol=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_tanh_network_equivalence(self, seed):
        rng = np.random.default_rng(seed)
        network = make_random_tanh_network(rng, (3, 7, 5, 2))
        ddnn = DecoupledNetwork.from_network(network)
        batch = rng.normal(size=(5, 3))
        np.testing.assert_allclose(ddnn.compute(batch), network.compute(batch), atol=1e-9)

    def test_conv_maxpool_network_equivalence(self, rng):
        network = make_conv_network(rng)
        ddnn = DecoupledNetwork.from_network(network)
        batch = rng.normal(size=(4, network.input_size))
        np.testing.assert_allclose(ddnn.compute(batch), network.compute(batch), atol=1e-9)

    def test_toy_network_equivalence(self, toy_network):
        ddnn = DecoupledNetwork.from_network(toy_network)
        for value in np.linspace(-1.0, 2.0, 13):
            assert ddnn.compute(np.array([value])) == pytest.approx(
                toy_network.compute(np.array([value]))
            )


class TestDDNNInterface:
    def test_channel_shape_validation(self, toy_network, rng):
        other = make_random_relu_network(rng, (1, 4, 1))
        with pytest.raises(ShapeError):
            DecoupledNetwork(toy_network, other)

    def test_depth_mismatch_rejected(self, toy_network, rng):
        shallow = Network([FullyConnectedLayer.from_shape(1, 1, rng)])
        with pytest.raises(ShapeError):
            DecoupledNetwork(toy_network, shallow)

    def test_activation_values_shape_checked(self, toy_network):
        ddnn = DecoupledNetwork.from_network(toy_network)
        with pytest.raises(ShapeError):
            ddnn.compute(np.array([0.5]), np.array([[0.5], [0.6]]))

    def test_repairable_layer_indices(self, toy_network):
        ddnn = DecoupledNetwork.from_network(toy_network)
        assert ddnn.repairable_layer_indices() == [0, 2]

    def test_check_repairable_rejects_activation_layer(self, toy_network):
        ddnn = DecoupledNetwork.from_network(toy_network)
        with pytest.raises(UnsupportedLayerError):
            ddnn.parameter_jacobian(1, np.array([0.5]))
        with pytest.raises(UnsupportedLayerError):
            ddnn.parameter_jacobian(17, np.array([0.5]))

    def test_negative_layer_index(self, toy_network):
        ddnn = DecoupledNetwork.from_network(toy_network)
        output, jacobian = ddnn.parameter_jacobian(-1, np.array([0.5]))
        assert jacobian.shape == (1, 4)

    def test_apply_parameter_delta_validates_size(self, toy_network):
        ddnn = DecoupledNetwork.from_network(toy_network)
        with pytest.raises(ShapeError):
            ddnn.apply_parameter_delta(0, np.zeros(3))

    def test_predict_and_accuracy(self, rng):
        network = make_random_relu_network(rng, (4, 8, 3))
        ddnn = DecoupledNetwork.from_network(network)
        batch = rng.normal(size=(10, 4))
        np.testing.assert_array_equal(ddnn.predict(batch), network.predict(batch))
        assert ddnn.accuracy(batch, network.predict(batch)) == 1.0

    def test_copy_is_independent(self, toy_network):
        ddnn = DecoupledNetwork.from_network(toy_network)
        clone = ddnn.copy()
        clone.apply_parameter_delta(0, np.ones(6))
        np.testing.assert_allclose(
            ddnn.compute(np.array([0.5])), toy_network.compute(np.array([0.5]))
        )

    def test_is_piecewise_linear(self, toy_network, random_tanh_network):
        assert DecoupledNetwork.from_network(toy_network).is_piecewise_linear()
        assert not DecoupledNetwork.from_network(random_tanh_network).is_piecewise_linear()


class TestTheorem45Linearity:
    """Theorem 4.5: the DDNN output is exactly affine in one value layer's parameters."""

    def test_paper_jacobian_values(self, toy_network):
        """The overview's Jacobians: N'(X1) row [·, -0.5, ·] and N'(X2) row [·, -1.5, 1.5, ·, ·, 1]."""
        ddnn = DecoupledNetwork.from_network(toy_network)
        output, jacobian = ddnn.parameter_jacobian(0, np.array([0.5]))
        assert output == pytest.approx(-0.5)
        # Weight columns: x→h1, x→h2, x→h3; bias columns: b1, b2, b3.
        np.testing.assert_allclose(jacobian, [[0.0, -0.5, 0.0, 0.0, -1.0, 0.0]])
        output, jacobian = ddnn.parameter_jacobian(0, np.array([1.5]))
        assert output == pytest.approx(-1.0)
        np.testing.assert_allclose(jacobian, [[0.0, -1.5, 1.5, 0.0, -1.0, 1.0]])

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), layer_choice=st.integers(0, 2))
    def test_exact_affinity_in_value_parameters(self, seed, layer_choice):
        rng = np.random.default_rng(seed)
        network = make_random_relu_network(rng, (3, 7, 6, 2))
        ddnn = DecoupledNetwork.from_network(network)
        layer_index = ddnn.repairable_layer_indices()[layer_choice]
        point = rng.normal(size=3)
        output, jacobian = ddnn.parameter_jacobian(layer_index, point)
        # Apply a random (large!) delta: the affine prediction must be exact.
        delta = rng.normal(size=jacobian.shape[1]) * 3.0
        predicted = output + jacobian @ delta
        modified = ddnn.copy()
        modified.apply_parameter_delta(layer_index, delta)
        np.testing.assert_allclose(modified.compute(point), predicted, atol=1e-7)

    def test_affinity_for_tanh_network(self, rng):
        network = make_random_tanh_network(rng, (3, 6, 4, 2))
        ddnn = DecoupledNetwork.from_network(network)
        point = rng.normal(size=3)
        for layer_index in ddnn.repairable_layer_indices():
            output, jacobian = ddnn.parameter_jacobian(layer_index, point)
            delta = rng.normal(size=jacobian.shape[1])
            modified = ddnn.copy()
            modified.apply_parameter_delta(layer_index, delta)
            np.testing.assert_allclose(
                modified.compute(point), output + jacobian @ delta, atol=1e-7
            )

    def test_affinity_for_conv_maxpool_network(self, rng):
        network = make_conv_network(rng)
        ddnn = DecoupledNetwork.from_network(network)
        point = rng.normal(size=network.input_size)
        for layer_index in ddnn.repairable_layer_indices():
            output, jacobian = ddnn.parameter_jacobian(layer_index, point)
            delta = rng.normal(size=jacobian.shape[1])
            modified = ddnn.copy()
            modified.apply_parameter_delta(layer_index, delta)
            np.testing.assert_allclose(
                modified.compute(point), output + jacobian @ delta, atol=1e-7
            )

    def test_jacobian_matches_finite_differences(self, rng):
        network = make_random_relu_network(rng, (3, 6, 4, 2))
        ddnn = DecoupledNetwork.from_network(network)
        point = rng.normal(size=3)
        for layer_index in ddnn.repairable_layer_indices():
            _, analytic = ddnn.parameter_jacobian(layer_index, point)
            numeric = finite_difference_jacobian(ddnn, layer_index, point)
            np.testing.assert_allclose(analytic, numeric, atol=1e-4)

    def test_specification_jacobians_shapes(self, toy_network):
        ddnn = DecoupledNetwork.from_network(toy_network)
        spec = PointRepairSpec(
            points=np.array([[0.5], [1.5]]),
            constraints=[HPolytope.from_interval(1, 0, -1.0, 0.0)] * 2,
        )
        outputs, jacobians = specification_jacobians(ddnn, 0, spec)
        assert outputs.shape == (2, 1)
        assert jacobians.shape == (2, 1, 6)


class TestTheorem46RegionsPreserved:
    """Theorem 4.6: changing value weights does not move the linear regions."""

    def test_value_edit_preserves_linear_regions(self, toy_network):
        ddnn = DecoupledNetwork.from_network(toy_network)
        # A value-channel edit equivalent to the paper's N4 (x→h3 weight 1→2).
        ddnn.apply_parameter_delta(0, np.array([0.0, 0.0, 1.0, 0.0, 0.0, 0.0]))
        partition = transform_line(
            ddnn.activation, LineSegment(np.array([-1.0]), np.array([2.0]))
        )
        np.testing.assert_allclose(
            partition.breakpoint_inputs.ravel(), [-1.0, 0.0, 1.0, 2.0], atol=1e-9
        )
        # ... while the same edit to the *network itself* (N2) moves them.
        from repro.models.toy import paper_network_n2

        moved = transform_line(
            paper_network_n2(), LineSegment(np.array([-1.0]), np.array([2.0]))
        )
        assert not np.allclose(
            moved.breakpoint_inputs.ravel(), partition.breakpoint_inputs.ravel()
        )

    def test_ddnn_piecewise_structure_after_value_edit(self, rng):
        """Within a region of the activation channel the edited DDNN stays affine.

        Region vertices lie on activation-pattern boundaries, so (per Appendix
        B) they are evaluated with the region's interior point pinned as the
        activation point; interior points use their own pattern, which is the
        same one.
        """
        network = make_random_relu_network(rng, (2, 8, 6, 2))
        ddnn = DecoupledNetwork.from_network(network)
        layer_index = ddnn.repairable_layer_indices()[1]
        delta = rng.normal(size=ddnn.value.layers[layer_index].num_parameters)
        ddnn.apply_parameter_delta(layer_index, delta)
        segment = LineSegment(rng.normal(size=2) * 2, rng.normal(size=2) * 2)
        partition = transform_line(ddnn.activation, segment)
        for region in partition.regions:
            left, right = region.vertices
            interior = region.interior_point
            midpoint = 0.5 * (left + right)
            interpolated = 0.5 * (
                ddnn.compute(left, interior) + ddnn.compute(right, interior)
            )
            np.testing.assert_allclose(ddnn.compute(midpoint, interior), interpolated, atol=1e-7)
            # The midpoint's own activation pattern is the region's pattern,
            # so pinning the activation point there must not change anything.
            np.testing.assert_allclose(
                ddnn.compute(midpoint), ddnn.compute(midpoint, interior), atol=1e-9
            )
