"""Tests for deterministic LP solver racing.

Two layers of pinning:

* a **differential matrix** on the strengthened ACAS φ8 driver workload:
  a ``race:`` run must be byte-identical to a solo run of its preferred
  backend across backend-order permutations × workers {1,4} × incremental
  on/off — racing is a latency hedge, never a second source of truth;
* **fault injection** through registered stub backends: a racer that
  crashes (or hangs, honouring the cooperative ``cancel_event``) must not
  change the returned answer or raise — the failure lands in telemetry.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

import repro.obs as obs
from repro.datasets.acas import phi8_property
from repro.driver import RepairDriver
from repro.engine import ShardedSyrennEngine
from repro.exceptions import LPError
from repro.experiments.task3_acas import Task3Setup, strengthened_verification_spec
from repro.lp.backends import get_backend, register_backend, unregister_backend
from repro.lp.backends.base import LPBackend
from repro.lp.model import LPModel, LPSolution
from repro.lp.norms import add_norm_objective
from repro.lp.racing import RacingBackend, parse_race_spec
from repro.lp.status import LPStatus
from repro.models.acas_models import build_acas_network
from repro.utils.rng import ensure_rng
from repro.verify import SyrennVerifier


@pytest.fixture(scope="module")
def acas_phi8():
    """A small untrained ACAS advisory network plus the strengthened φ8 spec."""
    seed_rng = ensure_rng(7)
    network = build_acas_network(hidden_size=8, hidden_layers=2, seed=7)
    safety_property = phi8_property()
    slices = [safety_property.random_slice(seed_rng) for _ in range(3)]
    empty = np.zeros((0, 5))
    setup = Task3Setup(network, safety_property, slices, empty, empty, 0)
    return network, strengthened_verification_spec(network, setup)


def value_parameters(report) -> list[bytes]:
    return [
        report.network.value.layers[index].get_parameters().tobytes()
        for index in report.network.repairable_layer_indices()
    ]


def run_driver(acas_phi8, backend: str, *, incremental: bool, workers: int):
    network, spec = acas_phi8

    def run(engine=None):
        return RepairDriver(
            network,
            spec,
            SyrennVerifier(engine=engine),
            max_rounds=20,
            incremental=incremental,
            max_new_counterexamples=4,
            backend=backend,
        ).run()

    if workers > 1:
        with ShardedSyrennEngine(workers=workers, cache=False) as engine:
            return run(engine)
    return run()


def fence_form(sparse: bool = False):
    """min ||d||_inf subject to d_i >= 0.5 — optimum 0.5, unique solve."""
    model = LPModel()
    delta = model.add_variables(4, "d")
    add_norm_objective(model, delta, "linf")
    model.add_leq_block(-np.eye(4), -np.full(4, 0.5), delta)
    return model.standard_form(sparse=sparse)


class CrashingBackend(LPBackend):
    """A racer that always raises — the fault-injection stub."""

    name = "crashing_stub"
    supports_sparse = True

    def solve(self, c, a_ub, b_ub, a_eq, b_eq, bounds, warm_start=None):
        raise RuntimeError("injected solver crash")


class ErrorBackend(LPBackend):
    """A racer that fails in-band: returns ``LPStatus.ERROR`` (the native
    backend's spelling of a binding crash) instead of raising."""

    name = "error_stub"
    supports_sparse = True

    def solve(self, c, a_ub, b_ub, a_eq, b_eq, bounds, warm_start=None):
        return LPSolution(LPStatus.ERROR, message="injected in-band failure")


class SlowStatefulBackend(LPBackend):
    """A slow racer that, like ``highs_native``, must never see two solves
    on one instance at once — overlap is recorded and fails the test."""

    name = "slow_stateful_stub"
    supports_sparse = True

    def __init__(self) -> None:
        self.busy = threading.Lock()
        self.overlapped = threading.Event()
        self.completed = 0

    def solve(self, c, a_ub, b_ub, a_eq, b_eq, bounds, warm_start=None):
        if not self.busy.acquire(blocking=False):
            self.overlapped.set()
            raise RuntimeError("overlapping solve on a stateful backend")
        try:
            time.sleep(0.05)
            solution = get_backend("scipy").solve(c, a_ub, b_ub, a_eq, b_eq, bounds)
            self.completed += 1
            return solution
        finally:
            self.busy.release()


class HangingBackend(LPBackend):
    """A racer that blocks until cooperatively cancelled.

    Exposes the ``cancel_event`` attribute the race looks for; a solve
    parks on the event and only ever ends by cancellation (or a 30 s
    safety timeout that fails the test loudly instead of deadlocking it).
    """

    name = "hanging_stub"
    supports_sparse = True

    def __init__(self) -> None:
        self.cancel_event = threading.Event()
        self.cancelled = threading.Event()

    def solve(self, c, a_ub, b_ub, a_eq, b_eq, bounds, warm_start=None):
        if self.cancel_event.wait(timeout=30.0):
            self.cancelled.set()
            raise RuntimeError("cancelled cooperatively")
        raise RuntimeError("hanging stub was never cancelled")


@pytest.fixture
def registered_stubs():
    register_backend("crashing_stub", CrashingBackend)
    register_backend("hanging_stub", HangingBackend)
    yield
    unregister_backend("crashing_stub")
    unregister_backend("hanging_stub")


class TestRaceSpecParsing:
    def test_members_in_preference_order(self):
        assert parse_race_spec("race:highs_native,scipy") == ["highs_native", "scipy"]
        assert parse_race_spec("race: a , b , c ") == ["a", "b", "c"]

    @pytest.mark.parametrize("spec", ["race:", "race:solo", "race:a,a"])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(LPError):
            parse_race_spec(spec)


class TestRacingDeterminismMatrix:
    """Race == solo preferred, byte for byte, across the whole matrix."""

    @pytest.mark.parametrize("order", [("scipy", "simplex"), ("simplex", "scipy")])
    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("incremental", [False, True])
    def test_race_matches_solo_preferred(self, acas_phi8, order, workers, incremental):
        spec = "race:" + ",".join(order)
        race = run_driver(acas_phi8, spec, incremental=incremental, workers=workers)
        solo = run_driver(acas_phi8, order[0], incremental=incremental, workers=1)

        assert race.status == "certified" and solo.status == "certified"
        # Byte-identical repaired parameters and identical trajectories:
        # whichever member wins the wall clock, the *answer* is always the
        # preferred member's, so the CEGIS rounds cannot diverge.
        assert value_parameters(race) == value_parameters(solo)
        assert race.num_rounds == solo.num_rounds
        assert race.final_report.region_statuses == solo.final_report.region_statuses
        assert race.final_report.region_margins == solo.final_report.region_margins
        for solo_round, race_round in zip(solo.rounds, race.rounds):
            assert race_round.pool_size == solo_round.pool_size
            assert race_round.layer_index == solo_round.layer_index

    def test_single_solve_returns_preferred_bytes(self):
        form = fence_form()
        race = get_backend("race:scipy,simplex")
        solo = get_backend("scipy")
        raced, soloed = race.solve(*form), solo.solve(*form)
        assert raced.status is LPStatus.OPTIMAL
        assert raced.values.tobytes() == soloed.values.tobytes()
        assert raced.objective == soloed.objective
        # The handle is minted by the preferred member, so a session can
        # thread it straight back into the next raced round.
        assert raced.warm_start is not None and raced.warm_start.backend == "scipy"

    def test_win_loss_telemetry_accumulates(self):
        form = fence_form()
        race = get_backend("race:scipy,simplex")
        with obs.isolated():
            for _ in range(3):
                race.solve(*form)
            wins = obs.counter("repro_lp_race_wins_total", labels=("backend",))
            losses = obs.counter("repro_lp_race_losses_total", labels=("backend",))
            total_wins = sum(wins.value(backend=name) for name in ("scipy", "simplex"))
            total_losses = sum(losses.value(backend=name) for name in ("scipy", "simplex"))
        # Exactly one wall-clock winner per solve; every other finisher
        # either loses or is cancelled.
        assert total_wins == 3.0
        assert total_losses <= 3.0


class TestRacingFaultInjection:
    def test_crashing_racer_does_not_change_the_answer(self, registered_stubs):
        form = fence_form()
        race = get_backend("race:scipy,crashing_stub")
        solo = get_backend("scipy")
        with obs.isolated():
            raced = race.solve(*form)
            failures = obs.counter(
                "repro_lp_race_failures_total", labels=("backend",)
            ).value(backend="crashing_stub")
            cancelled = obs.counter(
                "repro_lp_race_cancelled_total", labels=("backend",)
            ).value(backend="crashing_stub")
        assert raced.status is LPStatus.OPTIMAL
        assert raced.values.tobytes() == solo.solve(*form).values.tobytes()
        # The stub is fully accounted for either way the clock falls: as a
        # failure when its crash lands before the preferred answer, as a
        # cancellation when the preferred answer arrives first.
        assert failures + cancelled == 1.0

    def test_crashing_preferred_falls_through_to_next_member(self, registered_stubs):
        form = fence_form()
        race = get_backend("race:crashing_stub,scipy")
        with obs.isolated():
            raced = race.solve(*form)
            failures = obs.counter(
                "repro_lp_race_failures_total", labels=("backend",)
            ).value(backend="crashing_stub")
        # Preference falls to the next member rather than raising.
        assert raced.status is LPStatus.OPTIMAL
        assert raced.values.tobytes() == get_backend("scipy").solve(*form).values.tobytes()
        assert failures == 1.0

    def test_hanging_racer_is_cancelled_cooperatively(self, registered_stubs):
        form = fence_form()
        hanging = HangingBackend()
        race = RacingBackend([get_backend("scipy"), hanging])
        with obs.isolated():
            raced = race.solve(*form)
            cancelled = obs.counter(
                "repro_lp_race_cancelled_total", labels=("backend",)
            ).value(backend="hanging_stub")
        assert raced.status is LPStatus.OPTIMAL
        assert cancelled == 1.0
        # The race must have set the stub's cancel_event on the way out;
        # give the abandoned thread a beat to observe it.
        assert hanging.cancelled.wait(timeout=5.0)

    def test_error_status_preferred_falls_through(self):
        """An ERROR *solution* is a member failure, same as a raise: the
        race must fall through to the next member, not return it."""
        form = fence_form()
        race = RacingBackend([ErrorBackend(), get_backend("scipy")])
        with obs.isolated():
            raced = race.solve(*form)
            failures = obs.counter(
                "repro_lp_race_failures_total", labels=("backend",)
            ).value(backend="error_stub")
        assert raced.status is LPStatus.OPTIMAL
        assert raced.values.tobytes() == get_backend("scipy").solve(*form).values.tobytes()
        assert failures == 1.0

    def test_all_members_error_returns_preferred_error(self):
        """When every member fails in-band, the race returns the preferred
        member's diagnostic ERROR solution instead of raising."""
        form = fence_form()
        race = RacingBackend([ErrorBackend(), ErrorBackend()])
        raced = race.solve(*form)
        assert raced.status is LPStatus.ERROR
        assert "injected in-band failure" in raced.message

    def test_all_members_failing_raises(self, registered_stubs):
        form = fence_form()
        race = RacingBackend([CrashingBackend(), CrashingBackend()])
        with pytest.raises(LPError):
            race.solve(*form)

    def test_stateful_member_solves_never_overlap_across_rounds(self):
        """A loser still running when the race returns must not overlap the
        next round's solve on the same stateful instance — per-member
        single-thread executors serialize rounds per member."""
        form = fence_form()
        slow = SlowStatefulBackend()
        race = RacingBackend([get_backend("scipy"), slow])
        solo = get_backend("scipy").solve(*form)
        rounds = 5
        for _ in range(rounds):
            raced = race.solve(*form)
            assert raced.status is LPStatus.OPTIMAL
            assert raced.values.tobytes() == solo.values.tobytes()
        # Queued slow solves may be cancelled before they ever start (that
        # is what cancellation is for); the invariant is that whatever did
        # run never overlapped.  With serialization at most one solve is in
        # flight after the last race returns — wait for it, then check.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if slow.busy.acquire(blocking=False):
                slow.busy.release()
                break
            time.sleep(0.02)
        assert not slow.overlapped.is_set()
        assert slow.completed >= 1

    def test_driver_run_survives_crashing_racer(self, acas_phi8, registered_stubs):
        """End to end: a crashing member never perturbs a repair."""
        race = run_driver(
            acas_phi8, "race:scipy,crashing_stub", incremental=True, workers=1
        )
        solo = run_driver(acas_phi8, "scipy", incremental=True, workers=1)
        assert race.status == "certified"
        assert value_parameters(race) == value_parameters(solo)
