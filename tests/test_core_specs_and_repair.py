"""Tests for repair specifications, pointwise repair, and polytope repair."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ddnn import DecoupledNetwork
from repro.core.point_repair import point_repair
from repro.core.polytope_repair import count_key_points, polytope_repair, reduce_to_key_points
from repro.core.result import RepairResult, RepairTiming
from repro.core.specs import (
    PointRepairSpec,
    PolytopeRepairSpec,
    classification_constraint,
)
from repro.exceptions import NotPiecewiseLinearError, SpecificationError
from repro.lp.status import LPStatus
from repro.polytope.hpolytope import HPolytope
from repro.polytope.segment import LineSegment
from tests.conftest import make_random_relu_network, make_random_tanh_network


class TestPointRepairSpec:
    def test_from_labels_builds_argmax_constraints(self):
        spec = PointRepairSpec.from_labels(np.zeros((2, 3)), [1, 2], num_classes=4, margin=0.1)
        assert spec.num_points == 2
        assert spec.num_constraint_rows == 6
        assert spec.constraints[0].contains(np.array([0.0, 1.0, 0.0, 0.0]))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SpecificationError):
            PointRepairSpec(np.zeros((2, 3)), [classification_constraint(4, 0)])
        with pytest.raises(SpecificationError):
            PointRepairSpec.from_labels(np.zeros((2, 3)), [1], num_classes=4)

    def test_activation_points_shape_checked(self):
        with pytest.raises(SpecificationError):
            PointRepairSpec(
                np.zeros((2, 3)),
                [classification_constraint(4, 0)] * 2,
                activation_points=np.zeros((1, 3)),
            )

    def test_activation_point_defaults_to_point(self):
        spec = PointRepairSpec.from_labels(np.arange(6.0).reshape(2, 3), [0, 1], num_classes=2)
        np.testing.assert_array_equal(spec.activation_point(1), spec.points[1])

    def test_is_satisfied_by(self, toy_network):
        spec = PointRepairSpec(
            points=np.array([[0.5]]),
            constraints=[HPolytope.from_interval(1, 0, -1.0, 0.0)],
        )
        assert spec.is_satisfied_by(toy_network)
        strict = PointRepairSpec(
            points=np.array([[0.5]]),
            constraints=[HPolytope.from_interval(1, 0, 0.0, 1.0)],
        )
        assert not strict.is_satisfied_by(toy_network)


class TestPolytopeRepairSpec:
    def test_add_segment_and_plane(self):
        spec = PolytopeRepairSpec()
        spec.add_segment(LineSegment([0.0, 0.0], [1.0, 1.0]), classification_constraint(3, 0))
        spec.add_plane([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]], classification_constraint(3, 1))
        assert spec.num_polytopes == 2

    def test_add_plane_drops_exact_duplicate_vertices(self):
        spec = PolytopeRepairSpec()
        spec.add_plane(
            [[0.0, 0.0], [1.0, 0.0], [1.0, 0.0], [0.0, 1.0], [0.0, 0.0]],
            classification_constraint(3, 1),
        )
        np.testing.assert_array_equal(
            spec.entries[0].region, [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]
        )

    def test_plane_needs_three_vertices(self):
        spec = PolytopeRepairSpec()
        with pytest.raises(SpecificationError):
            spec.add_plane(np.zeros((2, 4)), classification_constraint(3, 0))
        # Duplicates do not count toward the three-vertex minimum.
        with pytest.raises(SpecificationError):
            spec.add_plane(
                [[0.0, 0.0], [1.0, 1.0], [1.0, 1.0]], classification_constraint(3, 0)
            )

    def test_from_segments_validation(self):
        with pytest.raises(SpecificationError):
            PolytopeRepairSpec.from_segments([], [])
        with pytest.raises(SpecificationError):
            PolytopeRepairSpec.from_segments(
                [LineSegment([0.0], [1.0])], []
            )

    def test_sample_points(self, rng):
        spec = PolytopeRepairSpec.from_segments(
            [LineSegment([0.0, 0.0], [1.0, 0.0])], [classification_constraint(2, 0)]
        )
        points, constraints = spec.sample_points(5, rng)
        assert points.shape == (5, 2)
        assert len(constraints) == 5
        assert np.all(points[:, 1] == 0.0)


class TestPointRepairToyExample:
    """The running example of §3.1 (Equation 2 and Figure 5(a))."""

    def equation2_spec(self) -> PointRepairSpec:
        return PointRepairSpec(
            points=np.array([[0.5], [1.5]]),
            constraints=[
                HPolytope.from_interval(1, 0, -1.0, -0.8),
                HPolytope.from_interval(1, 0, -0.2, 0.0),
            ],
        )

    @pytest.mark.parametrize("norm", ["l1", "linf", "l1+linf"])
    def test_repair_satisfies_equation2(self, toy_network, norm):
        result = point_repair(toy_network, 0, self.equation2_spec(), norm=norm)
        assert result.feasible
        assert result.lp_status is LPStatus.OPTIMAL
        repaired = result.network
        assert -1.0 - 1e-6 <= repaired.compute(np.array([0.5]))[0] <= -0.8 + 1e-6
        assert -0.2 - 1e-6 <= repaired.compute(np.array([1.5]))[0] <= 0.0 + 1e-6

    def test_repair_of_last_layer_also_works(self, toy_network):
        result = point_repair(toy_network, 2, self.equation2_spec(), norm="l1")
        assert result.feasible
        assert self.equation2_spec().is_satisfied_by(result.network)

    def test_original_network_untouched(self, toy_network):
        before = toy_network.compute(np.array([0.5]))
        point_repair(toy_network, 0, self.equation2_spec())
        np.testing.assert_allclose(toy_network.compute(np.array([0.5])), before)

    def test_result_metadata(self, toy_network):
        result = point_repair(toy_network, 0, self.equation2_spec(), norm="l1")
        assert result.num_key_points == 2
        assert result.num_constraint_rows == 4
        assert result.num_variables >= 6
        assert result.delta is not None and result.delta.size == 6
        assert result.delta_l1_norm > 0
        assert result.delta_linf_norm <= result.delta_l1_norm
        assert result.timing.total_seconds > 0
        summary = result.summary()
        assert summary["feasible"] is True
        assert summary["norm"] == "l1"

    def test_infeasible_specification_detected(self, toy_network):
        impossible = PointRepairSpec(
            points=np.array([[0.5], [0.5]]),
            constraints=[
                HPolytope.from_interval(1, 0, 1.0, 2.0),
                HPolytope.from_interval(1, 0, -2.0, -1.0),
            ],
        )
        result = point_repair(toy_network, 0, impossible)
        assert not result.feasible
        assert result.network is None
        assert result.lp_status is LPStatus.INFEASIBLE

    def test_dimension_mismatch_rejected(self, toy_network):
        spec = PointRepairSpec(
            points=np.array([[0.5, 0.5]]),
            constraints=[HPolytope.from_interval(1, 0, -1.0, 0.0)],
        )
        with pytest.raises(SpecificationError):
            point_repair(toy_network, 0, spec)

    def test_simplex_backend_agrees_with_scipy(self, toy_network):
        spec = self.equation2_spec()
        scipy_result = point_repair(toy_network, 0, spec, norm="l1")
        simplex_result = point_repair(toy_network, 0, spec, norm="l1", backend="simplex")
        assert scipy_result.feasible and simplex_result.feasible
        assert scipy_result.objective_value == pytest.approx(
            simplex_result.objective_value, abs=1e-6
        )

    def test_delta_bound_applied(self, toy_network):
        result = point_repair(toy_network, 0, self.equation2_spec(), delta_bound=10.0)
        assert result.feasible
        assert result.delta_linf_norm <= 10.0 + 1e-9

    def test_accepts_existing_ddnn(self, toy_network):
        ddnn = DecoupledNetwork.from_network(toy_network)
        result = point_repair(ddnn, 0, self.equation2_spec())
        assert result.feasible


class TestPointRepairClassification:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_repaired_network_classifies_repair_points(self, seed):
        rng = np.random.default_rng(seed)
        network = make_random_relu_network(rng, (4, 10, 8, 3))
        points = rng.normal(size=(5, 4))
        labels = rng.integers(0, 3, size=5)
        spec = PointRepairSpec.from_labels(points, labels, num_classes=3, margin=1e-4)
        result = point_repair(network, network.parameterized_layer_indices()[-1], spec)
        if result.feasible:
            np.testing.assert_array_equal(result.network.predict(points), labels)

    def test_tanh_network_point_repair(self, rng):
        """Pointwise repair works for non-PWL activations (paper §5)."""
        network = make_random_tanh_network(rng, (3, 8, 6, 2))
        points = rng.normal(size=(4, 3))
        labels = rng.integers(0, 2, size=4)
        spec = PointRepairSpec.from_labels(points, labels, num_classes=2, margin=1e-4)
        result = point_repair(network, network.parameterized_layer_indices()[-1], spec)
        assert result.feasible
        np.testing.assert_array_equal(result.network.predict(points), labels)

    def test_minimality_of_linf_norm(self, toy_network):
        """No satisfying repair of the same layer can have a smaller ℓ∞ norm."""
        spec = PointRepairSpec(
            points=np.array([[0.5]]),
            constraints=[HPolytope.from_interval(1, 0, -0.3, -0.2)],
        )
        result = point_repair(toy_network, 0, spec, norm="linf")
        assert result.feasible
        # Shrinking the found delta by 20% must violate the specification,
        # otherwise the LP's optimum was not minimal.
        ddnn = DecoupledNetwork.from_network(toy_network)
        ddnn.apply_parameter_delta(0, 0.8 * result.delta)
        assert not spec.is_satisfied_by(ddnn)


class TestPolytopeRepairToyExample:
    """The running example of §3.2 (Equation 3 and Figure 5(b))."""

    def equation3_spec(self) -> PolytopeRepairSpec:
        spec = PolytopeRepairSpec()
        spec.add_segment(
            LineSegment(np.array([0.5]), np.array([1.5])),
            HPolytope.from_interval(1, 0, -0.8, -0.4),
        )
        return spec

    def test_key_point_reduction_matches_paper(self, toy_network):
        """§3.2: the specification reduces to 4 key points (0.5, 1, 1, 1.5)."""
        key_points, activation_points, constraints = reduce_to_key_points(
            toy_network, self.equation3_spec()
        )
        values = sorted(point[0] for point in key_points)
        np.testing.assert_allclose(values, [0.5, 1.0, 1.0, 1.5], atol=1e-9)
        assert len(activation_points) == 4
        assert len(constraints) == 4
        assert count_key_points(toy_network, self.equation3_spec()) == 4

    def test_polytope_repair_satisfies_specification_everywhere(self, toy_network):
        result = polytope_repair(toy_network, 0, self.equation3_spec(), norm="l1")
        assert result.feasible
        for value in np.linspace(0.5, 1.5, 101):
            output = result.network.compute(np.array([value]))[0]
            assert -0.8 - 1e-6 <= output <= -0.4 + 1e-6

    def test_l1_minimal_repair_matches_paper(self, toy_network):
        """§3.2: an ℓ1-minimal solution is the single weight change Δ₂ = −0.2."""
        result = polytope_repair(toy_network, 0, self.equation3_spec(), norm="l1")
        assert result.objective_value == pytest.approx(0.2, abs=1e-6)

    def test_timing_includes_linregions_phase(self, toy_network):
        result = polytope_repair(toy_network, 0, self.equation3_spec())
        assert result.timing.linregions_seconds > 0.0

    def test_non_pwl_network_rejected(self, rng):
        network = make_random_tanh_network(rng, (1, 4, 1))
        spec = PolytopeRepairSpec()
        spec.add_segment(
            LineSegment(np.array([0.0]), np.array([1.0])),
            HPolytope.from_interval(1, 0, -1.0, 1.0),
        )
        with pytest.raises(NotPiecewiseLinearError):
            polytope_repair(network, 0, spec)

    def test_empty_specification_rejected(self, toy_network):
        with pytest.raises(SpecificationError):
            polytope_repair(toy_network, 0, PolytopeRepairSpec())

    def test_infeasible_polytope_repair(self, toy_network):
        spec = PolytopeRepairSpec()
        # Impossible: the output must be both below -10 and the layer cannot
        # achieve it while the same spec also pins another disjoint interval.
        spec.add_segment(
            LineSegment(np.array([0.4]), np.array([0.6])),
            HPolytope.from_interval(1, 0, -11.0, -10.0),
        )
        spec.add_segment(
            LineSegment(np.array([0.5]), np.array([0.55])),
            HPolytope.from_interval(1, 0, 10.0, 11.0),
        )
        result = polytope_repair(toy_network, 0, spec)
        assert not result.feasible

    def test_polytope_repair_on_2d_plane_spec(self, rng):
        """A 2-D polytope specification on a small ReLU network."""
        network = make_random_relu_network(rng, (3, 8, 2))
        plane = np.array(
            [
                [0.0, 0.0, 0.0],
                [1.0, 0.0, 0.0],
                [1.0, 1.0, 0.0],
                [0.0, 1.0, 0.0],
            ]
        )
        spec = PolytopeRepairSpec()
        spec.add_plane(plane, classification_constraint(2, 0, margin=1e-4))
        result = polytope_repair(network, network.parameterized_layer_indices()[-1], spec)
        assert result.feasible
        # Dense samples of the plane must now be classified as class 0.
        grid = rng.uniform(size=(200, 2))
        samples = np.column_stack([grid, np.zeros(200)])
        assert result.network.accuracy(samples, np.zeros(200, dtype=int)) == 1.0


class TestRepairResultDataclass:
    def test_timing_totals(self):
        timing = RepairTiming(1.0, 2.0, 3.0, 0.5)
        assert timing.total_seconds == pytest.approx(6.5)
        assert timing.as_dict()["total"] == pytest.approx(6.5)

    def test_empty_delta_norms(self):
        result = RepairResult(
            feasible=False,
            network=None,
            delta=None,
            layer_index=0,
            lp_status=LPStatus.INFEASIBLE,
        )
        assert result.delta_l1_norm == 0.0
        assert result.delta_linf_norm == 0.0
        assert result.summary()["feasible"] is False
