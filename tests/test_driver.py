"""Tests for the CEGIS repair driver (repro.driver)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.driver.driver as driver_module
from repro.core.ddnn import DecoupledNetwork
from repro.driver import CounterexamplePool, RepairDriver
from repro.exceptions import RepairError
from repro.nn.activations import ReLULayer
from repro.nn.linear import FullyConnectedLayer
from repro.nn.network import Network
from repro.polytope.hpolytope import HPolytope
from repro.verify import (
    Counterexample,
    GridVerifier,
    RandomVerifier,
    RegionStatus,
    SyrennVerifier,
    VerificationSpec,
)


def make_counterexample(x: float = 0.0, margin: float = 1.0, region: int = 0) -> Counterexample:
    return Counterexample(
        point=np.array([x]),
        constraint=HPolytope([[1.0]], [0.5]),
        margin=margin,
        region_index=region,
    )


@pytest.fixture
def plane_network(rng) -> Network:
    return Network(
        [
            FullyConnectedLayer.from_shape(2, 8, rng),
            ReLULayer(8),
            FullyConnectedLayer.from_shape(8, 6, rng),
            ReLULayer(6),
            FullyConnectedLayer.from_shape(6, 3, rng),
        ]
    )


@pytest.fixture
def plane_scenario(plane_network, rng) -> tuple[Network, VerificationSpec, int]:
    """A seeded ACAS-style scenario: keep the majority class on two regions."""
    preds = plane_network.predict(rng.uniform(-1.0, 1.0, size=(400, 2)))
    winner = int(np.bincount(preds, minlength=3).argmax())
    spec = VerificationSpec()
    spec.add_plane(
        [[-1, -1], [1, -1], [1, 1], [-1, 1]],
        HPolytope.argmax_region(3, winner, 1e-4),
    )
    spec.add_box([-0.5, -1.0], [0.5, 1.0], HPolytope.argmax_region(3, winner, 1e-4))
    return plane_network, spec, winner


class TestCounterexamplePool:
    def test_deduplicates(self):
        pool = CounterexamplePool()
        assert pool.add(make_counterexample(0.0))
        assert not pool.add(make_counterexample(0.0))
        assert pool.add(make_counterexample(1.0))
        assert len(pool) == 2

    def test_dedup_respects_rounding(self):
        pool = CounterexamplePool(decimals=6)
        assert pool.add(make_counterexample(0.0))
        assert not pool.add(make_counterexample(1e-9))   # rounds to the same key
        assert pool.add(make_counterexample(1e-3))

    def test_dedup_distinguishes_constraints(self):
        pool = CounterexamplePool()
        point = np.array([0.0])
        assert pool.add(Counterexample(point, HPolytope([[1.0]], [0.5]), 1.0, 0))
        assert pool.add(Counterexample(point, HPolytope([[1.0]], [0.25]), 1.0, 0))

    def test_extend_counts_new(self):
        pool = CounterexamplePool()
        new = pool.extend([make_counterexample(0.0), make_counterexample(0.0), make_counterexample(2.0)])
        assert new == 2

    def test_point_spec_tightens_margin(self):
        pool = CounterexamplePool()
        pool.add(make_counterexample(0.0))
        spec = pool.point_spec(margin=0.125)
        assert spec.num_points == 1
        np.testing.assert_allclose(spec.constraints[0].b, np.array([0.375]))

    def test_point_spec_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            CounterexamplePool().point_spec()

    def test_worst_margin(self):
        pool = CounterexamplePool()
        assert pool.worst_margin == float("-inf")
        pool.extend([make_counterexample(0.0, margin=0.25), make_counterexample(1.0, margin=2.0)])
        assert pool.worst_margin == 2.0

    def test_checkpoint_roundtrip(self, tmp_path):
        pool = CounterexamplePool(decimals=7)
        pool.add(make_counterexample(0.25, margin=0.5, region=3))
        pool.add(
            Counterexample(
                point=np.array([1.0]),
                constraint=HPolytope([[1.0], [-1.0]], [0.5, 0.5]),
                margin=0.75,
                region_index=1,
                activation_point=np.array([0.9]),
            )
        )
        path = tmp_path / "pool.npz"
        pool.save(path)
        restored = CounterexamplePool.load(path)
        assert len(restored) == 2
        assert restored.decimals == 7
        original, loaded = pool.counterexamples[1], restored.counterexamples[1]
        np.testing.assert_array_equal(original.point, loaded.point)
        np.testing.assert_array_equal(original.activation_point, loaded.activation_point)
        np.testing.assert_array_equal(original.constraint.a, loaded.constraint.a)
        assert loaded.margin == 0.75 and loaded.region_index == 1
        # Re-adding a restored counterexample is still a duplicate.
        assert not restored.add(pool.counterexamples[0])

    def test_unsatisfied_differential(self, toy_network):
        pool = CounterexamplePool()
        pool.add(make_counterexample(-1.0))  # N₁(-1) = 1 > 0.5: violated
        pool.add(make_counterexample(0.5))   # N₁(0.5) = -0.5: satisfied
        assert pool.unsatisfied(toy_network) == [0]


class TestRepairDriver:
    def test_certifies_seeded_scenario(self, plane_scenario):
        network, spec, _ = plane_scenario
        driver = RepairDriver(network, spec, SyrennVerifier(), max_rounds=8)
        report = driver.run()
        assert report.status == "certified"
        assert report.certified
        assert report.final_report.num_violated == 0
        assert report.final_report.certified
        assert report.pool_size > 0
        # Differential: the final network satisfies every pooled counterexample.
        assert report.unsatisfied_pool_indices == []
        assert driver.pool.unsatisfied(report.network) == []

    def test_sampling_verifiers_agree_on_certified_result(self, plane_scenario):
        network, spec, _ = plane_scenario
        report = RepairDriver(network, spec, SyrennVerifier(), max_rounds=8).run()
        assert report.certified
        for verifier in (GridVerifier(resolution=24), RandomVerifier(512, seed=11)):
            cross_check = verifier.verify(report.network, spec)
            assert cross_check.num_violated == 0

    def test_clean_network_terminates_immediately(self, plane_scenario):
        network, spec, _ = plane_scenario
        certified = RepairDriver(network, spec, SyrennVerifier(), max_rounds=8).run()
        again = RepairDriver(
            certified.network, spec, SyrennVerifier(), max_rounds=8
        ).run()
        assert again.status == "certified"
        assert again.num_rounds == 1
        assert again.counterexamples_found == 0

    def test_sampling_driver_reaches_clean_not_certified(self, plane_scenario):
        network, spec, _ = plane_scenario
        report = RepairDriver(
            network, spec, GridVerifier(resolution=12), max_rounds=8
        ).run()
        assert report.status == "clean"
        assert not report.certified

    def test_budget_exhaustion(self, plane_scenario):
        network, spec, _ = plane_scenario
        report = RepairDriver(
            network, spec, SyrennVerifier(), max_rounds=8, budget_seconds=0.0
        ).run()
        assert report.status == "budget_exhausted"
        assert report.num_rounds == 0

    def test_single_round_still_reports_final_network(self, plane_scenario):
        """Running out of rounds right after a repair re-verifies the result."""
        network, spec, _ = plane_scenario
        report = RepairDriver(network, spec, SyrennVerifier(), max_rounds=1).run()
        assert report.num_rounds == 1
        # The one repair round fixed everything, and the report describes the
        # returned network — not the pre-repair verification.
        assert report.status == "certified"
        assert report.final_report.certified
        assert SyrennVerifier().verify(report.network, spec).certified

    def test_max_rounds_reached_when_violations_persist(self, plane_scenario):
        network, spec, _ = plane_scenario

        class NeverSatisfied(SyrennVerifier):
            """Reports one fresh (fake) violation per call, forever."""

            def __init__(self):
                super().__init__()
                self.calls = 0

            def verify(self, net, spec):
                report = super().verify(net, spec)
                self.calls += 1
                fake = Counterexample(
                    point=np.array([0.17, 0.001 * self.calls]),
                    constraint=spec.regions[0].constraint,
                    margin=1.0,
                    region_index=0,
                )
                report.counterexamples.append(fake)
                report.region_statuses[0] = RegionStatus.VIOLATED
                return report

        report = RepairDriver(network, spec, NeverSatisfied(), max_rounds=2).run()
        assert report.status == "max_rounds_reached"
        assert report.num_rounds == 2
        assert report.remaining_violations >= 1

    def test_infeasible_with_tiny_delta_bound(self, plane_scenario):
        network, spec, _ = plane_scenario
        report = RepairDriver(
            network, spec, SyrennVerifier(), max_rounds=4, delta_bound=1e-12
        ).run()
        assert report.status == "infeasible"
        # Escalation tried every layer in the schedule before giving up.
        assert report.rounds[-1].repair_feasible is False

    def test_layer_escalation_on_infeasible(self, plane_scenario, monkeypatch):
        network, spec, _ = plane_scenario
        real_point_repair = driver_module.point_repair
        attempted_layers = []

        def failing_on_last(network, layer_index, repair_spec, **kwargs):
            attempted_layers.append(layer_index)
            if layer_index == 4:  # pretend the output layer cannot repair this
                kwargs["delta_bound"] = 1e-15
            return real_point_repair(network, layer_index, repair_spec, **kwargs)

        monkeypatch.setattr(driver_module, "point_repair", failing_on_last)
        report = RepairDriver(network, spec, SyrennVerifier(), max_rounds=8).run()
        assert attempted_layers[:2] == [4, 2]
        assert report.status == "certified"
        assert any(record.layer_index == 2 for record in report.rounds)

    def test_drawdown_tracking(self, plane_scenario, rng):
        network, spec, _ = plane_scenario
        holdout_inputs = rng.uniform(-1.0, 1.0, size=(100, 2))
        holdout_labels = network.predict(holdout_inputs)
        report = RepairDriver(
            network,
            spec,
            SyrennVerifier(),
            max_rounds=8,
            holdout=(holdout_inputs, holdout_labels),
        ).run()
        repaired_rounds = [r for r in report.rounds if r.repair_feasible]
        assert repaired_rounds
        assert all(np.isfinite(r.drawdown) for r in repaired_rounds)

    def test_checkpoint_and_resume(self, plane_scenario, tmp_path):
        network, spec, _ = plane_scenario
        path = tmp_path / "pool-checkpoint.npz"
        # The first run checkpoints its pool but cannot repair anything.
        first = RepairDriver(
            network,
            spec,
            SyrennVerifier(),
            max_rounds=1,
            checkpoint_path=path,
            delta_bound=1e-12,
        ).run()
        assert first.status == "infeasible"
        assert path.exists()
        resumed_driver = RepairDriver(
            network, spec, SyrennVerifier(), max_rounds=8, checkpoint_path=path
        )
        assert len(resumed_driver.pool) == first.pool_size
        report = resumed_driver.run()
        assert report.status == "certified"
        # Even though round 0 finds nothing the loaded pool did not already
        # know, the resumed run must still *attempt* a repair — starting at
        # the first layer of the schedule, not escalated past it.
        assert report.rounds[0].repair_attempted
        assert report.rounds[0].layer_index == resumed_driver.layer_schedule[0]
        assert report.pool_size >= first.pool_size

    def test_repair_minimal_from_base_not_cumulative(self, plane_scenario):
        network, spec, _ = plane_scenario
        report = RepairDriver(network, spec, SyrennVerifier(), max_rounds=8).run()
        # The applied delta is measured against the original network.
        base = DecoupledNetwork.from_network(network)
        for layer_index in base.repairable_layer_indices():
            base_flat = base.value.layers[layer_index].get_parameters()
            final_flat = report.network.value.layers[layer_index].get_parameters()
            delta = np.max(np.abs(final_flat - base_flat))
            if delta > 0:
                last_delta = max(
                    record.delta_linf for record in report.rounds if record.repair_feasible
                )
                assert delta == pytest.approx(last_delta)

    def test_validation(self, plane_scenario):
        network, spec, _ = plane_scenario
        with pytest.raises(RepairError):
            RepairDriver(network, spec, SyrennVerifier(), max_rounds=0)
        with pytest.raises(RepairError):
            RepairDriver(network, spec, SyrennVerifier(), layer_schedule=[])

    def test_report_as_dict_shape(self, plane_scenario):
        network, spec, _ = plane_scenario
        report = RepairDriver(network, spec, SyrennVerifier(), max_rounds=8).run()
        summary = report.as_dict()
        assert summary["status"] == "certified"
        assert summary["num_rounds"] == len(summary["rounds"])
        assert summary["final_report"]["certified"] is True
        assert {"verify", "repair_lp", "repair_jacobian", "other", "total"} <= set(
            summary["timing"]
        )
        assert summary["timing"]["total"] >= summary["timing"]["verify"]
