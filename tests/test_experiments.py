"""Tests for the experiment harness: metrics, reporting, figures, and small
end-to-end runs of the three task drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.polytope_repair import polytope_repair
from repro.core.specs import PolytopeRepairSpec
from repro.experiments.figures import (
    input_output_curve,
    per_layer_drawdown_series,
    per_layer_timing_series,
)
from repro.experiments.metrics import accuracy_percent, drawdown, efficacy, generalization
from repro.experiments.reporting import format_seconds, format_table, print_table
from repro.models.toy import paper_network_n1
from repro.models.zoo import ModelZoo
from repro.polytope.hpolytope import HPolytope
from repro.polytope.segment import LineSegment


class _ConstantClassifier:
    """A stand-in 'network' that always predicts a fixed class."""

    def __init__(self, prediction: int) -> None:
        self.prediction = prediction

    def accuracy(self, inputs, labels) -> float:
        labels = np.asarray(labels, dtype=int)
        return float(np.mean(labels == self.prediction))


class TestMetrics:
    def test_efficacy(self):
        labels = np.array([0, 0, 1, 1])
        assert efficacy(_ConstantClassifier(0), np.zeros((4, 2)), labels) == 50.0

    def test_drawdown_sign_convention(self):
        labels = np.zeros(10, dtype=int)
        buggy, repaired = _ConstantClassifier(0), _ConstantClassifier(1)
        # The buggy network is perfect, the repaired one always wrong: 100% drawdown.
        assert drawdown(buggy, repaired, np.zeros((10, 2)), labels) == 100.0
        # Negative drawdown (improvement) is possible.
        assert drawdown(repaired, buggy, np.zeros((10, 2)), labels) == -100.0

    def test_generalization_sign_convention(self):
        labels = np.zeros(10, dtype=int)
        buggy, repaired = _ConstantClassifier(1), _ConstantClassifier(0)
        assert generalization(buggy, repaired, np.zeros((10, 2)), labels) == 100.0

    def test_accuracy_percent(self):
        labels = np.array([0, 1])
        assert accuracy_percent(_ConstantClassifier(0), np.zeros((2, 2)), labels) == 50.0


class TestReporting:
    def test_format_seconds(self):
        assert format_seconds(18.4) == "18.4s"
        assert format_seconds(99.0) == "1m39.0s"
        assert format_seconds(3600 + 22 * 60 + 18.7) == "1h22m18.7s"
        with pytest.raises(ValueError):
            format_seconds(-1.0)

    def test_format_table_alignment_and_values(self):
        rows = [{"name": "PR", "drawdown": 3.61234}, {"name": "FT", "drawdown": 10.2}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "3.61" in text and "10.20" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_print_table_smoke(self, capsys):
        print_table("demo", [{"x": 1}])
        captured = capsys.readouterr()
        assert "demo" in captured.out and "x" in captured.out


class TestFigures:
    def test_input_output_curve_matches_paper_figure3(self):
        curve = input_output_curve(paper_network_n1())
        assert curve.inputs.shape == curve.outputs.shape
        np.testing.assert_allclose(curve.region_boundaries, [-1.0, 0.0, 1.0, 2.0], atol=1e-9)
        # Figure 3(c): the output at x = 1.5 is -1.
        index = int(np.argmin(np.abs(curve.inputs - 1.5)))
        assert curve.outputs[index] == pytest.approx(-1.0, abs=1e-6)

    def test_input_output_curve_for_repaired_ddnn(self):
        spec = PolytopeRepairSpec()
        spec.add_segment(
            LineSegment(np.array([0.5]), np.array([1.5])),
            HPolytope.from_interval(1, 0, -0.8, -0.4),
        )
        result = polytope_repair(paper_network_n1(), 0, spec, norm="l1")
        curve = input_output_curve(result.network)
        # Figure 5(d): the repaired curve keeps N1's linear regions.
        np.testing.assert_allclose(curve.region_boundaries, [-1.0, 0.0, 1.0, 2.0], atol=1e-9)

    def test_input_output_curve_requires_1d(self, random_relu_network):
        with pytest.raises(ValueError):
            input_output_curve(random_relu_network)

    def test_per_layer_series(self):
        records = [
            {
                "layer_index": 1,
                "feasible": True,
                "drawdown": 3.0,
                "time_jacobian": 1.0,
                "time_lp": 2.0,
                "time_other": 0.5,
                "time_linregions": 0.0,
            },
            {
                "layer_index": 4,
                "feasible": False,
                "drawdown": float("nan"),
                "time_jacobian": 0.5,
                "time_lp": 0.1,
                "time_other": 0.2,
                "time_linregions": 0.0,
            },
        ]
        drawdowns = per_layer_drawdown_series(records)
        np.testing.assert_array_equal(drawdowns["layer_index"], [1, 4])
        assert drawdowns["drawdown"][0] == 3.0 and np.isnan(drawdowns["drawdown"][1])
        timings = per_layer_timing_series(records)
        assert timings["jacobian"][0] == 1.0
        assert timings["other"][1] == pytest.approx(0.2)


@pytest.fixture(scope="module")
def shared_zoo(tmp_path_factory):
    """A zoo with a module-scoped cache so task setups are trained once."""
    return ModelZoo(cache_dir=tmp_path_factory.mktemp("zoo-cache"))


@pytest.mark.slow
class TestTask1Integration:
    def test_small_task1_run(self, shared_zoo):
        from repro.experiments.task1_imagenet import (
            best_drawdown_record,
            modified_fine_tune_baseline,
            provable_repair_per_layer,
            setup_task1,
        )

        setup = setup_task1(
            shared_zoo,
            train_per_class=30,
            validation_per_class=10,
            adversarial_per_class=4,
            epochs=30,
            seed=0,
        )
        assert setup.buggy_drawdown_accuracy > 70.0
        records = provable_repair_per_layer(
            setup, 6, layer_indices=setup.repairable_layers[-2:], norm="l1"
        )
        assert len(records) == 2
        feasible = [record for record in records if record["feasible"]]
        if feasible:
            best = best_drawdown_record(records)
            assert best["efficacy"] == 100.0
        mft = modified_fine_tune_baseline(
            setup, 6, layer_indices=setup.repairable_layers[-1:], max_epochs=5
        )
        assert 0.0 <= mft["efficacy"] <= 100.0


@pytest.mark.slow
class TestTask2Integration:
    def test_small_task2_run(self, shared_zoo):
        from repro.experiments.task2_mnist_lines import (
            provable_line_repair,
            sampled_line_points,
            setup_task2,
        )

        setup = setup_task2(
            shared_zoo, max_lines=4, train_per_class=20, test_per_class=10, epochs=15, seed=0
        )
        assert setup.buggy_clean_accuracy > 80.0
        record = provable_line_repair(setup, 2, setup.layer_3_index, norm="l1")
        assert record["feasible"]
        assert record["efficacy"] == 100.0
        assert record["key_points"] >= 4
        points, labels = sampled_line_points(setup, 2, record["key_points"])
        assert points.shape[0] == record["key_points"] == labels.shape[0]


@pytest.mark.slow
class TestTask3Integration:
    def test_small_task3_run(self, shared_zoo):
        from repro.experiments.task3_acas import (
            provable_slice_repair,
            safe_advisory_constraint,
            setup_task3,
        )

        constraint = safe_advisory_constraint(5, winner=0, allowed=(0, 1), margin=0.0)
        assert constraint.num_constraints == 3

        setup = setup_task3(
            shared_zoo,
            num_slices=2,
            candidate_slices=40,
            samples_per_slice=36,
            evaluation_points=500,
            train_size=1500,
            epochs=20,
            seed=0,
        )
        if not setup.repair_slices:
            pytest.skip("the trained network happened to satisfy the property everywhere")
        record = provable_slice_repair(setup, norm="l1")
        assert record["key_points"] > 0
        if record["feasible"]:
            assert record["efficacy"] == 100.0
            assert record["drawdown"] <= 5.0

    def test_driver_slice_repair_certifies(self, shared_zoo):
        from repro.experiments.task3_acas import driver_slice_repair, setup_task3

        # Seed 2 is known to train a network that violates the property on
        # some slices at this budget (seed 0 happens to train a clean one).
        setup = setup_task3(
            shared_zoo,
            num_slices=2,
            candidate_slices=40,
            samples_per_slice=36,
            evaluation_points=500,
            train_size=1500,
            epochs=20,
            seed=2,
        )
        if not setup.repair_slices:
            pytest.skip("the trained network happened to satisfy the property everywhere")
        record, report = driver_slice_repair(setup, norm="l1", max_rounds=6)
        assert record["status"] == "certified"
        assert record["certified"]
        assert record["remaining_violations"] == 0
        # The final verification pass certified every strengthened region.
        assert report.final_report.certified
        # Differential: the repaired network satisfies the whole pool.
        assert report.unsatisfied_pool_indices == []
        assert record["efficacy"] == 100.0
        assert record["rounds"] >= 1
        assert record["time_total"] > 0.0
