"""Differential tests for the batched repair engine and the sparse LP path.

The batched engine (vectorized multi-point Jacobians + single-block
constraint encoding + CSR standard form) must be observationally identical
to the legacy per-point loop and dense assembly it replaces: same Jacobians,
same LP rows, same statuses, same deltas.  These tests pin that equivalence
at every level — layer, DDNN, LP model, and the two repair algorithms.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.ddnn import DecoupledNetwork
from repro.core.jacobian import specification_jacobians
from repro.core.point_repair import point_repair
from repro.core.polytope_repair import polytope_repair
from repro.core.specs import PointRepairSpec, PolytopeRepairSpec
from repro.lp.model import LPModel
from repro.lp.norms import add_norm_objective
from repro.lp.status import LPStatus
from repro.nn.activations import ReLULayer
from repro.nn.conv import Conv2DLayer
from repro.nn.linear import FullyConnectedLayer
from repro.nn.network import Network
from repro.nn.pooling import MaxPool2DLayer
from repro.nn.reshape import FlattenLayer
from repro.polytope.hpolytope import HPolytope
from repro.polytope.segment import LineSegment

from tests.conftest import make_random_relu_network, make_random_tanh_network


def make_conv_network(rng: np.random.Generator) -> Network:
    """A small conv + maxpool + dense network exercising every layer kind."""
    return Network(
        [
            Conv2DLayer.from_shape(
                1, 3, 3, input_height=8, input_width=8, stride=1, padding=1, rng=rng
            ),
            ReLULayer(3 * 8 * 8),
            MaxPool2DLayer(3, 8, 8, pool_size=2),
            FlattenLayer(3 * 4 * 4),
            FullyConnectedLayer.from_shape(3 * 4 * 4, 5, rng),
        ]
    )


class TestBatchedJacobians:
    """batch_parameter_jacobian == one parameter_jacobian per point."""

    @pytest.mark.parametrize("use_activation_points", [False, True])
    def test_fully_connected_network(self, rng, use_activation_points):
        network = make_random_relu_network(rng)
        ddnn = DecoupledNetwork.from_network(network)
        points = rng.normal(size=(7, network.input_size))
        activation_points = (
            points + 0.1 * rng.normal(size=points.shape) if use_activation_points else None
        )
        for layer_index in ddnn.repairable_layer_indices():
            outputs, jacobians = ddnn.batch_parameter_jacobian(
                layer_index, points, activation_points
            )
            for index in range(points.shape[0]):
                output, jacobian = ddnn.parameter_jacobian(
                    layer_index,
                    points[index],
                    None if activation_points is None else activation_points[index],
                )
                np.testing.assert_allclose(outputs[index], output, atol=1e-12)
                np.testing.assert_allclose(jacobians[index], jacobian, atol=1e-12)

    def test_tanh_network(self, rng):
        network = make_random_tanh_network(rng)
        ddnn = DecoupledNetwork.from_network(network)
        points = rng.normal(size=(5, network.input_size))
        outputs, jacobians = ddnn.batch_parameter_jacobian(0, points)
        for index in range(points.shape[0]):
            output, jacobian = ddnn.parameter_jacobian(0, points[index])
            np.testing.assert_allclose(outputs[index], output, atol=1e-12)
            np.testing.assert_allclose(jacobians[index], jacobian, atol=1e-12)

    @pytest.mark.parametrize("layer_index", [0, 4])
    def test_conv_maxpool_network(self, rng, layer_index):
        network = make_conv_network(rng)
        ddnn = DecoupledNetwork.from_network(network)
        points = rng.normal(size=(4, network.input_size))
        activation_points = points + 0.05 * rng.normal(size=points.shape)
        outputs, jacobians = ddnn.batch_parameter_jacobian(
            layer_index, points, activation_points
        )
        for index in range(points.shape[0]):
            output, jacobian = ddnn.parameter_jacobian(
                layer_index, points[index], activation_points[index]
            )
            np.testing.assert_allclose(outputs[index], output, atol=1e-12)
            np.testing.assert_allclose(jacobians[index], jacobian, atol=1e-12)

    def test_specification_jacobians_dispatch(self, rng):
        network = make_random_relu_network(rng)
        ddnn = DecoupledNetwork.from_network(network)
        points = rng.normal(size=(6, network.input_size))
        labels = rng.integers(0, network.output_size, size=6)
        spec = PointRepairSpec.from_labels(points, labels, num_classes=network.output_size)
        outputs_batched, jacobians_batched = specification_jacobians(ddnn, 0, spec, batched=True)
        outputs_loop, jacobians_loop = specification_jacobians(ddnn, 0, spec, batched=False)
        np.testing.assert_allclose(outputs_batched, outputs_loop, atol=1e-12)
        np.testing.assert_allclose(jacobians_batched, jacobians_loop, atol=1e-12)

    def test_batch_channel_traces_match_single(self, rng):
        network = make_random_relu_network(rng)
        ddnn = DecoupledNetwork.from_network(network)
        points = rng.normal(size=(3, network.input_size))
        batched_act, batched_val = ddnn.batch_channel_traces(points)
        for index in range(3):
            single_act, single_val = ddnn.channel_traces(points[index])
            for entry, batch_entry in zip(single_act, batched_act):
                np.testing.assert_allclose(entry[0], batch_entry[index], atol=1e-12)
            for entry, batch_entry in zip(single_val, batched_val):
                np.testing.assert_allclose(entry[0], batch_entry[index], atol=1e-12)


class TestDifferentialPointRepair:
    """batched=True and batched=False must yield identical repairs."""

    @pytest.mark.parametrize("norm", ["linf", "l1", "l1+linf"])
    @pytest.mark.parametrize("backend", ["scipy", "simplex"])
    def test_feasible_repair_agrees(self, rng, norm, backend):
        network = make_random_relu_network(rng)
        points = rng.normal(size=(5, network.input_size))
        labels = rng.integers(0, network.output_size, size=5)
        spec = PointRepairSpec.from_labels(
            points, labels, num_classes=network.output_size, margin=1e-3
        )
        batched = point_repair(network, 2, spec, norm=norm, backend=backend, batched=True)
        legacy = point_repair(
            network, 2, spec, norm=norm, backend=backend, batched=False, sparse=False
        )
        assert batched.lp_status == legacy.lp_status
        assert batched.feasible == legacy.feasible
        assert batched.num_constraint_rows == legacy.num_constraint_rows
        if batched.feasible:
            np.testing.assert_allclose(batched.delta, legacy.delta, atol=1e-6)
            assert batched.objective_value == pytest.approx(legacy.objective_value, abs=1e-7)
            assert spec.is_satisfied_by(batched.network)

    def test_infeasible_repair_agrees(self, toy_network):
        # Contradictory constraints on the same input point: provably infeasible.
        spec = PointRepairSpec(
            points=np.array([[0.5], [0.5]]),
            constraints=[
                HPolytope.from_interval(1, 0, -1.0, -0.8),
                HPolytope.from_interval(1, 0, 0.5, 1.0),
            ],
        )
        batched = point_repair(toy_network, 0, spec, batched=True)
        legacy = point_repair(toy_network, 0, spec, batched=False, sparse=False)
        assert batched.lp_status is LPStatus.INFEASIBLE
        assert legacy.lp_status is LPStatus.INFEASIBLE

    def test_mixed_constraint_row_counts(self, rng):
        # Points with different numbers of constraint rows exercise the
        # grouped-einsum encoder's row placement.
        network = make_random_relu_network(rng)
        points = rng.normal(size=(4, network.input_size))
        constraints = [
            HPolytope.argmax_region(network.output_size, 0),      # 2 rows
            HPolytope.from_interval(network.output_size, 1, -5.0, 5.0),  # 2 rows
            HPolytope(np.ones((1, network.output_size)), np.array([10.0])),  # 1 row
            HPolytope.argmax_region(network.output_size, 2),      # 2 rows
        ]
        spec = PointRepairSpec(points=points, constraints=constraints)
        batched = point_repair(network, 0, spec, norm="l1", batched=True)
        legacy = point_repair(network, 0, spec, norm="l1", batched=False, sparse=False)
        assert batched.lp_status == legacy.lp_status
        if batched.feasible:
            np.testing.assert_allclose(batched.delta, legacy.delta, atol=1e-6)


class TestDifferentialPolytopeRepair:
    """Polytope repair routed through both engines must agree."""

    def test_segment_spec_agrees(self, toy_network):
        spec = PolytopeRepairSpec()
        spec.add_segment(
            LineSegment(np.array([0.5]), np.array([1.5])),
            HPolytope.from_interval(1, 0, -0.8, -0.4),
        )
        batched = polytope_repair(toy_network, 0, spec, norm="l1", batched=True)
        legacy = polytope_repair(toy_network, 0, spec, norm="l1", batched=False, sparse=False)
        assert batched.lp_status == legacy.lp_status
        assert batched.feasible and legacy.feasible
        np.testing.assert_allclose(batched.delta, legacy.delta, atol=1e-6)
        assert batched.num_key_points == legacy.num_key_points

    def test_random_relu_segments_agree(self, rng):
        network = make_random_relu_network(rng)
        segments = [
            LineSegment(rng.normal(size=network.input_size), rng.normal(size=network.input_size))
            for _ in range(2)
        ]
        constraints = [
            HPolytope.from_interval(network.output_size, 0, -50.0, 50.0) for _ in segments
        ]
        spec = PolytopeRepairSpec.from_segments(segments, constraints)
        batched = polytope_repair(network, 2, spec, batched=True)
        legacy = polytope_repair(network, 2, spec, batched=False, sparse=False)
        assert batched.lp_status == legacy.lp_status
        if batched.feasible:
            np.testing.assert_allclose(batched.delta, legacy.delta, atol=1e-6)


def random_lp_model(rng: np.random.Generator) -> LPModel:
    """A random LPModel mixing narrow blocks, eq rows, bounds, and norms."""
    model = LPModel()
    delta = model.add_variables(int(rng.integers(2, 6)), "delta", lower=-10.0, upper=10.0)
    extra = model.add_variables(int(rng.integers(1, 4)), "extra")
    for _ in range(int(rng.integers(1, 4))):
        columns = delta if rng.random() < 0.5 else extra
        matrix = rng.normal(size=(int(rng.integers(1, 4)), columns.size))
        matrix[rng.random(size=matrix.shape) < 0.3] = 0.0  # structural zeros
        rhs = rng.normal(size=matrix.shape[0]) + 5.0
        if rng.random() < 0.3:
            model.add_eq_block(matrix, rhs, columns)
        else:
            model.add_leq_block(matrix, rhs, columns)
    add_norm_objective(model, delta, "l1+linf")
    return model


class TestSparseStandardForm:
    """standard_form(sparse=True) must equal the dense assembly exactly."""

    def test_random_models_agree(self, rng):
        for _ in range(25):
            model = random_lp_model(rng)
            c, a_ub, b_ub, a_eq, b_eq, bounds = model.standard_form(sparse=False)
            c_s, a_ub_s, b_ub_s, a_eq_s, b_eq_s, bounds_s = model.standard_form(sparse=True)
            assert sp.issparse(a_ub_s) and sp.issparse(a_eq_s)
            np.testing.assert_array_equal(c, c_s)
            np.testing.assert_array_equal(b_ub, b_ub_s)
            np.testing.assert_array_equal(b_eq, b_eq_s)
            np.testing.assert_array_equal(bounds, bounds_s)
            np.testing.assert_array_equal(a_ub, a_ub_s.toarray())
            np.testing.assert_array_equal(a_eq, a_eq_s.toarray())

    def test_empty_model_sparse(self):
        model = LPModel()
        model.add_variables(3)
        _, a_ub, b_ub, a_eq, b_eq, _ = model.standard_form(sparse=True)
        assert a_ub.shape == (0, 3) and a_eq.shape == (0, 3)
        assert b_ub.size == 0 and b_eq.size == 0

    def test_all_zero_rows_preserved(self):
        # A zero row with a non-trivial rhs must survive sparse assembly:
        # "0 @ x == 1" is infeasible and dropping it would change the answer.
        model = LPModel()
        indices = model.add_variables(2)
        model.add_eq_block(np.zeros((1, 2)), [1.0], indices)
        _, _, _, a_eq, b_eq, _ = model.standard_form(sparse=True)
        assert a_eq.shape == (1, 2)
        np.testing.assert_array_equal(b_eq, [1.0])
        solution = model.solve("scipy", sparse=True)
        assert solution.status is LPStatus.INFEASIBLE

    @pytest.mark.parametrize("backend", ["scipy", "simplex"])
    def test_solve_sparse_matches_dense(self, rng, backend):
        for _ in range(5):
            model = random_lp_model(rng)
            dense = model.solve(backend, sparse=False)
            sparse = model.solve(backend, sparse=True)
            assert dense.status == sparse.status
            if dense.status is LPStatus.OPTIMAL:
                assert dense.objective == pytest.approx(sparse.objective, abs=1e-7)


class TestVectorizedAddVariables:
    """The vectorized add_variables must match the old per-variable loop."""

    def test_block_indices_names_and_bounds(self):
        model = LPModel()
        model.add_variable("first")
        indices = model.add_variables(3, "delta", lower=-2.0, upper=4.0)
        np.testing.assert_array_equal(indices, [1, 2, 3])
        assert model.num_variables == 4
        assert [model.variable_name(i) for i in indices] == ["delta[0]", "delta[1]", "delta[2]"]
        _, _, _, _, _, bounds = model.standard_form()
        np.testing.assert_array_equal(bounds[1:], [[-2.0, 4.0]] * 3)

    def test_default_name_and_empty_block(self):
        model = LPModel()
        empty = model.add_variables(0)
        assert empty.size == 0 and model.num_variables == 0
        indices = model.add_variables(2)
        assert [model.variable_name(i) for i in indices] == ["x[0]", "x[1]"]

    def test_invalid_bounds_rejected(self):
        from repro.exceptions import LPError

        model = LPModel()
        with pytest.raises(LPError):
            model.add_variables(2, lower=1.0, upper=-1.0)
        assert model.num_variables == 0

    def test_negative_count_rejected(self):
        from repro.exceptions import LPError

        with pytest.raises(LPError):
            LPModel().add_variables(-1)

    def test_duplicate_block_columns_rejected(self):
        # Duplicate columns would be overwritten by the dense assembly but
        # summed by the sparse one; the model must refuse them outright.
        from repro.exceptions import LPError

        model = LPModel()
        model.add_variables(2)
        with pytest.raises(LPError):
            model.add_leq_block(np.array([[1.0, 1.0]]), [1.0], columns=[0, 0])
