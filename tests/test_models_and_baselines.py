"""Tests for the model builders/zoo and the FT/MFT baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.fine_tune import fine_tune
from repro.baselines.modified_fine_tune import modified_fine_tune
from repro.datasets.digits import generate_digit_dataset
from repro.models.acas_models import build_acas_network, last_layer_index
from repro.models.mnist_models import (
    DIGIT_LAYER_2_INDEX,
    DIGIT_LAYER_3_INDEX,
    build_digit_network,
    train_digit_network,
)
from repro.models.squeezenet_mini import build_mini_squeezenet
from repro.models.toy import paper_network_n1, paper_network_n2
from repro.models.zoo import ModelZoo
from repro.nn.layer import LayerKind


class TestToyNetworks:
    def test_n1_values_match_paper(self):
        network = paper_network_n1()
        assert network.compute(np.array([0.5]))[0] == pytest.approx(-0.5)
        assert network.compute(np.array([1.5]))[0] == pytest.approx(-1.0)
        assert network.compute(np.array([0.0]))[0] == pytest.approx(0.0)

    def test_n2_differs_only_in_green_region(self):
        n1, n2 = paper_network_n1(), paper_network_n2()
        # Left of x = 0.5 the two agree; right of it they differ (Figure 3).
        assert n2.compute(np.array([0.25]))[0] == pytest.approx(
            n1.compute(np.array([0.25]))[0]
        )
        assert n2.compute(np.array([1.5]))[0] != pytest.approx(n1.compute(np.array([1.5]))[0])


class TestModelBuilders:
    def test_digit_network_structure(self):
        network = build_digit_network(144, hidden_sizes=(32, 16), seed=0)
        assert network.input_size == 144
        assert network.output_size == 10
        assert network.parameterized_layer_indices() == [0, DIGIT_LAYER_2_INDEX, DIGIT_LAYER_3_INDEX]

    def test_digit_network_trains_to_high_accuracy(self):
        dataset = generate_digit_dataset(train_per_class=30, test_per_class=10, seed=0)
        network = train_digit_network(dataset, hidden_sizes=(48, 24), epochs=25, seed=0)
        assert network.accuracy(dataset.test_images, dataset.test_labels) > 0.85

    def test_mini_squeezenet_structure(self):
        network = build_mini_squeezenet(side=16, num_classes=9, seed=0)
        assert network.input_size == 3 * 16 * 16
        assert network.output_size == 9
        assert len(network.parameterized_layer_indices()) == 8
        # Forward pass works on a batch.
        assert network.compute(np.zeros((2, network.input_size))).shape == (2, 9)

    def test_acas_network_structure(self):
        network = build_acas_network(hidden_size=8, hidden_layers=3, seed=0)
        assert network.input_size == 5
        assert network.output_size == 5
        assert last_layer_index(network) == len(network.layers) - 1
        hidden_linear = [
            layer
            for layer in network.layers
            if layer.kind is LayerKind.PARAMETERIZED
        ]
        assert len(hidden_linear) == 4  # 3 hidden + output


class TestModelZoo:
    def test_digit_network_is_cached(self, tmp_path):
        zoo = ModelZoo(cache_dir=tmp_path)
        dataset = zoo.digit_dataset(train_per_class=5, test_per_class=2, seed=0)
        first = zoo.digit_network(dataset, hidden_sizes=(16, 8), epochs=2, seed=0)
        cache_files = list(tmp_path.glob("digit-*.npz"))
        assert len(cache_files) == 1
        second = zoo.digit_network(dataset, hidden_sizes=(16, 8), epochs=2, seed=0)
        np.testing.assert_allclose(
            first.layers[0].get_parameters(), second.layers[0].get_parameters()
        )

    def test_different_configs_get_different_cache_entries(self, tmp_path):
        zoo = ModelZoo(cache_dir=tmp_path)
        dataset = zoo.digit_dataset(train_per_class=5, test_per_class=2, seed=0)
        zoo.digit_network(dataset, hidden_sizes=(16, 8), epochs=1, seed=0)
        zoo.digit_network(dataset, hidden_sizes=(16, 8), epochs=2, seed=0)
        assert len(list(tmp_path.glob("digit-*.npz"))) == 2

    def test_cache_can_be_disabled(self, tmp_path):
        zoo = ModelZoo(cache_dir=tmp_path, use_cache=False)
        dataset = zoo.digit_dataset(train_per_class=3, test_per_class=2, seed=0)
        zoo.digit_network(dataset, hidden_sizes=(8, 8), epochs=1, seed=0)
        assert not list(tmp_path.glob("*.npz"))


class TestFineTuneBaseline:
    def test_fine_tune_fixes_repair_points(self, rng):
        dataset = generate_digit_dataset(train_per_class=15, test_per_class=5, seed=1)
        network = train_digit_network(dataset, hidden_sizes=(32, 16), epochs=10, seed=1)
        # Pick a few test points and demand (their true) labels.
        points, labels = dataset.test_images[:8], dataset.test_labels[:8]
        result = fine_tune(network, points, labels, learning_rate=0.05, max_epochs=200, seed=0)
        assert result.converged
        assert result.network.accuracy(points, labels) == 1.0
        assert result.epochs_run <= 200

    def test_fine_tune_does_not_touch_original(self, rng):
        dataset = generate_digit_dataset(train_per_class=5, test_per_class=2, seed=2)
        network = build_digit_network(dataset.input_size, (16, 8), seed=2)
        before = network.layers[0].get_parameters().copy()
        fine_tune(network, dataset.test_images[:4], dataset.test_labels[:4], max_epochs=3)
        np.testing.assert_array_equal(network.layers[0].get_parameters(), before)

    def test_fine_tune_reports_non_convergence(self, rng):
        # Contradictory labels for the same input can never reach 100%.
        inputs = np.vstack([np.ones((1, 4)), np.ones((1, 4))])
        labels = np.array([0, 1])
        from tests.conftest import make_random_relu_network

        network = make_random_relu_network(rng, (4, 8, 2))
        result = fine_tune(network, inputs, labels, max_epochs=5)
        assert not result.converged
        assert result.final_accuracy <= 0.5


class TestModifiedFineTuneBaseline:
    def test_mft_only_changes_selected_layer(self, rng):
        dataset = generate_digit_dataset(train_per_class=10, test_per_class=5, seed=3)
        network = train_digit_network(dataset, hidden_sizes=(32, 16), epochs=5, seed=3)
        result = modified_fine_tune(
            network,
            dataset.test_images[:12],
            dataset.test_labels[:12],
            DIGIT_LAYER_3_INDEX,
            max_epochs=10,
            seed=0,
        )
        for index in network.parameterized_layer_indices():
            original = network.layers[index].get_parameters()
            tuned = result.network.layers[index].get_parameters()
            if index == DIGIT_LAYER_3_INDEX:
                continue
            np.testing.assert_array_equal(original, tuned)

    def test_mft_efficacy_between_zero_and_one(self, rng):
        dataset = generate_digit_dataset(train_per_class=8, test_per_class=4, seed=4)
        network = train_digit_network(dataset, hidden_sizes=(16, 8), epochs=5, seed=4)
        result = modified_fine_tune(
            network,
            dataset.test_images[:8],
            dataset.test_labels[:8],
            DIGIT_LAYER_2_INDEX,
            max_epochs=8,
            seed=0,
        )
        assert 0.0 <= result.efficacy <= 1.0
        assert result.epochs_run <= 8
        assert result.seconds > 0
