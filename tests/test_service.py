"""Tests for repair-as-a-service (repro.service).

Three layers, in increasing integration depth:

* the JSON wire protocol (jobs validate and round-trip losslessly);
* the in-process :class:`RepairService` (a daemon job is byte-identical to
  the same run executed standalone — including with two jobs multiplexed
  concurrently over the shared engine);
* the HTTP daemon end-to-end (submit → poll → result via
  :class:`ServiceClient`, and crash recovery: SIGKILL the daemon mid-job,
  restart it on the same state directory, and watch the job resume from the
  checkpointed counterexample pool instead of rediscovering it).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

import repro.obs as obs
from repro.driver import DriverConfig, RepairDriver
from repro.exceptions import SpecificationError
from repro.obs import SloSpec
from repro.nn.activations import ReLULayer
from repro.nn.linear import FullyConnectedLayer
from repro.nn.network import Network
from repro.polytope.hpolytope import HPolytope
from repro.service import (
    RepairService,
    ServiceClient,
    ServiceError,
    decode_network_b64,
    make_job,
    parse_job,
    serve,
)
from repro.utils.rng import ensure_rng
from repro.verify import SyrennVerifier, VerificationSpec

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def plane_scenario(seed: int) -> tuple[Network, VerificationSpec]:
    """A seeded scenario the exact-verifier driver certifies in a few rounds."""
    rng = ensure_rng(seed)
    network = Network(
        [
            FullyConnectedLayer.from_shape(2, 8, rng),
            ReLULayer(8),
            FullyConnectedLayer.from_shape(8, 6, rng),
            ReLULayer(6),
            FullyConnectedLayer.from_shape(6, 3, rng),
        ]
    )
    preds = network.predict(rng.uniform(-1.0, 1.0, size=(400, 2)))
    winner = int(np.bincount(preds, minlength=3).argmax())
    spec = VerificationSpec()
    spec.add_plane(
        [[-1, -1], [1, -1], [1, 1], [-1, 1]],
        HPolytope.argmax_region(3, winner, 1e-4),
    )
    spec.add_box([-0.5, -1.0], [0.5, 1.0], HPolytope.argmax_region(3, winner, 1e-4))
    return network, spec


def slow_grid_job(seed: int = 12345) -> dict:
    """A repair job whose rounds take seconds: a dense grid sweep per round.

    Used by the crash-recovery test, which needs a wide window in which the
    daemon is mid-job (at least one round persisted, more still to run).
    """
    rng = ensure_rng(seed)
    network = Network(
        [
            FullyConnectedLayer.from_shape(2, 8, rng),
            ReLULayer(8),
            FullyConnectedLayer.from_shape(8, 6, rng),
            ReLULayer(6),
            FullyConnectedLayer.from_shape(6, 3, rng),
        ]
    )
    preds = network.predict(rng.uniform(-1.0, 1.0, size=(400, 2)))
    winner = int(np.bincount(preds, minlength=3).argmax())
    spec = VerificationSpec()
    spec.add_box([-1.0, -1.0], [1.0, 1.0], HPolytope.argmax_region(3, winner, 0.2))
    return make_job(
        "repair",
        network,
        spec,
        verifier={"kind": "grid", "resolution": 1400, "max_points_per_region": 1400 * 1400},
        config={"max_rounds": 10},
    )


def parameter_bytes(network) -> list[bytes]:
    return [
        layer.get_parameters().tobytes()
        for layer in network.value.layers
        if layer.num_parameters
    ]


def raw_parameter_bytes(network: Network) -> list[bytes]:
    return [
        layer.get_parameters().tobytes()
        for layer in network.layers
        if layer.num_parameters
    ]


TIMING_KEYS = {
    "seconds",
    "repair_seconds",
    "timing",
    # Telemetry rides along with reports/rounds but is run-specific
    # (wall-clock histograms, per-job labels), never run-defining.
    "telemetry",
    "latency_seconds",
    "queued_seconds",
    "run_seconds",
}


def comparable(summary: dict) -> dict:
    """A report dictionary's run-defining content, wall-clock stripped."""
    summary = {k: v for k, v in summary.items() if k not in TIMING_KEYS and k != "engine"}
    if summary.get("final_report"):
        summary["final_report"] = {
            k: v for k, v in summary["final_report"].items() if k != "seconds"
        }
    def normalize(record: dict) -> dict:
        record = {k: v for k, v in record.items() if k not in TIMING_KEYS}
        if isinstance(record.get("drawdown"), float) and np.isnan(record["drawdown"]):
            record["drawdown"] = None  # NaN compares unequal after a JSON trip
        return record

    summary["rounds"] = [normalize(record) for record in summary["rounds"]]
    return summary


class TestProtocol:
    def test_job_round_trips_through_json(self):
        network, spec = plane_scenario(7)
        job = make_job(
            "repair",
            network,
            spec,
            verifier={"kind": "random", "num_samples": 64, "seed": 3},
            config=DriverConfig(max_rounds=4, norm="l1"),
        )
        parsed = parse_job(json.loads(json.dumps(job)))
        assert parsed.kind == "repair"
        assert parsed.verifier_kind == "random"
        assert parsed.verifier_params == {"num_samples": 64, "seed": 3}
        assert parsed.config == DriverConfig(max_rounds=4, norm="l1")
        assert parsed.spec.num_regions == spec.num_regions
        assert raw_parameter_bytes(parsed.network) == raw_parameter_bytes(network)

    def test_verifier_as_bare_kind_string(self):
        network, spec = plane_scenario(7)
        job = make_job("verify", network, spec, verifier="grid")
        assert parse_job(job).verifier_kind == "grid"

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda job: job.update(kind="train"), "job kind"),
            (lambda job: job.pop("network"), '"network"'),
            (lambda job: job.pop("spec"), '"spec"'),
            (lambda job: job.update(network="!!!not-base64!!!"), "undecodable network"),
            (lambda job: job.update(verifier={"kind": "exhaustive"}), "unknown verifier"),
            (lambda job: job.update(version=99), "protocol version"),
            (lambda job: job.update(config={"max_round": 1}), "unknown driver config"),
        ],
    )
    def test_malformed_jobs_rejected(self, mutate, match):
        network, spec = plane_scenario(7)
        job = make_job("repair", network, spec)
        mutate(job)
        with pytest.raises(SpecificationError, match=match):
            parse_job(job)

    def test_config_only_applies_to_repair_jobs(self):
        network, spec = plane_scenario(7)
        job = make_job("verify", network, spec)
        job["config"] = {"max_rounds": 3}
        with pytest.raises(SpecificationError, match="only applies to repair"):
            parse_job(job)

    def test_network_payload_round_trips_bytes(self):
        network, _ = plane_scenario(7)
        job_network = decode_network_b64(make_job("verify", network, VerificationSpec())["network"])
        assert raw_parameter_bytes(job_network) == raw_parameter_bytes(network)


class TestRepairServiceInProcess:
    def test_concurrent_jobs_match_standalone_runs_byte_for_byte(self, tmp_path):
        """Two jobs multiplexed over one shared engine == two standalone runs."""
        scenarios = [plane_scenario(12345), plane_scenario(999)]
        config = DriverConfig(max_rounds=8)
        baselines = [
            RepairDriver(network, spec, SyrennVerifier(), config=config).run()
            for network, spec in scenarios
        ]
        service = RepairService(tmp_path / "state", job_workers=2)
        try:
            job_ids = [
                service.submit(make_job("repair", network, spec, config=config))
                for network, spec in scenarios
            ]
            results = [service.wait(job_id, timeout=240) for job_id in job_ids]
        finally:
            service.stop()
        for baseline, result in zip(baselines, results):
            assert result["status"] == "done"
            assert baseline.status == "certified"
            served_report = result["result"]["report"]
            assert comparable(served_report) == comparable(baseline.as_dict())
            served_network = decode_network_b64(result["result"]["network"])
            assert parameter_bytes(served_network) == parameter_bytes(baseline.network)

    def test_verify_job(self, tmp_path):
        network, spec = plane_scenario(12345)
        service = RepairService(tmp_path / "state")
        try:
            job_id = service.submit(
                make_job("verify", network, spec, verifier={"kind": "grid", "resolution": 8})
            )
            result = service.wait(job_id, timeout=60)
        finally:
            service.stop()
        report = result["result"]["report"]
        assert result["status"] == "done"
        assert report["verifier"] == "grid"
        assert report["num_regions"] == spec.num_regions

    def test_runtime_failure_marks_job_failed(self, tmp_path):
        """A job that explodes mid-run fails that job, not the worker."""
        network, _ = plane_scenario(12345)
        bad_spec = VerificationSpec()
        bad_spec.add_box([-1.0] * 3, [1.0] * 3, HPolytope.argmax_region(3, 0, 0.0))
        service = RepairService(tmp_path / "state")
        try:
            job_id = service.submit(make_job("verify", network, bad_spec))
            result = service.wait(job_id, timeout=60)
            assert result["status"] == "failed"
            assert "SpecificationError" in result["error"]
            # The worker survived: a good job still completes afterwards.
            network, spec = plane_scenario(12345)
            ok = service.wait(service.submit(make_job("verify", network, spec)), timeout=60)
            assert ok["status"] == "done"
        finally:
            service.stop()

    def test_round_records_stream_while_running(self, tmp_path):
        network, spec = plane_scenario(12345)
        service = RepairService(tmp_path / "state")
        try:
            job_id = service.submit(
                make_job("repair", network, spec, config={"max_rounds": 8})
            )
            result = service.wait(job_id, timeout=240)
            status = service.status(job_id)
        finally:
            service.stop()
        assert result["status"] == "done"
        assert status["rounds"]
        assert status["rounds"][0]["round_index"] == 0
        assert "result" not in status  # polling stays cheap
        # ... and the persisted document survives a service restart.
        reloaded = RepairService(tmp_path / "state")
        try:
            assert reloaded.result(job_id)["result"]["report"]["status"] == "certified"
        finally:
            reloaded.stop()

    def test_unknown_and_unfinished_jobs(self, tmp_path):
        service = RepairService(tmp_path / "state")
        try:
            with pytest.raises(KeyError):
                service.status("job-999999")
            health = service.health()
            assert health["ok"] and health["jobs"] == {}
        finally:
            service.stop()


@pytest.fixture
def http_server(tmp_path):
    server = serve(tmp_path / "state", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServiceClient(f"http://{host}:{port}"), server
    finally:
        server.shutdown()
        server.server_close()
        server.service.stop()
        thread.join(timeout=10)


class TestHTTPEndToEnd:
    def test_submit_poll_result(self, http_server):
        client, _ = http_server
        network, spec = plane_scenario(12345)
        baseline = RepairDriver(
            network, spec, SyrennVerifier(), config=DriverConfig(max_rounds=8)
        ).run()

        assert client.health()["ok"]
        job_id = client.submit(make_job("repair", network, spec, config={"max_rounds": 8}))
        result = client.wait(job_id, timeout=240)
        assert result["status"] == "done"
        assert comparable(result["result"]["report"]) == comparable(baseline.as_dict())
        served = decode_network_b64(result["result"]["network"])
        assert parameter_bytes(served) == parameter_bytes(baseline.network)

        status = client.status(job_id)
        assert status["status"] == "done"
        assert [r["round_index"] for r in status["rounds"]] == list(range(len(status["rounds"])))
        assert any(job["id"] == job_id for job in client.jobs())

    def test_http_error_codes(self, http_server):
        client, _ = http_server
        with pytest.raises(ServiceError) as not_found:
            client.status("job-424242")
        assert not_found.value.status == 404
        with pytest.raises(ServiceError) as bad_job:
            client.submit({"kind": "repair"})
        assert bad_job.value.status == 400


@pytest.mark.slow
class TestDaemonCrashRecovery:
    def _start_daemon(self, state_dir: Path, port: int = 0) -> tuple[subprocess.Popen, str]:
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            # --log-level off: the structured stderr log would interleave
            # with the stdout banner on the merged pipe (tested in-process
            # with a dedicated stream instead).
            [sys.executable, "-u", "-m", "repro.service",
             "--state-dir", str(state_dir), "--port", str(port), "--job-workers", "1",
             "--log-level", "off"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        # Structured JSON log lines (stderr, merged above) may precede the
        # stdout banner; scan until the banner itself appears.
        lines: list[str] = []

        def _find_banner() -> None:
            for line in process.stdout:
                lines.append(line)
                if line.startswith("listening on "):
                    return

        reader = threading.Thread(target=_find_banner, daemon=True)
        reader.start()
        reader.join(timeout=60)
        banner = [line for line in lines if line.startswith("listening on ")]
        assert banner, f"daemon did not come up: {lines}"
        return process, banner[0].split("listening on ", 1)[1].strip()

    def test_sigkill_mid_job_then_resume_from_checkpoint(self, tmp_path):
        state_dir = tmp_path / "state"
        job = slow_grid_job()
        process, url = self._start_daemon(state_dir)
        try:
            client = ServiceClient(url)
            job_id = client.submit(job)
            # Wait until at least one round has been persisted, then pull the
            # plug while the next round's (multi-second) verify is running.
            deadline = time.monotonic() + 120
            while True:
                status = client.status(job_id)
                if status["rounds"]:
                    break
                if status["status"] in ("done", "failed") or time.monotonic() > deadline:
                    pytest.skip(f"no mid-job window to kill in: {status['status']}")
                time.sleep(0.05)
            process.kill()
            process.wait(timeout=30)
        finally:
            process.kill()
            process.stdout.close()
            process.wait(timeout=30)

        on_disk = json.loads((state_dir / "jobs" / f"{job_id}.json").read_text())
        assert on_disk["status"] == "running"
        pre_kill_rounds = on_disk["rounds"]
        assert pre_kill_rounds and pre_kill_rounds[0]["new_counterexamples"] > 0
        assert (state_dir / "jobs" / f"{job_id}.pool.npz").exists()

        process, url = self._start_daemon(state_dir)
        try:
            result = ServiceClient(url).wait(job_id, timeout=240)
            assert result["status"] == "done"
            resumed_rounds = result["result"]["report"]["rounds"]
            # The resumed driver loaded the checkpointed pool: its first round
            # rediscovers the same grid violations, every one a duplicate.
            assert resumed_rounds[0]["new_counterexamples"] == 0
            assert resumed_rounds[0]["pool_size"] >= pre_kill_rounds[0]["pool_size"]
            assert resumed_rounds[0]["repair_attempted"]
        finally:
            process.terminate()
            try:
                process.wait(timeout=30)
            finally:
                process.kill()
                process.stdout.close()
                process.wait(timeout=30)


class TestTelemetrySurfaces:
    """/metrics, /jobs/<id>/trace, structured logs, and monotonic latencies."""

    def test_metrics_endpoint_exposes_key_series(self, http_server):
        client, server = http_server
        network, spec = plane_scenario(12345)
        job_id = client.submit(make_job("repair", network, spec, config={"max_rounds": 8}))
        assert client.wait(job_id, timeout=240)["status"] == "done"
        text = client.metrics()
        # The registry is process-wide by design, so earlier tests may have
        # already counted jobs: assert the series, not an absolute value.
        import re as _re

        done = _re.search(r'repro_service_jobs_total\{status="done"\} (\d+)', text)
        assert done is not None and int(done.group(1)) >= 1
        assert "# TYPE repro_lp_solve_seconds histogram" in text
        assert "repro_lp_solve_seconds_bucket" in text
        assert "repro_cache_requests_total" in text
        assert "repro_driver_rounds_total" in text
        # Correct exposition content type on the wire.
        import urllib.request

        with urllib.request.urlopen(f"{client.base_url}/metrics", timeout=10) as response:
            assert response.headers["Content-Type"].startswith("text/plain; version=0.0.4")

    def test_trace_round_trips_through_http(self, http_server):
        client, _ = http_server
        network, spec = plane_scenario(12345)
        job_id = client.submit(make_job("repair", network, spec, config={"max_rounds": 8}))
        assert client.wait(job_id, timeout=240)["status"] == "done"
        trace = client.trace(job_id)
        assert trace["trace_id"] == f"{job_id}-trace"
        root = trace["root"]
        assert root["name"] == "job.repair"
        assert root["attributes"]["job_id"] == job_id

        def names(span):
            yield span["name"]
            for child in span.get("children", ()):
                yield from names(child)

        seen = set(names(root))
        assert {"driver.run", "driver.verify", "driver.repair", "lp.solve"} <= seen
        with pytest.raises(ServiceError) as missing:
            client.trace("job-424242")
        assert missing.value.status == 404

    def test_structured_log_correlates_job_and_trace(self, tmp_path):
        import io

        stream = io.StringIO()
        network, spec = plane_scenario(12345)
        service = RepairService(tmp_path / "state", log_level="info", log_stream=stream)
        try:
            job_id = service.submit(make_job("verify", network, spec))
            assert service.wait(job_id, timeout=60)["status"] == "done"
        finally:
            service.stop()
        events = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert all({"ts", "level", "event"} <= set(event) for event in events)
        submitted = [e for e in events if e["event"] == "job_submitted"]
        assert submitted and submitted[0]["job_id"] == job_id
        states = [e for e in events if e["event"] == "job_state"]
        assert [e["status"] for e in states] == ["running", "done"]
        assert all(e["trace_id"] == f"{job_id}-trace" for e in states)

    def test_latencies_are_monotonic_and_consistent(self, tmp_path):
        network, spec = plane_scenario(12345)
        service = RepairService(tmp_path / "state")
        try:
            job_id = service.submit(make_job("verify", network, spec))
            assert service.wait(job_id, timeout=60)["status"] == "done"
            status = service.status(job_id)
        finally:
            service.stop()
        assert status["queued_seconds"] >= 0.0
        assert status["run_seconds"] > 0.0
        # End-to-end latency covers the queue wait plus the run itself.
        assert status["latency_seconds"] >= status["run_seconds"]


class TestHealthSurfaces:
    """/healthz, /readyz, /slo, and /jobs/<id>/profile on a live daemon."""

    def test_readyz_reports_engine_and_state_dir(self, http_server):
        client, _ = http_server
        ready = client.readyz()
        assert ready["ready"] is True
        assert ready["checks"] == {"engine_pool": True, "state_dir_writable": True}

    def test_healthz_and_slo_after_clean_traffic(self, http_server):
        client, _ = http_server
        network, spec = plane_scenario(12345)
        job_id = client.submit(make_job("verify", network, spec))
        assert client.wait(job_id, timeout=60)["status"] == "done"
        verdict = client.healthz()
        # One fast, successful job can only be healthy (or vacuously so,
        # if the first window observation just anchored).
        assert verdict["status"] == "healthy"
        assert verdict["reasons"] == []
        assert verdict["jobs"].get("done", 0) >= 1
        assert verdict["window_seconds"] >= 0.0
        document = client.slo()
        names = {entry["name"] for entry in document["slos"]}
        assert {"job_p99_seconds", "job_failure_ratio", "http_5xx_ratio"} <= names
        for entry in document["slos"]:
            assert entry["status"] in ("healthy", "degraded", "unhealthy")
            assert entry["reason"]
            # The served spec is config, not prose: it rebuilds losslessly.
            assert SloSpec.from_dict(entry["spec"]).name == entry["name"]

    def test_unhealthy_verdict_maps_to_503_with_parsed_body(self, tmp_path):
        # A hostile SLO that grades *any* request traffic unhealthy, so the
        # 503 path is reachable from a perfectly functional daemon.
        slos = (
            SloSpec(
                name="no_traffic_allowed",
                series="repro_service_requests_total",
                agg="total",
                degraded=0.0,
                unhealthy=1.0,
            ),
        )
        server = serve(tmp_path / "state", port=0, slos=slos)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        try:
            # First call anchors the window: no deltas yet, vacuously healthy.
            assert client.healthz()["status"] == "healthy"
            client.health()
            client.health()
            verdict = client.healthz()  # served as a 503; body still parsed
            assert verdict["status"] == "unhealthy"
            assert any("no_traffic_allowed" in reason for reason in verdict["reasons"])
        finally:
            server.shutdown()
            server.server_close()
            server.service.stop()
            thread.join(timeout=10)

    def test_profile_of_a_finished_job(self, http_server):
        client, _ = http_server
        network, spec = plane_scenario(12345)
        job_id = client.submit(make_job("repair", network, spec, config={"max_rounds": 8}))
        assert client.wait(job_id, timeout=240)["status"] == "done"
        profile = client.profile(job_id)
        assert profile["job_id"] == job_id
        assert profile["samples"] >= 1
        # The forced start sample guarantees the stacks reach the daemon's
        # job-execution frames even for sub-interval jobs.
        assert "_execute" in profile["folded"]
        assert sum(profile["stacks"].values()) >= 1
        with pytest.raises(ServiceError) as missing:
            client.profile("job-424242")
        assert missing.value.status == 404

    def test_profile_is_409_for_a_recovered_never_rerun_job(self, tmp_path):
        """Profiles are in-memory, like traces: disk recovery has none."""
        network, spec = plane_scenario(12345)
        service = RepairService(tmp_path / "state")
        try:
            job_id = service.submit(make_job("verify", network, spec))
            assert service.wait(job_id, timeout=60)["status"] == "done"
        finally:
            service.stop()
        server = serve(tmp_path / "state", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        try:
            with pytest.raises(ServiceError) as conflict:
                client.profile(job_id)
            assert conflict.value.status == 409
        finally:
            server.shutdown()
            server.server_close()
            server.service.stop()
            thread.join(timeout=10)


class TestClientBackoff:
    def test_wait_backoff_schedule_and_poll_counter(self, monkeypatch):
        """Deterministic capped doubling, one counter increment per poll."""
        client = ServiceClient("http://127.0.0.1:1")
        statuses = iter(["queued", "queued", "queued", "queued", "running", "done"])
        monkeypatch.setattr(client, "status", lambda job_id: {"status": next(statuses)})
        monkeypatch.setattr(client, "result", lambda job_id: {"status": "done"})
        sleeps: list[float] = []
        monkeypatch.setattr("repro.service.client.time.sleep", sleeps.append)
        with obs.isolated():
            result = client.wait("job-1", poll_interval=0.05, max_poll_interval=0.4)
            polls = obs.counter("repro_client_polls_total").value()
        assert result == {"status": "done"}
        assert sleeps == [0.05, 0.1, 0.2, 0.4, 0.4]
        assert polls == 6.0

    def test_service_owns_obs_lifecycle(self, tmp_path):
        was_enabled = obs.enabled()
        obs.disable()
        try:
            service = RepairService(tmp_path / "state")
            assert obs.enabled()
            service.stop()
            assert not obs.enabled()
        finally:
            if was_enabled:
                obs.enable()
