"""Tests for the Network container, backprop, and SGD training."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import LayerError, ShapeError
from repro.nn.linear import FullyConnectedLayer
from repro.nn.network import Network
from repro.nn.train import (
    SGDTrainer,
    TrainingConfig,
    cross_entropy_loss,
    network_gradients,
    softmax,
)
from tests.conftest import make_random_relu_network


class TestNetworkContainer:
    def test_layer_size_mismatch_rejected(self, rng):
        with pytest.raises(LayerError):
            Network(
                [FullyConnectedLayer.from_shape(2, 3, rng), FullyConnectedLayer.from_shape(4, 2, rng)]
            )

    def test_empty_network_rejected(self):
        with pytest.raises(LayerError):
            Network([])

    def test_toy_network_values(self, toy_network):
        assert toy_network.compute(np.array([0.5])) == pytest.approx(-0.5)
        assert toy_network.compute(np.array([1.5])) == pytest.approx(-1.0)

    def test_compute_accepts_vector_and_batch(self, toy_network):
        vector_output = toy_network.compute(np.array([0.5]))
        batch_output = toy_network.compute(np.array([[0.5], [1.5]]))
        assert vector_output.shape == (1,)
        assert batch_output.shape == (2, 1)

    def test_compute_rejects_wrong_size(self, toy_network):
        with pytest.raises(ShapeError):
            toy_network.compute(np.array([1.0, 2.0]))

    def test_layer_inputs_chain(self, random_relu_network, rng):
        batch = rng.normal(size=(3, random_relu_network.input_size))
        inputs = random_relu_network.layer_inputs(batch)
        assert len(inputs) == len(random_relu_network.layers) + 1
        np.testing.assert_allclose(inputs[-1], random_relu_network.compute(batch))

    def test_parameterized_indices(self, toy_network):
        assert toy_network.parameterized_layer_indices() == [0, 2]

    def test_num_parameters(self, toy_network):
        # First layer: 3 weights + 3 biases; second: 3 weights + 1 bias.
        assert toy_network.num_parameters == 10

    def test_predict_and_accuracy(self, rng):
        network = make_random_relu_network(rng, (4, 8, 3))
        batch = rng.normal(size=(10, 4))
        predictions = network.predict(batch)
        assert predictions.shape == (10,)
        assert network.accuracy(batch, predictions) == 1.0

    def test_accuracy_empty_set_rejected(self, random_relu_network):
        with pytest.raises(ShapeError):
            random_relu_network.accuracy(np.zeros((0, 4)), np.zeros(0))

    def test_copy_is_deep(self, toy_network):
        clone = toy_network.copy()
        clone.layers[0].weights[0, 0] = 99.0
        assert toy_network.layers[0].weights[0, 0] != 99.0

    def test_activation_pattern(self, toy_network):
        pattern = toy_network.activation_pattern(np.array([0.5]))
        assert len(pattern) == 1
        np.testing.assert_array_equal(pattern[0], [False, True, False])

    def test_is_piecewise_linear(self, toy_network, random_tanh_network):
        assert toy_network.is_piecewise_linear()
        assert not random_tanh_network.is_piecewise_linear()

    def test_save_and_load_parameters(self, toy_network, tmp_path):
        path = tmp_path / "params.npz"
        toy_network.save_parameters(path)
        clone = toy_network.copy()
        clone.layers[0].weights[:] = 0.0
        clone.load_parameters(path)
        np.testing.assert_allclose(clone.layers[0].weights, toy_network.layers[0].weights)

    def test_get_set_all_parameters(self, toy_network):
        parameters = toy_network.get_all_parameters()
        clone = toy_network.copy()
        clone.layers[0].weights[:] = 0.0
        clone.set_all_parameters(parameters)
        np.testing.assert_allclose(
            clone.compute(np.array([0.7])), toy_network.compute(np.array([0.7]))
        )

    def test_repr_lists_layers(self, toy_network):
        assert "FullyConnectedLayer" in repr(toy_network)


class TestLossFunctions:
    def test_softmax_sums_to_one(self, rng):
        logits = rng.normal(size=(5, 7))
        probabilities = softmax(logits)
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(5))

    def test_softmax_stable_for_large_logits(self):
        probabilities = softmax(np.array([[1e4, 0.0]]))
        assert np.all(np.isfinite(probabilities))

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0, 0.0]])
        loss, grad = cross_entropy_loss(logits, np.array([0]))
        assert loss == pytest.approx(0.0, abs=1e-6)
        np.testing.assert_allclose(grad, softmax(logits) - np.array([[1.0, 0.0, 0.0]]))

    def test_cross_entropy_gradient_matches_finite_differences(self, rng):
        logits = rng.normal(size=(3, 4))
        labels = np.array([0, 2, 3])
        _, grad = cross_entropy_loss(logits, labels)
        eps = 1e-6
        numeric = np.zeros_like(logits)
        for row in range(3):
            for col in range(4):
                up, down = logits.copy(), logits.copy()
                up[row, col] += eps
                down[row, col] -= eps
                numeric[row, col] = (
                    cross_entropy_loss(up, labels)[0] - cross_entropy_loss(down, labels)[0]
                ) / (2 * eps)
        np.testing.assert_allclose(grad, numeric, atol=1e-5)


class TestBackpropagation:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_gradients_match_finite_differences(self, seed):
        rng = np.random.default_rng(seed)
        network = make_random_relu_network(rng, (3, 5, 4))
        batch = rng.normal(size=(6, 3))
        labels = rng.integers(0, 4, size=6)
        _, gradients = network_gradients(network, batch, labels)
        eps = 1e-6
        for index, gradient in gradients.items():
            layer = network.layers[index]
            params = layer.get_parameters()
            sample_columns = np.linspace(0, params.size - 1, min(10, params.size)).astype(int)
            for column in sample_columns:
                perturbed = params.copy()
                perturbed[column] += eps
                layer.set_parameters(perturbed)
                up, _ = cross_entropy_loss(network.compute(batch), labels)
                perturbed[column] -= 2 * eps
                layer.set_parameters(perturbed)
                down, _ = cross_entropy_loss(network.compute(batch), labels)
                layer.set_parameters(params)
                assert gradient[column] == pytest.approx((up - down) / (2 * eps), abs=1e-4)

    def test_only_layer_restricts_gradients(self, rng):
        network = make_random_relu_network(rng, (3, 5, 4))
        batch = rng.normal(size=(4, 3))
        labels = rng.integers(0, 4, size=4)
        _, gradients = network_gradients(network, batch, labels, only_layer=2)
        assert list(gradients.keys()) == [2]


class TestSGDTrainer:
    def test_training_reduces_loss_and_reaches_accuracy(self, rng):
        # A linearly-separable two-class problem in 2-D.
        inputs = np.vstack(
            [rng.normal([2.0, 2.0], 0.3, size=(30, 2)), rng.normal([-2.0, -2.0], 0.3, size=(30, 2))]
        )
        labels = np.array([0] * 30 + [1] * 30)
        network = make_random_relu_network(rng, (2, 8, 2))
        trainer = SGDTrainer(network, TrainingConfig(learning_rate=0.1, epochs=20, seed=0))
        history = trainer.train(inputs, labels)
        assert history.losses[-1] < history.losses[0]
        assert history.final_accuracy >= 0.95

    def test_stop_at_full_accuracy(self, rng):
        inputs = np.vstack(
            [rng.normal([3.0, 3.0], 0.1, size=(10, 2)), rng.normal([-3.0, -3.0], 0.1, size=(10, 2))]
        )
        labels = np.array([0] * 10 + [1] * 10)
        network = make_random_relu_network(rng, (2, 8, 2))
        trainer = SGDTrainer(network, TrainingConfig(learning_rate=0.2, epochs=200, seed=0))
        history = trainer.train(inputs, labels, stop_at_full_accuracy=True)
        assert history.final_accuracy == 1.0
        assert len(history.losses) < 200

    def test_only_layer_training_leaves_other_layers_unchanged(self, rng):
        network = make_random_relu_network(rng, (3, 6, 2))
        frozen_before = network.layers[0].get_parameters().copy()
        tuned_before = network.layers[2].get_parameters().copy()
        trainer = SGDTrainer(
            network, TrainingConfig(learning_rate=0.1, epochs=3, only_layer=2, seed=0)
        )
        trainer.train(rng.normal(size=(20, 3)), rng.integers(0, 2, size=20))
        np.testing.assert_array_equal(network.layers[0].get_parameters(), frozen_before)
        assert not np.allclose(network.layers[2].get_parameters(), tuned_before)

    def test_weight_decay_shrinks_parameters(self, rng):
        network = make_random_relu_network(rng, (2, 4, 2))
        config = TrainingConfig(learning_rate=0.01, epochs=5, weight_decay=0.5, momentum=0.0, seed=0)
        norm_before = np.linalg.norm(network.layers[0].get_parameters())
        SGDTrainer(network, config).train(np.zeros((8, 2)), np.zeros(8, dtype=int))
        norm_after = np.linalg.norm(network.layers[0].get_parameters())
        assert norm_after < norm_before

    def test_training_history_empty_defaults(self):
        from repro.nn.train import TrainingHistory

        history = TrainingHistory()
        assert np.isnan(history.final_loss)
        assert np.isnan(history.final_accuracy)
