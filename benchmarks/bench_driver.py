"""Driver benchmark: rounds-to-clean and wall-clock vs. one-shot oversampling.

Builds seeded ACAS-style scenarios — a random PWL classifier plus planar
target regions, each of which must be classified as its current majority
class — and compares two ways of making the regions provably clean:

* **driver** — the CEGIS :class:`~repro.driver.driver.RepairDriver` with the
  exact :class:`~repro.verify.exact.SyrennVerifier`: verify, pool the
  violating region vertices, repair just those, re-verify, until certified;
* **oversampled** — the pre-driver workaround: one-shot batched pointwise
  repair of a dense sample grid over every region, then a single exact
  verification pass to see whether the oversampled LP happened to certify.

The driver's LP only ever contains the counterexample vertices the verifier
actually found, so it is typically far smaller than the oversampled one, and
unlike oversampling it terminates with a certificate.  Results are written
as JSON with the same report shape as ``bench_lp_scaling.py`` (default
``BENCH_driver.json``) so CI can archive the trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_driver.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_driver.py --smoke    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

import repro.obs as obs
from conftest import telemetry_document
from repro.core.point_repair import point_repair
from repro.core.specs import PointRepairSpec
from repro.driver import RepairDriver
from repro.nn.activations import ReLULayer
from repro.nn.linear import FullyConnectedLayer
from repro.nn.network import Network
from repro.polytope.hpolytope import HPolytope
from repro.utils.rng import ensure_rng
from repro.verify import SyrennVerifier, VerificationSpec

INPUT_SIZE = 2
NUM_CLASSES = 3
CONSTRAINT_MARGIN = 1e-4
MAX_ROUNDS = 10


def build_network(depth: int, width: int, rng: np.random.Generator) -> Network:
    """A random PWL classifier over the plane."""
    layers: list = [FullyConnectedLayer.from_shape(INPUT_SIZE, width, rng), ReLULayer(width)]
    for _ in range(depth - 1):
        layers.append(FullyConnectedLayer.from_shape(width, width, rng))
        layers.append(ReLULayer(width))
    layers.append(FullyConnectedLayer.from_shape(width, NUM_CLASSES, rng))
    return Network(layers)


def build_spec(
    network: Network, num_regions: int, rng: np.random.Generator
) -> VerificationSpec:
    """Disjoint square regions, each required to keep its majority class.

    The squares tile a grid over the input box (disjoint, so no two regions
    can impose conflicting winners on shared points).  A region where the
    network is not yet unanimous contains violations, so the scenario starts
    dirty and both strategies have real work to do.
    """
    spec = VerificationSpec()
    grid_size = int(np.ceil(np.sqrt(num_regions)))
    cell = 2.0 / grid_size
    for index in range(num_regions):
        row, column = divmod(index, grid_size)
        center = np.array(
            [-1.0 + (column + 0.5) * cell, -1.0 + (row + 0.5) * cell]
        )
        half = 0.45 * cell  # inset so adjacent regions do not share vertices
        square = center + half * np.array(
            [[-1.0, -1.0], [1.0, -1.0], [1.0, 1.0], [-1.0, 1.0]]
        )
        samples = center + rng.uniform(-half, half, size=(256, INPUT_SIZE))
        counts = np.bincount(network.predict(samples), minlength=NUM_CLASSES)
        winner = int(counts.argmax())
        spec.add_plane(
            square,
            HPolytope.argmax_region(NUM_CLASSES, winner, CONSTRAINT_MARGIN),
            name=f"region{index}",
        )
    return spec


def run_driver(network: Network, spec: VerificationSpec) -> dict:
    """Time a full certified-repair driver run."""
    start = time.perf_counter()
    driver = RepairDriver(
        network, spec, SyrennVerifier(), max_rounds=MAX_ROUNDS, norm="linf"
    )
    report = driver.run()
    total = time.perf_counter() - start
    constraint_rows = sum(
        c.constraint.num_constraints for c in driver.pool.counterexamples
    )
    return {
        "total_seconds": total,
        "rounds": report.num_rounds,
        "status": report.status,
        "certified": report.certified,
        "pool_size": report.pool_size,
        "constraint_rows": constraint_rows,
        "unsatisfied_pool": len(report.unsatisfied_pool_indices),
        "timing": report.timing.as_dict(),
        "network": report.network,
    }


def run_oversampled(
    network: Network, spec: VerificationSpec, resolution: int, rng: np.random.Generator
) -> dict:
    """Time the one-shot alternative: repair a dense sample grid of every region."""
    start = time.perf_counter()
    points, constraints = [], []
    steps = np.linspace(0.0, 1.0, resolution)
    for entry in spec.regions:
        vertices = np.asarray(entry.region)
        # Bilinear lattice over the square region.
        for u in steps:
            for v in steps:
                weights = np.array(
                    [(1 - u) * (1 - v), u * (1 - v), u * v, (1 - u) * v]
                )
                points.append(weights @ vertices)
                constraints.append(entry.constraint)
    repair_spec = PointRepairSpec(points=np.array(points), constraints=constraints)
    layer_index = network.parameterized_layer_indices()[-1]
    result = point_repair(network, layer_index, repair_spec, norm="linf")
    record = {
        "num_points": repair_spec.num_points,
        "constraint_rows": repair_spec.num_constraint_rows,
        "feasible": result.feasible,
        "certified": False,
    }
    if result.feasible:
        verification = SyrennVerifier().verify(result.network, spec)
        record["certified"] = verification.certified
        record["remaining_violations"] = verification.num_violated
    record["total_seconds"] = time.perf_counter() - start
    return record


def run_benchmark(
    region_counts: list[int], depth: int, width: int, resolution: int, seed: int
) -> dict:
    """Sweep scenario sizes and return the JSON-ready report."""
    records = []
    for num_regions in region_counts:
        # Seeded through repro.utils.rng so the bench JSON is reproducible
        # run to run (and scenario generation matches the library's seeding
        # conventions everywhere else).
        rng = ensure_rng(seed + num_regions)
        network = build_network(depth, width, rng)
        spec = build_spec(network, num_regions, rng)

        driver = run_driver(network, spec)
        if driver["unsatisfied_pool"]:
            raise AssertionError(
                "driver's final network violates pooled counterexamples "
                f"({driver['unsatisfied_pool']} of {driver['pool_size']})"
            )
        driver.pop("network")
        oversampled = run_oversampled(network, spec, resolution, rng)
        speedup = oversampled["total_seconds"] / max(driver["total_seconds"], 1e-12)
        records.append(
            {
                "num_regions": num_regions,
                "driver": driver,
                "oversampled": oversampled,
                "speedup": speedup,
            }
        )
        print(
            f"regions={num_regions:>3}  "
            f"driver={driver['total_seconds']:.3f}s "
            f"({driver['rounds']} rounds, {driver['constraint_rows']} LP rows, "
            f"{driver['status']})  "
            f"oversampled={oversampled['total_seconds']:.3f}s "
            f"({oversampled['constraint_rows']} LP rows, "
            f"certified={oversampled['certified']})  "
            f"speedup={speedup:.1f}x"
        )
    return {
        "benchmark": "driver",
        "network": {"depth": depth, "width": width, "input_size": INPUT_SIZE},
        "oversample_resolution": resolution,
        "seed": seed,
        "python": platform.python_version(),
        "results": records,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--regions",
        type=int,
        nargs="+",
        default=[2, 4, 8],
        help="target-region counts to sweep (default: 2 4 8)",
    )
    parser.add_argument("--depth", type=int, default=3, help="hidden ReLU layers")
    parser.add_argument("--width", type=int, default=16, help="hidden layer width")
    parser.add_argument(
        "--resolution", type=int, default=24, help="per-axis oversampling grid resolution"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: smallest scenario only",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_driver.json"),
        help="where to write the JSON report (default: BENCH_driver.json)",
    )
    args = parser.parse_args()
    obs.enable()
    if args.smoke:
        args.regions, args.depth, args.width, args.resolution = [2], 2, 12, 12
    report = run_benchmark(args.regions, args.depth, args.width, args.resolution, args.seed)
    report["telemetry"] = telemetry_document()
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
