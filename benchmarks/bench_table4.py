"""Table 4 (appendix): Task 1 extended per-layer results.

For each repair-set size: how many layers admit a feasible repair, the
best/worst drawdown across feasible layers, and the fastest/slowest
single-layer repair time.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import format_seconds, print_table
from repro.experiments.task1_imagenet import table4

POINT_COUNTS = (8, 16, 24)


@pytest.mark.parametrize("num_points", POINT_COUNTS)
def test_table4_per_layer_summary(benchmark, task1_setup, num_points):
    def run():
        return table4(task1_setup, [num_points], norm="l1")[0]

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Table 4 ({num_points} points)",
        [
            {
                "points": row["points"],
                "feasible": f"{row['feasible_layers']}/{row['total_layers']}",
                "best_drawdown_%": row["best_drawdown"],
                "worst_drawdown_%": row["worst_drawdown"],
                "fastest": format_seconds(row["fastest_time"]),
                "slowest": format_seconds(row["slowest_time"]),
                "best_drawdown_time": format_seconds(row["best_drawdown_time"]),
            }
        ],
    )
    assert row["feasible_layers"] >= 1
    assert row["best_drawdown"] <= row["worst_drawdown"]
