"""ImageNet-scaling benchmark: out-of-core driver-certified SqueezeNet repair.

Sweeps the feasible-by-construction classifier-perturbation workload
(:func:`repro.experiments.task1_imagenet.classifier_perturbation_workload`)
from ~10³ to ~10⁵ LP constraint rows and runs the full CEGIS
:class:`~repro.driver.driver.RepairDriver` on each size with a configured
``memory_budget`` — so constraint rows stream through the chunked
Jacobian→LP pipeline and old counterexamples spill from the pool to disk.
Each record reports rows vs round-seconds vs peak RSS, plus the pool/chunk
telemetry of the out-of-core tiers.

Two cross-checks always run (they are correctness gates, not timings):

* the chunked pipeline's repair delta is byte-identical to the fully
  in-memory path on the smallest workload;
* every run's peak RSS stays under the configured memory budget.

Results are written as JSON (default ``BENCH_imagenet_scaling.json``) with
the same envelope as the other benchmarks, so the perf sentinel can track
``imagenet_round_seconds`` across commits.

Usage::

    PYTHONPATH=src python benchmarks/bench_imagenet_scaling.py               # full sweep
    PYTHONPATH=src python benchmarks/bench_imagenet_scaling.py --rows 800    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
from pathlib import Path

import numpy as np

import repro.obs as obs
from conftest import telemetry_document
from repro.core.point_repair import point_repair
from repro.core.specs import PointRepairSpec
from repro.experiments.task1_imagenet import (
    CLASSIFICATION_MARGIN,
    classifier_perturbation_workload,
    driver_certified_repair,
)

NUM_CLASSES = 9
ROWS_PER_POINT = NUM_CLASSES - 1  # one argmax row per rival class
# The single out-of-core knob.  Peak RSS includes memory the budget cannot
# bound — above all the LP solver's internal copies of the constraint
# matrix (~22.5M nonzeros at 10^5 rows), which dominate at the top of the
# sweep (~3.6 GB measured) — so the default leaves headroom above the
# streamed tiers the budget actually controls.
DEFAULT_MEMORY_BUDGET = 6 * 1024**3


def peak_rss_bytes() -> int:
    """Peak RSS of this process (monotone, so sweep sizes ascending)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def check_chunked_matches_dense(workload) -> None:
    """Gate: the streamed pipeline is byte-identical to the in-memory path."""
    count = min(workload.num_points, 200)
    spec = PointRepairSpec.from_labels(
        workload.points[:count],
        workload.labels[:count],
        num_classes=workload.num_classes,
        margin=CLASSIFICATION_MARGIN,
    )
    dense = point_repair(workload.buggy, workload.classifier_layer, spec, sparse=True)
    chunked = point_repair(
        workload.buggy,
        workload.classifier_layer,
        spec,
        sparse=True,
        max_chunk_bytes=256 * 1024,
    )
    if dense.feasible != chunked.feasible:
        raise AssertionError("chunked and dense paths disagree on feasibility")
    if dense.delta.tobytes() != chunked.delta.tobytes():
        raise AssertionError("chunked repair delta is not byte-identical to dense")


def run_one(target_rows: int, memory_budget: int, seed: int) -> dict:
    """One driver-certified repair at ``target_rows`` LP constraint rows."""
    num_points = max(1, target_rows // ROWS_PER_POINT)
    build_start = time.perf_counter()
    workload = classifier_perturbation_workload(num_points, seed=seed)
    build_seconds = time.perf_counter() - build_start

    start = time.perf_counter()
    report, driver = driver_certified_repair(workload, memory_budget=memory_budget)
    total_seconds = time.perf_counter() - start
    peak_rss = peak_rss_bytes()
    record = {
        "target_rows": target_rows,
        "constraint_rows": workload.constraint_rows,
        "num_points": workload.num_points,
        "status": report.status,
        "certified": report.certified,
        "rounds": report.num_rounds,
        "lp_rows_appended": report.lp_rows_appended,
        "pool_size": report.pool_size,
        "pool_spilled_entries": driver.pool.spilled_entries,
        "pool_resident_bytes": driver.pool.resident_bytes,
        "workload_build_seconds": build_seconds,
        "total_seconds": total_seconds,
        "round_seconds_mean": total_seconds / max(1, report.num_rounds),
        "timing": report.timing.as_dict(),
        "memory_budget": memory_budget,
        "peak_rss_bytes": peak_rss,
        "budget_ok": peak_rss < memory_budget,
    }
    if not report.certified:
        raise AssertionError(
            f"driver did not certify the {target_rows}-row repair: {report.status}"
        )
    if not record["budget_ok"]:
        raise AssertionError(
            f"peak RSS {peak_rss} exceeded the {memory_budget}-byte memory budget"
        )
    return record


def run_benchmark(sizes: list[int], memory_budget: int, seed: int) -> dict:
    """Run the ascending-size sweep and return the JSON-ready report."""
    # Peak RSS is process-monotone: ascending sizes attribute each record's
    # peak to the largest workload seen so far, i.e. its own.
    sizes = sorted(sizes)
    check_chunked_matches_dense(
        classifier_perturbation_workload(max(1, min(sizes) // ROWS_PER_POINT), seed=seed)
    )
    print("cross-check passed: chunked delta byte-identical to dense")
    records = []
    for target_rows in sizes:
        record = run_one(target_rows, memory_budget, seed)
        records.append(record)
        print(
            f"rows={record['constraint_rows']:>7}  "
            f"status={record['status']}  rounds={record['rounds']}  "
            f"round={record['round_seconds_mean']:.2f}s  "
            f"rss={record['peak_rss_bytes'] / 1024**2:.0f}MB  "
            f"spilled={record['pool_spilled_entries']}"
        )
    return {
        "benchmark": "imagenet_scaling",
        "memory_budget": memory_budget,
        "seed": seed,
        "python": platform.python_version(),
        "results": records,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rows",
        type=int,
        nargs="+",
        default=[1000, 10000, 100000],
        help="target constraint-row counts to sweep (default: 1000 10000 100000)",
    )
    parser.add_argument(
        "--memory-budget",
        type=int,
        default=DEFAULT_MEMORY_BUDGET,
        help="driver memory budget in bytes (default: 6 GiB)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_imagenet_scaling.json"),
        help="where to write the JSON report (default: BENCH_imagenet_scaling.json)",
    )
    args = parser.parse_args()
    obs.enable()
    report = run_benchmark(args.rows, args.memory_budget, args.seed)
    report["telemetry"] = telemetry_document()
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
