"""Perf-regression sentinel: grade BENCH_*.json artifacts against a baseline.

Every benchmark report already embeds a full telemetry document (the final
metrics-registry dump plus run metadata) — but until now those were
write-only artifacts.  The sentinel closes the loop:

1. **Extract** a small set of key series from each artifact it is given —
   the warm-cache speedup and warm p99 from ``BENCH_service.json``, the
   per-round repair seconds and round speedup from
   ``BENCH_incremental.json``, the largest-workload round seconds and peak
   RSS from ``BENCH_imagenet_scaling.json``, and the LP solve-time
   histogram mass (mean and total seconds from ``repro_lp_solve_seconds``)
   from any artifact whose telemetry carries it.
2. **Record** one JSON line per run into a history file
   (``BENCH_history.jsonl``) so the trajectory accumulates run-over-run —
   CI uploads it as an artifact.
3. **Compare** each extracted value against the committed baseline
   (``benchmarks/BENCH_baseline.json``) with a per-series noise tolerance,
   and exit nonzero if any series regressed.

A "regression" is direction-aware: for lower-is-better series (latencies,
solve seconds) the measured value must stay under ``baseline * (1 +
tolerance)``; for higher-is-better series (speedups) it must stay above
``baseline / (1 + tolerance)``.  Tolerances are deliberately generous by
default — CI runners are shared and noisy; the sentinel is built to catch
the 3× cliff a bad PR introduces, not 10% jitter.  Improvements are never
failures; regenerate the baseline (``--write-baseline``) when a PR
legitimately moves the numbers.

Usage::

    PYTHONPATH=src python benchmarks/sentinel.py \
        BENCH_service.json BENCH_incremental.json BENCH_lp_scaling.json \
        --baseline benchmarks/BENCH_baseline.json --history BENCH_history.jsonl

    # refresh the committed baseline from the current artifacts
    PYTHONPATH=src python benchmarks/sentinel.py ... --write-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

#: Default relative tolerance per series kind when writing a fresh baseline.
#: Wall-clock series get the widest band — the committed baseline is
#: generated on one machine and graded on shared CI runners that can be an
#: order of magnitude slower — while speedup ratios, being mostly
#: machine-independent, get a narrower one.
DEFAULT_TOLERANCES = {
    "lower": 9.0,   # latencies / seconds: fail only past 10x the baseline
    "higher": 1.5,  # speedups: fail below baseline / 2.5
}


def _histogram_totals(telemetry: dict, family: str) -> tuple[float, int] | None:
    """(sum_seconds, count) over every series of one histogram family."""
    metrics = (telemetry or {}).get("metrics") or {}
    entry = metrics.get(family)
    if not entry or entry.get("kind") != "histogram":
        return None
    total, count = 0.0, 0
    for series in entry.get("series", ()):
        total += float(series.get("sum", 0.0))
        count += int(series.get("count", 0))
    return total, count


def extract(document: dict) -> dict[str, dict]:
    """Pull the key series out of one benchmark report.

    Returns ``{series_name: {"value": float, "direction": "lower"|"higher"}}``.
    Unknown benchmark kinds still contribute their LP histogram mass when
    their telemetry carries it, so new benchmarks join the sentinel for
    free.
    """
    series: dict[str, dict] = {}
    kind = document.get("benchmark", "unknown")

    def put(name: str, value, direction: str) -> None:
        if value is None:
            return
        value = float(value)
        if value == value and value not in (float("inf"), float("-inf")):  # not NaN/inf
            series[name] = {"value": value, "direction": direction}

    if kind == "service":
        put("service_warm_speedup", document.get("warm_speedup"), "higher")
        warm = document.get("warm") or {}
        put("service_warm_p99_ms", warm.get("latency_p99_ms"), "lower")
        put("service_warm_mean_ms", warm.get("latency_mean_ms"), "lower")
    elif kind == "incremental":
        results = document.get("results") or []
        round_seconds = [
            entry["incremental"]["mean_round_seconds"]
            for entry in results
            if entry.get("incremental", {}).get("mean_round_seconds") is not None
        ]
        speedups = [
            entry["round_speedup"] for entry in results
            if entry.get("round_speedup") is not None
        ]
        if round_seconds:
            put(
                "incremental_mean_round_seconds",
                sum(round_seconds) / len(round_seconds),
                "lower",
            )
        if speedups:
            put("incremental_round_speedup", max(speedups), "higher")
        # Per-backend round costs from the portfolio sweep: one
        # lower-is-better series per backend spec, averaged across rations,
        # so an LP-layer regression is attributable to the backend that
        # caused it.  Degraded entries (native solver missing) still count —
        # they measure the spec's real cost in this environment, racing
        # overhead included.
        per_backend: dict[str, list[float]] = {}
        for entry in results:
            for info in (entry.get("backends") or {}).values():
                value = info.get("incremental_mean_round_seconds")
                if value is not None:
                    per_backend.setdefault(info["slug"], []).append(float(value))
        for slug, values in per_backend.items():
            put(
                f"incremental_backend_{slug}_round_seconds",
                sum(values) / len(values),
                "lower",
            )
    elif kind == "imagenet_scaling":
        # Grade the largest workload of the sweep: that is the record the
        # out-of-core pipeline exists for, and CI invokes the benchmark with
        # fixed sizes so the largest record is comparable run over run.
        results = document.get("results") or []
        largest = max(results, key=lambda entry: entry.get("constraint_rows", 0), default=None)
        if largest is not None:
            put("imagenet_round_seconds", largest.get("round_seconds_mean"), "lower")
            put("imagenet_peak_rss_bytes", largest.get("peak_rss_bytes"), "lower")

    totals = _histogram_totals(document.get("telemetry") or {}, "repro_lp_solve_seconds")
    if totals is not None and totals[1] > 0:
        put(f"{kind}_lp_solve_total_seconds", totals[0], "lower")
        put(f"{kind}_lp_solve_mean_seconds", totals[0] / totals[1], "lower")
    return series


def compare(measured: dict[str, dict], baseline: dict) -> tuple[list[dict], list[str]]:
    """Grade measured series against the baseline document.

    Returns ``(rows, regressions)``: one row per measured series with its
    verdict, and the regression messages (empty = pass).  Series missing
    from the baseline are reported as ``new`` and never fail; baseline
    series missing from the artifacts are reported so a silently-dropped
    benchmark cannot hide a regression forever.
    """
    rows: list[dict] = []
    regressions: list[str] = []
    default_tolerance = float(baseline.get("tolerance", 1.0))
    baseline_series = baseline.get("series", {})
    for name in sorted(measured):
        entry = measured[name]
        value, direction = entry["value"], entry["direction"]
        reference = baseline_series.get(name)
        if reference is None:
            rows.append({"series": name, "value": value, "verdict": "new"})
            continue
        base_value = float(reference["value"])
        tolerance = float(reference.get("tolerance", default_tolerance))
        if base_value <= 0:
            rows.append({"series": name, "value": value, "verdict": "skipped-zero-baseline"})
            continue
        if direction == "lower":
            limit = base_value * (1.0 + tolerance)
            regressed = value > limit
        else:
            limit = base_value / (1.0 + tolerance)
            regressed = value < limit
        verdict = "REGRESSED" if regressed else "ok"
        rows.append(
            {
                "series": name,
                "value": value,
                "baseline": base_value,
                "limit": limit,
                "direction": direction,
                "tolerance": tolerance,
                "verdict": verdict,
            }
        )
        if regressed:
            regressions.append(
                f"{name}: {value:.6g} vs baseline {base_value:.6g} "
                f"(allowed {'<=' if direction == 'lower' else '>='} {limit:.6g})"
            )
    measured_names = set(measured)
    for name in sorted(set(baseline_series) - measured_names):
        rows.append({"series": name, "verdict": "missing-from-artifacts"})
    return rows, regressions


def write_baseline(measured: dict[str, dict], path: Path) -> None:
    """Write a fresh baseline document from the measured values."""
    document = {
        "generated_unix": time.time(),
        "tolerance": 1.0,
        "series": {
            name: {
                "value": entry["value"],
                "direction": entry["direction"],
                "tolerance": DEFAULT_TOLERANCES[entry["direction"]],
            }
            for name, entry in sorted(measured.items())
        },
    }
    path.write_text(json.dumps(document, indent=2) + "\n")


def append_history(path: Path, record: dict) -> None:
    with path.open("a") as stream:
        stream.write(json.dumps(record) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifacts", type=Path, nargs="+", help="BENCH_*.json reports to grade")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).parent / "BENCH_baseline.json",
        help="committed baseline document (default: benchmarks/BENCH_baseline.json)",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=Path("BENCH_history.jsonl"),
        help="append-only run history (default: BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="override the baseline's default relative tolerance",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from these artifacts instead of grading",
    )
    args = parser.parse_args(argv)

    measured: dict[str, dict] = {}
    for path in args.artifacts:
        if not path.exists():
            print(f"sentinel: skipping missing artifact {path}", file=sys.stderr)
            continue
        try:
            document = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError) as error:
            print(f"sentinel: unreadable artifact {path}: {error}", file=sys.stderr)
            return 2
        for name, entry in extract(document).items():
            measured[name] = entry
    if not measured:
        print("sentinel: no key series extracted from any artifact", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(measured, args.baseline)
        print(f"sentinel: wrote baseline {args.baseline} ({len(measured)} series)")
        return 0

    if not args.baseline.exists():
        print(f"sentinel: no baseline at {args.baseline}", file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text())
    if args.tolerance is not None:
        # The override wins everywhere, including over per-series values the
        # baseline writer recorded — otherwise the flag would be dead weight.
        baseline["tolerance"] = args.tolerance
        for entry in baseline.get("series", {}).values():
            entry.pop("tolerance", None)
    rows, regressions = compare(measured, baseline)

    width = max(len(row["series"]) for row in rows)
    for row in rows:
        value = f"{row['value']:.6g}" if "value" in row else "-"
        reference = f"{row['baseline']:.6g}" if "baseline" in row else "-"
        print(f"{row['series']:<{width}}  {value:>12}  baseline={reference:>12}  {row['verdict']}")

    append_history(
        args.history,
        {
            "unix": time.time(),
            "sha": os.environ.get("GITHUB_SHA"),
            "values": {name: entry["value"] for name, entry in sorted(measured.items())},
            "regressions": regressions,
            "ok": not regressions,
        },
    )
    print(f"sentinel: appended run to {args.history}")

    if regressions:
        print("sentinel: PERFORMANCE REGRESSION", file=sys.stderr)
        for message in regressions:
            print(f"  {message}", file=sys.stderr)
        return 1
    print("sentinel: all series within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
