"""Polytope-CEGIS benchmark: driver-polytope vs one-shot Algorithm 2.

Two workloads, both infinite-point polytope specifications:

* **mnist_fog_lines** — the Task 2 digit classifier with the *strengthened*
  fog-line specification (winning logit must beat every other logit by a
  decisive margin at every point of every clean→fog line);
* **acas_planes** — an ACAS advisory network with the strengthened φ8 slice
  specification packaged as planar polytopes.

For each workload the script compares:

* **one-shot** — ``polytope_repair``: decompose *every* specification
  polytope, encode *every* linear region's vertices, solve one LP (the
  paper's Algorithm 2 as a single call), then verify the result exactly;
* **driver-cold** — ``RepairDriver(mode="polytope")``: the verifier
  discovers violating regions, the pool dedups and expands them, and the
  loop iterates to a certified verdict, rebuilding the LP each round;
* **driver-incremental** — the same loop with the standing LP session,
  warm starts, and value-only re-verification.

Cross-checks are strict and always on.  A ``workers=4`` engine-backed run
must be **byte-identical** to ``workers=1`` on both workloads (round
counts, verdicts, margins, value-channel parameters).  Cold vs incremental
has two tiers, matching where the PR 3/4 determinism contracts actually
hold.  On the narrow ACAS value channel the incremental run must be
**byte-identical** to the cold run.  On the wide (64-input) digit value
channel BLAS rounds full-stack and micro-batch matmuls differently in the
last bit, so cold and incremental runs are only equal to ~1e-14 per
coefficient; over many rounds that skew can even flip a
borderline-at-tolerance vertex verdict and fork the round trajectory.
There the contract is outcome-level: both runs must certify with every
pooled counterexample satisfied, and whenever the trajectories do match,
verdicts must agree exactly and margins/parameters to within ``1e-9``.
``incremental_byte_identical`` / ``incremental_trajectory_forked`` record
which regime a run landed in.  With ``--min-round-speedup`` (default 2.0,
asserted once a scenario reaches ≥ 4 rounds) the script also fails if the
incremental per-round speedup over rounds ≥ 1 misses the target.

Results are written as JSON with the same report shape as the other benches
(default ``BENCH_polytope_driver.json``) so CI can archive the trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_polytope_driver.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_polytope_driver.py --smoke  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

import repro.obs as obs
from conftest import telemetry_document
from repro.core.ddnn import DecoupledNetwork
from repro.core.polytope_repair import count_key_points, polytope_repair
from repro.core.specs import PolytopeRepairSpec
from repro.datasets.acas import phi8_property
from repro.driver import RepairDriver
from repro.engine import ShardedSyrennEngine
from repro.experiments.task2_mnist_lines import (
    setup_task2,
    strengthened_line_specification,
)
from repro.experiments.task3_acas import Task3Setup, strengthened_polytope_spec
from repro.models.acas_models import build_acas_network
from repro.models.zoo import ModelZoo
from repro.utils.rng import ensure_rng
from repro.verify import SyrennVerifier, VerificationSpec

MAX_ROUNDS = 60


def build_mnist_workload(
    *, num_lines: int, train_per_class: int, epochs: int, margin: float, seed: int
) -> tuple:
    """The digit classifier plus the strengthened fog-line polytope spec."""
    setup = setup_task2(
        ModelZoo(),
        max_lines=num_lines,
        train_per_class=train_per_class,
        test_per_class=max(10, train_per_class // 2),
        epochs=epochs,
        seed=seed,
    )
    spec = strengthened_line_specification(setup, num_lines, margin=margin)
    return setup.network, spec, setup.layer_3_index


def build_acas_workload(
    *, num_slices: int, hidden_size: int, hidden_layers: int, margin: float, seed: int
) -> tuple:
    """An advisory network plus the strengthened φ8 plane polytope spec."""
    network = build_acas_network(
        hidden_size=hidden_size, hidden_layers=hidden_layers, seed=seed
    )
    safety_property = phi8_property()
    rng = ensure_rng(seed)
    slices = [safety_property.random_slice(rng) for _ in range(num_slices)]
    empty = np.zeros((0, network.input_size))
    setup = Task3Setup(network, safety_property, slices, empty, empty, 0)
    spec = strengthened_polytope_spec(network, setup, margin=margin)
    layer = DecoupledNetwork.from_network(network).repairable_layer_indices()[-1]
    return network, spec, layer


def run_one_shot(network, spec: PolytopeRepairSpec, layer: int, norm: str) -> dict:
    """One-shot Algorithm 2 plus an exact verification of its output."""
    start = time.perf_counter()
    result = polytope_repair(network, layer, spec, norm=norm)
    repair_seconds = time.perf_counter() - start
    record = {
        "feasible": result.feasible,
        "key_points": result.num_key_points,
        "constraint_rows": result.num_constraint_rows,
        "repair_seconds": repair_seconds,
        "timing": result.timing.as_dict(),
    }
    if result.feasible:
        report = SyrennVerifier().verify(
            result.network, VerificationSpec.from_polytope_spec(spec)
        )
        record["certified"] = report.certified
        record["delta_linf"] = result.delta_linf_norm
    else:
        record["certified"] = False
    return record


def run_driver(
    network,
    spec: PolytopeRepairSpec,
    layer: int,
    norm: str,
    *,
    incremental: bool,
    ration: int | None,
    workers: int = 1,
) -> dict:
    """One full polytope-mode driver run; keeps the report for cross-checks."""
    engine = ShardedSyrennEngine(workers=workers) if workers > 1 else None
    start = time.perf_counter()
    try:
        driver = RepairDriver(
            network,
            spec,
            SyrennVerifier(),
            mode="polytope",
            layer_schedule=[layer],
            norm=norm,
            max_rounds=MAX_ROUNDS,
            incremental=incremental,
            max_new_counterexamples=ration,
            engine=engine,
        )
        report = driver.run()
    finally:
        if engine is not None:
            engine.close()
    total = time.perf_counter() - start
    per_round = [record.seconds + record.repair_seconds for record in report.rounds]
    later = per_round[1:]  # round 0 builds the caches both runs share
    return {
        "total_seconds": total,
        "rounds": report.num_rounds,
        "status": report.status,
        "certified": report.certified,
        "pool_regions": report.pool_size,
        "pool_key_points": report.rounds[-1].pool_key_points if report.rounds else 0,
        "per_round_seconds": per_round,
        "mean_round_seconds": sum(later) / len(later) if later else float("nan"),
        "lp_rows_appended": report.lp_rows_appended,
        "warm_started_rounds": report.warm_started_rounds,
        "value_only_rounds": report.value_only_rounds,
        "workers": workers,
        "timing": report.timing.as_dict(),
        "report": report,
    }


def value_parameters(report) -> list[bytes]:
    return [
        report.network.value.layers[index].get_parameters().tobytes()
        for index in report.network.repairable_layer_indices()
    ]


def cross_check(
    reference: dict,
    candidate: dict,
    label: str,
    strict: bool = True,
    atol: float = 1e-9,
) -> dict:
    """Equivalence of two driver runs; returns the regime they landed in.

    ``strict=True`` (the workers=1 vs workers=4 contract, and cold vs
    incremental on the narrow ACAS channel) demands byte identity: equal
    round trajectory, verdicts, margins, and value-channel parameters.

    ``strict=False`` (cold vs incremental on the wide digit channel, where
    BLAS batch-shape rounding skews the two runs by ~1e-14 per coefficient)
    demands the *outcome*: both certified, every pooled counterexample
    satisfied; and when the round trajectories match, verdicts must agree
    exactly with margins/parameters within ``atol``.  A forked trajectory —
    the skew flipped a borderline-at-tolerance vertex verdict in some round
    — is recorded, not failed.
    """
    ref, cand = reference["report"], candidate["report"]
    if ref.unsatisfied_pool_indices or cand.unsatisfied_pool_indices:
        raise AssertionError(f"{label}: a final network violates pooled counterexamples")
    # A fork means the two runs pooled different region sequences — compare
    # the per-round intake trajectory, not just the round count: a flipped
    # borderline verdict can reroute which regions are pooled when while
    # still converging in the same number of rounds.
    def trajectory(report):
        return [
            (record.new_counterexamples, record.pool_size, record.pool_key_points)
            for record in report.rounds
        ]

    forked = trajectory(ref) != trajectory(cand)
    if forked:
        if strict:
            raise AssertionError(
                f"{label}: round trajectories diverged "
                f"({reference['rounds']} vs {candidate['rounds']} rounds)"
            )
        if reference["status"] != candidate["status"]:
            raise AssertionError(f"{label}: final statuses diverged")
        return {"byte_identical": False, "trajectory_forked": True}
    if ref.final_report.region_statuses != cand.final_report.region_statuses:
        raise AssertionError(f"{label}: region verdicts diverged")
    byte_identical = (
        ref.final_report.region_margins == cand.final_report.region_margins
        and value_parameters(ref) == value_parameters(cand)
    )
    if not byte_identical:
        if strict:
            raise AssertionError(f"{label}: runs are not byte-identical")
        if not np.allclose(
            ref.final_report.region_margins,
            cand.final_report.region_margins,
            rtol=0.0,
            atol=atol,
        ):
            raise AssertionError(f"{label}: region margins diverged")
        for ref_bytes, cand_bytes in zip(value_parameters(ref), value_parameters(cand)):
            ref_flat = np.frombuffer(ref_bytes, dtype=np.float64)
            cand_flat = np.frombuffer(cand_bytes, dtype=np.float64)
            if not np.allclose(ref_flat, cand_flat, rtol=0.0, atol=atol):
                raise AssertionError(f"{label}: value-channel parameters diverged")
    return {"byte_identical": byte_identical, "trajectory_forked": False}


def run_workload(
    name: str,
    network,
    spec: PolytopeRepairSpec,
    layer: int,
    *,
    norm: str,
    ration: int | None,
    min_round_speedup: float | None,
    strict_incremental: bool,
    repeats: int = 1,
) -> dict:
    """Benchmark one workload; returns the JSON-ready record.

    ``strict_incremental`` demands cold vs incremental byte-identity (the
    ACAS workload: narrow value channel, the substrate the PR 3/4
    determinism contracts are pinned on); otherwise the comparison allows
    the wide-channel ~1e-14 BLAS rounding skew up to ``1e-9``.
    """
    total_key_points = count_key_points(network, spec)
    one_shot = run_one_shot(network, spec, layer, norm)
    cold = run_driver(network, spec, layer, norm, incremental=False, ration=ration)
    incremental = run_driver(network, spec, layer, norm, incremental=True, ration=ration)
    incremental_regime = cross_check(
        cold, incremental, f"{name}: cold vs incremental", strict=strict_incremental
    )
    # Wall-clock is noisy on shared machines; re-time the pair and keep the
    # fastest per-round mean of each side (the computation is deterministic,
    # so repeats only strip scheduler jitter — the standard min-of-N
    # estimator).  The cross-checked reports above stay authoritative.
    for _ in range(max(0, repeats - 1)):
        again_cold = run_driver(
            network, spec, layer, norm, incremental=False, ration=ration
        )
        again_incremental = run_driver(
            network, spec, layer, norm, incremental=True, ration=ration
        )
        if again_cold["mean_round_seconds"] < cold["mean_round_seconds"]:
            cold.update(
                {k: again_cold[k] for k in ("mean_round_seconds", "per_round_seconds", "total_seconds")}
            )
        if again_incremental["mean_round_seconds"] < incremental["mean_round_seconds"]:
            incremental.update(
                {k: again_incremental[k] for k in ("mean_round_seconds", "per_round_seconds", "total_seconds")}
            )
    parallel = run_driver(
        network, spec, layer, norm, incremental=True, ration=ration, workers=4
    )
    workers_regime = cross_check(
        incremental, parallel, f"{name}: workers=1 vs workers=4", strict=True
    )
    assert workers_regime["byte_identical"]
    for run in (cold, incremental, parallel):
        if run["status"] != "certified":
            raise AssertionError(f"{name}: driver ended {run['status']}, not certified")
        run.pop("report")

    round_speedup = cold["mean_round_seconds"] / max(
        incremental["mean_round_seconds"], 1e-12
    )
    total_speedup = cold["total_seconds"] / max(incremental["total_seconds"], 1e-12)
    print(
        f"{name}: regions-keypoints={total_key_points}  "
        f"one-shot={one_shot['repair_seconds'] * 1e3:7.1f}ms "
        f"(certified={one_shot['certified']})  rounds={cold['rounds']}  "
        f"cold/round={cold['mean_round_seconds'] * 1e3:7.1f}ms  "
        f"incr/round={incremental['mean_round_seconds'] * 1e3:7.1f}ms  "
        f"round-speedup={round_speedup:.1f}x  total-speedup={total_speedup:.1f}x  "
        f"workers4=byte-identical  "
        f"incr-byte-identical={incremental_regime['byte_identical']}"
    )
    if (
        min_round_speedup is not None
        and cold["rounds"] >= 4
        and round_speedup < min_round_speedup
    ):
        raise AssertionError(
            f"{name}: round speedup {round_speedup:.2f}x below the required "
            f"{min_round_speedup:.2f}x at {cold['rounds']} rounds"
        )
    return {
        "workload": name,
        "polytopes": spec.num_polytopes,
        "key_points_full_spec": total_key_points,
        "layer_index": layer,
        "norm": norm,
        "ration": ration,
        "one_shot": one_shot,
        "cold": cold,
        "incremental": incremental,
        "workers4": parallel,
        "workers4_byte_identical": True,
        "incremental_byte_identical": incremental_regime["byte_identical"],
        "incremental_trajectory_forked": incremental_regime["trajectory_forked"],
        "round_speedup": round_speedup,
        "total_speedup": total_speedup,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # Sized flags default to None (a sentinel) so --smoke can fill in only
    # the values the user did not pass explicitly.
    parser.add_argument(
        "--lines", type=int, default=None,
        help="fog lines in the MNIST workload (default: 10; 2 with --smoke)",
    )
    parser.add_argument(
        "--train-per-class", type=int, default=None,
        help="digit training images per class (default: 30; 15 with --smoke)",
    )
    parser.add_argument(
        "--epochs", type=int, default=None,
        help="digit training epochs (default: 20; 8 with --smoke)",
    )
    parser.add_argument(
        "--margin", type=float, default=0.05,
        help="strengthened fog-line classification margin (default: 0.05)",
    )
    parser.add_argument(
        "--acas-margin", type=float, default=0.05,
        help="strengthened per-region ACAS advisory margin (default: 0.05)",
    )
    parser.add_argument(
        "--slices", type=int, default=None,
        help="φ8 slices in the ACAS workload (default: 4; 2 with --smoke)",
    )
    parser.add_argument(
        "--hidden", type=int, default=None,
        help="ACAS hidden layer width (default: 24; 12 with --smoke)",
    )
    parser.add_argument(
        "--layers", type=int, default=None,
        help="ACAS hidden layer count (default: 4; 3 with --smoke)",
    )
    parser.add_argument(
        "--ration", type=int, default=None,
        help="per-round region intake cap, MNIST workload (default: 2; 6 with --smoke)",
    )
    parser.add_argument(
        "--acas-ration", type=int, default=None,
        help="per-round region intake cap, ACAS workload (default: 2; 6 with --smoke)",
    )
    parser.add_argument("--norm", default="linf", choices=["linf", "l1", "l1+linf"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per driver variant, best-of-N (default: 5; 1 with --smoke)",
    )
    parser.add_argument(
        "--min-round-speedup",
        type=float,
        default=2.0,
        help="fail if the per-round speedup at >=4 rounds drops below this "
        "(pass 0 to disable; default: 2.0)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: small workloads (explicitly passed flags still win)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_polytope_driver.json"),
        help="where to write the JSON report (default: BENCH_polytope_driver.json)",
    )
    args = parser.parse_args()
    obs.enable()
    defaults = (
        {"lines": 2, "train_per_class": 15, "epochs": 8, "slices": 2,
         "hidden": 12, "layers": 3, "ration": 6, "acas_ration": 6, "repeats": 1}
        if args.smoke
        else {"lines": 10, "train_per_class": 30, "epochs": 20, "slices": 4,
              "hidden": 24, "layers": 4, "ration": 2, "acas_ration": 2, "repeats": 5}
    )
    for name, value in defaults.items():
        if getattr(args, name) is None:
            setattr(args, name, value)
    min_round_speedup = args.min_round_speedup or None

    mnist_network, mnist_spec, mnist_layer = build_mnist_workload(
        num_lines=args.lines,
        train_per_class=args.train_per_class,
        epochs=args.epochs,
        margin=args.margin,
        seed=args.seed,
    )
    acas_network, acas_spec, acas_layer = build_acas_workload(
        num_slices=args.slices,
        hidden_size=args.hidden,
        hidden_layers=args.layers,
        margin=args.acas_margin,
        seed=args.seed + 1,
    )
    records = [
        run_workload(
            "mnist_fog_lines", mnist_network, mnist_spec, mnist_layer,
            norm=args.norm, ration=args.ration,
            min_round_speedup=min_round_speedup, strict_incremental=False,
            repeats=args.repeats,
        ),
        run_workload(
            "acas_planes", acas_network, acas_spec, acas_layer,
            norm=args.norm, ration=args.acas_ration,
            min_round_speedup=min_round_speedup, strict_incremental=True,
            repeats=args.repeats,
        ),
    ]
    report = {
        "benchmark": "polytope_driver",
        "margin": args.margin,
        "acas_margin": args.acas_margin,
        "seed": args.seed,
        "python": platform.python_version(),
        "results": records,
    }
    report["telemetry"] = telemetry_document()
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
