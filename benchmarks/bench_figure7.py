"""Figure 7: Task 1 per-layer drawdown (a) and per-layer timing breakdown (b).

The paper plots, for the 400-point repair set, the drawdown and the repair
time (split into Jacobian / Gurobi / other) as a function of the repaired
layer.  This benchmark regenerates both series for the scaled-down repair
set and prints them.
"""

from __future__ import annotations

from repro.experiments.figures import per_layer_drawdown_series, per_layer_timing_series
from repro.experiments.reporting import print_table
from repro.experiments.task1_imagenet import provable_repair_per_layer

#: Scaled-down analogue of the paper's 400-point repair set.
NUM_POINTS = 16


def test_figure7_per_layer_drawdown_and_timing(benchmark, task1_setup):
    def run():
        return provable_repair_per_layer(task1_setup, NUM_POINTS, norm="l1")

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    drawdowns = per_layer_drawdown_series(records)
    timings = per_layer_timing_series(records)
    rows = []
    for position, layer_index in enumerate(drawdowns["layer_index"]):
        rows.append(
            {
                "layer": int(layer_index),
                "drawdown_%": float(drawdowns["drawdown"][position]),
                "jacobian_s": float(timings["jacobian"][position]),
                "lp_s": float(timings["lp"][position]),
                "other_s": float(timings["other"][position]),
            }
        )
    print_table(f"Figure 7 ({NUM_POINTS}-point repair set)", rows)
    assert len(rows) == len(task1_setup.repairable_layers)
    # At least one layer must have been repaired successfully.
    assert any(not isinstance(row["drawdown_%"], float) or row["drawdown_%"] == row["drawdown_%"] for row in rows)
