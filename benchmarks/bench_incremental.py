"""Incremental-CEGIS benchmark: cold vs incremental driver rounds on ACAS φ8.

Builds the strengthened φ8 verification workload (every linear region of
``--slices`` random 2-D slices of the property box becomes its own
verification region) and runs the CEGIS repair driver twice over each
scenario:

* **cold** — today's loop: every round re-decomposes nothing (the verifier
  caches partitions) but re-walks every linear region's vertices in Python,
  re-encodes the *whole* pool's Jacobian rows, and rebuilds + re-solves the
  repair LP from scratch;
* **incremental** — ``RepairDriver(incremental=True)``: verification takes
  the value-only fast path (one batched re-evaluation of the cached vertex
  stack per round), repair appends only the new counterexamples' rows to a
  standing LP session, and solves thread a warm-start handle.

Round counts are scaled by rationing counterexample intake
(``max_new_counterexamples``): a smaller ration means more, smaller rounds —
the regime incremental infrastructure exists for.  Because round 0 builds
the caches both runs share (and is byte-identical between them), the
headline metric is the **per-round speedup over rounds ≥ 1**; the report
also carries end-to-end totals.

The cross-check is strict and always on: both runs must certify, agree on
every region verdict and margin, take the same number of rounds, and end at
**byte-identical** value-channel parameters (the default scipy/HiGHS
backend's warm start is exact, so incremental execution must not change a
single bit).  With ``--min-round-speedup`` (set by default to 2.0 for
scenarios reaching ≥ 4 rounds) the script also fails if the speedup target
is missed.

On top of the cold/incremental pair (default backend), every scenario also
sweeps an **LP backend portfolio** (``--backends``, default scipy, the
native highspy backend, and a ``race:highs_native,scipy`` portfolio): each
backend gets its own cold + incremental pair, its per-round cost lands in
the record's ``backends`` table, and — whenever the backend's warm start is
exact — the same byte-level cross-check the default pair gets.  Degraded
backends (``highs_native`` without ``highspy``) are benchmarked in whatever
mode the environment provides and flagged via ``available``.

Results are written as JSON with the same report shape as
``bench_lp_scaling.py`` (default ``BENCH_incremental.json``) so CI can
archive the trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_incremental.py --smoke   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

import repro.obs as obs
from conftest import telemetry_document
from repro.datasets.acas import phi8_property
from repro.driver import RepairDriver
from repro.experiments.task3_acas import Task3Setup, strengthened_verification_spec
from repro.lp.backends import backend_capabilities
from repro.models.acas_models import build_acas_network
from repro.utils.rng import ensure_rng
from repro.verify import SyrennVerifier, VerificationSpec

MAX_ROUNDS = 60

#: LP backend specs benchmarked per scenario (see ``--backends``).
DEFAULT_PORTFOLIO = ["scipy", "highs_native", "race:highs_native,scipy"]


def backend_slug(spec: str) -> str:
    """A metric-name-safe slug for a backend spec (``race:a,b`` → ``race_a_b``)."""
    return spec.replace(":", "_").replace(",", "_")


def build_workload(
    num_slices: int, hidden_size: int, hidden_layers: int, seed: int
) -> tuple:
    """An advisory network plus the strengthened φ8 slice spec."""
    network = build_acas_network(
        hidden_size=hidden_size, hidden_layers=hidden_layers, seed=seed
    )
    safety_property = phi8_property()
    rng = ensure_rng(seed)
    slices = [safety_property.random_slice(rng) for _ in range(num_slices)]
    empty = np.zeros((0, network.input_size))
    setup = Task3Setup(network, safety_property, slices, empty, empty, 0)
    return network, strengthened_verification_spec(network, setup)


def run_driver(
    network,
    spec: VerificationSpec,
    *,
    incremental: bool,
    ration: int,
    backend: str | None = None,
) -> dict:
    """One full driver run; returns timings plus the report for cross-checks."""
    start = time.perf_counter()
    driver = RepairDriver(
        network,
        spec,
        SyrennVerifier(),
        max_rounds=MAX_ROUNDS,
        incremental=incremental,
        max_new_counterexamples=ration,
        backend=backend,
    )
    report = driver.run()
    total = time.perf_counter() - start
    per_round = [record.seconds + record.repair_seconds for record in report.rounds]
    later = per_round[1:]  # round 0 builds the shared caches, identically
    return {
        "total_seconds": total,
        "rounds": report.num_rounds,
        "status": report.status,
        "certified": report.certified,
        "pool_size": report.pool_size,
        "per_round_seconds": per_round,
        "mean_round_seconds": sum(later) / len(later) if later else float("nan"),
        "lp_rows_appended": report.lp_rows_appended,
        "warm_started_rounds": report.warm_started_rounds,
        "value_only_rounds": report.value_only_rounds,
        "lp_iterations": report.lp_iterations,
        "timing": report.timing.as_dict(),
        "report": report,
    }


def cross_check(cold: dict, incremental: dict) -> None:
    """Byte-level equivalence of the two runs (raises on any mismatch)."""
    cold_report, incremental_report = cold["report"], incremental["report"]
    if cold["rounds"] != incremental["rounds"]:
        raise AssertionError(
            f"round counts diverged: cold {cold['rounds']}, "
            f"incremental {incremental['rounds']}"
        )
    if cold_report.final_report.region_statuses != incremental_report.final_report.region_statuses:
        raise AssertionError("incremental run disagrees with cold verdicts")
    if cold_report.final_report.region_margins != incremental_report.final_report.region_margins:
        raise AssertionError("incremental run disagrees with cold margins")
    for layer_index in cold_report.network.repairable_layer_indices():
        cold_flat = cold_report.network.value.layers[layer_index].get_parameters()
        incremental_flat = incremental_report.network.value.layers[
            layer_index
        ].get_parameters()
        if cold_flat.tobytes() != incremental_flat.tobytes():
            raise AssertionError(
                f"parameter deltas of layer {layer_index} are not byte-identical"
            )
    if cold_report.unsatisfied_pool_indices or incremental_report.unsatisfied_pool_indices:
        raise AssertionError("a final network violates pooled counterexamples")


def run_backend_portfolio(network, spec, *, ration: int, backends: list[str]) -> dict:
    """Per-backend cold + incremental pairs for one scenario.

    Returns ``{spec: {...}}`` with per-round costs, the round speedup, and
    the capability probe.  Backends whose warm start is exact get the full
    byte-level :func:`cross_check`; inexact ones (the native basis-reuse
    path steers pivots) are held to verdict-level agreement — both runs
    must certify.
    """
    table: dict[str, dict] = {}
    for backend_spec in backends:
        probe = backend_capabilities(backend_spec)
        cold = run_driver(
            network, spec, incremental=False, ration=ration, backend=backend_spec
        )
        incremental = run_driver(
            network, spec, incremental=True, ration=ration, backend=backend_spec
        )
        if probe["warm_start_is_exact"]:
            cross_check(cold, incremental)
        elif not (cold["certified"] and incremental["certified"]):
            raise AssertionError(
                f"backend {backend_spec!r} failed to certify the workload"
            )
        cold.pop("report")
        incremental.pop("report")
        table[backend_spec] = {
            "slug": backend_slug(backend_spec),
            "available": probe["available"],
            "warm_start_is_exact": probe["warm_start_is_exact"],
            "cold_mean_round_seconds": cold["mean_round_seconds"],
            "incremental_mean_round_seconds": incremental["mean_round_seconds"],
            "round_speedup": cold["mean_round_seconds"]
            / max(incremental["mean_round_seconds"], 1e-12),
            "rounds": incremental["rounds"],
            "warm_started_rounds": incremental["warm_started_rounds"],
            "total_seconds": incremental["total_seconds"],
        }
        entry = table[backend_spec]
        print(
            f"    backend={backend_spec:<28} "
            f"cold/round={entry['cold_mean_round_seconds'] * 1e3:7.1f}ms  "
            f"incremental/round={entry['incremental_mean_round_seconds'] * 1e3:7.1f}ms  "
            f"round-speedup={entry['round_speedup']:.1f}x"
            f"{'' if entry['available'] else '  (degraded: native solver missing)'}"
        )
    return table


def run_benchmark(
    rations: list[int],
    *,
    num_slices: int,
    hidden_size: int,
    hidden_layers: int,
    seed: int,
    min_round_speedup: float | None,
    backends: list[str] | None = None,
) -> dict:
    """Sweep counterexample rations and return the JSON-ready report."""
    network, spec = build_workload(num_slices, hidden_size, hidden_layers, seed)
    records = []
    for ration in rations:
        cold = run_driver(network, spec, incremental=False, ration=ration)
        incremental = run_driver(network, spec, incremental=True, ration=ration)
        cross_check(cold, incremental)
        cold.pop("report")
        incremental.pop("report")
        round_speedup = cold["mean_round_seconds"] / max(
            incremental["mean_round_seconds"], 1e-12
        )
        total_speedup = cold["total_seconds"] / max(incremental["total_seconds"], 1e-12)
        record = {
            "ration": ration,
            "rounds": cold["rounds"],
            "cold": cold,
            "incremental": incremental,
            "round_speedup": round_speedup,
            "total_speedup": total_speedup,
            "backends": run_backend_portfolio(
                network, spec, ration=ration, backends=backends or DEFAULT_PORTFOLIO
            ),
        }
        records.append(record)
        print(
            f"ration={ration:>3}  rounds={cold['rounds']:>3}  "
            f"cold/round={cold['mean_round_seconds'] * 1e3:7.1f}ms  "
            f"incremental/round={incremental['mean_round_seconds'] * 1e3:7.1f}ms  "
            f"round-speedup={round_speedup:.1f}x  total-speedup={total_speedup:.1f}x  "
            f"(warm={incremental['warm_started_rounds']}, "
            f"value-only={incremental['value_only_rounds']})"
        )
        if (
            min_round_speedup is not None
            and cold["rounds"] >= 4
            and round_speedup < min_round_speedup
        ):
            raise AssertionError(
                f"round speedup {round_speedup:.2f}x below the required "
                f"{min_round_speedup:.2f}x at {cold['rounds']} rounds"
            )
    return {
        "benchmark": "incremental",
        "network": {
            "hidden_size": hidden_size,
            "hidden_layers": hidden_layers,
            "input_size": 5,
        },
        "num_slices": num_slices,
        "regions": spec.num_regions,
        "seed": seed,
        "python": platform.python_version(),
        "results": records,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # Sized flags default to None (a sentinel) so --smoke can fill in only
    # the values the user did not pass explicitly.
    parser.add_argument(
        "--rations",
        type=int,
        nargs="+",
        default=None,
        help="per-round counterexample rations to sweep "
        "(default: 4 8 16; 6 with --smoke)",
    )
    parser.add_argument(
        "--slices", type=int, default=None,
        help="φ8 slices in the workload (default: 6; 3 with --smoke)",
    )
    parser.add_argument(
        "--hidden", type=int, default=None,
        help="hidden layer width (default: 24; 12 with --smoke)",
    )
    parser.add_argument(
        "--layers", type=int, default=None,
        help="hidden layer count (default: 5; 3 with --smoke)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backends",
        nargs="+",
        default=None,
        help="LP backend specs to sweep per scenario "
        f"(default: {' '.join(DEFAULT_PORTFOLIO)})",
    )
    parser.add_argument(
        "--min-round-speedup",
        type=float,
        default=2.0,
        help="fail if the per-round speedup at >=4 rounds drops below this "
        "(pass 0 to disable; default: 2.0)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: one small workload and a single ration "
        "(explicitly passed flags still win)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_incremental.json"),
        help="where to write the JSON report (default: BENCH_incremental.json)",
    )
    args = parser.parse_args()
    obs.enable()
    defaults = (
        {"rations": [6], "slices": 3, "hidden": 12, "layers": 3}
        if args.smoke
        else {"rations": [4, 8, 16], "slices": 6, "hidden": 24, "layers": 5}
    )
    for name, value in defaults.items():
        if getattr(args, name) is None:
            setattr(args, name, value)
    report = run_benchmark(
        args.rations,
        num_slices=args.slices,
        hidden_size=args.hidden,
        hidden_layers=args.layers,
        seed=args.seed,
        min_round_speedup=args.min_round_speedup or None,
        backends=args.backends,
    )
    report["telemetry"] = telemetry_document()
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
