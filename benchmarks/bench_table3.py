"""Table 3: Task 2 modified fine-tuning (MFT) results.

MFT tunes a single layer with early stopping on a holdout split; the paper
reports its efficacy, drawdown, generalization, and time for layers 2 and 3
under two hyperparameter settings.
"""

from __future__ import annotations

import pytest

from repro.core.polytope_repair import reduce_to_key_points
from repro.experiments.reporting import format_seconds, print_table
from repro.experiments.task2_mnist_lines import (
    line_specification,
    modified_fine_tune_lines,
)

LINE_COUNTS = (2, 4, 8)
MFT_SETTINGS = {
    1: {"learning_rate": 0.01, "batch_size": 16},
    2: {"learning_rate": 0.001, "batch_size": 16},
}


@pytest.mark.parametrize("num_lines", LINE_COUNTS)
@pytest.mark.parametrize("setting", [1, 2])
@pytest.mark.parametrize("layer_name", ["layer2", "layer3"])
def test_table3_modified_fine_tuning(benchmark, task2_setup, num_lines, setting, layer_name):
    layer_index = (
        task2_setup.layer_2_index if layer_name == "layer2" else task2_setup.layer_3_index
    )
    spec = line_specification(task2_setup, num_lines)
    key_points = len(reduce_to_key_points(task2_setup.network, spec)[0])

    def run():
        return modified_fine_tune_lines(
            task2_setup,
            num_lines,
            key_points,
            layer_index,
            max_epochs=60,
            **MFT_SETTINGS[setting],
        )

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Table 3 (MFT[{setting}] {layer_name}, {num_lines} lines)",
        [
            {
                "lines": num_lines,
                "sampled_points": key_points,
                "efficacy": record["efficacy"],
                "drawdown_%": record["drawdown"],
                "generalization_%": record["generalization"],
                "time": format_seconds(record["time_total"]),
            }
        ],
    )
    # MFT never makes guarantees; its efficacy is typically below 100%.
    assert 0.0 <= record["efficacy"] <= 100.0
