"""Table 1: Task 1 pointwise repair summary (PR vs FT vs MFT).

For each repair-set size the paper reports the drawdown and repair time of
the best-drawdown Provable Repair layer, two FT hyperparameter settings, and
two MFT settings.  Repair-set sizes are scaled down from the paper's
100/200/400/752 to match the MiniSqueezeNet substitute (see DESIGN.md §3).
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import format_seconds, print_table
from repro.experiments.task1_imagenet import (
    best_drawdown_record,
    fine_tune_baseline,
    modified_fine_tune_baseline,
    provable_repair_per_layer,
)

#: Scaled-down analogues of the paper's 100/200/400/752 repair-set sizes.
POINT_COUNTS = (8, 16, 24)


@pytest.mark.parametrize("num_points", POINT_COUNTS)
def test_table1_provable_repair(benchmark, task1_setup, num_points):
    """The PR (best drawdown) columns of Table 1."""

    def run():
        records = provable_repair_per_layer(task1_setup, num_points, norm="l1")
        return records, best_drawdown_record(records)

    records, best = benchmark.pedantic(run, rounds=1, iterations=1)
    feasible = sum(1 for record in records if record["feasible"])
    print_table(
        f"Table 1 (PR, {num_points} points): best-drawdown layer",
        [
            {
                "points": num_points,
                "feasible_layers": f"{feasible}/{len(records)}",
                "best_layer": best["layer_index"],
                "efficacy": best["efficacy"],
                "drawdown_%": best["drawdown"],
                "time": format_seconds(best["time_total"]),
            }
        ],
    )
    assert best["efficacy"] == 100.0


@pytest.mark.parametrize("num_points", POINT_COUNTS)
@pytest.mark.parametrize("setting", [1, 2])
def test_table1_fine_tuning(benchmark, task1_setup, num_points, setting):
    """The FT[1]/FT[2] columns of Table 1."""
    hyper = {"learning_rate": 0.01, "batch_size": 2} if setting == 1 else {
        "learning_rate": 0.01,
        "batch_size": 16,
    }

    def run():
        return fine_tune_baseline(task1_setup, num_points, max_epochs=100, **hyper)

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Table 1 (FT[{setting}], {num_points} points)",
        [
            {
                "points": num_points,
                "efficacy": record["efficacy"],
                "drawdown_%": record["drawdown"],
                "time": format_seconds(record["time_total"]),
                "converged": record["converged"],
            }
        ],
    )


@pytest.mark.parametrize("num_points", POINT_COUNTS)
@pytest.mark.parametrize("setting", [1, 2])
def test_table1_modified_fine_tuning(benchmark, task1_setup, num_points, setting):
    """The MFT[1]/MFT[2] (best drawdown layer) columns of Table 1."""
    hyper = {"learning_rate": 0.01, "batch_size": 2} if setting == 1 else {
        "learning_rate": 0.01,
        "batch_size": 16,
    }

    def run():
        return modified_fine_tune_baseline(task1_setup, num_points, max_epochs=30, **hyper)

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Table 1 (MFT[{setting}], {num_points} points): best-drawdown layer",
        [
            {
                "points": num_points,
                "layer": record["layer_index"],
                "efficacy": record["efficacy"],
                "drawdown_%": record["drawdown"],
                "time": format_seconds(record["time_total"]),
            }
        ],
    )
    # MFT is not a repair algorithm: it trades efficacy for low drawdown.
    assert record["drawdown"] <= 30.0
