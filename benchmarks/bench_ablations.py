"""Ablation benchmarks (not in the paper, but probing its design choices).

* Norm objective: ℓ1 vs ℓ∞ vs the combined ℓ1+ℓ∞ objective, measured by the
  drawdown of the resulting Task 2 repair.
* LP backend: scipy/HiGHS vs the from-scratch simplex on the same repair LP.
* Repair-layer choice: drawdown of repairing each layer of the digit
  network (the heuristic discussed in §7.1: later layers repair cheaply).
"""

from __future__ import annotations

import pytest

from repro.core.point_repair import point_repair
from repro.core.specs import PointRepairSpec
from repro.experiments.reporting import format_seconds, print_table
from repro.experiments.task2_mnist_lines import provable_line_repair

NORMS = ("l1", "linf", "l1+linf")


@pytest.mark.parametrize("norm", NORMS)
def test_ablation_norm_objective(benchmark, task2_setup, norm):
    """How the choice of minimized norm affects drawdown and generalization."""

    def run():
        return provable_line_repair(task2_setup, 4, task2_setup.layer_3_index, norm=norm)

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Ablation: norm objective = {norm}",
        [
            {
                "norm": norm,
                "drawdown_%": record["drawdown"],
                "generalization_%": record["generalization"],
                "delta_time": format_seconds(record["time_total"]),
            }
        ],
    )
    assert record["feasible"]


@pytest.mark.parametrize("backend", ["scipy", "simplex"])
def test_ablation_lp_backend(benchmark, task2_setup, backend):
    """HiGHS vs the pure-Python simplex on the same (small) repair LP."""
    points = task2_setup.dataset.test_images[:6]
    labels = task2_setup.dataset.test_labels[:6]
    spec = PointRepairSpec.from_labels(
        points, labels, num_classes=task2_setup.network.output_size, margin=1e-3
    )

    def run():
        return point_repair(
            task2_setup.network, task2_setup.layer_3_index, spec, norm="linf", backend=backend
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Ablation: LP backend = {backend}",
        [
            {
                "backend": backend,
                "feasible": result.feasible,
                "objective": result.objective_value,
                "lp_time": format_seconds(result.timing.lp_seconds),
            }
        ],
    )
    assert result.feasible


def test_ablation_repair_layer_choice(benchmark, task2_setup):
    """Per-layer drawdown of a pointwise repair of the digit network."""
    points = task2_setup.dataset.test_images[:8]
    labels = task2_setup.dataset.test_labels[:8]
    spec = PointRepairSpec.from_labels(
        points, labels, num_classes=task2_setup.network.output_size, margin=1e-3
    )

    def run():
        rows = []
        for layer_index in task2_setup.network.parameterized_layer_indices():
            result = point_repair(task2_setup.network, layer_index, spec, norm="l1")
            if not result.feasible:
                rows.append({"layer": layer_index, "feasible": False})
                continue
            from repro.experiments.metrics import drawdown

            rows.append(
                {
                    "layer": layer_index,
                    "feasible": True,
                    "drawdown_%": drawdown(
                        task2_setup.network,
                        result.network,
                        task2_setup.drawdown_images,
                        task2_setup.drawdown_labels,
                    ),
                    "time": format_seconds(result.timing.total_seconds),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: repair-layer choice (digit network)", rows)
    assert any(row["feasible"] for row in rows)
