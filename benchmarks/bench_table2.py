"""Table 2: Task 2 polytope (fog-line) repair — PR layers 2/3 vs FT[1]/FT[2].

Line counts are scaled down from the paper's 10/25/50/100 to keep the
pure-Python LP sizes manageable; the qualitative comparison (PR repairs all
infinitely-many points with low drawdown and good generalization, FT has
much higher drawdown and no guarantee) is preserved.  The RQ4 timing split
(LinRegions / Jacobian / LP / other) is printed alongside.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import format_seconds, print_table
from repro.experiments.task2_mnist_lines import (
    fine_tune_lines,
    provable_line_repair,
)

#: Scaled-down analogues of the paper's 10/25/50/100 line counts.
LINE_COUNTS = (2, 4, 8)


@pytest.mark.parametrize("num_lines", LINE_COUNTS)
@pytest.mark.parametrize("layer_name", ["layer2", "layer3"])
def test_table2_provable_repair(benchmark, task2_setup, num_lines, layer_name):
    """The PR (Layer 2) and PR (Layer 3) columns of Table 2."""
    layer_index = (
        task2_setup.layer_2_index if layer_name == "layer2" else task2_setup.layer_3_index
    )

    def run():
        return provable_line_repair(task2_setup, num_lines, layer_index, norm="l1")

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Table 2 (PR {layer_name}, {num_lines} lines)",
        [
            {
                "lines": num_lines,
                "key_points": record["key_points"],
                "feasible": record["feasible"],
                "efficacy": record["efficacy"],
                "drawdown_%": record["drawdown"],
                "generalization_%": record["generalization"],
                "linregions": format_seconds(record["time_linregions"]),
                "jacobian": format_seconds(record["time_jacobian"]),
                "lp": format_seconds(record["time_lp"]),
                "total": format_seconds(record["time_total"]),
            }
        ],
    )
    assert record["feasible"]
    # The provable guarantee: every sampled point of every repaired line is
    # classified correctly.
    assert record["efficacy"] == 100.0


@pytest.mark.parametrize("num_lines", LINE_COUNTS)
@pytest.mark.parametrize("setting", [1, 2])
def test_table2_fine_tuning(benchmark, task2_setup, num_lines, setting):
    """The FT[1]/FT[2] columns of Table 2 (sampled points, no guarantee)."""
    hyper = (
        {"learning_rate": 0.05, "batch_size": 16}
        if setting == 1
        else {"learning_rate": 0.01, "batch_size": 16}
    )
    # The baselines get as many sampled points as PR got key points.
    key_points = provable_line_repair(
        task2_setup, num_lines, task2_setup.layer_3_index, norm="l1"
    )["key_points"]

    def run():
        return fine_tune_lines(task2_setup, num_lines, key_points, max_epochs=300, **hyper)

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Table 2 (FT[{setting}], {num_lines} lines)",
        [
            {
                "lines": num_lines,
                "sampled_points": key_points,
                "efficacy": record["efficacy"],
                "drawdown_%": record["drawdown"],
                "generalization_%": record["generalization"],
                "time": format_seconds(record["time_total"]),
                "converged": record["converged"],
            }
        ],
    )
