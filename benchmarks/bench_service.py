"""Repair-as-a-service benchmark: job throughput and latency, cold vs warm.

Starts a real :class:`repro.service.RepairService` behind its HTTP
front-end and pushes a stream of small certified-repair jobs through it,
in two phases over the same specification geometry:

* **cold** — every job carries a *different* network (fresh seed, fresh
  parameter fingerprint), so each one misses the shared partition cache
  and pays for its own SyReNN decompositions;
* **warm** — every job carries the *same* network (one warm-up job primes
  the cache), so each one's verification rounds hit the shared
  fingerprint-keyed cache and skip decomposition entirely.

Since exact verification is decomposition-dominated on these workloads,
warm jobs should be markedly faster — this is the speedup a long-lived
daemon buys over one-process-per-repair, and the report records it as
``warm_speedup`` (mean cold latency / mean warm latency).

Latencies are measured *server-side* (the daemon's monotonic
``latency_seconds`` field), so neither client polling granularity nor
wall-clock adjustments pollute p50/p99.  Jobs are submitted sequentially; throughput is jobs divided by
phase wall-clock.

The cross-checks are strict and always on: every job must certify, and all
warm jobs — identical inputs through a concurrently-shared engine — must
return **byte-identical** repaired parameters.  The wall-clock assertion
(``--min-warm-speedup``) is disabled in CI, where shared runners make
timing ratios unreliable.

Results are written as JSON with the same report shape as the other
benchmarks (default ``BENCH_service.json``) so CI can archive the
trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_service.py --smoke   # CI smoke
"""

from __future__ import annotations

import argparse
import base64
import json
import platform
import threading
import time
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

import repro.obs as obs
from conftest import telemetry_document
from repro.nn.activations import ReLULayer
from repro.nn.linear import FullyConnectedLayer
from repro.nn.network import Network
from repro.polytope.hpolytope import HPolytope
from repro.service import ServiceClient, make_job, serve
from repro.utils.rng import ensure_rng
from repro.utils.serialization import decode_network
from repro.verify import VerificationSpec

MAX_ROUNDS = 8


def build_job(seed: int, width: int) -> dict:
    """One small certified-repair job: a seeded network over the unit plane."""
    rng = ensure_rng(seed)
    network = Network(
        [
            FullyConnectedLayer.from_shape(2, width, rng),
            ReLULayer(width),
            FullyConnectedLayer.from_shape(width, width, rng),
            ReLULayer(width),
            FullyConnectedLayer.from_shape(width, 3, rng),
        ]
    )
    preds = network.predict(rng.uniform(-1.0, 1.0, size=(400, 2)))
    winner = int(np.bincount(preds, minlength=3).argmax())
    spec = VerificationSpec()
    spec.add_plane(
        [[-1, -1], [1, -1], [1, 1], [-1, 1]],
        HPolytope.argmax_region(3, winner, 1e-3),
    )
    return make_job("repair", network, spec, config={"max_rounds": MAX_ROUNDS})


def run_phase(client: ServiceClient, jobs: list[dict], label: str) -> dict:
    """Submit a job stream sequentially; returns server-side latency stats."""
    results = []
    phase_start = time.perf_counter()
    for job in jobs:
        job_id = client.submit(job)
        result = client.wait(job_id, timeout=600, poll_interval=0.01)
        if result["status"] != "done":
            raise AssertionError(f"{label} job {job_id} failed: {result['error']}")
        report = result["result"]["report"]
        if report["status"] != "certified":
            raise AssertionError(
                f"{label} job {job_id} ended {report['status']!r}, expected certified"
            )
        status = client.status(job_id)
        results.append(
            {
                "job_id": job_id,
                # Monotonic, computed daemon-side; the wall-clock *_at
                # timestamps are for humans and can jump under NTP.
                "latency_seconds": status["latency_seconds"],
                "rounds": report["num_rounds"],
                "network": result["result"]["network"],
            }
        )
    phase_seconds = time.perf_counter() - phase_start
    latencies = np.array([entry["latency_seconds"] for entry in results])
    # Quantiles come from the same fixed-bucket histogram estimator the live
    # window store uses — np.percentile over a handful of jobs interpolates
    # a "p99" no job ever experienced.  The honest sample count n rides
    # along so downstream consumers (the sentinel, humans) can judge how
    # much each quantile is worth.
    quantiles = obs.quantiles_with_count(latencies, (0.5, 0.99), obs.DEFAULT_BUCKETS)
    stats = {
        "jobs": len(jobs),
        "phase_seconds": phase_seconds,
        "jobs_per_second": len(jobs) / phase_seconds,
        "latency_mean_ms": float(latencies.mean() * 1e3),
        "latency_p50_ms": quantiles["p50"] * 1e3,
        "latency_p99_ms": quantiles["p99"] * 1e3,
        "latency_quantile_n": quantiles["n"],
        "latencies_ms": [float(value * 1e3) for value in latencies],
        "rounds": [entry["rounds"] for entry in results],
    }
    print(
        f"{label:>4}: {stats['jobs_per_second']:6.2f} jobs/s  "
        f"p50={stats['latency_p50_ms']:7.1f}ms  p99={stats['latency_p99_ms']:7.1f}ms  "
        f"mean={stats['latency_mean_ms']:7.1f}ms  (n={quantiles['n']} jobs)"
    )
    return {"stats": stats, "results": results}


def cross_check_warm_identical(results: list[dict]) -> None:
    """All warm jobs carried identical inputs: their outputs must match bytewise."""
    networks = [decode_network(base64.b64decode(entry["network"])) for entry in results]
    reference = networks[0]
    for layer_index in reference.repairable_layer_indices():
        reference_bytes = reference.value.layers[layer_index].get_parameters().tobytes()
        for candidate in networks[1:]:
            if candidate.value.layers[layer_index].get_parameters().tobytes() != reference_bytes:
                raise AssertionError(
                    f"warm jobs disagree at layer {layer_index}: the shared engine "
                    "changed a job's bytes"
                )


def run_benchmark(
    *, num_jobs: int, width: int, job_workers: int, min_warm_speedup: float | None
) -> dict:
    cold_jobs = [build_job(seed, width) for seed in range(1, num_jobs + 1)]
    warm_jobs = [build_job(0, width) for _ in range(num_jobs)]

    with TemporaryDirectory() as state_dir:
        server = serve(state_dir, port=0, job_workers=job_workers)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        try:
            cold = run_phase(client, cold_jobs, "cold")
            # Prime the cache once so every measured warm job is a pure hit.
            run_phase(client, warm_jobs[:1], "prim")
            warm = run_phase(client, warm_jobs, "warm")
            cross_check_warm_identical(warm["results"])
            engine_stats = client.health()["engine"]
        finally:
            server.shutdown()
            server.server_close()
            server.service.stop()
            thread.join(timeout=10)

    warm_speedup = cold["stats"]["latency_mean_ms"] / max(
        warm["stats"]["latency_mean_ms"], 1e-9
    )
    print(f"warm-cache speedup: {warm_speedup:.1f}x (fingerprint-matched jobs)")
    if min_warm_speedup is not None and warm_speedup < min_warm_speedup:
        raise AssertionError(
            f"warm speedup {warm_speedup:.2f}x below the required {min_warm_speedup:.2f}x"
        )
    for phase in (cold, warm):
        for entry in phase["results"]:
            entry.pop("network")  # keep the JSON report small
    return {
        "benchmark": "service",
        "network": {"width": width, "input_size": 2, "classes": 3},
        "job_workers": job_workers,
        "python": platform.python_version(),
        "cold": cold["stats"],
        "warm": warm["stats"],
        "warm_speedup": warm_speedup,
        "engine": engine_stats,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # Sized flags default to None (a sentinel) so --smoke can fill in only
    # the values the user did not pass explicitly.
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="jobs per phase (default: 8; 3 with --smoke)",
    )
    parser.add_argument(
        "--width", type=int, default=None,
        help="hidden-layer width of each job's network (default: 48; 16 with --smoke)",
    )
    parser.add_argument(
        "--job-workers", type=int, default=2,
        help="concurrent jobs in the daemon (default: 2)",
    )
    parser.add_argument(
        "--min-warm-speedup",
        type=float,
        default=1.2,
        help="fail if warm-cache jobs are not this much faster than cold "
        "(pass 0 to disable; default: 1.2)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI smoke: a small stream (explicitly passed flags still win)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_service.json"),
        help="where to write the JSON report (default: BENCH_service.json)",
    )
    args = parser.parse_args()
    obs.enable()
    defaults = {"jobs": 3, "width": 16} if args.smoke else {"jobs": 8, "width": 48}
    for name, value in defaults.items():
        if getattr(args, name) is None:
            setattr(args, name, value)
    report = run_benchmark(
        num_jobs=args.jobs,
        width=args.width,
        job_workers=args.job_workers,
        min_warm_speedup=args.min_warm_speedup or None,
    )
    report["telemetry"] = telemetry_document()
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
