"""Figures 3, 4, and 5: the running example.

Regenerates the data behind the paper's illustrative figures:

* Figure 3 — input–output curves and linear regions of N₁ and N₂;
* Figure 4 — the decoupled N₃/N₄ (a value-channel edit keeps N₁'s regions);
* Figure 5 — the pointwise repair (Equation 2) and polytope repair
  (Equation 3) of N₁ and their curves.
"""

from __future__ import annotations

import numpy as np

from repro.core.ddnn import DecoupledNetwork
from repro.core.point_repair import point_repair
from repro.core.polytope_repair import polytope_repair
from repro.core.specs import PointRepairSpec, PolytopeRepairSpec
from repro.experiments.figures import input_output_curve
from repro.experiments.reporting import print_table
from repro.models.toy import paper_network_n1, paper_network_n2
from repro.polytope.hpolytope import HPolytope
from repro.polytope.segment import LineSegment


def _equation2_spec() -> PointRepairSpec:
    return PointRepairSpec(
        points=np.array([[0.5], [1.5]]),
        constraints=[
            HPolytope.from_interval(1, 0, -1.0, -0.8),
            HPolytope.from_interval(1, 0, -0.2, 0.0),
        ],
    )


def _equation3_spec() -> PolytopeRepairSpec:
    spec = PolytopeRepairSpec()
    spec.add_segment(
        LineSegment(np.array([0.5]), np.array([1.5])),
        HPolytope.from_interval(1, 0, -0.8, -0.4),
    )
    return spec


def _curve_row(name: str, network) -> dict:
    curve = input_output_curve(network)
    return {
        "network": name,
        "regions": ", ".join(f"{value:.2f}" for value in curve.region_boundaries),
        "y(0.5)": float(np.interp(0.5, curve.inputs, curve.outputs)),
        "y(1.5)": float(np.interp(1.5, curve.inputs, curve.outputs)),
    }


def test_figure3_and_4_curves(benchmark):
    """Figure 3/4: N₁, N₂, and the value-channel-edited DDNN N₄."""

    def run():
        n1, n2 = paper_network_n1(), paper_network_n2()
        n4 = DecoupledNetwork.from_network(n1)
        n4.apply_parameter_delta(0, np.array([0.0, 0.0, 1.0, 0.0, 0.0, 0.0]))
        return [
            _curve_row("N1 (Figure 3c)", n1),
            _curve_row("N2 (Figure 3d)", n2),
            _curve_row("N4 = DDNN value edit (Figure 4d)", n4),
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Figures 3 and 4: curves and linear regions", rows)
    # N2 and N4 change the curve, but only N2 moves the region boundaries.
    assert rows[0]["regions"] == rows[2]["regions"]
    assert rows[0]["regions"] != rows[1]["regions"]


def test_figure5a_pointwise_repair(benchmark):
    """Figure 5(a)/(c): the Equation 2 pointwise repair of N₁."""

    def run():
        return point_repair(paper_network_n1(), 0, _equation2_spec(), norm="l1")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.feasible
    row = _curve_row("N5 (Figure 5c)", result.network)
    row["delta_l1"] = result.delta_l1_norm
    print_table("Figure 5(a): pointwise-repaired N5", [row])
    assert -1.0 <= row["y(0.5)"] <= -0.8 + 1e-6
    assert -0.2 - 1e-6 <= row["y(1.5)"] <= 0.0


def test_figure5b_polytope_repair(benchmark):
    """Figure 5(b)/(d): the Equation 3 polytope repair of N₁."""

    def run():
        return polytope_repair(paper_network_n1(), 0, _equation3_spec(), norm="l1")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.feasible
    row = _curve_row("N6 (Figure 5d)", result.network)
    row["delta_l1"] = result.delta_l1_norm
    print_table("Figure 5(b): polytope-repaired N6", [row])
    # The paper's ℓ1-minimal repair is the single change Δ2 = −0.2.
    assert abs(result.delta_l1_norm - 0.2) < 1e-6
    # The whole segment [0.5, 1.5] now lies in [-0.8, -0.4].
    for value in np.linspace(0.5, 1.5, 51):
        output = result.network.compute(np.array([value]))[0]
        assert -0.8 - 1e-6 <= output <= -0.4 + 1e-6
