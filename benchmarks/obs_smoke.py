"""Observability smoke test: scrape a live daemon and archive what it says.

Boots a real repair daemon, pushes a cold/warm job pair through it (same
network twice, so the second job hits the shared partition cache), then
exercises the two telemetry surfaces end to end:

* ``GET /metrics`` — asserts the key series exist: partition-cache hits,
  the per-backend LP solve-time histogram, and per-status job counters;
* ``GET /jobs/<id>/trace`` — asserts the warm job's span tree is present
  and rooted at the job, with verify/repair spans underneath;
* ``GET /healthz`` / ``GET /readyz`` / ``GET /slo`` — asserts the daemon
  grades itself healthy and ready after serving real traffic, with every
  SLO carrying a verdict and reason;
* ``GET /jobs/<id>/profile`` — asserts the warm job's sampled folded-stack
  profile exists and its stacks reach the daemon's job-execution frames.

The payloads are written to disk (``OBS_metrics.txt``, ``OBS_trace.json``,
``OBS_health.json``, ``OBS_profile.folded``) so CI can archive them as
artifacts.

Usage::

    PYTHONPATH=src python benchmarks/obs_smoke.py
"""

from __future__ import annotations

import argparse
import json
import threading
from pathlib import Path
from tempfile import TemporaryDirectory

from bench_service import build_job
from repro.service import ServiceClient, serve


def iter_span_names(span: dict):
    yield span["name"]
    for child in span.get("children", ()):  # leaf spans omit the key
        yield from iter_span_names(child)


def run_job(client: ServiceClient, job: dict) -> str:
    job_id = client.submit(job)
    result = client.wait(job_id, timeout=600, poll_interval=0.01)
    if result["status"] != "done":
        raise AssertionError(f"job {job_id} failed: {result['error']}")
    return job_id


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--width", type=int, default=6, help="hidden width of the job network")
    parser.add_argument("--metrics-out", type=Path, default=Path("OBS_metrics.txt"),
                        help="where to write the scraped Prometheus exposition")
    parser.add_argument("--trace-out", type=Path, default=Path("OBS_trace.json"),
                        help="where to write the warm job's span tree")
    parser.add_argument("--health-out", type=Path, default=Path("OBS_health.json"),
                        help="where to write the healthz/readyz/slo documents")
    parser.add_argument("--profile-out", type=Path, default=Path("OBS_profile.folded"),
                        help="where to write the warm job's folded-stack profile")
    args = parser.parse_args()

    with TemporaryDirectory() as state_dir:
        server = serve(state_dir, port=0, job_workers=1, log_level="info")
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        try:
            ready = client.readyz()
            cold_id = run_job(client, build_job(0, args.width))
            warm_id = run_job(client, build_job(0, args.width))  # same fingerprint
            metrics = client.metrics()
            trace = client.trace(warm_id)
            healthz = client.healthz()
            slo = client.slo()
            profile = client.profile(warm_id)
        finally:
            server.shutdown()
            server.server_close()
            server.service.stop()
            thread.join(timeout=10)

    args.metrics_out.write_text(metrics)
    args.trace_out.write_text(json.dumps(trace, indent=2) + "\n")
    args.health_out.write_text(
        json.dumps({"readyz": ready, "healthz": healthz, "slo": slo}, indent=2) + "\n"
    )
    args.profile_out.write_text(profile["folded"] + "\n")

    # --- the assertions CI actually cares about -------------------------
    required_series = [
        # the warm job's verify rounds hit the cold job's cached partitions
        'repro_cache_requests_total{result="hit",tier="memory"}',
        # every LP solve lands in the per-backend histogram
        "repro_lp_solve_seconds_bucket",
        'repro_service_jobs_total{status="done"}',
        "repro_driver_rounds_total",
    ]
    missing = [series for series in required_series if series not in metrics]
    if missing:
        raise AssertionError(f"/metrics is missing expected series: {missing}")

    names = list(iter_span_names(trace["root"]))
    if trace["trace_id"] != f"{warm_id}-trace":
        raise AssertionError(f"trace id {trace['trace_id']!r} not derived from job id")
    if "driver.verify" not in names or "driver.run" not in names:
        raise AssertionError(f"trace lacks driver spans: {names}")

    if not ready["ready"] or not all(ready["checks"].values()):
        raise AssertionError(f"daemon not ready: {ready}")
    if healthz["status"] not in ("healthy", "degraded"):
        raise AssertionError(f"daemon unhealthy after a clean job pair: {healthz}")
    slo_names = {entry["name"] for entry in slo["slos"]}
    if "job_p99_seconds" not in slo_names or "job_failure_ratio" not in slo_names:
        raise AssertionError(f"/slo is missing stock objectives: {sorted(slo_names)}")
    if any(entry["status"] == "unhealthy" for entry in slo["slos"]):
        raise AssertionError(f"an SLO grades unhealthy after clean traffic: {slo}")
    if profile["samples"] < 1 or not profile["folded"]:
        raise AssertionError(f"profile empty for {warm_id}: {profile['samples']} samples")
    if "_execute" not in profile["folded"]:
        raise AssertionError("profile stacks never reached the job-execution frames")

    print(f"cold={cold_id} warm={warm_id}")
    print(f"wrote {args.metrics_out} ({len(metrics.splitlines())} lines)")
    print(f"wrote {args.trace_out} ({len(names)} spans)")
    print(f"wrote {args.health_out} (status={healthz['status']}, ready={ready['ready']})")
    print(f"wrote {args.profile_out} ({profile['samples']} samples)")
    print("obs smoke OK")


if __name__ == "__main__":
    main()
