"""Task 3 (§7.3): 2-D polytope repair of the collision-avoidance network.

The paper reports, for 10 two-dimensional φ8-violating slices: 100% efficacy
for Provable Repair with zero drawdown and ~95% generalization plus the
timing split, against an FT baseline that fails to reach full efficacy and a
fast MFT baseline.  This benchmark regenerates those comparisons on the
simulator-trained stand-in network.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import format_seconds, print_table
from repro.experiments.task3_acas import (
    fine_tune_slices,
    modified_fine_tune_slices,
    provable_slice_repair,
)


def test_task3_provable_polytope_repair(benchmark, task3_setup):
    if not task3_setup.repair_slices:
        pytest.skip("the buggy network satisfies φ8 on every sampled slice")

    def run():
        return provable_slice_repair(task3_setup, norm="l1")

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Task 3 (Provable Repair, last layer)",
        [
            {
                "slices": record["num_slices"],
                "key_points": record["key_points"],
                "feasible": record["feasible"],
                "efficacy": record["efficacy"],
                "drawdown_%": record["drawdown"],
                "generalization_%": record["generalization"],
                "linregions": format_seconds(record["time_linregions"]),
                "jacobian": format_seconds(record["time_jacobian"]),
                "lp": format_seconds(record["time_lp"]),
                "total": format_seconds(record["time_total"]),
            }
        ],
    )
    assert record["feasible"]
    assert record["efficacy"] == 100.0
    assert record["drawdown"] <= 1.0


def test_task3_fine_tuning_baseline(benchmark, task3_setup):
    if not task3_setup.repair_slices:
        pytest.skip("the buggy network satisfies φ8 on every sampled slice")

    def run():
        return fine_tune_slices(task3_setup, points_per_slice=40, max_epochs=200)

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Task 3 (FT baseline)",
        [
            {
                "sampled_points": record["sampled_points"],
                "efficacy": record["efficacy"],
                "drawdown_%": record["drawdown"],
                "generalization_%": record["generalization"],
                "time": format_seconds(record["time_total"]),
            }
        ],
    )


def test_task3_modified_fine_tuning_baseline(benchmark, task3_setup):
    if not task3_setup.repair_slices:
        pytest.skip("the buggy network satisfies φ8 on every sampled slice")

    def run():
        return modified_fine_tune_slices(task3_setup, points_per_slice=40, max_epochs=80)

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Task 3 (MFT baseline, last layer)",
        [
            {
                "sampled_points": record["sampled_points"],
                "efficacy": record["efficacy"],
                "drawdown_%": record["drawdown"],
                "generalization_%": record["generalization"],
                "time": format_seconds(record["time_total"]),
            }
        ],
    )
