"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper.  The
buggy networks are trained once and cached on disk by the model zoo, so only
the first benchmark run pays the training cost.

Benchmarks use ``benchmark.pedantic(..., rounds=1)``: a repair is a
deterministic one-shot computation, so a single measured round per
configuration is both faithful and keeps the whole harness fast.
"""

from __future__ import annotations

import os
import platform

import pytest

import repro.obs as obs
from repro.models.zoo import ModelZoo


def telemetry_document() -> dict:
    """The common ``"telemetry"`` block every ``BENCH_*.json`` embeds.

    Standalone bench scripts import this module directly (``from conftest
    import telemetry_document``) and call it once, right before writing
    their report: a final dump of the live metrics registry plus the run
    metadata needed to interpret the numbers later.
    """
    return {
        "obs_enabled": obs.enabled(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "metrics": obs.snapshot(),
    }


@pytest.fixture(scope="session")
def zoo() -> ModelZoo:
    """A model zoo backed by the default on-disk cache."""
    return ModelZoo()


@pytest.fixture(scope="session")
def task1_setup(zoo):
    """The Task 1 setup (MiniSqueezeNet + adversarial pool + validation set)."""
    from repro.experiments.task1_imagenet import setup_task1

    return setup_task1(
        zoo,
        train_per_class=30,
        validation_per_class=20,
        adversarial_per_class=12,
        epochs=30,
        seed=0,
    )


@pytest.fixture(scope="session")
def task2_setup(zoo):
    """The Task 2 setup (digit network + fog lines + evaluation sets)."""
    from repro.experiments.task2_mnist_lines import setup_task2

    return setup_task2(
        zoo, max_lines=16, train_per_class=60, test_per_class=30, epochs=30, seed=0
    )


@pytest.fixture(scope="session")
def task3_setup(zoo):
    """The Task 3 setup (advisory network + φ8 slices + evaluation sets)."""
    from repro.experiments.task3_acas import setup_task3

    return setup_task3(
        zoo,
        num_slices=6,
        candidate_slices=80,
        samples_per_slice=64,
        evaluation_points=3000,
        train_size=3000,
        epochs=30,
        seed=0,
    )
