"""Execution-engine benchmark: parallel + cached verification vs. serial.

Builds a multi-region ACAS-style verification workload — ``--slices`` 2-D
slices of the φ8 property box, each of which must map into its strengthened
safe-advisory polytope — and measures four ways of running the exact
verifier end to end (SyReNN decomposition + vertex checks):

* **serial** — today's single-process :class:`SyrennVerifier`, no caching;
* **engine_cold** — the :class:`ShardedSyrennEngine` with ``--workers``
  processes and an empty partition cache (pool startup reported
  separately);
* **engine_warm** — a second pass on the same engine: every decomposition
  served by the in-memory LRU tier;
* **disk_reuse** — a fresh engine over the same cache directory, modelling
  a second process reusing the disk tier.

All four scenarios must agree on every region verdict (the benchmark
asserts it — the engine's merge order is deterministic), so the timings
compare identical work.  Results are written as JSON (default
``BENCH_engine.json``) with the same report shape as
``bench_lp_scaling.py`` so CI can archive the perf trajectory.  The report
records ``cpu_count``: the parallel speedup is hardware-bound (a 1-core
runner shows ~1x cold; the cache tiers still multiply repeated rounds).

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py                 # full sweep
    PYTHONPATH=src python benchmarks/bench_engine.py --tiny          # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path

import repro.obs as obs
from conftest import telemetry_document
from repro.datasets.acas import phi8_property
from repro.engine import PartitionCache, ShardedSyrennEngine
from repro.experiments.task3_acas import safe_advisory_constraint
from repro.models.acas_models import build_acas_network
from repro.utils.rng import ensure_rng
from repro.verify import SyrennVerifier, VerificationSpec


def build_workload(
    num_slices: int, hidden_size: int, hidden_layers: int, seed: int
) -> tuple:
    """An advisory network plus a φ8 slice spec with one region per slice."""
    network = build_acas_network(
        hidden_size=hidden_size, hidden_layers=hidden_layers, seed=seed
    )
    safety_property = phi8_property()
    rng = ensure_rng(seed)
    spec = VerificationSpec()
    allowed = safety_property.allowed
    for index in range(num_slices):
        vertices = safety_property.random_slice(rng)
        scores = network.compute(vertices.mean(axis=0))
        winner = max(allowed, key=lambda advisory: scores[advisory])
        spec.add_plane(
            vertices,
            safe_advisory_constraint(network.output_size, winner, allowed),
            name=f"slice{index}",
        )
    return network, spec


def timed_verify(verifier, network, spec) -> tuple[dict, list]:
    start = time.perf_counter()
    report = verifier.verify(network, spec)
    total = time.perf_counter() - start
    record = {
        "total_seconds": total,
        "linear_regions": report.linear_regions_checked,
        "points_checked": report.points_checked,
        "num_violated": report.num_violated,
    }
    return record, report.region_statuses


def run_record(
    network, spec, *, workers: int, shards: int, cache_dir: Path
) -> dict:
    """Time the four scenarios on one workload and cross-check verdicts."""
    serial, baseline_statuses = timed_verify(
        SyrennVerifier(cache_partitions=False), network, spec
    )

    engine = ShardedSyrennEngine(
        workers=workers,
        shards_per_region=shards,
        cache=PartitionCache(directory=cache_dir),
    )
    start = time.perf_counter()
    if workers > 1:
        engine._ensure_pool()
    pool_startup = time.perf_counter() - start
    verifier = SyrennVerifier(engine=engine)
    engine_cold, cold_statuses = timed_verify(verifier, network, spec)
    engine_cold["pool_startup_seconds"] = pool_startup
    engine_warm, warm_statuses = timed_verify(verifier, network, spec)
    cache_stats = engine.cache.as_dict()
    engine.close()

    reuse_engine = ShardedSyrennEngine(
        workers=1, shards_per_region=shards, cache=PartitionCache(directory=cache_dir)
    )
    disk_reuse, disk_statuses = timed_verify(
        SyrennVerifier(engine=reuse_engine), network, spec
    )

    for name, statuses in (
        ("engine_cold", cold_statuses),
        ("engine_warm", warm_statuses),
        ("disk_reuse", disk_statuses),
    ):
        if statuses != baseline_statuses:
            raise AssertionError(f"scenario {name} disagrees with the serial verdicts")

    def speedup(record: dict) -> float:
        return serial["total_seconds"] / max(record["total_seconds"], 1e-12)

    return {
        "regions": spec.num_regions,
        "serial": serial,
        "engine_cold": engine_cold,
        "engine_warm": engine_warm,
        "disk_reuse": disk_reuse,
        "parallel_speedup": speedup(engine_cold),
        "warm_speedup": speedup(engine_warm),
        "disk_speedup": speedup(disk_reuse),
        "cache": cache_stats,
    }


def run_benchmark(
    slice_counts: list[int],
    *,
    workers: int,
    shards: int,
    hidden_size: int,
    hidden_layers: int,
    seed: int,
) -> dict:
    """Run the serial-vs-engine sweep and return the JSON-ready report."""
    records = []
    with tempfile.TemporaryDirectory(prefix="bench-engine-cache-") as cache_root:
        for num_slices in slice_counts:
            network, spec = build_workload(num_slices, hidden_size, hidden_layers, seed)
            record = run_record(
                network,
                spec,
                workers=workers,
                shards=shards,
                cache_dir=Path(cache_root) / f"slices{num_slices}",
            )
            record["num_slices"] = num_slices
            records.append(record)
            print(
                f"slices={num_slices:>3}  regions={record['regions']:>4}  "
                f"serial={record['serial']['total_seconds']:.3f}s  "
                f"parallel={record['engine_cold']['total_seconds']:.3f}s "
                f"({record['parallel_speedup']:.1f}x)  "
                f"warm={record['engine_warm']['total_seconds']:.3f}s "
                f"({record['warm_speedup']:.1f}x)  "
                f"disk={record['disk_reuse']['total_seconds']:.3f}s "
                f"({record['disk_speedup']:.1f}x)"
            )
    return {
        "benchmark": "engine",
        "network": {
            "hidden_size": hidden_size,
            "hidden_layers": hidden_layers,
            "input_size": 5,
        },
        "workers": workers,
        "shards_per_region": shards,
        "cpu_count": os.cpu_count(),
        "seed": seed,
        "python": platform.python_version(),
        "results": records,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # Sized flags default to None (a sentinel) so --tiny can fill in only the
    # values the user did not pass explicitly.
    parser.add_argument(
        "--slices",
        type=int,
        nargs="+",
        default=None,
        help="φ8 slice counts to sweep (default: 4 8 16; 4 with --tiny)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="engine worker processes (default: 4; 2 with --tiny)",
    )
    parser.add_argument("--shards", type=int, default=1, help="geometry shards per region")
    parser.add_argument(
        "--hidden", type=int, default=None, help="hidden layer width (default: 24; 8 with --tiny)"
    )
    parser.add_argument(
        "--layers", type=int, default=None, help="hidden layer count (default: 6; 2 with --tiny)"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="CI smoke: one small workload, a 2-worker pool, a tiny network "
        "(explicitly passed flags still win)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_engine.json"),
        help="where to write the JSON report (default: BENCH_engine.json)",
    )
    args = parser.parse_args()
    obs.enable()
    defaults = (
        {"slices": [4], "workers": 2, "hidden": 8, "layers": 2}
        if args.tiny
        else {"slices": [4, 8, 16], "workers": 4, "hidden": 24, "layers": 6}
    )
    for name, value in defaults.items():
        if getattr(args, name) is None:
            setattr(args, name, value)
    report = run_benchmark(
        args.slices,
        workers=args.workers,
        shards=args.shards,
        hidden_size=args.hidden,
        hidden_layers=args.layers,
        seed=args.seed,
    )
    report["telemetry"] = telemetry_document()
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
