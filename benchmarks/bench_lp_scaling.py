"""LP-scaling benchmark: batched+sparse repair engine vs. the legacy path.

Builds synthetic pointwise repairs whose LP grows from ~10² to ~10⁴
constraint rows and times both repair engines end to end (Jacobian
computation, LP assembly, and LP solve):

* **legacy** — per-point Python-loop Jacobians (``batched=False``) and the
  dense ``standard_form`` (``sparse=False``);
* **batched** — one vectorized multi-point Jacobian pass (``batched=True``)
  and the sparse CSR standard form (``sparse=True``).

The two engines build the same LP row for row, so the benchmark also
cross-checks that their deltas and LP statuses agree before reporting
timings.  Results are written as JSON (default ``BENCH_lp_scaling.json``)
so CI can archive the perf trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_lp_scaling.py                # full sweep
    PYTHONPATH=src python benchmarks/bench_lp_scaling.py --sizes 100    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

import repro.obs as obs
from conftest import telemetry_document
from repro.core.point_repair import point_repair
from repro.core.specs import PointRepairSpec
from repro.nn.activations import ReLULayer
from repro.nn.linear import FullyConnectedLayer
from repro.nn.network import Network
from repro.utils.rng import ensure_rng

INPUT_SIZE = 10
NUM_CLASSES = 2   # binary classifier: one argmax constraint row per point
BOTTLENECK = 10
REPAIR_LAYER = 0  # the bottleneck layer: few parameters, deep downstream pass
DELTA_BOUND = 0.05  # box bound on Δ; identical for both engines


def build_network(depth: int, width: int, rng: np.random.Generator) -> Network:
    """A deep ReLU classifier with a small repairable bottleneck layer.

    Repairing the first layer keeps the LP's delta-variable count fixed
    while the downstream Jacobian pass crosses ``depth`` hidden layers, so
    constraint rows — not parameters — dominate the scaling.
    """
    layers = [FullyConnectedLayer.from_shape(INPUT_SIZE, BOTTLENECK, rng), ReLULayer(BOTTLENECK)]
    previous = BOTTLENECK
    for _ in range(depth):
        layers.append(FullyConnectedLayer.from_shape(previous, width, rng))
        layers.append(ReLULayer(width))
        previous = width
    layers.append(FullyConnectedLayer.from_shape(previous, NUM_CLASSES, rng))
    return Network(layers)


def build_spec(network: Network, num_points: int, rng: np.random.Generator) -> PointRepairSpec:
    """A verification-style spec: every point must keep its current argmax.

    The spec is satisfiable at Δ = 0, so the LP solve stays cheap and
    comparable across engines and the benchmark isolates the scaling of the
    encoding pipeline (Jacobians + constraint assembly) that the batched
    engine accelerates.  Flipping labels instead makes HiGHS iteration
    counts — identical for both engines — swamp the measurement.
    """
    points = rng.normal(size=(num_points, network.input_size))
    outputs = np.atleast_2d(network.compute(points))
    labels = outputs.argmax(axis=1)
    return PointRepairSpec.from_labels(points, labels, num_classes=NUM_CLASSES, margin=0.0)


def run_one(
    network: Network, spec: PointRepairSpec, *, batched: bool, sparse: bool, rounds: int = 2
) -> dict:
    """Time one end-to-end repair; repeat ``rounds`` times and keep the best.

    A repair is a deterministic one-shot computation, so the minimum over a
    few rounds (timeit-style) filters out first-touch page faults and BLAS
    thread-pool spin-up without distorting the measurement.
    """
    best = None
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        result = point_repair(
            network,
            REPAIR_LAYER,
            spec,
            norm="linf",
            delta_bound=DELTA_BOUND,
            batched=batched,
            sparse=sparse,
        )
        total = time.perf_counter() - start
        if best is None or total < best["total_seconds"]:
            best = {
                "total_seconds": total,
                "jacobian_seconds": result.timing.jacobian_seconds,
                "lp_seconds": result.timing.lp_seconds,
                "status": str(result.lp_status),
                "feasible": result.feasible,
                "num_constraint_rows": result.num_constraint_rows,
                "num_variables": result.num_variables,
                "delta": result.delta,
            }
    return best


def run_benchmark(sizes: list[int], depth: int, width: int, seed: int) -> dict:
    """Run the legacy-vs-batched sweep and return the JSON-ready report."""
    rng = ensure_rng(seed)  # seeded through repro.utils.rng for reproducible JSON
    network = build_network(depth, width, rng)
    rows_per_point = NUM_CLASSES - 1  # one argmax constraint row per rival class
    records = []
    for target_rows in sizes:
        num_points = max(1, target_rows // rows_per_point)
        spec = build_spec(network, num_points, rng)
        legacy = run_one(network, spec, batched=False, sparse=False)
        batched = run_one(network, spec, batched=True, sparse=True)

        if legacy["status"] != batched["status"]:
            raise AssertionError(
                f"engines disagree on LP status: {legacy['status']} vs {batched['status']}"
            )
        if legacy["feasible"] and not np.allclose(
            legacy["delta"], batched["delta"], atol=1e-6
        ):
            raise AssertionError("engines disagree on the repair delta")

        for record in (legacy, batched):
            record.pop("delta")
        speedup = legacy["total_seconds"] / max(batched["total_seconds"], 1e-12)
        records.append(
            {
                "target_rows": target_rows,
                "num_points": num_points,
                "constraint_rows": batched["num_constraint_rows"],
                "legacy": legacy,
                "batched": batched,
                "speedup": speedup,
            }
        )
        print(
            f"rows={batched['num_constraint_rows']:>6}  "
            f"legacy={legacy['total_seconds']:.3f}s  "
            f"batched={batched['total_seconds']:.3f}s  "
            f"speedup={speedup:.1f}x"
        )
    return {
        "benchmark": "lp_scaling",
        "network": {"depth": depth, "width": width, "input_size": INPUT_SIZE},
        "seed": seed,
        "python": platform.python_version(),
        "results": records,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[100, 1000, 10000],
        help="target constraint-row counts to sweep (default: 100 1000 10000)",
    )
    parser.add_argument("--depth", type=int, default=24, help="hidden layers after the bottleneck")
    parser.add_argument("--width", type=int, default=48, help="hidden layer width")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_lp_scaling.json"),
        help="where to write the JSON report (default: BENCH_lp_scaling.json)",
    )
    args = parser.parse_args()
    obs.enable()
    report = run_benchmark(args.sizes, args.depth, args.width, args.seed)
    report["telemetry"] = telemetry_document()
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
