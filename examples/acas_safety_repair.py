#!/usr/bin/env python3
"""Task 3 scenario: enforce a φ8-style safety property on an ACAS Xu-like network.

The advisory network trained on the collision-avoidance simulator violates
the property "advise clear-of-conflict or weak left" on parts of the φ8 box.
We find two-dimensional slices of the box containing violations, repair the
network's final layer so the property provably holds on every point of those
slices, and report drawdown/generalization against a fine-tuning baseline.

Run with:  python examples/acas_safety_repair.py
(The first run trains and caches the advisory network; later runs reuse it.)
"""

from __future__ import annotations

from repro.experiments.reporting import format_seconds, print_table
from repro.experiments.task3_acas import (
    fine_tune_slices,
    provable_slice_repair,
    setup_task3,
)
from repro.models.zoo import ModelZoo


def main() -> None:
    setup = setup_task3(ModelZoo(), num_slices=5)
    if not setup.repair_slices:
        print("The trained network happens to satisfy the property everywhere; nothing to repair.")
        return
    print(f"Found {len(setup.repair_slices)} property-violating 2-D slices to repair.")
    print(f"Generalization set: {setup.generalization_points.shape[0]} other counterexamples")
    print(f"Drawdown set: {setup.drawdown_points.shape[0]} already-safe encounters")

    pr = provable_slice_repair(setup, norm="l1")
    ft = fine_tune_slices(setup, points_per_slice=40)
    print_table(
        "Provable Repair vs fine-tuning on the φ8 slices",
        [
            {
                "method": "Provable Repair",
                "efficacy %": pr["efficacy"],
                "drawdown %": pr["drawdown"],
                "generalization %": pr["generalization"],
                "time": format_seconds(pr["time_total"]),
            },
            {
                "method": "Fine-tuning (FT)",
                "efficacy %": ft["efficacy"],
                "drawdown %": ft["drawdown"],
                "generalization %": ft["generalization"],
                "time": format_seconds(ft["time_total"]),
            },
        ],
    )
    print(
        "\nProvable Repair guarantees the property on every point of the repaired"
        " slices; fine-tuning only sees sampled points and offers no guarantee."
    )


if __name__ == "__main__":
    main()
