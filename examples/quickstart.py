#!/usr/bin/env python3
"""Quickstart: the paper's running example (§3, Figures 3–5).

Builds the 1-input ReLU network N₁, then:

1. applies Provable Point Repair so that N'(0.5) ∈ [-1, -0.8] and
   N'(1.5) ∈ [-0.2, 0] (Equation 2 / Figure 5(a));
2. applies Provable Polytope Repair so that every point of the segment
   [0.5, 1.5] maps into [-0.8, -0.4] (Equation 3 / Figure 5(b));
3. prints the linear regions before and after, showing that value-channel
   repairs never move them (Theorem 4.6);
4. re-runs the Equation 3 repair through the one-import facade
   (``repro.api.repair``), letting the CEGIS driver discover the violations
   and *certify* the result with the exact verifier.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro import PointRepairSpec, PolytopeRepairSpec, point_repair, polytope_repair
from repro.experiments.figures import input_output_curve
from repro.models.toy import paper_network_n1
from repro.polytope.hpolytope import HPolytope
from repro.polytope.segment import LineSegment


def main() -> None:
    network = paper_network_n1()
    print("Buggy network N1:")
    print(f"  N1(0.5) = {network.compute(np.array([0.5]))[0]:+.3f}")
    print(f"  N1(1.5) = {network.compute(np.array([1.5]))[0]:+.3f}")
    curve = input_output_curve(network)
    print(f"  linear regions on [-1, 2]: {curve.region_boundaries.round(3).tolist()}")

    # ------------------------------------------------------------------
    # 1. Pointwise repair (Equation 2).
    # ------------------------------------------------------------------
    point_spec = PointRepairSpec(
        points=np.array([[0.5], [1.5]]),
        constraints=[
            HPolytope.from_interval(1, 0, -1.0, -0.8),
            HPolytope.from_interval(1, 0, -0.2, 0.0),
        ],
    )
    point_result = point_repair(network, layer_index=0, spec=point_spec, norm="l1")
    assert point_result.feasible
    repaired = point_result.network
    print("\nPointwise repair (Equation 2):")
    print(f"  delta (l1 = {point_result.delta_l1_norm:.3f}): {point_result.delta.round(3)}")
    print(f"  N5(0.5) = {repaired.compute(np.array([0.5]))[0]:+.3f}  (target [-1.0, -0.8])")
    print(f"  N5(1.5) = {repaired.compute(np.array([1.5]))[0]:+.3f}  (target [-0.2,  0.0])")

    # ------------------------------------------------------------------
    # 2. Polytope repair (Equation 3).
    # ------------------------------------------------------------------
    polytope_spec = PolytopeRepairSpec()
    polytope_spec.add_segment(
        LineSegment(np.array([0.5]), np.array([1.5])),
        HPolytope.from_interval(1, 0, -0.8, -0.4),
    )
    polytope_result = polytope_repair(network, layer_index=0, spec=polytope_spec, norm="l1")
    assert polytope_result.feasible
    repaired = polytope_result.network
    print("\nPolytope repair (Equation 3):")
    print(f"  key points used: {polytope_result.num_key_points}")
    print(f"  delta (l1 = {polytope_result.delta_l1_norm:.3f}): {polytope_result.delta.round(3)}")
    worst_low = min(repaired.compute(np.array([x]))[0] for x in np.linspace(0.5, 1.5, 101))
    worst_high = max(repaired.compute(np.array([x]))[0] for x in np.linspace(0.5, 1.5, 101))
    print(f"  N6(x) over [0.5, 1.5] stays within [{worst_low:+.3f}, {worst_high:+.3f}]")

    # ------------------------------------------------------------------
    # 3. Linear regions are preserved (Theorem 4.6).
    # ------------------------------------------------------------------
    repaired_curve = input_output_curve(repaired)
    print("\nLinear regions after repair:", repaired_curve.region_boundaries.round(3).tolist())
    print("(identical to N1's regions — value-channel repairs never move them)")

    # ------------------------------------------------------------------
    # 4. The same repair through the facade, closed-loop and certified.
    # ------------------------------------------------------------------
    # repro.api.repair runs the CEGIS driver: the exact verifier finds the
    # violating linear regions of the segment, the driver repairs exactly
    # those, and the final round *proves* Equation 3 on every point.
    report = repro.api.repair(
        network,
        polytope_spec,
        config=repro.DriverConfig(mode="polytope", norm="l1", max_rounds=4),
    )
    print("\nClosed-loop repair via repro.api.repair (mode='polytope'):")
    print(f"  status: {report.status} after {report.num_rounds} rounds "
          f"(pooled {report.pool_size} violating regions)")
    check = repro.api.verify(
        report.network, repro.VerificationSpec.from_polytope_spec(polytope_spec)
    )
    print(f"  independent re-verification: certified={check.certified}")


if __name__ == "__main__":
    main()
