#!/usr/bin/env python3
"""Quickstart: the paper's running example (§3, Figures 3–5).

Builds the 1-input ReLU network N₁, then:

1. applies Provable Point Repair so that N'(0.5) ∈ [-1, -0.8] and
   N'(1.5) ∈ [-0.2, 0] (Equation 2 / Figure 5(a));
2. applies Provable Polytope Repair so that every point of the segment
   [0.5, 1.5] maps into [-0.8, -0.4] (Equation 3 / Figure 5(b));
3. prints the linear regions before and after, showing that value-channel
   repairs never move them (Theorem 4.6).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import PointRepairSpec, PolytopeRepairSpec, point_repair, polytope_repair
from repro.experiments.figures import input_output_curve
from repro.models.toy import paper_network_n1
from repro.polytope.hpolytope import HPolytope
from repro.polytope.segment import LineSegment


def main() -> None:
    network = paper_network_n1()
    print("Buggy network N1:")
    print(f"  N1(0.5) = {network.compute(np.array([0.5]))[0]:+.3f}")
    print(f"  N1(1.5) = {network.compute(np.array([1.5]))[0]:+.3f}")
    curve = input_output_curve(network)
    print(f"  linear regions on [-1, 2]: {curve.region_boundaries.round(3).tolist()}")

    # ------------------------------------------------------------------
    # 1. Pointwise repair (Equation 2).
    # ------------------------------------------------------------------
    point_spec = PointRepairSpec(
        points=np.array([[0.5], [1.5]]),
        constraints=[
            HPolytope.from_interval(1, 0, -1.0, -0.8),
            HPolytope.from_interval(1, 0, -0.2, 0.0),
        ],
    )
    point_result = point_repair(network, layer_index=0, spec=point_spec, norm="l1")
    assert point_result.feasible
    repaired = point_result.network
    print("\nPointwise repair (Equation 2):")
    print(f"  delta (l1 = {point_result.delta_l1_norm:.3f}): {point_result.delta.round(3)}")
    print(f"  N5(0.5) = {repaired.compute(np.array([0.5]))[0]:+.3f}  (target [-1.0, -0.8])")
    print(f"  N5(1.5) = {repaired.compute(np.array([1.5]))[0]:+.3f}  (target [-0.2,  0.0])")

    # ------------------------------------------------------------------
    # 2. Polytope repair (Equation 3).
    # ------------------------------------------------------------------
    polytope_spec = PolytopeRepairSpec()
    polytope_spec.add_segment(
        LineSegment(np.array([0.5]), np.array([1.5])),
        HPolytope.from_interval(1, 0, -0.8, -0.4),
    )
    polytope_result = polytope_repair(network, layer_index=0, spec=polytope_spec, norm="l1")
    assert polytope_result.feasible
    repaired = polytope_result.network
    print("\nPolytope repair (Equation 3):")
    print(f"  key points used: {polytope_result.num_key_points}")
    print(f"  delta (l1 = {polytope_result.delta_l1_norm:.3f}): {polytope_result.delta.round(3)}")
    worst_low = min(repaired.compute(np.array([x]))[0] for x in np.linspace(0.5, 1.5, 101))
    worst_high = max(repaired.compute(np.array([x]))[0] for x in np.linspace(0.5, 1.5, 101))
    print(f"  N6(x) over [0.5, 1.5] stays within [{worst_low:+.3f}, {worst_high:+.3f}]")

    # ------------------------------------------------------------------
    # 3. Linear regions are preserved (Theorem 4.6).
    # ------------------------------------------------------------------
    repaired_curve = input_output_curve(repaired)
    print("\nLinear regions after repair:", repaired_curve.region_boundaries.round(3).tolist())
    print("(identical to N1's regions — value-channel repairs never move them)")


if __name__ == "__main__":
    main()
