#!/usr/bin/env python3
"""Task 1 scenario: pointwise repair of a convolutional image classifier.

MiniSqueezeNet is trained on a 9-class synthetic image dataset and then
evaluated on "natural adversarial" images it largely misclassifies.  We
repair a batch of those images at every convolutional layer, compare the
resulting drawdown on the clean validation set, and show the per-layer
heuristic the paper discusses (later layers usually repair more cheaply).

Run with:  python examples/imagenet_pointwise_repair.py
(The first run trains and caches MiniSqueezeNet; later runs reuse it.)
"""

from __future__ import annotations

from repro.experiments.reporting import format_seconds, print_table
from repro.experiments.task1_imagenet import (
    best_drawdown_record,
    fine_tune_baseline,
    provable_repair_per_layer,
    setup_task1,
)
from repro.models.zoo import ModelZoo

NUM_POINTS = 12


def main() -> None:
    setup = setup_task1(ModelZoo())
    print("Buggy MiniSqueezeNet:")
    print(f"  clean validation accuracy      : {setup.buggy_drawdown_accuracy:.1f}%")
    print(f"  natural-adversarial accuracy   : {setup.buggy_pool_accuracy:.1f}%")

    records = provable_repair_per_layer(setup, NUM_POINTS, norm="l1")
    rows = [
        {
            "layer": record["layer_index"],
            "feasible": record["feasible"],
            "drawdown %": record["drawdown"],
            "time": format_seconds(record["time_total"]),
        }
        for record in records
    ]
    print_table(f"Provable repair of {NUM_POINTS} adversarial images, per layer", rows)

    best = best_drawdown_record(records)
    ft = fine_tune_baseline(setup, NUM_POINTS, learning_rate=0.01, batch_size=2, max_epochs=100)
    print_table(
        "Best Provable Repair layer vs fine-tuning",
        [
            {
                "method": f"Provable Repair (layer {best['layer_index']})",
                "efficacy %": best["efficacy"],
                "drawdown %": best["drawdown"],
                "time": format_seconds(best["time_total"]),
            },
            {
                "method": "Fine-tuning (FT)",
                "efficacy %": ft["efficacy"],
                "drawdown %": ft["drawdown"],
                "time": format_seconds(ft["time_total"]),
            },
        ],
    )


if __name__ == "__main__":
    main()
