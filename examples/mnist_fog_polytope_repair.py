#!/usr/bin/env python3
"""Task 2 scenario, closed loop: certified polytope repair of fog lines.

A small fully-connected ReLU classifier is trained on clean synthetic digits
and collapses on fog-corrupted ones.  The specification requires *every*
point on the line from each selected clean image to its fog-corrupted
version — infinitely many points per line — to be classified as the clean
image's digit, with a decisively strengthened margin.

Instead of handing the whole specification to one LP (the one-shot
``polytope_repair`` this example used to call), the specification now drives
``RepairDriver(mode="polytope")``: the exact verifier decomposes each line
into linear regions and reports the violating regions whole, the
counterexample pool dedups them by activation pattern and expands each to
its key points, and the incremental LP session grows round by round until
the verifier *certifies* every region — a machine-checked proof that the
repaired network classifies all infinitely many line points correctly.

Run with:  python examples/mnist_fog_polytope_repair.py
(The first run trains and caches the digit network; later runs reuse it.)
"""

from __future__ import annotations

from repro.driver import RepairDriver
from repro.experiments.metrics import drawdown, generalization
from repro.experiments.reporting import format_seconds, print_table
from repro.experiments.task2_mnist_lines import (
    setup_task2,
    strengthened_line_specification,
)
from repro.models.zoo import ModelZoo
from repro.verify import SyrennVerifier

NUM_LINES = 6


def main() -> None:
    setup = setup_task2(ModelZoo(), max_lines=NUM_LINES)
    print("Buggy digit network:")
    print(f"  clean test accuracy : {setup.buggy_clean_accuracy:.1f}%")
    print(f"  foggy test accuracy : {setup.buggy_fog_accuracy:.1f}%")

    spec = strengthened_line_specification(setup, NUM_LINES)
    driver = RepairDriver(
        setup.network,
        spec,
        SyrennVerifier(),
        mode="polytope",
        layer_schedule=[setup.layer_3_index, setup.layer_2_index],
        norm="l1",
        incremental=True,
        max_new_counterexamples=16,
        max_rounds=40,
    )
    report = driver.run()

    rows = [
        {
            "round": record.round_index,
            "violated regions": record.regions_violated,
            "new regions": record.new_counterexamples,
            "pool key points": record.pool_key_points,
            "LP rows appended": record.lp_rows_appended,
            "value-only verify": "yes" if record.verify_value_only else "no",
            "time": format_seconds(record.seconds + record.repair_seconds),
        }
        for record in report.rounds
    ]
    print_table(
        f"Polytope-CEGIS repair of {NUM_LINES} fog lines "
        f"({report.final_report.num_regions} certified regions)",
        rows,
    )

    print(f"\nVerdict: {report.status.upper()} after {report.num_rounds} rounds")
    if not report.certified:
        raise SystemExit("expected a certified verdict — the loop did not converge")
    print(
        f"  drawdown       : "
        f"{drawdown(setup.network, report.network, setup.drawdown_images, setup.drawdown_labels):+.1f}%"
    )
    print(
        f"  generalization : "
        f"{generalization(setup.network, report.network, setup.generalization_images, setup.generalization_labels):+.1f}%"
    )
    print(
        "\nThe exact verifier certified every linear region of every line:"
        " all infinitely many points of the repaired lines are provably"
        " classified as the clean images' digits (with margin)."
    )


if __name__ == "__main__":
    main()
