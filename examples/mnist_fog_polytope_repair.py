#!/usr/bin/env python3
"""Task 2 scenario: repair a digit classifier on fog-corruption lines.

A small fully-connected ReLU classifier is trained on clean synthetic digits
and collapses on fog-corrupted ones.  We repair it so that *every* point on
the line from each selected clean image to its fog-corrupted version is
classified correctly (infinitely many points per line), then measure:

* drawdown   — accuracy change on the clean test set,
* generalization — accuracy change on fog-corrupted images *not* in the
  repair specification.

Run with:  python examples/mnist_fog_polytope_repair.py
(The first run trains and caches the digit network; later runs reuse it.)
"""

from __future__ import annotations

from repro.experiments.reporting import format_seconds, print_table
from repro.experiments.task2_mnist_lines import provable_line_repair, setup_task2
from repro.models.zoo import ModelZoo

NUM_LINES = 6


def main() -> None:
    setup = setup_task2(ModelZoo(), max_lines=NUM_LINES)
    print("Buggy digit network:")
    print(f"  clean test accuracy : {setup.buggy_clean_accuracy:.1f}%")
    print(f"  foggy test accuracy : {setup.buggy_fog_accuracy:.1f}%")

    rows = []
    for layer_name, layer_index in (
        ("layer 2", setup.layer_2_index),
        ("layer 3", setup.layer_3_index),
    ):
        record = provable_line_repair(setup, NUM_LINES, layer_index, norm="l1")
        rows.append(
            {
                "repaired layer": layer_name,
                "key points": record["key_points"],
                "efficacy %": record["efficacy"],
                "drawdown %": record["drawdown"],
                "generalization %": record["generalization"],
                "time": format_seconds(record["time_total"]),
            }
        )
    print_table(f"Provable polytope repair of {NUM_LINES} fog lines", rows)
    print(
        "\nEvery point of every repaired line (infinitely many) is now provably"
        " classified as the clean image's digit."
    )


if __name__ == "__main__":
    main()
