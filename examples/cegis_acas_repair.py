#!/usr/bin/env python3
"""End-to-end certified repair of the ACAS-style network via the CEGIS driver.

Where ``acas_safety_repair.py`` hands the whole strengthened φ8
specification to a single LP, this example closes the loop: the exact
SyReNN-based verifier searches the repair slices for violations, the driver
pools the counterexamples it finds, repairs just those, and re-verifies —
iterating until the verifier *certifies* every target region free of
violations.  The final report also cross-checks that the repaired network
satisfies every counterexample the pool accumulated along the way.

Run with:  python examples/cegis_acas_repair.py
(The first run trains and caches the advisory network; later runs reuse it.)
"""

from __future__ import annotations

from repro.experiments.reporting import format_seconds, print_table
from repro.experiments.task3_acas import (
    driver_slice_repair,
    setup_task3,
    strengthened_verification_spec,
)
from repro.models.zoo import ModelZoo
from repro.verify import GridVerifier


def main() -> None:
    # Deliberately under-train (matching the benchmark harness) so the
    # advisory network actually violates the property somewhere.
    setup = setup_task3(
        ModelZoo(), num_slices=5, evaluation_points=3000, train_size=3000, epochs=30
    )
    if not setup.repair_slices:
        print("The trained network happens to satisfy the property everywhere; nothing to repair.")
        return
    print(f"Found {len(setup.repair_slices)} property-violating 2-D slices to repair.")

    record, report = driver_slice_repair(setup, norm="l1", max_rounds=8)
    print_table(
        "CEGIS rounds (verify → pool counterexamples → batched repair)",
        [
            {
                "round": r.round_index,
                "violated regions": r.regions_violated,
                "new counterexamples": r.new_counterexamples,
                "pool": r.pool_size,
                "repair layer": "-" if r.layer_index is None else r.layer_index,
                "drawdown %": r.drawdown,
            }
            for r in report.rounds
        ],
    )

    print(f"\nStatus: {report.status} after {report.num_rounds} rounds "
          f"({format_seconds(record['time_total'])} total; "
          f"verify {format_seconds(record['time_verify'])}, "
          f"LP {format_seconds(record['time_repair_lp'])}).")
    if report.certified:
        print(f"The exact verifier certified all {record['regions']} target regions: "
              "the φ8 strengthening provably holds on every point of every repair slice.")
    print(f"Differential check: {len(report.unsatisfied_pool_indices)} of "
          f"{report.pool_size} pooled counterexamples remain violated (must be 0).")

    grid = GridVerifier(resolution=24).verify(
        report.network, strengthened_verification_spec(setup.network, setup)
    )
    print(f"Independent grid sweep over the regions: {grid.num_violated} violated "
          f"({grid.points_checked} points checked).")

    print_table(
        "Safety metrics of the certified repair",
        [
            {
                "method": "CEGIS driver",
                "efficacy %": record["efficacy"],
                "drawdown %": record["drawdown"],
                "generalization %": record["generalization"],
            }
        ],
    )


if __name__ == "__main__":
    main()
