#!/usr/bin/env python3
"""End-to-end certified repair of the ACAS-style network via the CEGIS driver.

Where ``acas_safety_repair.py`` hands the whole strengthened φ8
specification to a single LP, this example closes the loop through the
one-import facade: ``repro.api.repair`` runs the CEGIS driver — the exact
SyReNN-based verifier searches the repair slices for violations, the driver
pools the counterexamples, repairs just those, and re-verifies — iterating
until every target region is *certified*.  The algorithm knobs travel as a
declarative :class:`repro.DriverConfig`, which is exactly what a job
submitted to the repair daemon (``python -m repro.service``) would carry;
the example prints the equivalent job document's size to make that
concrete.

Run with:  python examples/cegis_acas_repair.py
(The first run trains and caches the advisory network; later runs reuse it.)
"""

from __future__ import annotations

import json

import numpy as np

import repro
from repro.experiments.reporting import format_seconds, print_table
from repro.experiments.task3_acas import setup_task3, strengthened_verification_spec
from repro.models.zoo import ModelZoo
from repro.service.protocol import make_job


def main() -> None:
    # Deliberately under-train (matching the benchmark harness) so the
    # advisory network actually violates the property somewhere.
    setup = setup_task3(
        ModelZoo(), num_slices=5, evaluation_points=3000, train_size=3000, epochs=30
    )
    if not setup.repair_slices:
        print("The trained network happens to satisfy the property everywhere; nothing to repair.")
        return
    print(f"Found {len(setup.repair_slices)} property-violating 2-D slices to repair.")

    # The §7.1 schedule: the last layer first, then every other layer as
    # escalation fallbacks — expressed once, declaratively, in the config.
    schedule = [setup.last_layer_index] + [
        index
        for index in reversed(setup.network.parameterized_layer_indices())
        if index != setup.last_layer_index
    ]
    config = repro.DriverConfig(layer_schedule=schedule, norm="l1", max_rounds=8)
    spec = strengthened_verification_spec(setup.network, setup)
    holdout_labels = np.atleast_1d(setup.network.predict(setup.drawdown_points))

    # The exact same work as a daemon job document (network + spec + config
    # all serialize): repro.api.submit(...) would POST this to a daemon.
    job = make_job("repair", setup.network, spec, config=config)
    print(f"Equivalent daemon job document: {len(json.dumps(job)) / 1024:.0f} KiB of JSON.")

    report = repro.api.repair(
        setup.network,
        spec,
        config=config,
        holdout=(setup.drawdown_points, holdout_labels),
    )
    print_table(
        "CEGIS rounds (verify → pool counterexamples → batched repair)",
        [
            {
                "round": r.round_index,
                "violated regions": r.regions_violated,
                "new counterexamples": r.new_counterexamples,
                "pool": r.pool_size,
                "repair layer": "-" if r.layer_index is None else r.layer_index,
                "drawdown %": r.drawdown,
            }
            for r in report.rounds
        ],
    )

    timing = report.timing.as_dict()
    print(f"\nStatus: {report.status} after {report.num_rounds} rounds "
          f"({format_seconds(timing['total'])} total; "
          f"verify {format_seconds(timing['verify'])}, "
          f"LP {format_seconds(timing['repair_lp'])}).")
    if report.certified:
        print(f"The exact verifier certified all {spec.num_regions} target regions: "
              "the φ8 strengthening provably holds on every point of every repair slice.")
    print(f"Differential check: {len(report.unsatisfied_pool_indices)} of "
          f"{report.pool_size} pooled counterexamples remain violated (must be 0).")

    grid = repro.api.verify(report.network, spec, verifier="grid", resolution=24)
    print(f"Independent grid sweep over the regions: {grid.num_violated} violated "
          f"({grid.points_checked} points checked).")


if __name__ == "__main__":
    main()
