"""Priority-queue job scheduling for the execution engine.

The engine's unit of work is a *task*: a picklable description (decompose
this shard, evaluate these points) that an executor turns into a result.
The :class:`JobScheduler` sits between callers and the executor: callers
``submit`` tasks (optionally with a priority), and the scheduler dispatches
them in priority order, in batches the executor may run across a worker
pool.  On top of that it provides:

* **cancellation** — a pending :class:`Job` can be cancelled before it is
  dispatched; gathering a cancelled job raises
  :class:`~repro.exceptions.JobCancelledError` (or yields ``None`` under
  ``on_cancelled="none"``);
* **budget integration** — a :class:`~repro.utils.timing.TimeBudget` is
  checked before every dispatched batch; once exhausted, everything still
  pending is cancelled instead of launched;
* **deterministic ordering** — ties between equal-priority jobs break by
  submission order, and batch results are returned in dispatch order, so a
  run's outcome does not depend on worker scheduling.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import EngineError, JobCancelledError
from repro.utils.timing import TimeBudget

#: An executor maps a batch of tasks to their results, preserving order.
Executor = Callable[[list[Any]], list[Any]]

#: Batch cap applied while a TimeBudget is active (and ``batch_size`` is
#: unset): the budget is checked between batches, so an unbounded batch
#: would make it fire at most once, before any work starts.
BUDGETED_BATCH_SIZE = 32


def _run_callables(tasks: list[Any]) -> list[Any]:
    """The default executor: tasks are zero-argument callables, run inline."""
    return [task() for task in tasks]


def chunk_spans(total: int, chunk_size: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` spans covering ``range(total)``.

    The engine uses this to split one large batched job (e.g. re-evaluating
    every cached vertex of a specification) into fixed-size tasks: the span
    layout depends only on ``total`` and ``chunk_size`` — never on the
    worker count — so merged results are deterministic.
    """
    if chunk_size < 1:
        raise EngineError("chunk_size must be positive")
    return [(start, min(start + chunk_size, total)) for start in range(0, total, chunk_size)]


def contiguous_spans(ids) -> list[tuple[int, int]]:
    """``(start, stop)`` spans of equal consecutive values in ``ids``.

    The complement of :func:`chunk_spans`: instead of imposing a fixed chunk
    layout, it recovers the natural grouping already present in a stacked
    result (e.g. which rows of a cached vertex stack belong to the same
    linear region).  Like ``chunk_spans`` the output depends only on the
    input sequence, so span-wise consumers stay deterministic at any worker
    count.
    """
    ids = np.asarray(ids)
    if ids.size == 0:
        return []
    boundaries = np.flatnonzero(ids[1:] != ids[:-1]) + 1
    starts = np.concatenate([[0], boundaries])
    stops = np.concatenate([boundaries, [ids.size]])
    return list(zip(starts.tolist(), stops.tolist()))


@dataclass
class Job:
    """One scheduled task with its lifecycle state."""

    task: Any
    priority: int
    sequence: int
    status: str = "pending"  #: ``pending`` | ``done`` | ``cancelled``
    result: Any = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        """Whether the job has a result."""
        return self.status == "done"

    @property
    def cancelled(self) -> bool:
        """Whether the job was cancelled before being dispatched."""
        return self.status == "cancelled"


class JobScheduler:
    """Dispatches submitted jobs to an executor in priority order.

    Parameters
    ----------
    executor:
        Maps a list of tasks to a list of results (same order).  The engine
        plugs in its worker-pool executor; the default runs zero-argument
        callables inline, which keeps the scheduler usable standalone.
    batch_size:
        Maximum number of jobs dispatched to the executor at once.  ``None``
        dispatches everything pending in one batch (maximum parallelism);
        smaller batches give the budget check finer granularity.
    """

    def __init__(self, executor: Executor | None = None, batch_size: int | None = None) -> None:
        if batch_size is not None and batch_size < 1:
            raise EngineError("batch_size must be positive")
        self._executor = executor if executor is not None else _run_callables
        self.batch_size = batch_size
        self._queue: list[tuple[int, int, Job]] = []
        self._sequence = itertools.count()
        self.jobs_executed = 0
        self.jobs_cancelled = 0
        self.batches_dispatched = 0

    # ------------------------------------------------------------------
    # Submission and cancellation
    # ------------------------------------------------------------------
    def submit(self, task: Any, priority: int = 0) -> Job:
        """Queue one task; lower ``priority`` values dispatch first."""
        job = Job(task=task, priority=priority, sequence=next(self._sequence))
        heapq.heappush(self._queue, (priority, job.sequence, job))
        return job

    def submit_many(self, tasks: list[Any], priority: int = 0) -> list[Job]:
        """Queue several tasks at one priority, in order."""
        return [self.submit(task, priority) for task in tasks]

    def cancel(self, job: Job) -> bool:
        """Cancel a pending job; returns whether it was still cancellable."""
        if job.status != "pending":
            return False
        job.status = "cancelled"
        self.jobs_cancelled += 1
        return True

    def pending(self) -> int:
        """Number of jobs queued and not yet dispatched or cancelled."""
        return sum(1 for _, _, job in self._queue if job.status == "pending")

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _next_batch(self, limit: int | None) -> list[Job]:
        batch: list[Job] = []
        if limit is None:
            limit = len(self._queue)
        while self._queue and len(batch) < limit:
            _, _, job = heapq.heappop(self._queue)
            if job.status == "pending":
                batch.append(job)
        return batch

    def _cancel_all_pending(self) -> None:
        while self._queue:
            _, _, job = heapq.heappop(self._queue)
            if job.status == "pending":
                job.status = "cancelled"
                self.jobs_cancelled += 1

    def drain(self, budget: TimeBudget | None = None) -> Iterator[Job]:
        """Dispatch queued jobs batch by batch, yielding each as it finishes.

        Jobs are yielded in dispatch order (priority, then submission).  When
        ``budget`` runs out, jobs not yet dispatched are cancelled and also
        yielded, carrying ``status == "cancelled"``.  Since the budget is
        checked between batches, an active budget caps the batch size at
        :data:`BUDGETED_BATCH_SIZE` (unless ``batch_size`` is tighter) so it
        can actually interrupt a long queue; without a budget everything
        pending dispatches as one maximally parallel batch.
        """
        limit = self.batch_size
        if budget is not None:
            limit = min(limit or BUDGETED_BATCH_SIZE, BUDGETED_BATCH_SIZE)
        while True:
            if budget is not None and budget.exhausted():
                cancelled = [job for _, _, job in self._queue if job.status == "pending"]
                self._cancel_all_pending()
                yield from cancelled
                return
            batch = self._next_batch(limit)
            if not batch:
                return
            results = self._executor([job.task for job in batch])
            if len(results) != len(batch):
                raise EngineError(
                    f"executor returned {len(results)} results for {len(batch)} tasks"
                )
            self.batches_dispatched += 1
            # Settle the whole batch before yielding anything: a consumer may
            # abandon the generator mid-batch (gather stops once its own jobs
            # are done), and co-batched jobs must keep their results.
            for job, result in zip(batch, results):
                job.result = result
                job.status = "done"
                self.jobs_executed += 1
            yield from batch

    def gather(
        self,
        jobs: list[Job],
        budget: TimeBudget | None = None,
        on_cancelled: str = "raise",
    ) -> list[Any]:
        """Run until every given job is settled; results in ``jobs`` order.

        Draining stops as soon as the requested jobs are settled — other
        queued work stays queued for a later drain (though jobs sharing a
        dispatched batch do execute together).  Cancelled jobs (explicitly,
        or by budget exhaustion during this gather) raise
        :class:`JobCancelledError` under the default ``on_cancelled="raise"``;
        ``on_cancelled="none"`` maps them to ``None`` so callers can keep
        partial results.
        """
        if on_cancelled not in ("raise", "none"):
            raise EngineError('on_cancelled must be "raise" or "none"')
        unsettled = {id(job) for job in jobs if job.status == "pending"}
        if unsettled:
            for settled in self.drain(budget):
                unsettled.discard(id(settled))
                if not unsettled:
                    break
        results: list[Any] = []
        for job in jobs:
            if job.cancelled:
                if on_cancelled == "raise":
                    raise JobCancelledError(
                        f"job {job.sequence} (priority {job.priority}) was cancelled"
                    )
                results.append(None)
            elif job.done:
                results.append(job.result)
            else:
                raise EngineError(f"job {job.sequence} was never dispatched")
        return results

    def map_unordered(
        self,
        tasks: list[Any],
        priority: int = 0,
        budget: TimeBudget | None = None,
    ) -> Iterator[tuple[int, Any]]:
        """Submit ``tasks`` and yield ``(index, result)`` pairs as they finish.

        "Unordered" is relative to submission: higher-priority work already
        in the queue dispatches first, and budget exhaustion stops the stream
        early (remaining tasks are cancelled, not yielded).
        """
        jobs = self.submit_many(tasks, priority)
        index_of = {id(job): index for index, job in enumerate(jobs)}
        for job in self.drain(budget):
            index = index_of.get(id(job))
            if index is not None and job.done:
                yield index, job.result
