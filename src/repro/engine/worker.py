"""Worker-side task execution for the parallel engine.

Everything in this module is a module-level function operating on plain
arrays and byte payloads, so tasks pickle cleanly across a ``spawn``-started
worker pool (spawned workers import this module fresh and share no state
with the parent).  Networks arrive as
:func:`repro.utils.serialization.encode_network` payloads tagged with their
parameter fingerprint; each worker decodes a given payload once and keeps it
in a per-process cache, so a batch of tasks over the same network pays the
decode cost once per worker, not once per task.

Task tuples understood by :func:`run_task`:

* ``("line", fingerprint, payload, start, end)`` → breakpoint ratios of
  ``transform_line`` over the segment;
* ``("plane", fingerprint, payload, vertices)`` → per-region
  ``(input_vertices, plane_vertices)`` pairs of ``transform_plane``;
* ``("evaluate", fingerprint, payload, points, activation_point)`` →
  batched network outputs, optionally pinned to an activation point (DDNN);
* ``("evaluate_regions", fingerprint, payload, points, activations)`` →
  batched network outputs with a *per-row* pinned activation point — the
  value-only re-verification fast path ships every cached linear-region
  vertex with its region's interior point in one stacked pair of arrays;
* ``("sample", fingerprint, payload, region, seed, num_samples)`` →
  ``(points, outputs)`` with the points drawn worker-side from a generator
  built from the derived per-region ``seed``;
* ``("encode", fingerprint, payload, layer_index, points, constraints,
  activation_points)`` → the dense ``(lhs, rhs)`` repair constraint rows of
  one point batch, encoded worker-side with the shared partition-invariant
  encoder (``constraints`` ships as picklable ``(a, b)`` pairs) — the
  chunk-production shard of the out-of-core repair pipeline;
* ``("obs", inner_task)`` → telemetry wrapper: runs ``inner_task`` under
  :func:`repro.obs.capture` and returns ``(result, telemetry)``, where
  ``telemetry`` is the task's metrics snapshot + span export for the parent
  to :func:`repro.obs.absorb` in task order.  The engine only wraps tasks
  when telemetry is enabled, so the disabled path ships the exact same
  tuples (and bytes) it always has.
"""

from __future__ import annotations

import numpy as np

import repro.obs as obs
from repro.engine.cache import BoundedLru
from repro.exceptions import EngineError
from repro.polytope.segment import LineSegment
from repro.utils.serialization import decode_network
from repro.utils.timing import wall_cpu_now
from repro.verify.base import Box, Verifier
from repro.verify.sampling import random_region_points

#: Per-process cache of decoded networks, keyed by parameter fingerprint.
#: Bounded like the parent's payload cache: a CEGIS driver ships one fresh
#: value channel per round, which must not accumulate in worker memory.
_NETWORKS = BoundedLru(16)


def _resolve_network(fingerprint: str, payload: bytes):
    network = _NETWORKS.get(fingerprint)
    if network is None:
        network = decode_network(payload)
        _NETWORKS.put(fingerprint, network)
        if obs.enabled():
            # ``repro_worker_`` prefix: per-process cache behavior depends on
            # the worker count, so determinism tests exclude this namespace.
            obs.counter(
                "repro_worker_network_decodes_total",
                "Network payload decodes into the per-process worker cache.",
            ).inc()
    return network


def encode_region(region) -> tuple:
    """Encode a spec region as a picklable tagged tuple."""
    if isinstance(region, LineSegment):
        return ("segment", region.start, region.end)
    if isinstance(region, Box):
        return ("box", region.lower, region.upper)
    return ("polygon", np.asarray(region, dtype=np.float64))


def decode_region(encoded: tuple):
    """Invert :func:`encode_region`."""
    kind = encoded[0]
    if kind == "segment":
        return LineSegment(encoded[1], encoded[2])
    if kind == "box":
        return Box(encoded[1], encoded[2])
    if kind == "polygon":
        return encoded[1]
    raise EngineError(f"unknown region encoding {kind!r}")


def run_task(task: tuple):
    """Execute one engine task; see the module docstring for the formats."""
    kind = task[0]
    if kind == "obs":
        inner = task[1]
        with obs.capture("engine.worker", task_kind=inner[0]) as captured:
            result = run_task(inner)
        return result, captured.telemetry()
    if obs.enabled():
        return _run_instrumented(task)
    return _run(task)


def _run_instrumented(task: tuple):
    """Run one task with per-task metrics and an ``engine.task`` span."""
    kind = task[0]
    start_wall, _ = wall_cpu_now()
    with obs.span("engine.task", kind=kind):
        result = _run(task)
    end_wall, _ = wall_cpu_now()
    obs.counter(
        "repro_engine_tasks_total",
        "Engine tasks executed, by task kind.",
        labels=("kind",),
    ).inc(kind=kind)
    obs.histogram(
        "repro_engine_task_seconds",
        "Wall-clock seconds per engine task, by task kind.",
        labels=("kind",),
    ).observe(end_wall - start_wall, kind=kind)
    return result


def _run(task: tuple):
    kind = task[0]
    if kind == "line":
        from repro.syrenn.line import transform_line

        _, fingerprint, payload, start, end = task
        network = _resolve_network(fingerprint, payload)
        return transform_line(network, LineSegment(start, end)).ratios
    if kind == "plane":
        from repro.syrenn.plane import transform_plane

        _, fingerprint, payload, vertices = task
        network = _resolve_network(fingerprint, payload)
        partition = transform_plane(network, vertices)
        return [(region.input_vertices, region.plane_vertices) for region in partition.regions]
    if kind == "evaluate":
        _, fingerprint, payload, points, activation_point = task
        network = _resolve_network(fingerprint, payload)
        # The shared helper applies activation_point only to DDNNs, exactly
        # like a serial verifier sweep would.
        return Verifier._evaluate(network, points, activation_point)
    if kind == "evaluate_regions":
        from repro.core.ddnn import DecoupledNetwork

        _, fingerprint, payload, points, activations = task
        network = _resolve_network(fingerprint, payload)
        if isinstance(network, DecoupledNetwork):
            return np.atleast_2d(network.compute(points, activations))
        return np.atleast_2d(network.compute(points))
    if kind == "encode":
        from repro.core.jacobian import encode_constraints_padded
        from repro.core.specs import PointRepairSpec
        from repro.polytope.hpolytope import HPolytope

        _, fingerprint, payload, layer_index, points, constraints, activation_points = task
        network = _resolve_network(fingerprint, payload)
        spec = PointRepairSpec(
            points=points,
            constraints=[HPolytope(a, b) for a, b in constraints],
            activation_points=activation_points,
        )
        return encode_constraints_padded(network, int(layer_index), spec)
    if kind == "sample":
        _, fingerprint, payload, encoded_region, seed, num_samples = task
        network = _resolve_network(fingerprint, payload)
        rng = np.random.default_rng(int(seed))
        points = random_region_points(decode_region(encoded_region), num_samples, rng)
        return points, Verifier._evaluate(network, points)
    raise EngineError(f"unknown engine task kind {kind!r}")
