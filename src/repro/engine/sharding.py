"""Geometry sharding: splitting regions into independent decomposition units.

A SyReNN decomposition is embarrassingly parallel across *regions*, but a
specification can also hand the engine a few very large regions.  Sharding
splits one region into sub-regions whose decompositions are computed
independently (possibly on different worker processes) and merged back
deterministically:

* a :class:`~repro.polytope.segment.LineSegment` splits into ``k`` equal
  sub-segments; merging maps each sub-partition's ratios back into the
  original segment's ratio coordinates and concatenates them in shard
  order, de-duplicating the shared shard boundaries;
* a convex planar polygon splits into fan wedges
  (:func:`repro.polytope.polygon.fan_wedges`); merging concatenates the
  per-wedge linear regions in shard order.

Sharding is a *refinement*: every merged piece lies inside a single linear
region of the network, so exact verification over the merged partition
reaches identical verdicts; shard boundaries may appear as extra
breakpoints.  Crucially the shard layout is a pure function of the geometry
and the shard count — never of the worker count — so any number of workers
produces byte-identical merged output.
"""

from __future__ import annotations

import numpy as np

from repro.polytope.polygon import fan_wedges
from repro.polytope.segment import LineSegment
from repro.syrenn.line import RATIO_TOLERANCE, LinePartition


def shard_bounds(num_shards: int) -> np.ndarray:
    """The ``num_shards + 1`` ratio boundaries of an equal segment split."""
    if num_shards < 1:
        raise ValueError("num_shards must be positive")
    return np.linspace(0.0, 1.0, num_shards + 1)


def shard_segment(segment: LineSegment, num_shards: int) -> list[LineSegment]:
    """Split a segment into equal sub-segments (vectorized subdivision)."""
    return segment.subdivide(num_shards) if num_shards > 1 else [segment]


def shard_polygon(vertices: np.ndarray, num_shards: int) -> list[np.ndarray]:
    """Split a convex polygon into at most ``num_shards`` convex wedges."""
    return fan_wedges(vertices, num_shards) if num_shards > 1 else [np.asarray(vertices)]


def merge_line_partitions(
    segment: LineSegment, shard_ratio_arrays: list[np.ndarray]
) -> LinePartition:
    """Merge per-shard partitions of an equally sharded segment.

    ``shard_ratio_arrays[i]`` holds the local ratios of shard ``i`` of
    :func:`shard_segment`; they are mapped back into the original segment's
    ratio coordinates and concatenated in shard order.  Shared shard
    boundaries (the end of one shard and the start of the next) collapse
    into a single breakpoint.  With one shard this is the identity.
    """
    num_shards = len(shard_ratio_arrays)
    if num_shards == 0:
        raise ValueError("at least one shard partition is required")
    if num_shards == 1:
        return LinePartition(segment=segment, ratios=np.asarray(shard_ratio_arrays[0]))
    bounds = shard_bounds(num_shards)
    global_ratios = np.concatenate(
        [
            bounds[index] + np.asarray(local) * (bounds[index + 1] - bounds[index])
            for index, local in enumerate(shard_ratio_arrays)
        ]
    )
    keep = np.concatenate([[True], np.diff(global_ratios) > RATIO_TOLERANCE])
    return LinePartition(segment=segment, ratios=global_ratios[keep])
