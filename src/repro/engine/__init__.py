"""The parallel SyReNN/repair execution engine.

* :mod:`repro.engine.engine` — :class:`ShardedSyrennEngine`: sharded,
  cached, multiprocessing-parallel decomposition and sweep jobs, with
  ``workers=1`` preserving exact serial behavior.
* :mod:`repro.engine.jobs` — :class:`JobScheduler`: priority-queue batching
  of independent jobs with cancellation and ``TimeBudget`` integration.
* :mod:`repro.engine.cache` — :class:`PartitionCache`: an in-memory LRU in
  front of the shared ``REPRO_CACHE_DIR`` disk tier, keyed by
  ``(network fingerprint, geometry digest)``, with per-tier hit/miss/
  eviction statistics.
* :mod:`repro.engine.sharding` — deterministic geometry sharding and
  merging for lines and planes.
* :mod:`repro.engine.worker` — spawn-safe worker-side task execution.
"""

from repro.engine.cache import BoundedLru, CacheStats, PartitionCache, TierStats
from repro.engine.engine import ShardedSyrennEngine
from repro.engine.jobs import Job, JobScheduler
from repro.engine.sharding import merge_line_partitions, shard_polygon, shard_segment
from repro.syrenn.regions import LinearRegion, geometry_digest

#: The engine type every ``engine=`` parameter across ``repro.verify`` and
#: ``repro.driver`` is annotated with.  An alias rather than a protocol on
#: purpose: :class:`ShardedSyrennEngine` *is* the engine contract
#: (``decompose`` / ``evaluate_batches`` / ``evaluate_regions`` /
#: ``sample_regions`` / ``stats``), and thin wrappers — like the job
#: daemon's lock-serializing proxy — duck-type it.
Engine = ShardedSyrennEngine

__all__ = [
    "BoundedLru",
    "Engine",
    "CacheStats",
    "Job",
    "JobScheduler",
    "LinearRegion",
    "PartitionCache",
    "ShardedSyrennEngine",
    "TierStats",
    "geometry_digest",
    "merge_line_partitions",
    "shard_polygon",
    "shard_segment",
]
