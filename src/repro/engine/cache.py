"""The two-tier partition cache of the execution engine.

SyReNN decompositions are the dominant cost of exact verification, and the
repair driver recomputes them constantly: every round re-verifies the same
regions, and the DDNN's activation channel — the network the decomposition
depends on — never changes under value-channel repair (Theorem 4.6).  The
:class:`PartitionCache` therefore keys decomposition payloads by
``(network fingerprint, geometry digest)`` and stores them in two tiers:

* an in-memory LRU dictionary, bounded by ``max_entries``, for the repeated
  rounds of a single driver run;
* an optional disk tier of ``.npz`` files under ``REPRO_CACHE_DIR`` (the
  same root the model zoo and counterexample checkpoints use), which
  survives process restarts and is shared by concurrent workers.

Payloads are flat ``name → array`` dictionaries (whatever
:func:`repro.utils.serialization.save_arrays` can persist); the engine owns
the encoding of line/plane partitions into payloads.  Hit, miss, and
eviction counters are kept per tier and surfaced through
:meth:`PartitionCache.stats` so benchmark and driver reports can show where
decomposition time actually went.
"""

from __future__ import annotations

import os
import tempfile
import zipfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

import repro.obs as obs
from repro.utils.serialization import default_cache_dir, load_arrays, save_arrays

#: A cache key: (network fingerprint, geometry digest).
CacheKey = tuple[str, str]


def _record_request(tier: str, result: str) -> None:
    """Mirror one tier lookup into the metrics registry (obs-enabled only)."""
    obs.counter(
        "repro_cache_requests_total",
        "Partition-cache lookups by tier and outcome.",
        labels=("tier", "result"),
    ).inc(tier=tier, result=result)


class BoundedLru:
    """A small bounded LRU mapping shared by every engine-side cache.

    One implementation keeps the eviction policy consistent between the
    partition cache's memory tier, the parent's encoded-network payloads,
    and the worker-side decoded-network cache.
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def get(self, key):
        """The stored value (refreshed as most-recently-used), or ``None``."""
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def put(self, key, value) -> int:
        """Insert/refresh an entry; returns how many entries were evicted."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        evictions = 0
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            evictions += 1
        return evictions

    def keys(self) -> list:
        """Keys, least-recently-used first."""
        return list(self._entries.keys())

    def clear(self) -> None:
        self._entries.clear()


@dataclass
class TierStats:
    """Hit/miss/eviction counters for one cache tier."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a JSON-ready dictionary."""
        return dict(self.__dict__)


@dataclass
class CacheStats:
    """Per-tier counters of a :class:`PartitionCache`."""

    memory: TierStats = field(default_factory=TierStats)
    disk: TierStats = field(default_factory=TierStats)

    @property
    def hits(self) -> int:
        """Total hits across both tiers."""
        return self.memory.hits + self.disk.hits

    @property
    def misses(self) -> int:
        """Full misses (the key was in neither tier)."""
        return self.disk.misses

    def as_dict(self) -> dict:
        """The per-tier counters as a JSON-ready dictionary."""
        return {"memory": self.memory.as_dict(), "disk": self.disk.as_dict()}


class PartitionCache:
    """An in-memory LRU in front of an optional ``REPRO_CACHE_DIR`` disk tier.

    Parameters
    ----------
    max_entries:
        Capacity of the memory tier; the least-recently-used entry is
        evicted when a put would exceed it.  Entries are small (a few
        vertex arrays), and a capacity below the working set degrades to
        disk-tier speed under LRU scan patterns, so the default is sized
        for specs with a few thousand linear regions.
    directory:
        Root of the disk tier.  Defaults to
        ``<REPRO_CACHE_DIR>/partitions``; pass ``None`` with
        ``disk=False`` to run memory-only.
    disk:
        Whether to read/write the disk tier at all.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        directory: str | Path | None = None,
        *,
        disk: bool = True,
    ) -> None:
        self.max_entries = int(max_entries)
        self.disk = bool(disk)
        self.directory = (
            Path(directory) if directory is not None else default_cache_dir() / "partitions"
        )
        self._memory: BoundedLru = BoundedLru(max_entries)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._memory or (self.disk and self._disk_path(key).exists())

    def _disk_path(self, key: CacheKey) -> Path:
        network_hash, geometry_hash = key
        return self.directory / f"{network_hash}__{geometry_hash}.npz"

    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> dict[str, np.ndarray] | None:
        """Look up a payload, promoting disk hits into the memory tier."""
        track = obs.enabled()
        payload = self._memory.get(key)
        if payload is not None:
            self.stats.memory.hits += 1
            if track:
                _record_request("memory", "hit")
            return payload
        self.stats.memory.misses += 1
        if track:
            _record_request("memory", "miss")
        if not self.disk:
            self.stats.disk.misses += 1
            if track:
                _record_request("disk", "miss")
            return None
        path = self._disk_path(key)
        if not path.exists():
            self.stats.disk.misses += 1
            if track:
                _record_request("disk", "miss")
            return None
        try:
            payload = load_arrays(path)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile, EOFError):
            # A corrupt or torn write: treat as a miss and drop the file so
            # the next put can replace it instead of crashing forever.
            path.unlink(missing_ok=True)
            self.stats.disk.misses += 1
            if track:
                _record_request("disk", "miss")
            return None
        self.stats.disk.hits += 1
        if track:
            _record_request("disk", "hit")
        self._insert_memory(key, payload)
        return payload

    def put(self, key: CacheKey, payload: dict[str, np.ndarray]) -> None:
        """Store a payload in both tiers.

        The disk write goes through a temporary file plus an atomic rename,
        so concurrent readers in other processes never observe a torn file.
        """
        self._insert_memory(key, payload)
        self.stats.memory.puts += 1
        if obs.enabled():
            obs.counter(
                "repro_cache_puts_total",
                "Partition-cache payload stores by tier.",
                labels=("tier",),
            ).inc(tier="memory")
        if self.disk:
            path = self._disk_path(key)
            if not path.exists():
                self.directory.mkdir(parents=True, exist_ok=True)
                # The suffix must stay ".npz" or np.savez would append one.
                handle, temp_name = tempfile.mkstemp(
                    dir=self.directory, suffix=".tmp.npz"
                )
                os.close(handle)
                try:
                    save_arrays(Path(temp_name), payload)
                    os.replace(temp_name, path)
                finally:
                    if os.path.exists(temp_name):
                        os.unlink(temp_name)
                self.stats.disk.puts += 1
                if obs.enabled():
                    obs.counter(
                        "repro_cache_puts_total",
                        "Partition-cache payload stores by tier.",
                        labels=("tier",),
                    ).inc(tier="disk")

    def _insert_memory(self, key: CacheKey, payload: dict[str, np.ndarray]) -> None:
        evicted = self._memory.put(key, payload)
        self.stats.memory.evictions += evicted
        if evicted and obs.enabled():
            obs.counter(
                "repro_cache_evictions_total",
                "Memory-tier LRU evictions from the partition cache.",
                labels=("tier",),
            ).inc(evicted, tier="memory")

    # ------------------------------------------------------------------
    def memory_keys(self) -> list[CacheKey]:
        """Keys of the memory tier, least-recently-used first."""
        return self._memory.keys()

    def clear_memory(self) -> None:
        """Drop the memory tier (the disk tier is left untouched)."""
        self._memory.clear()

    def as_dict(self) -> dict:
        """A JSON-ready summary (tier counters plus configuration)."""
        return {
            "max_entries": self.max_entries,
            "memory_entries": len(self._memory),
            "disk_enabled": self.disk,
            **self.stats.as_dict(),
        }
