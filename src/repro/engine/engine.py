"""The sharded, parallel SyReNN execution engine.

:class:`ShardedSyrennEngine` turns the two dominant costs of the pipeline —
exact SyReNN decomposition and per-region network sweeps — into schedulable
jobs that run across a ``multiprocessing`` worker pool:

1. **Sharding** — each input line/plane splits into geometry shards
   (:mod:`repro.engine.sharding`); shard layout depends only on the geometry
   and ``shards_per_region``, never on the worker count.
2. **Scheduling** — shards and sweeps become tasks on a
   :class:`~repro.engine.jobs.JobScheduler`, dispatched in priority order in
   batches the pool runs concurrently.
3. **Merging** — per-shard results merge deterministically in input order,
   so any worker count (including ``workers=1``, which runs every task
   in-process) produces byte-identical partitions, verdicts, and repairs.
4. **Caching** — merged decomposition payloads live in a two-tier
   :class:`~repro.engine.cache.PartitionCache` keyed by
   ``(network fingerprint, geometry digest)``; the disk tier is shared
   across processes.

Workers are started with the ``spawn`` method by default: they inherit
nothing, so networks cross the boundary as
:func:`repro.utils.serialization.encode_network` payloads and every task is
a plain picklable tuple (:mod:`repro.engine.worker`).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs
from repro.engine.cache import BoundedLru, PartitionCache
from repro.engine.jobs import JobScheduler, chunk_spans
from repro.engine.sharding import merge_line_partitions, shard_polygon, shard_segment
from repro.engine.worker import encode_region, run_task
from repro.exceptions import EngineError
from repro.polytope.segment import LineSegment
from repro.syrenn.line import LinePartition
from repro.syrenn.plane import PlanePartition, PlaneRegion
from repro.syrenn.regions import LinearRegion, geometry_digest
from repro.utils.serialization import encode_network, network_fingerprint
from repro.utils.timing import TimeBudget

#: How many encoded network payloads the engine keeps around (a CEGIS driver
#: produces one fresh value channel per round; payloads are small).
MAX_PAYLOADS = 16


class ShardedSyrennEngine:
    """A parallel execution engine for decomposition and verification jobs.

    Parameters
    ----------
    workers:
        Worker processes.  ``1`` (the default) executes every task inline in
        the calling process — exactly today's serial behavior, which is what
        the differential tests pin against.  ``None`` uses the machine's CPU
        count.
    shards_per_region:
        Geometry shards per line/plane.  ``1`` keeps each region a single
        task (regions already parallelize across the pool); larger values
        additionally split each region, which helps few-huge-region specs.
        Sharding refines the partition (shard boundaries may appear as extra
        breakpoints) but never changes verification verdicts, and the merged
        output is independent of the worker count.
    cache:
        ``True`` (default) builds a :class:`PartitionCache` with the default
        ``REPRO_CACHE_DIR`` disk tier; ``False``/``None`` disables caching;
        an explicit :class:`PartitionCache` is used as given.
    start_method:
        ``multiprocessing`` start method for the pool (default ``"spawn"``:
        safest, no inherited state).
    """

    def __init__(
        self,
        workers: int | None = 1,
        *,
        shards_per_region: int = 1,
        cache: PartitionCache | bool | None = True,
        start_method: str = "spawn",
        scheduler_batch_size: int | None = None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise EngineError("workers must be a positive integer (or None for cpu_count)")
        if shards_per_region < 1:
            raise EngineError("shards_per_region must be positive")
        self.workers = int(workers)
        self.shards_per_region = int(shards_per_region)
        self.start_method = start_method
        if cache is True:
            self.cache: PartitionCache | None = PartitionCache()
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        self.scheduler = JobScheduler(
            executor=self._execute_batch, batch_size=scheduler_batch_size
        )
        self._pool = None
        self._payloads = BoundedLru(MAX_PAYLOADS)

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            context = multiprocessing.get_context(self.start_method)
            self._pool = context.Pool(processes=self.workers)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (a later dispatch restarts it)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ShardedSyrennEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute_batch(self, tasks: list) -> list:
        """The scheduler's executor: inline for one worker, pooled otherwise."""
        if obs.enabled():
            # Counted for every batch, inline or pooled, so the series is
            # identical at any worker count (scheduler batching is
            # worker-independent).
            obs.counter(
                "repro_engine_batches_total",
                "Task batches executed by the engine.",
            ).inc()
        if self.workers == 1 or len(tasks) == 1:
            # Inline tasks record telemetry straight into the process
            # registry (run_task handles the obs.enabled() branch itself).
            return [run_task(task) for task in tasks]
        # Each chunk is pickled as one object, and every task in it holds a
        # reference to the *same* payload bytes (see _payload), so pickle's
        # memo ships the network once per chunk — not once per task.
        chunksize = max(1, len(tasks) // (4 * self.workers))
        if not obs.enabled():
            return self._ensure_pool().map(run_task, tasks, chunksize=chunksize)
        # Telemetry-wrapped dispatch: each worker runs its task under a
        # fresh capture and ships back (result, telemetry).  The wrappers
        # reference the original task tuples, so the pickle memo still
        # ships each network payload once per chunk.
        with obs.span("engine.batch", tasks=len(tasks), workers=self.workers):
            wrapped = [("obs", task) for task in tasks]
            raw = self._ensure_pool().map(run_task, wrapped, chunksize=chunksize)
            results = []
            # Absorbing in task (input) order is what makes the merged
            # registry and span tree independent of worker scheduling.
            for result, telemetry in raw:
                obs.absorb(telemetry)
                results.append(result)
        return results

    def _payload(self, network) -> tuple[str, bytes]:
        # Returning the cached bytes object (not a copy) matters: tasks built
        # from it share identity, which is what lets a pickled chunk carry
        # the network payload once for all of its tasks.
        fingerprint = network_fingerprint(network)
        payload = self._payloads.get(fingerprint)
        if payload is None:
            payload = encode_network(network)
            self._payloads.put(fingerprint, payload)
        return fingerprint, payload

    def _gather(self, tasks: list, budget: TimeBudget | None = None) -> list:
        jobs = self.scheduler.submit_many(tasks)
        return self.scheduler.gather(jobs, budget=budget)

    # ------------------------------------------------------------------
    # Decomposition API
    # ------------------------------------------------------------------
    def transform_line(self, network, segment: LineSegment) -> LinePartition:
        """``LinRegions(network, segment)``, sharded/cached/parallel."""
        return self.transform_lines(network, [segment])[0]

    def transform_lines(
        self,
        network,
        segments: list[LineSegment],
        budget: TimeBudget | None = None,
        use_cache: bool = True,
    ) -> list[LinePartition]:
        """Decompose many segments concurrently, results in input order."""
        plan = self._plan_lines(network, segments, use_cache)
        return self._finish_lines(plan, self._gather(plan.tasks, budget))

    def transform_plane(self, network, vertices: np.ndarray) -> PlanePartition:
        """``LinRegions(network, polygon)``, sharded/cached/parallel."""
        return self.transform_planes(network, [vertices])[0]

    def transform_planes(
        self,
        network,
        polygons: list[np.ndarray],
        budget: TimeBudget | None = None,
        use_cache: bool = True,
    ) -> list[PlanePartition]:
        """Decompose many planar polygons concurrently, results in input order."""
        plan = self._plan_planes(network, polygons, use_cache)
        return self._finish_planes(plan, self._gather(plan.tasks, budget))

    def _plan_lines(self, network, segments: list[LineSegment], use_cache: bool) -> "_Plan":
        """Cache lookups + shard tasks for segments, without dispatching."""
        fingerprint, payload = self._payload(network)
        cache = self.cache if use_cache else None
        plan = _Plan(cache=cache, partitions=[None] * len(segments))
        for index, segment in enumerate(segments):
            key = (fingerprint, geometry_digest(segment, self.shards_per_region))
            cached = cache.get(key) if cache is not None else None
            if cached is not None:
                plan.partitions[index] = LinePartition(
                    segment=segment, ratios=cached["ratios"]
                )
                continue
            plan.pending.append((index, segment, key, self.shards_per_region))
            for shard in shard_segment(segment, self.shards_per_region):
                plan.tasks.append(("line", fingerprint, payload, shard.start, shard.end))
        return plan

    def _finish_lines(self, plan: "_Plan", results: list) -> list[LinePartition]:
        """Merge per-shard ratios into partitions and populate the cache."""
        cursor = 0
        for index, segment, key, num_shards in plan.pending:
            shard_ratios = results[cursor : cursor + num_shards]
            cursor += num_shards
            partition = merge_line_partitions(segment, shard_ratios)
            plan.partitions[index] = partition
            if plan.cache is not None:
                plan.cache.put(key, {"ratios": partition.ratios})
        return plan.partitions

    def _plan_planes(self, network, polygons: list[np.ndarray], use_cache: bool) -> "_Plan":
        """Cache lookups + wedge tasks for polygons, without dispatching."""
        fingerprint, payload = self._payload(network)
        cache = self.cache if use_cache else None
        plan = _Plan(cache=cache, partitions=[None] * len(polygons))
        for index, vertices in enumerate(polygons):
            vertices = np.asarray(vertices, dtype=np.float64)
            key = (fingerprint, geometry_digest(vertices, self.shards_per_region))
            cached = cache.get(key) if cache is not None else None
            if cached is not None:
                plan.partitions[index] = _decode_plane_payload(cached)
                continue
            wedges = shard_polygon(vertices, self.shards_per_region)
            plan.pending.append((index, None, key, len(wedges)))
            plan.tasks.extend(("plane", fingerprint, payload, wedge) for wedge in wedges)
        return plan

    def _finish_planes(self, plan: "_Plan", results: list) -> list[PlanePartition]:
        """Concatenate per-wedge regions into partitions and populate the cache."""
        cursor = 0
        for index, _, key, num_wedges in plan.pending:
            pieces: list[tuple[np.ndarray, np.ndarray]] = []
            for shard_result in results[cursor : cursor + num_wedges]:
                pieces.extend(shard_result)
            cursor += num_wedges
            partition = PlanePartition(
                regions=[
                    PlaneRegion(input_vertices=inputs, plane_vertices=plane)
                    for inputs, plane in pieces
                ]
            )
            plan.partitions[index] = partition
            if plan.cache is not None:
                plan.cache.put(key, _encode_plane_payload(partition))
        return plan.partitions

    def decompose(
        self,
        network,
        regions: list[LineSegment | np.ndarray],
        budget: TimeBudget | None = None,
        use_cache: bool = True,
    ) -> list[list[LinearRegion]]:
        """Linear regions of many (normalized) spec regions, in input order.

        ``regions`` entries are what the SyReNN substrate can decompose: a
        :class:`LineSegment`, a ``(k, n)`` polygon vertex array, or a 1-D
        point array (its own linear region).  This is the batched entry
        point :class:`~repro.verify.exact.SyrennVerifier` uses;
        ``use_cache=False`` bypasses the partition cache for this call
        (honoring a verifier's ``cache_partitions=False``) without touching
        what other consumers have cached.
        """
        segment_indices, polygon_indices, point_indices = [], [], []
        for index, region in enumerate(regions):
            if isinstance(region, LineSegment):
                segment_indices.append(index)
            elif np.asarray(region).ndim == 2:
                polygon_indices.append(index)
            else:
                point_indices.append(index)
        # Plan both kinds first, then dispatch them as one batch so line and
        # plane shards overlap across the pool instead of running in phases.
        line_plan = self._plan_lines(
            network, [regions[i] for i in segment_indices], use_cache
        )
        plane_plan = self._plan_planes(
            network, [regions[i] for i in polygon_indices], use_cache
        )
        results = self._gather(line_plan.tasks + plane_plan.tasks, budget)
        line_partitions = self._finish_lines(line_plan, results[: len(line_plan.tasks)])
        plane_partitions = self._finish_planes(plane_plan, results[len(line_plan.tasks) :])

        decomposed: list[list[LinearRegion]] = [[] for _ in regions]
        for i, partition in zip(segment_indices, line_partitions):
            decomposed[i] = [
                LinearRegion(vertices=piece.vertices, interior=piece.interior_point)
                for piece in partition.regions
            ]
        for i, partition in zip(polygon_indices, plane_partitions):
            decomposed[i] = [
                LinearRegion(vertices=piece.input_vertices, interior=piece.interior_point)
                for piece in partition.regions
            ]
        for i in point_indices:
            point = np.asarray(regions[i], dtype=np.float64)
            decomposed[i] = [LinearRegion(vertices=point[None, :], interior=point)]
        return decomposed

    # ------------------------------------------------------------------
    # Sweep API (sampling verifiers)
    # ------------------------------------------------------------------
    def evaluate_batches(
        self,
        network,
        batches: list[np.ndarray],
        activation_points: list[np.ndarray | None] | None = None,
        budget: TimeBudget | None = None,
    ) -> list[np.ndarray]:
        """Network outputs for many point batches, one job per batch."""
        fingerprint, payload = self._payload(network)
        if activation_points is None:
            activation_points = [None] * len(batches)
        if len(activation_points) != len(batches):
            raise EngineError("one activation point (or None) per batch is required")
        tasks = [
            ("evaluate", fingerprint, payload, batch, activation)
            for batch, activation in zip(batches, activation_points)
        ]
        return self._gather(tasks, budget)

    def evaluate_regions(
        self,
        network,
        vertices: np.ndarray,
        activations: np.ndarray,
        *,
        chunk_rows: int = 1024,
        budget: TimeBudget | None = None,
    ) -> np.ndarray:
        """Outputs for stacked linear-region vertices with per-row activations.

        This is the batched **value-only re-verification job**: when a
        repair round changed only the value channel, the exact verifier's
        cached decomposition is still valid, and re-verification reduces to
        pushing every cached vertex (paired with its linear region's
        interior point as the pinned activation) through the updated
        network.  ``vertices`` and ``activations`` are ``(k, n)`` stacks
        covering every linear region of the spec; the rows are split into
        ``chunk_rows``-sized tasks so the pool can work on one verification
        pass concurrently, and the merged ``(k, m)`` output preserves row
        order regardless of worker count.
        """
        vertices = np.atleast_2d(np.asarray(vertices, dtype=np.float64))
        activations = np.atleast_2d(np.asarray(activations, dtype=np.float64))
        if activations.shape != vertices.shape:
            raise EngineError("one activation row per vertex row is required")
        fingerprint, payload = self._payload(network)
        tasks = [
            ("evaluate_regions", fingerprint, payload, vertices[start:stop], activations[start:stop])
            for start, stop in chunk_spans(vertices.shape[0], chunk_rows)
        ]
        results = self._gather(tasks, budget)
        if not results:
            return np.zeros((0, network.output_size))
        return np.vstack(results)

    def sample_regions(
        self,
        network,
        regions: list,
        seeds: list[int],
        num_samples: int,
        budget: TimeBudget | None = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Worker-side sampling + evaluation: ``(points, outputs)`` per region.

        Each region draws from its own derived ``seeds[i]``, so the result
        is a pure function of the seeds — identical at any worker count.
        """
        if len(seeds) != len(regions):
            raise EngineError("one seed per region is required")
        fingerprint, payload = self._payload(network)
        tasks = [
            ("sample", fingerprint, payload, encode_region(region), seed, num_samples)
            for region, seed in zip(regions, seeds)
        ]
        return self._gather(tasks, budget)

    def encode_point_batches(
        self,
        ddnn,
        layer_index: int,
        specs: list,
        budget: TimeBudget | None = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Repair constraint rows ``(lhs, rhs)`` for many point batches.

        One ``("encode", …)`` task per :class:`~repro.core.specs.PointRepairSpec`
        batch, executed with the shared partition-invariant encoder
        worker-side and merged in input order — the chunk-production shard
        of the out-of-core repair pipeline.  Workers run the exact same
        NumPy code on the exact same arrays as an inline encode, so results
        are byte-identical at any worker count.
        """
        fingerprint, payload = self._payload(ddnn)
        tasks = [
            (
                "encode",
                fingerprint,
                payload,
                int(layer_index),
                spec.points,
                [(constraint.a, constraint.b) for constraint in spec.constraints],
                spec.activation_points,
            )
            for spec in specs
        ]
        return self._gather(tasks, budget)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """A JSON-ready snapshot of scheduler and cache counters."""
        return {
            "workers": self.workers,
            "shards_per_region": self.shards_per_region,
            "start_method": self.start_method,
            "jobs_executed": self.scheduler.jobs_executed,
            "jobs_cancelled": self.scheduler.jobs_cancelled,
            "batches_dispatched": self.scheduler.batches_dispatched,
            "cache": self.cache.as_dict() if self.cache is not None else None,
        }


@dataclass
class _Plan:
    """An in-flight decomposition batch: cache hits filled, misses as tasks.

    ``pending`` rows are ``(output index, segment-or-None, cache key,
    task count)``; the plan's tasks occupy one contiguous run of whatever
    batch they are submitted in, so plans for different geometry kinds can
    be dispatched together and finished from their slice of the results.
    """

    cache: PartitionCache | None
    partitions: list
    pending: list = field(default_factory=list)
    tasks: list = field(default_factory=list)


def _encode_plane_payload(partition: PlanePartition) -> dict[str, np.ndarray]:
    payload: dict[str, np.ndarray] = {"count": np.array([partition.num_regions])}
    for index, region in enumerate(partition.regions):
        payload[f"input_{index}"] = region.input_vertices
        payload[f"plane_{index}"] = region.plane_vertices
    return payload


def _decode_plane_payload(payload: dict[str, np.ndarray]) -> PlanePartition:
    count = int(payload["count"][0])
    return PlanePartition(
        regions=[
            PlaneRegion(
                input_vertices=payload[f"input_{index}"],
                plane_vertices=payload[f"plane_{index}"],
            )
            for index in range(count)
        ]
    )
