"""Timing utilities for the repair algorithms and experiment harness.

The paper reports a per-repair breakdown of where time is spent (computing
LinRegions, computing Jacobians, solving the LP, and "other"); Figure 7(b)
plots that split per repaired layer.  :class:`Stopwatch` accumulates named
phases and :class:`TimeBudget` lets long sweeps (benchmarks) stop early.
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class Stopwatch:
    """Accumulates wall-clock time per named phase.

    Usage::

        watch = Stopwatch()
        with watch.phase("jacobian"):
            ...
        with watch.phase("lp"):
            ...
        watch.totals()   # {"jacobian": 0.12, "lp": 1.3}
    """

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}
        self._started = time.perf_counter()

    @contextmanager
    def phase(self, name: str):
        """Context manager that adds the elapsed time to phase ``name``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        """Manually add ``seconds`` to phase ``name``."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self._totals[name] = self._totals.get(name, 0.0) + seconds

    def total(self, name: str) -> float:
        """Total seconds recorded for phase ``name`` (0.0 if never used)."""
        return self._totals.get(name, 0.0)

    def totals(self) -> dict[str, float]:
        """A copy of the per-phase totals."""
        return dict(self._totals)

    def elapsed(self) -> float:
        """Seconds since the stopwatch was created."""
        return time.perf_counter() - self._started

    def other(self) -> float:
        """Elapsed time not attributed to any named phase."""
        return max(0.0, self.elapsed() - sum(self._totals.values()))


class TimeBudget:
    """A soft deadline used by sweeps to stop launching new work."""

    def __init__(self, seconds: float | None) -> None:
        self._seconds = seconds
        self._start = time.perf_counter()

    def exhausted(self) -> bool:
        """True once the budget has elapsed (never true for ``None``)."""
        if self._seconds is None:
            return False
        return (time.perf_counter() - self._start) >= self._seconds

    def remaining(self) -> float | None:
        """Seconds remaining, or ``None`` for an unlimited budget."""
        if self._seconds is None:
            return None
        return max(0.0, self._seconds - (time.perf_counter() - self._start))
