"""Timing utilities for the repair algorithms and experiment harness.

The paper reports a per-repair breakdown of where time is spent (computing
LinRegions, computing Jacobians, solving the LP, and "other"); Figure 7(b)
plots that split per repaired layer.  :class:`Stopwatch` accumulates named
phases and :class:`TimeBudget` lets long sweeps (benchmarks) stop early.
"""

from __future__ import annotations

import time
from contextlib import contextmanager


def wall_cpu_now() -> tuple[float, float]:
    """The pair every duration in this codebase is computed from.

    ``perf_counter`` for wall time and ``process_time`` for CPU time —
    both monotonic, so differences are always valid durations.
    ``time.time()`` is for timestamps only and must never be subtracted.
    """
    return time.perf_counter(), time.process_time()


class Stopwatch:
    """Accumulates wall-clock and CPU time per named phase.

    Usage::

        watch = Stopwatch()
        with watch.phase("jacobian"):
            ...
        with watch.phase("lp"):
            ...
        watch.totals()       # {"jacobian": 0.12, "lp": 1.3}
        watch.cpu_totals()   # {"jacobian": 0.11, "lp": 1.2}
    """

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}
        self._cpu_totals: dict[str, float] = {}
        self._started = time.perf_counter()

    @contextmanager
    def phase(self, name: str):
        """Context manager that adds the elapsed wall/CPU time to phase ``name``."""
        start_wall, start_cpu = wall_cpu_now()
        try:
            yield self
        finally:
            end_wall, end_cpu = wall_cpu_now()
            self._totals[name] = self._totals.get(name, 0.0) + (end_wall - start_wall)
            self._cpu_totals[name] = self._cpu_totals.get(name, 0.0) + (end_cpu - start_cpu)

    def add(self, name: str, seconds: float, cpu_seconds: float = 0.0) -> None:
        """Manually add wall (and optionally CPU) ``seconds`` to phase ``name``."""
        if seconds < 0 or cpu_seconds < 0:
            raise ValueError("seconds must be non-negative")
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        if cpu_seconds:
            self._cpu_totals[name] = self._cpu_totals.get(name, 0.0) + cpu_seconds

    def total(self, name: str) -> float:
        """Total seconds recorded for phase ``name`` (0.0 if never used)."""
        return self._totals.get(name, 0.0)

    def totals(self) -> dict[str, float]:
        """A copy of the per-phase wall-clock totals."""
        return dict(self._totals)

    def cpu_total(self, name: str) -> float:
        """Total CPU seconds recorded for phase ``name`` (0.0 if never used)."""
        return self._cpu_totals.get(name, 0.0)

    def cpu_totals(self) -> dict[str, float]:
        """A copy of the per-phase CPU-time totals."""
        return dict(self._cpu_totals)

    def elapsed(self) -> float:
        """Seconds since the stopwatch was created."""
        return time.perf_counter() - self._started

    def other(self) -> float:
        """Elapsed time not attributed to any named phase."""
        return max(0.0, self.elapsed() - sum(self._totals.values()))


class TimeBudget:
    """A soft deadline used by sweeps to stop launching new work."""

    def __init__(self, seconds: float | None) -> None:
        self._seconds = seconds
        self._start = time.perf_counter()

    def exhausted(self) -> bool:
        """True once the budget has elapsed (never true for ``None``)."""
        if self._seconds is None:
            return False
        return (time.perf_counter() - self._start) >= self._seconds

    def remaining(self) -> float | None:
        """Seconds remaining, or ``None`` for an unlimited budget."""
        if self._seconds is None:
            return None
        return max(0.0, self._seconds - (time.perf_counter() - self._start))
