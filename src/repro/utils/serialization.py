"""Serialization helpers for caching trained models between runs.

Training the buggy networks used by the experiments takes a few seconds to a
couple of minutes.  The model zoo (``repro.models.zoo``) caches trained
parameters under a directory of ``.npz`` files keyed by a configuration hash
so that repeated benchmark runs do not retrain.

The module also provides the spawn-safe network encoding used by the
parallel execution engine (``repro.engine``): worker processes started with
the ``spawn`` method share no memory with the parent, so networks cross the
process boundary as self-contained byte payloads keyed by a parameter
fingerprint.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path

import numpy as np


def config_digest(config: dict) -> str:
    """Return a stable short hash for a JSON-serializable configuration."""
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def default_cache_dir() -> Path:
    """Directory used for cached artifacts (override with REPRO_CACHE_DIR)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-prdnn"


def encode_network(network) -> bytes:
    """Encode a network (or DDNN) as a self-contained byte payload.

    Every layer and network class lives at module level and stores only
    plain NumPy arrays, so the pickle payload can be decoded by a freshly
    ``spawn``-ed worker process that imported ``repro`` on its own.
    """
    return pickle.dumps(network, protocol=pickle.HIGHEST_PROTOCOL)


def decode_network(payload: bytes):
    """Decode a network encoded by :func:`encode_network`."""
    return pickle.loads(payload)


def network_fingerprint(network) -> str:
    """A short digest of a network's architecture and parameters.

    Two identical networks (e.g. the same network in two different
    processes) produce the same fingerprint, which is what lets the disk
    tier of the partition cache be shared across processes.  The digest
    covers every layer's class and shape — not just the parameterized
    layers' weights — so networks that differ only in parameter-free layers
    (a swapped activation, say) never collide.  Decoupled networks hash
    both channels.
    """
    digest = hashlib.sha256()
    if hasattr(network, "activation") and hasattr(network, "value"):
        channels = (("activation", network.activation), ("value", network.value))
    else:
        channels = (("network", network),)
    for name, channel in channels:
        digest.update(name.encode())
        for layer in channel.layers:
            digest.update(
                f"{type(layer).__name__}:{layer.input_size}:{layer.output_size}".encode()
            )
            # Every layer stores its state as instance attributes: parameter
            # arrays (weights, kernels, biases), array state of static
            # layers (a NormalizeLayer's means/stds), and scalar
            # configuration (a LeakyReLU slope, pooling strides).  Hashing
            # them all covers differences the parameter vectors alone miss.
            for attr, value in sorted(vars(layer).items()):
                if isinstance(value, (bool, int, float, str, tuple)):
                    digest.update(f":{attr}={value}".encode())
                elif isinstance(value, np.ndarray):
                    digest.update(f":{attr}:".encode())
                    digest.update(np.ascontiguousarray(value).tobytes())
            digest.update(b";")
    return digest.hexdigest()[:16]


def save_arrays(path: Path, arrays: dict[str, np.ndarray]) -> None:
    """Save a name→array mapping as a compressed ``.npz`` file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)


def save_arrays_atomic(path: Path, arrays: dict[str, np.ndarray]) -> None:
    """:func:`save_arrays`, but crash-safe.

    The archive is fully written to a sibling temp file and moved into place
    with :func:`os.replace` (atomic within a filesystem), so a reader —
    e.g. the service's kill-resume path loading a driver checkpoint — can
    never observe a torn file: it sees either the old complete archive or
    the new complete archive.  Writing through an open file object keeps
    ``np.savez_compressed`` from appending ``.npz`` to the temp name.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as stream:
        np.savez_compressed(stream, **arrays)
    os.replace(tmp, path)


def load_arrays(path: Path) -> dict[str, np.ndarray]:
    """Load a name→array mapping saved by :func:`save_arrays`.

    The file handle is opened here rather than by ``np.load`` so a corrupt
    (torn-write) file cannot leak an unclosed descriptor when ``np.load``
    raises before constructing its context manager.
    """
    with open(path, "rb") as stream:
        with np.load(stream) as data:
            return {key: np.array(data[key]) for key in data.files}
