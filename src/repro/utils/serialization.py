"""Serialization helpers for caching trained models between runs.

Training the buggy networks used by the experiments takes a few seconds to a
couple of minutes.  The model zoo (``repro.models.zoo``) caches trained
parameters under a directory of ``.npz`` files keyed by a configuration hash
so that repeated benchmark runs do not retrain.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np


def config_digest(config: dict) -> str:
    """Return a stable short hash for a JSON-serializable configuration."""
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def default_cache_dir() -> Path:
    """Directory used for cached artifacts (override with REPRO_CACHE_DIR)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-prdnn"


def save_arrays(path: Path, arrays: dict[str, np.ndarray]) -> None:
    """Save a name→array mapping as a compressed ``.npz`` file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)


def load_arrays(path: Path) -> dict[str, np.ndarray]:
    """Load a name→array mapping saved by :func:`save_arrays`."""
    with np.load(path) as data:
        return {key: np.array(data[key]) for key in data.files}
