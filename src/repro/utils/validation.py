"""Input-validation helpers shared across the package.

These helpers normalize user-provided arrays to ``float64`` NumPy arrays and
raise :class:`repro.exceptions.ShapeError` with informative messages when the
shape is wrong.  Keeping validation centralized keeps the numerical code free
of repetitive checks.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError


def check_vector(value, name: str = "vector", size: int | None = None) -> np.ndarray:
    """Return ``value`` as a 1-D float64 array, optionally of a fixed size."""
    array = np.asarray(value, dtype=np.float64)
    if array.ndim != 1:
        raise ShapeError(f"{name} must be 1-D, got shape {array.shape}")
    if size is not None and array.shape[0] != size:
        raise ShapeError(f"{name} must have length {size}, got {array.shape[0]}")
    return array


def check_matrix(
    value,
    name: str = "matrix",
    rows: int | None = None,
    cols: int | None = None,
) -> np.ndarray:
    """Return ``value`` as a 2-D float64 array, optionally of fixed shape."""
    array = np.asarray(value, dtype=np.float64)
    if array.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got shape {array.shape}")
    if rows is not None and array.shape[0] != rows:
        raise ShapeError(f"{name} must have {rows} rows, got {array.shape[0]}")
    if cols is not None and array.shape[1] != cols:
        raise ShapeError(f"{name} must have {cols} columns, got {array.shape[1]}")
    return array


def check_finite(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Raise if ``array`` contains NaN or infinity; otherwise return it."""
    if not np.all(np.isfinite(array)):
        raise ShapeError(f"{name} contains non-finite entries")
    return array


def check_positive_int(value, name: str = "value") -> int:
    """Return ``value`` as a positive ``int`` or raise ``ValueError``."""
    as_int = int(value)
    if as_int != value or as_int <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return as_int


def check_probability(value: float, name: str = "probability") -> float:
    """Return ``value`` if it lies in [0, 1], otherwise raise ``ValueError``."""
    as_float = float(value)
    if not 0.0 <= as_float <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return as_float
