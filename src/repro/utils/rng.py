"""Random-number-generator helpers.

All stochastic code in the package accepts either ``None``, an integer seed,
or a ``numpy.random.Generator`` and normalizes it through :func:`ensure_rng`
so experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np


def ensure_rng(seed_or_rng: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for the given seed or generator.

    ``None`` produces a fresh, OS-seeded generator; an ``int`` produces a
    deterministic generator; an existing generator is returned unchanged.
    """
    if seed_or_rng is None:
        return np.random.default_rng()
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if isinstance(seed_or_rng, (int, np.integer)):
        return np.random.default_rng(int(seed_or_rng))
    raise TypeError(
        f"expected None, int, or numpy Generator, got {type(seed_or_rng).__name__}"
    )


def spawn_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators."""
    if count < 0:
        raise ValueError("count must be non-negative")
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def derive_seeds(root_seed: int, count: int, stream: int = 0) -> list[int]:
    """Deterministic independent child seeds for parallel workers.

    Unlike :func:`spawn_rngs`, the children are a pure function of
    ``(root_seed, stream, index)`` — not of any generator state — so a
    sampling task dispatched to worker processes draws the same points no
    matter how many workers there are or which worker runs it.  ``stream``
    separates successive derivations from the same root (e.g. the repeated
    verification rounds of a repair driver).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    sequence = np.random.SeedSequence((int(root_seed), int(stream)))
    return [int(child.generate_state(1, np.uint64)[0]) for child in sequence.spawn(count)]
