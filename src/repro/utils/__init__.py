"""Small shared utilities: RNG handling, validation, timing, serialization."""

from repro.utils.rng import ensure_rng
from repro.utils.timing import Stopwatch, TimeBudget
from repro.utils.validation import (
    check_matrix,
    check_vector,
    check_finite,
    check_positive_int,
)

__all__ = [
    "ensure_rng",
    "Stopwatch",
    "TimeBudget",
    "check_matrix",
    "check_vector",
    "check_finite",
    "check_positive_int",
]
