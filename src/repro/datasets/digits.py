"""Procedurally rendered digit images — the MNIST substitute for Task 2.

Each digit class 0–9 is drawn as a set of strokes on a seven-segment-style
template over a ``side × side`` grid, then randomly translated, scaled in
intensity, thickened, and perturbed with pixel noise.  The resulting
classification problem is easy enough that the small ReLU networks used by
the experiments reach high accuracy in a few epochs of SGD, yet hard enough
under fog corruption (see :mod:`repro.datasets.corruptions`) that accuracy
collapses — which is exactly the situation Task 2 of the paper repairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng

#: Default image side length (images are ``side × side`` grayscale in [0, 1]).
DEFAULT_SIDE = 12

#: Seven-segment layout: which of segments (top, top-left, top-right, middle,
#: bottom-left, bottom-right, bottom) are lit for each digit.
_SEGMENTS_PER_DIGIT = {
    0: (1, 1, 1, 0, 1, 1, 1),
    1: (0, 0, 1, 0, 0, 1, 0),
    2: (1, 0, 1, 1, 1, 0, 1),
    3: (1, 0, 1, 1, 0, 1, 1),
    4: (0, 1, 1, 1, 0, 1, 0),
    5: (1, 1, 0, 1, 0, 1, 1),
    6: (1, 1, 0, 1, 1, 1, 1),
    7: (1, 0, 1, 0, 0, 1, 0),
    8: (1, 1, 1, 1, 1, 1, 1),
    9: (1, 1, 1, 1, 0, 1, 1),
}


def _segment_masks(side: int) -> list[np.ndarray]:
    """Binary masks (side × side) for the seven segments."""
    canvas = np.zeros((side, side))
    top, bottom = 1, side - 2
    left, right = 2, side - 3
    middle = side // 2
    masks = []
    # top
    mask = canvas.copy()
    mask[top, left:right + 1] = 1.0
    masks.append(mask)
    # top-left
    mask = canvas.copy()
    mask[top:middle + 1, left] = 1.0
    masks.append(mask)
    # top-right
    mask = canvas.copy()
    mask[top:middle + 1, right] = 1.0
    masks.append(mask)
    # middle
    mask = canvas.copy()
    mask[middle, left:right + 1] = 1.0
    masks.append(mask)
    # bottom-left
    mask = canvas.copy()
    mask[middle:bottom + 1, left] = 1.0
    masks.append(mask)
    # bottom-right
    mask = canvas.copy()
    mask[middle:bottom + 1, right] = 1.0
    masks.append(mask)
    # bottom
    mask = canvas.copy()
    mask[bottom, left:right + 1] = 1.0
    masks.append(mask)
    return masks


def render_digit(
    digit: int,
    rng: np.random.Generator | int | None = None,
    side: int = DEFAULT_SIDE,
    noise: float = 0.05,
) -> np.ndarray:
    """Render one noisy image of ``digit``; returns a flat ``side*side`` vector."""
    if digit not in _SEGMENTS_PER_DIGIT:
        raise ValueError(f"digit must be 0-9, got {digit}")
    rng = ensure_rng(rng)
    masks = _segment_masks(side)
    image = np.zeros((side, side))
    intensity = rng.uniform(0.7, 1.0)
    for lit, mask in zip(_SEGMENTS_PER_DIGIT[digit], masks):
        if lit:
            image = np.maximum(image, intensity * mask)
    # Random thickening: blur the strokes slightly by max-pooling a shifted copy.
    if rng.uniform() < 0.5:
        shifted = np.zeros_like(image)
        shifted[:, 1:] = image[:, :-1]
        image = np.maximum(image, 0.8 * shifted)
    # Random translation by up to one pixel in each direction.
    shift_row = int(rng.integers(-1, 2))
    shift_col = int(rng.integers(-1, 2))
    image = np.roll(image, (shift_row, shift_col), axis=(0, 1))
    # Pixel noise.
    image = image + rng.normal(0.0, noise, size=image.shape)
    return np.clip(image, 0.0, 1.0).ravel()


@dataclass
class DigitDataset:
    """A train/test split of rendered digit images."""

    train_images: np.ndarray
    train_labels: np.ndarray
    test_images: np.ndarray
    test_labels: np.ndarray
    side: int = DEFAULT_SIDE

    @property
    def input_size(self) -> int:
        """Number of pixels per image."""
        return self.train_images.shape[1]

    @property
    def num_classes(self) -> int:
        """Number of digit classes (always 10)."""
        return 10


def generate_digit_dataset(
    train_per_class: int = 60,
    test_per_class: int = 30,
    side: int = DEFAULT_SIDE,
    noise: float = 0.05,
    seed: int | np.random.Generator | None = 0,
) -> DigitDataset:
    """Generate a digit dataset with the given per-class sizes."""
    rng = ensure_rng(seed)

    def build(per_class: int) -> tuple[np.ndarray, np.ndarray]:
        images, labels = [], []
        for digit in range(10):
            for _ in range(per_class):
                images.append(render_digit(digit, rng, side=side, noise=noise))
                labels.append(digit)
        order = rng.permutation(len(images))
        return np.array(images)[order], np.array(labels, dtype=int)[order]

    train_images, train_labels = build(train_per_class)
    test_images, test_labels = build(test_per_class)
    return DigitDataset(train_images, train_labels, test_images, test_labels, side=side)
