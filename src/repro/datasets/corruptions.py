"""Image corruptions — the MNIST-C substitute.

The paper's Task 2 repairs a digit classifier on images corrupted with *fog*
from the MNIST-C benchmark.  :func:`fog_corrupt` reproduces the visual
effect that matters for the repair problem: a bright, smoothly varying haze
blended over the image, which washes out the stroke contrast and collapses
the accuracy of a classifier trained on clean digits.  Brightness and noise
corruptions are provided for additional generalization experiments.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


def _smooth_field(side: int, rng: np.random.Generator, smoothness: int = 3) -> np.ndarray:
    """A smooth random field in [0, 1] of shape ``(side, side)``."""
    coarse_side = max(2, side // smoothness)
    coarse = rng.uniform(0.0, 1.0, size=(coarse_side, coarse_side))
    # Bilinear upsample to (side, side).
    row_positions = np.linspace(0, coarse_side - 1, side)
    col_positions = np.linspace(0, coarse_side - 1, side)
    row_low = np.floor(row_positions).astype(int)
    col_low = np.floor(col_positions).astype(int)
    row_high = np.minimum(row_low + 1, coarse_side - 1)
    col_high = np.minimum(col_low + 1, coarse_side - 1)
    row_frac = (row_positions - row_low)[:, None]
    col_frac = (col_positions - col_low)[None, :]
    top = coarse[row_low][:, col_low] * (1 - col_frac) + coarse[row_low][:, col_high] * col_frac
    bottom = coarse[row_high][:, col_low] * (1 - col_frac) + coarse[row_high][:, col_high] * col_frac
    return top * (1 - row_frac) + bottom * row_frac


def fog_corrupt(
    image: np.ndarray,
    severity: float = 1.0,
    rng: np.random.Generator | int | None = None,
    side: int | None = None,
) -> np.ndarray:
    """Blend a bright smooth haze over a flat grayscale image.

    ``severity`` in [0, 1] controls the blending weight; 0 returns the image
    unchanged and 1 applies full fog.  The output stays in [0, 1].
    """
    rng = ensure_rng(rng)
    image = np.asarray(image, dtype=np.float64).ravel()
    if side is None:
        side = int(round(np.sqrt(image.size)))
    if side * side != image.size:
        raise ValueError("image is not square; pass side explicitly")
    severity = float(np.clip(severity, 0.0, 1.0))
    haze = 0.6 + 0.4 * _smooth_field(side, rng)
    blend = severity * 0.75
    corrupted = (1.0 - blend) * image.reshape(side, side) + blend * haze
    return np.clip(corrupted, 0.0, 1.0).ravel()


def brightness_corrupt(image: np.ndarray, shift: float = 0.4) -> np.ndarray:
    """Add a constant brightness shift (clipped to [0, 1])."""
    return np.clip(np.asarray(image, dtype=np.float64) + shift, 0.0, 1.0)


def noise_corrupt(
    image: np.ndarray,
    scale: float = 0.3,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Add Gaussian pixel noise (clipped to [0, 1])."""
    rng = ensure_rng(rng)
    image = np.asarray(image, dtype=np.float64)
    return np.clip(image + rng.normal(0.0, scale, size=image.shape), 0.0, 1.0)


def corrupt_batch(images: np.ndarray, corruption, **kwargs) -> np.ndarray:
    """Apply a corruption function to every row of a batch."""
    images = np.atleast_2d(np.asarray(images, dtype=np.float64))
    return np.array([corruption(row, **kwargs) for row in images])
