"""Synthetic datasets standing in for the paper's evaluation data.

The paper evaluates on ImageNet + Natural Adversarial Examples (Task 1),
MNIST + MNIST-C fog (Task 2), and the ACAS Xu collision-avoidance inputs
(Task 3).  None of those datasets are available offline, so this package
generates procedural substitutes that exercise the same repair code paths
(see DESIGN.md §3 for the substitution rationale):

* :mod:`repro.datasets.digits` — procedurally rendered digit images (the
  MNIST substitute) with train/test splits.
* :mod:`repro.datasets.corruptions` — fog and related corruptions (the
  MNIST-C substitute).
* :mod:`repro.datasets.imagenet_mini` — a 9-class colour image generator
  plus a "natural adversarial" generator (the ImageNet/NAE substitute).
* :mod:`repro.datasets.acas` — a geometric collision-avoidance simulator
  producing the five ACAS Xu advisories, plus the φ8-style safety property.
"""

from repro.datasets.digits import DigitDataset, generate_digit_dataset, render_digit
from repro.datasets.corruptions import fog_corrupt, brightness_corrupt, noise_corrupt
from repro.datasets.imagenet_mini import MiniImageNet, generate_mini_imagenet
from repro.datasets.acas import (
    AcasScenario,
    AcasDataset,
    generate_acas_dataset,
    ground_truth_advisory,
    ADVISORY_NAMES,
)

__all__ = [
    "DigitDataset",
    "generate_digit_dataset",
    "render_digit",
    "fog_corrupt",
    "brightness_corrupt",
    "noise_corrupt",
    "MiniImageNet",
    "generate_mini_imagenet",
    "AcasScenario",
    "AcasDataset",
    "generate_acas_dataset",
    "ground_truth_advisory",
    "ADVISORY_NAMES",
]
