"""MiniImageNet: a 9-class procedural colour-image dataset plus "natural
adversarial examples" — the ImageNet/NAE substitute for Task 1.

Each class is a distinctive geometric texture (stripes, checkerboard, disc,
cross, ...) rendered in a class-specific colour palette with random phase,
position, and noise.  The *natural adversarial* generator renders the same
class textures under a distribution shift — palette rotation, heavy clutter,
and reduced contrast — that a network trained on the clean distribution
frequently misclassifies, mirroring how NAE images are in-distribution for a
human but adversarial for an ImageNet model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng

#: Image geometry: 3 colour channels, DEFAULT_SIDE × DEFAULT_SIDE pixels.
DEFAULT_SIDE = 16
NUM_CHANNELS = 3

#: The nine classes (the paper uses nine alphabetically chosen NAE classes).
CLASS_NAMES = (
    "horizontal_stripes",
    "vertical_stripes",
    "checkerboard",
    "disc",
    "cross",
    "diagonal",
    "rings",
    "corner_blob",
    "gradient",
)

#: Base colour (RGB in [0, 1]) per class.
_CLASS_COLORS = np.array(
    [
        [0.9, 0.2, 0.2],
        [0.2, 0.9, 0.2],
        [0.2, 0.2, 0.9],
        [0.9, 0.9, 0.2],
        [0.9, 0.2, 0.9],
        [0.2, 0.9, 0.9],
        [0.95, 0.6, 0.2],
        [0.6, 0.3, 0.9],
        [0.7, 0.7, 0.7],
    ]
)


def _texture(class_index: int, side: int, rng: np.random.Generator) -> np.ndarray:
    """A [0, 1] grayscale texture characteristic of the class."""
    rows, cols = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    phase = int(rng.integers(0, 4))
    period = int(rng.integers(3, 6))
    name = CLASS_NAMES[class_index]
    if name == "horizontal_stripes":
        texture = ((rows + phase) // period) % 2
    elif name == "vertical_stripes":
        texture = ((cols + phase) // period) % 2
    elif name == "checkerboard":
        texture = (((rows + phase) // period) + ((cols + phase) // period)) % 2
    elif name == "disc":
        center = side / 2 + rng.uniform(-2, 2, size=2)
        radius = side / 3
        texture = ((rows - center[0]) ** 2 + (cols - center[1]) ** 2 <= radius**2).astype(float)
    elif name == "cross":
        center = side // 2 + int(rng.integers(-2, 3))
        texture = ((np.abs(rows - center) <= 1) | (np.abs(cols - center) <= 1)).astype(float)
    elif name == "diagonal":
        texture = (((rows + cols + phase) // period) % 2).astype(float)
    elif name == "rings":
        center = side / 2
        distance = np.sqrt((rows - center) ** 2 + (cols - center) ** 2)
        texture = ((distance.astype(int) + phase) // 2 % 2).astype(float)
    elif name == "corner_blob":
        corner = rng.integers(0, 2, size=2) * (side - 1)
        distance = np.sqrt((rows - corner[0]) ** 2 + (cols - corner[1]) ** 2)
        texture = (distance <= side / 2).astype(float)
    elif name == "gradient":
        texture = (rows + cols) / (2.0 * (side - 1))
    else:  # pragma: no cover - exhaustive over CLASS_NAMES
        raise ValueError(f"unknown class index {class_index}")
    return texture.astype(np.float64)


def render_class_image(
    class_index: int,
    rng: np.random.Generator | int | None = None,
    side: int = DEFAULT_SIDE,
    noise: float = 0.05,
    adversarial: bool = False,
) -> np.ndarray:
    """Render one image of a class; returns a flat ``3 * side * side`` vector.

    With ``adversarial=True`` the image keeps its class texture but the
    colour palette is rotated toward another class, the contrast is reduced,
    and heavy clutter is added — the distribution shift that makes networks
    trained on the clean distribution misclassify.
    """
    if not 0 <= class_index < len(CLASS_NAMES):
        raise ValueError(f"class_index must be in [0, {len(CLASS_NAMES)}), got {class_index}")
    rng = ensure_rng(rng)
    texture = _texture(class_index, side, rng)
    color = _CLASS_COLORS[class_index].copy()
    background = np.array([0.1, 0.1, 0.1])
    contrast = 1.0
    if adversarial:
        # Shift nuisance factors (palette tint, background, contrast, clutter)
        # while keeping the class-defining texture intact — the image is still
        # unambiguously of its class, but far enough from the clean training
        # distribution that the trained network frequently misclassifies it.
        confusing_class = int((class_index + rng.integers(1, len(CLASS_NAMES))) % len(CLASS_NAMES))
        mix = rng.uniform(0.15, 0.35)
        color = (1 - mix) * color + mix * _CLASS_COLORS[confusing_class]
        background = rng.uniform(0.1, 0.3, size=3)
        contrast = rng.uniform(0.55, 0.85)
        clutter = rng.uniform(0.0, 1.0, size=(side, side)) < 0.05
        texture = np.where(clutter, 1.0 - texture, texture)
    image = np.empty((NUM_CHANNELS, side, side))
    for channel in range(NUM_CHANNELS):
        image[channel] = background[channel] + contrast * texture * (
            color[channel] - background[channel]
        )
    image += rng.normal(0.0, noise, size=image.shape)
    return np.clip(image, 0.0, 1.0).ravel()


@dataclass
class MiniImageNet:
    """Train/validation splits plus a pool of natural-adversarial images."""

    train_images: np.ndarray
    train_labels: np.ndarray
    validation_images: np.ndarray
    validation_labels: np.ndarray
    adversarial_images: np.ndarray
    adversarial_labels: np.ndarray
    side: int = DEFAULT_SIDE

    @property
    def num_classes(self) -> int:
        """Number of classes (always 9, as in the paper's Task 1 subset)."""
        return len(CLASS_NAMES)

    @property
    def input_size(self) -> int:
        """Flat input dimension (3 × side × side)."""
        return self.train_images.shape[1]


def generate_mini_imagenet(
    train_per_class: int = 40,
    validation_per_class: int = 20,
    adversarial_per_class: int = 25,
    side: int = DEFAULT_SIDE,
    seed: int | np.random.Generator | None = 0,
) -> MiniImageNet:
    """Generate the full Task 1 data: clean train/validation and an NAE pool."""
    rng = ensure_rng(seed)

    def build(per_class: int, adversarial: bool) -> tuple[np.ndarray, np.ndarray]:
        images, labels = [], []
        for class_index in range(len(CLASS_NAMES)):
            for _ in range(per_class):
                images.append(
                    render_class_image(class_index, rng, side=side, adversarial=adversarial)
                )
                labels.append(class_index)
        order = rng.permutation(len(images))
        return np.array(images)[order], np.array(labels, dtype=int)[order]

    train_images, train_labels = build(train_per_class, adversarial=False)
    validation_images, validation_labels = build(validation_per_class, adversarial=False)
    adversarial_images, adversarial_labels = build(adversarial_per_class, adversarial=True)
    return MiniImageNet(
        train_images,
        train_labels,
        validation_images,
        validation_labels,
        adversarial_images,
        adversarial_labels,
        side=side,
    )
