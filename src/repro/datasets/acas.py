"""ACAS Xu substitute: a geometric collision-avoidance simulator plus the
φ8-style safety property — the Task 3 substrate.

The real ACAS Xu networks compress a large lookup table of horizontal
collision-avoidance advisories.  The table itself is not public, so this
module implements a geometric stand-in policy: given the standard
five-dimensional encounter state

``(ρ, θ, ψ, v_own, v_int)``

* ``ρ``      — distance to the intruder (ft),
* ``θ``      — angle of the intruder relative to own heading (rad, ccw),
* ``ψ``      — intruder heading relative to own heading (rad),
* ``v_own``  — own speed (ft/s),
* ``v_int``  — intruder speed (ft/s),

it returns one of the five standard advisories (clear-of-conflict, weak
left/right, strong left/right) based on time-to-approach and bearing.  A
small ReLU network trained on this policy plays the role of N_{2,9}, and the
φ8-style property ("when the intruder is far behind on the left, advise
clear-of-conflict or weak left") plays the role of the paper's φ8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng

#: Advisory indices, following the standard ACAS Xu ordering.
CLEAR_OF_CONFLICT = 0
WEAK_LEFT = 1
WEAK_RIGHT = 2
STRONG_LEFT = 3
STRONG_RIGHT = 4

ADVISORY_NAMES = ("COC", "weak-left", "weak-right", "strong-left", "strong-right")

#: Input ranges used for normalization and sampling.
RHO_RANGE = (0.0, 60000.0)
THETA_RANGE = (-np.pi, np.pi)
PSI_RANGE = (-np.pi, np.pi)
V_OWN_RANGE = (100.0, 1200.0)
V_INT_RANGE = (0.0, 1200.0)

INPUT_RANGES = (RHO_RANGE, THETA_RANGE, PSI_RANGE, V_OWN_RANGE, V_INT_RANGE)


@dataclass
class AcasScenario:
    """One encounter state in physical units."""

    rho: float
    theta: float
    psi: float
    v_own: float
    v_int: float

    def as_array(self) -> np.ndarray:
        """The raw (un-normalized) five-dimensional state."""
        return np.array([self.rho, self.theta, self.psi, self.v_own, self.v_int])


def normalize_state(state: np.ndarray) -> np.ndarray:
    """Scale a raw state (or batch of states) to roughly [-1, 1] per feature."""
    state = np.asarray(state, dtype=np.float64)
    lows = np.array([low for low, _ in INPUT_RANGES])
    highs = np.array([high for _, high in INPUT_RANGES])
    return 2.0 * (state - lows) / (highs - lows) - 1.0


def denormalize_state(state: np.ndarray) -> np.ndarray:
    """Inverse of :func:`normalize_state`."""
    state = np.asarray(state, dtype=np.float64)
    lows = np.array([low for low, _ in INPUT_RANGES])
    highs = np.array([high for _, high in INPUT_RANGES])
    return lows + (state + 1.0) / 2.0 * (highs - lows)


def ground_truth_advisory(scenario: AcasScenario) -> int:
    """The simulator's advisory for one encounter.

    The policy is intentionally simple but has the qualitative structure of
    the real system: far-away or diverging intruders get clear-of-conflict,
    nearby intruders get a turn away from their bearing, and the strength of
    the turn grows as the encounter gets closer and faster.
    """
    # Closing speed along the line of sight (positive = closing).
    intruder_velocity = np.array(
        [scenario.v_int * np.cos(scenario.psi), scenario.v_int * np.sin(scenario.psi)]
    )
    own_velocity = np.array([scenario.v_own, 0.0])
    relative_velocity = intruder_velocity - own_velocity
    line_of_sight = np.array([np.cos(scenario.theta), np.sin(scenario.theta)])
    closing_speed = -float(relative_velocity @ line_of_sight)

    if scenario.rho > 30000.0 or closing_speed <= 0.0:
        return CLEAR_OF_CONFLICT
    time_to_approach = scenario.rho / max(closing_speed, 1e-3)
    if time_to_approach > 60.0:
        return CLEAR_OF_CONFLICT
    # Intruder on the left (theta > 0) -> turn right (away), and vice versa.
    turn_right = scenario.theta > 0.0
    strong = time_to_approach < 25.0 or scenario.rho < 8000.0
    if turn_right:
        return STRONG_RIGHT if strong else WEAK_RIGHT
    return STRONG_LEFT if strong else WEAK_LEFT


@dataclass
class AcasDataset:
    """Normalized states and ground-truth advisories for training/evaluation."""

    train_states: np.ndarray
    train_labels: np.ndarray
    test_states: np.ndarray
    test_labels: np.ndarray

    @property
    def num_classes(self) -> int:
        """Number of advisories (always 5)."""
        return len(ADVISORY_NAMES)


def sample_scenario(rng: np.random.Generator) -> AcasScenario:
    """Sample one encounter uniformly from the input ranges."""
    values = [rng.uniform(low, high) for low, high in INPUT_RANGES]
    return AcasScenario(*values)


def generate_acas_dataset(
    train_size: int = 4000,
    test_size: int = 1500,
    seed: int | np.random.Generator | None = 0,
) -> AcasDataset:
    """Sample encounters and label them with the simulator policy."""
    rng = ensure_rng(seed)

    def build(count: int) -> tuple[np.ndarray, np.ndarray]:
        states, labels = [], []
        for _ in range(count):
            scenario = sample_scenario(rng)
            states.append(normalize_state(scenario.as_array()))
            labels.append(ground_truth_advisory(scenario))
        return np.array(states), np.array(labels, dtype=int)

    train_states, train_labels = build(train_size)
    test_states, test_labels = build(test_size)
    return AcasDataset(train_states, train_labels, test_states, test_labels)


# ----------------------------------------------------------------------
# The φ8-style safety property
# ----------------------------------------------------------------------
@dataclass
class SafetyProperty:
    """A φ8-style property: on a box of encounters, only some advisories are safe.

    ``raw_lower``/``raw_upper`` bound the box in physical units; ``allowed``
    lists the advisory indices the network may output anywhere in the box.
    The paper's φ8 has exactly this shape ("the advisory is clear-of-conflict
    or weak left" on a large region of the input space).
    """

    raw_lower: np.ndarray
    raw_upper: np.ndarray
    allowed: tuple[int, ...]

    @property
    def normalized_lower(self) -> np.ndarray:
        """Lower corner of the box in normalized coordinates."""
        return normalize_state(self.raw_lower)

    @property
    def normalized_upper(self) -> np.ndarray:
        """Upper corner of the box in normalized coordinates."""
        return normalize_state(self.raw_upper)

    def satisfied_on(self, predictions: np.ndarray) -> np.ndarray:
        """Boolean mask of which predicted advisories satisfy the property."""
        predictions = np.asarray(predictions, dtype=int)
        mask = np.zeros_like(predictions, dtype=bool)
        for advisory in self.allowed:
            mask |= predictions == advisory
        return mask

    def sample_states(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform normalized states from the property box."""
        raw = rng.uniform(self.raw_lower, self.raw_upper, size=(count, 5))
        return normalize_state(raw)

    def random_slice(self, rng: np.random.Generator, varied_dims: tuple[int, int] | None = None) -> np.ndarray:
        """A random axis-aligned 2-D rectangle (4 vertices) inside the box.

        Two dimensions vary over their full property range; the remaining
        three are fixed at a random point inside the box.  Returns the
        rectangle's vertices in normalized coordinates, ordered
        counter-clockwise, as a ``(4, 5)`` array.
        """
        if varied_dims is None:
            varied = rng.choice(5, size=2, replace=False)
        else:
            varied = np.array(varied_dims, dtype=int)
        fixed_point = rng.uniform(self.raw_lower, self.raw_upper)
        corners_raw = []
        for corner in ((0, 0), (1, 0), (1, 1), (0, 1)):
            point = fixed_point.copy()
            for position, dim in enumerate(varied):
                low, high = self.raw_lower[dim], self.raw_upper[dim]
                point[dim] = low if corner[position] == 0 else high
            corners_raw.append(point)
        return normalize_state(np.array(corners_raw))


def phi8_property() -> SafetyProperty:
    """The φ8-style property used by Task 3.

    Region: the intruder is at moderate-to-large distance on the right-hand
    side (θ < 0, so any turn should be to the left), with a slow intruder and
    a faster ownship.  Inside this box the simulator policy only ever advises
    clear-of-conflict or weak left (the box straddles the COC/weak-left
    decision boundary but stays away from the strong-turn regime), so a
    correct network must output one of those two advisories everywhere — the
    same "COC or weak left" shape as the paper's φ8.
    """
    raw_lower = np.array([21000.0, -0.90 * np.pi, -0.3, 600.0, 0.0])
    raw_upper = np.array([35000.0, -0.05 * np.pi, 0.3, 800.0, 400.0])
    return SafetyProperty(raw_lower, raw_upper, allowed=(CLEAR_OF_CONFLICT, WEAK_LEFT))
