"""The linear-region datatype and geometry digests shared across layers.

Both the exact verifier (``repro.verify.exact``) and the execution engine
(``repro.engine``) consume SyReNN decompositions as lists of
:class:`LinearRegion` and key caches by :func:`geometry_digest`.  The types
live here — below both consumers — so neither package needs to import the
other.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.polytope.segment import LineSegment


@dataclass
class LinearRegion:
    """One linear region of a specification region: its vertices and interior.

    This is the unit of exact verification — the outputs at ``vertices``
    bound the constraint margin over the whole region, and ``interior`` pins
    a DDNN's activation pattern to the region.
    """

    vertices: np.ndarray
    interior: np.ndarray


def geometry_digest(region: LineSegment | np.ndarray, shards: int = 1) -> str:
    """A digest of a region's geometry (and shard layout), for cache keying.

    Keying on the geometry itself (rather than object identity) keeps a
    partition cache correct across garbage-collected specs, in-place spec
    edits, and re-built-but-identical specs — the common case in a repair
    driver, where every round re-verifies the same regions.  ``shards > 1``
    changes the merged partition (shard boundaries become breakpoints), so
    the shard count is part of the key; ``shards == 1`` keys are identical
    to the unsharded ones.
    """
    digest = hashlib.sha256()
    if isinstance(region, LineSegment):
        digest.update(b"segment")
        digest.update(region.start.tobytes())
        digest.update(region.end.tobytes())
    else:
        digest.update(b"vertices")
        digest.update(np.ascontiguousarray(region).tobytes())
    if shards > 1:
        digest.update(f"#shards{shards}".encode())
    return digest.hexdigest()[:24]
