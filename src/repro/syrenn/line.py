"""ExactLine: the 1-D linear-region decomposition of a PWL network.

Given a line segment in the input space of a piecewise-linear network, the
algorithm pushes the segment's endpoint ratios through the network layer by
layer.  Affine layers keep the current breakpoints; each element-wise
piecewise-linear activation inserts new breakpoints wherever a coordinate of
the current representation crosses one of the activation's breakpoints
(e.g. 0 for ReLU).  Because the representation is affine in the ratio within
each current piece, the crossing ratios are found by exact linear
interpolation.  The result is the list of ratios ``0 = t₀ < t₁ < ... < tₖ =
1`` such that the network is affine on every ``[tᵢ, tᵢ₊₁]`` — exactly
``LinRegions(N, segment)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import NotPiecewiseLinearError
from repro.nn.layer import LayerKind
from repro.nn.network import Network
from repro.polytope.segment import LineSegment

#: Two ratios closer than this are merged into a single breakpoint.
RATIO_TOLERANCE = 1e-9


@dataclass
class LineRegion:
    """One linear region of the network restricted to the segment.

    Attributes
    ----------
    start_ratio, end_ratio:
        The region is ``{segment.point_at(t) : start_ratio ≤ t ≤ end_ratio}``.
    segment:
        The original input segment.
    """

    start_ratio: float
    end_ratio: float
    segment: LineSegment

    @property
    def vertices(self) -> np.ndarray:
        """The two endpoints of the region, in input space: shape ``(2, n)``."""
        return self.segment.points_at(np.array([self.start_ratio, self.end_ratio]))

    @property
    def interior_point(self) -> np.ndarray:
        """The input-space midpoint of the region (strictly interior)."""
        return self.segment.point_at(0.5 * (self.start_ratio + self.end_ratio))

    @property
    def width(self) -> float:
        """Length of the region in ratio units."""
        return self.end_ratio - self.start_ratio


@dataclass
class LinePartition:
    """The full decomposition of a segment into linear regions."""

    segment: LineSegment
    ratios: np.ndarray

    @property
    def num_regions(self) -> int:
        """Number of linear regions (= number of breakpoints - 1)."""
        return max(0, self.ratios.size - 1)

    @property
    def regions(self) -> list[LineRegion]:
        """The linear regions, in order of increasing ratio."""
        return [
            LineRegion(float(self.ratios[i]), float(self.ratios[i + 1]), self.segment)
            for i in range(self.num_regions)
        ]

    @property
    def breakpoint_inputs(self) -> np.ndarray:
        """Input-space points at every breakpoint ratio: ``(k+1, n)``."""
        return self.segment.points_at(self.ratios)

    def num_key_points(self) -> int:
        """Number of (vertex, region) key points generated for repair.

        Each region contributes its two endpoints (Appendix B: interior
        breakpoints are counted once per adjacent region).
        """
        return 2 * self.num_regions


def _check_piecewise_linear(network: Network) -> None:
    for layer in network.layers:
        if layer.kind is LayerKind.ACTIVATION and not layer.is_piecewise_linear:
            raise NotPiecewiseLinearError(
                f"{type(layer).__name__} is not piecewise linear; polytope repair "
                "requires PWL activation functions (paper §6)"
            )


def _insert_crossings(
    ratios: np.ndarray, values: np.ndarray, breakpoints: tuple[float, ...]
) -> tuple[np.ndarray, np.ndarray]:
    """Insert ratios where any coordinate crosses any activation breakpoint."""
    new_ratios: list[float] = []
    for index in range(ratios.size - 1):
        left_value, right_value = values[index], values[index + 1]
        left_ratio, right_ratio = ratios[index], ratios[index + 1]
        span = right_ratio - left_ratio
        if span <= RATIO_TOLERANCE:
            continue
        for threshold in breakpoints:
            left_side = left_value - threshold
            right_side = right_value - threshold
            crossing = (left_side > 0) != (right_side > 0)
            crossing &= np.abs(left_side - right_side) > 0
            if not np.any(crossing):
                continue
            fractions = left_side[crossing] / (left_side[crossing] - right_side[crossing])
            for fraction in fractions:
                if RATIO_TOLERANCE < fraction < 1.0 - RATIO_TOLERANCE:
                    new_ratios.append(float(left_ratio + fraction * span))
    if not new_ratios:
        return ratios, values
    merged = np.unique(np.concatenate([ratios, np.array(new_ratios)]))
    # Drop ratios that coincide (within tolerance) with an existing one.
    keep = np.concatenate([[True], np.diff(merged) > RATIO_TOLERANCE])
    merged = merged[keep]
    return merged, None  # values must be recomputed by the caller


def transform_line(network: Network, segment: LineSegment) -> LinePartition:
    """Compute ``LinRegions(network, segment)`` exactly.

    The network must use only piecewise-linear activation functions whose
    pieces are delimited by element-wise thresholds (ReLU, LeakyReLU,
    HardTanh) or be affine (fully-connected, convolution, pooling by
    average, flatten, normalization).  Max-pooling is currently not
    supported by the SyReNN substrate.
    """
    _check_piecewise_linear(network)
    ratios = np.array([0.0, 1.0])
    # Current representation of the breakpoint points at the current layer.
    current = segment.points_at(ratios)
    for layer in network.layers:
        if layer.kind is LayerKind.ACTIVATION:
            breakpoints = layer.piecewise_breakpoints()
            updated_ratios, _ = _insert_crossings(ratios, current, breakpoints)
            if updated_ratios.size != ratios.size:
                ratios = updated_ratios
                # Recompute the representation at the new ratios by pushing the
                # corresponding input points through all layers seen so far.
                current = _representation_at(network, segment, ratios, layer)
            current = layer.forward(current)
        else:
            current = layer.forward(current)
    return LinePartition(segment=segment, ratios=ratios)


def _representation_at(
    network: Network, segment: LineSegment, ratios: np.ndarray, upto_layer
) -> np.ndarray:
    """Push the input points at ``ratios`` through layers before ``upto_layer``."""
    current = segment.points_at(ratios)
    for layer in network.layers:
        if layer is upto_layer:
            break
        current = layer.forward(current)
    return current
