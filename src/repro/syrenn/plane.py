"""2-D SyReNN: linear-region decomposition of a planar polygon.

The input region is a convex planar polygon embedded in the network's input
space (e.g. a 2-D slice of the ACAS Xu input space).  The algorithm keeps a
set of convex polygons; each polygon's vertices carry both their input-space
coordinates and the corresponding values at the current layer.  Affine layers
update the values.  Each element-wise piecewise-linear activation splits
every polygon by the zero set of ``value[k] - threshold`` for every
coordinate ``k`` and every activation breakpoint; within a polygon the value
is an affine function of the plane coordinates, so the zero set is a line and
half-plane clipping with linear interpolation is exact.  After processing all
layers the surviving polygons are exactly ``LinRegions(N, P)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import NotPiecewiseLinearError, ShapeError
from repro.nn.layer import LayerKind
from repro.nn.network import Network
from repro.polytope.polygon import VertexPolygon

#: Coordinates whose absolute value stays below this on every vertex of a
#: polygon are not split on (they are numerically on the boundary already).
SPLIT_TOLERANCE = 1e-9


@dataclass
class PlaneRegion:
    """One linear region of the network restricted to the input plane.

    Attributes
    ----------
    input_vertices:
        ``(k, n)`` array of the region's vertices in input space.
    plane_vertices:
        ``(k, 2)`` array of the same vertices in the plane's 2-D coordinate
        system (used for plotting and area computations).
    """

    input_vertices: np.ndarray
    plane_vertices: np.ndarray

    @property
    def num_vertices(self) -> int:
        return self.input_vertices.shape[0]

    @property
    def interior_point(self) -> np.ndarray:
        """The centroid of the region's vertices (interior for convex sets)."""
        return self.input_vertices.mean(axis=0)

    @property
    def area(self) -> float:
        """Area in plane coordinates."""
        from repro.polytope.polygon import polygon_area

        return polygon_area(self.plane_vertices)


@dataclass
class PlanePartition:
    """The full decomposition of an input plane polygon into linear regions."""

    regions: list[PlaneRegion]

    @property
    def num_regions(self) -> int:
        return len(self.regions)

    def num_key_points(self) -> int:
        """Number of (vertex, region) key points generated for repair."""
        return sum(region.num_vertices for region in self.regions)


def _check_supported(network: Network) -> None:
    for layer in network.layers:
        if layer.kind is not LayerKind.ACTIVATION:
            continue
        if not layer.is_piecewise_linear:
            raise NotPiecewiseLinearError(
                f"{type(layer).__name__} is not piecewise linear; polytope repair "
                "requires PWL activation functions (paper §6)"
            )
        try:
            layer.piecewise_breakpoints()
        except Exception as error:  # pragma: no cover - defensive
            raise NotPiecewiseLinearError(
                f"{type(layer).__name__} does not expose element-wise breakpoints; "
                "the 2-D SyReNN substrate only supports element-wise PWL activations"
            ) from error


def transform_plane(network: Network, plane_vertices: np.ndarray) -> PlanePartition:
    """Compute ``LinRegions(network, polygon)`` for a convex planar polygon.

    ``plane_vertices`` is a ``(k, n)`` array of input-space points that are
    the ordered vertices of a convex polygon lying inside a 2-D affine
    subspace of the input space.
    """
    _check_supported(network)
    plane_vertices = np.asarray(plane_vertices, dtype=np.float64)
    if plane_vertices.ndim != 2 or plane_vertices.shape[0] < 3:
        raise ShapeError("plane_vertices must be a (k >= 3, n) array of polygon vertices")
    if plane_vertices.shape[1] != network.input_size:
        raise ShapeError(
            f"plane vertices have dimension {plane_vertices.shape[1]}, "
            f"network expects {network.input_size}"
        )

    plane_coordinates = _plane_coordinates(plane_vertices)
    # Attribute layout per vertex: [input point (n), current values (varies)].
    initial_attributes = np.hstack([plane_vertices, plane_vertices])
    polygons = [VertexPolygon(plane_coordinates, initial_attributes)]
    input_dim = plane_vertices.shape[1]

    for layer in network.layers:
        if layer.kind is LayerKind.ACTIVATION:
            breakpoints = layer.piecewise_breakpoints()
            polygons = _split_all(polygons, input_dim, breakpoints)
            polygons = [
                _apply_to_values(polygon, input_dim, layer.forward) for polygon in polygons
            ]
        else:
            polygons = [
                _apply_to_values(polygon, input_dim, layer.forward) for polygon in polygons
            ]

    regions = [
        PlaneRegion(
            input_vertices=polygon.attributes[:, :input_dim].copy(),
            plane_vertices=polygon.plane_points.copy(),
        )
        for polygon in polygons
    ]
    return PlanePartition(regions=regions)


def _plane_coordinates(plane_vertices: np.ndarray) -> np.ndarray:
    """Project the polygon vertices onto an orthonormal basis of their plane."""
    origin = plane_vertices[0]
    offsets = plane_vertices - origin
    # Build an orthonormal basis of the (at most 2-D) span of the offsets.
    _, singular_values, basis = np.linalg.svd(offsets, full_matrices=False)
    rank = int(np.sum(singular_values > 1e-9))
    if rank > 2:
        raise ShapeError("plane vertices do not lie in a 2-D affine subspace")
    basis = basis[:2] if basis.shape[0] >= 2 else np.vstack([basis, np.zeros_like(basis[:1])])
    return offsets @ basis.T


def _apply_to_values(polygon: VertexPolygon, input_dim: int, function) -> VertexPolygon:
    """Apply ``function`` to the value part of a polygon's attributes."""
    inputs_part = polygon.attributes[:, :input_dim]
    values_part = polygon.attributes[:, input_dim:]
    new_values = function(values_part)
    return polygon.replace_attributes(np.hstack([inputs_part, new_values]))


def _split_all(
    polygons: list[VertexPolygon], input_dim: int, breakpoints: tuple[float, ...]
) -> list[VertexPolygon]:
    """Split every polygon on every coordinate/breakpoint combination."""
    for threshold in breakpoints:
        updated: list[VertexPolygon] = []
        for polygon in polygons:
            updated.extend(_split_one(polygon, input_dim, threshold))
        polygons = updated
    return polygons


def _split_one(
    polygon: VertexPolygon, input_dim: int, threshold: float
) -> list[VertexPolygon]:
    """Split one polygon on every value coordinate crossing ``threshold``."""
    pending = [polygon]
    num_values = polygon.attributes.shape[1] - input_dim
    for coordinate in range(num_values):
        next_pending: list[VertexPolygon] = []
        for piece in pending:
            function_values = piece.attributes[:, input_dim + coordinate] - threshold
            if np.all(function_values >= -SPLIT_TOLERANCE) or np.all(
                function_values <= SPLIT_TOLERANCE
            ):
                next_pending.append(piece)
                continue
            positive, negative = piece.split(function_values)
            if positive is not None:
                next_pending.append(positive)
            if negative is not None:
                next_pending.append(negative)
            if positive is None and negative is None:
                next_pending.append(piece)
        pending = next_pending
    return pending
