"""SyReNN substrate: exact linear-region decompositions of PWL networks.

The polytope repair algorithm (Algorithm 2 of the paper) needs, for each
specification polytope ``P``, the partition ``LinRegions(N, P)`` of ``P``
into the linear regions of the piecewise-linear network ``N``.  The paper
uses the SyReNN tool (Sotoudeh & Thakur, TACAS 2021) for one- and
two-dimensional ``P``; this package re-implements that capability:

* :func:`repro.syrenn.line.transform_line` — the ExactLine algorithm for 1-D
  segments.
* :func:`repro.syrenn.plane.transform_plane` — the polygon-splitting
  algorithm for 2-D planes (restricted to convex planar polygons embedded in
  the input space).

Both return region objects that expose (a) the region's vertices in input
space and (b) a representative interior point, which the repair algorithm
uses as the activation point of each key point (Appendix B of the paper).
"""

from repro.syrenn.line import LinePartition, LineRegion, transform_line
from repro.syrenn.plane import PlanePartition, PlaneRegion, transform_plane
from repro.syrenn.regions import LinearRegion, geometry_digest

__all__ = [
    "transform_line",
    "LinePartition",
    "LineRegion",
    "transform_plane",
    "PlanePartition",
    "PlaneRegion",
    "LinearRegion",
    "geometry_digest",
]
