"""The MFT baseline: single-layer fine-tuning with early stopping.

MFT (paper §7, "Fine-Tuning Baselines") differs from FT in four ways:

(a) only a single layer is fine-tuned;
(b) a loss term penalizes the size of the parameter change;
(c) 25% of the repair set is held out;
(d) training stops once accuracy on the holdout set starts dropping.

Because of the early stopping MFT generally does *not* reach 100% efficacy —
it is not a repair algorithm — but its drawdown is low, which is exactly the
trade-off the paper's Tables 1 and 3 report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.nn.network import Network
from repro.nn.train import SGDTrainer, TrainingConfig
from repro.utils.rng import ensure_rng


@dataclass
class ModifiedFineTuneResult:
    """Outcome of an MFT run."""

    network: Network
    layer_index: int
    efficacy: float
    epochs_run: int
    seconds: float


def modified_fine_tune(
    network: Network,
    repair_inputs: np.ndarray,
    repair_labels: np.ndarray,
    layer_index: int,
    *,
    learning_rate: float = 0.01,
    momentum: float = 0.9,
    batch_size: int = 16,
    max_epochs: int = 200,
    holdout_fraction: float = 0.25,
    change_penalty: float = 1e-3,
    patience: int = 3,
    seed: int = 0,
) -> ModifiedFineTuneResult:
    """Fine-tune a single layer of a copy of ``network`` with early stopping.

    ``change_penalty`` weights an ℓ2 penalty that pulls the tuned layer's
    parameters back toward their original values (the practical analogue of
    the paper's ℓ0/ℓ∞ penalty, which is not differentiable); ``patience``
    epochs of non-improving holdout accuracy trigger early stopping and the
    best-so-far parameters are restored.
    """
    start = time.perf_counter()
    rng = ensure_rng(seed)
    repair_inputs = np.atleast_2d(np.asarray(repair_inputs, dtype=np.float64))
    repair_labels = np.asarray(repair_labels, dtype=int)

    order = rng.permutation(repair_inputs.shape[0])
    holdout_size = max(1, int(round(holdout_fraction * order.size)))
    holdout_idx, train_idx = order[:holdout_size], order[holdout_size:]
    if train_idx.size == 0:
        train_idx = holdout_idx
    train_inputs, train_labels = repair_inputs[train_idx], repair_labels[train_idx]
    holdout_inputs, holdout_labels = repair_inputs[holdout_idx], repair_labels[holdout_idx]

    tuned = network.copy()
    original_parameters = tuned.layers[layer_index].get_parameters()
    config = TrainingConfig(
        learning_rate=learning_rate,
        momentum=momentum,
        batch_size=batch_size,
        epochs=max_epochs,
        only_layer=layer_index,
        weight_decay=0.0,
        seed=seed,
    )
    trainer = SGDTrainer(tuned, config)

    best_holdout = tuned.accuracy(holdout_inputs, holdout_labels)
    best_parameters = original_parameters.copy()
    epochs_without_improvement = 0
    epochs_run = 0
    for _ in range(max_epochs):
        trainer.train_epoch(train_inputs, train_labels, rng=rng)
        # Pull the layer back toward its original parameters (change penalty).
        if change_penalty > 0.0:
            layer = tuned.layers[layer_index]
            current = layer.get_parameters()
            layer.set_parameters(current - change_penalty * (current - original_parameters))
        epochs_run += 1
        holdout_accuracy = tuned.accuracy(holdout_inputs, holdout_labels)
        if holdout_accuracy > best_holdout + 1e-9:
            best_holdout = holdout_accuracy
            best_parameters = tuned.layers[layer_index].get_parameters()
            epochs_without_improvement = 0
        else:
            epochs_without_improvement += 1
            if epochs_without_improvement >= patience:
                break
    tuned.layers[layer_index].set_parameters(best_parameters)
    efficacy = tuned.accuracy(repair_inputs, repair_labels)
    return ModifiedFineTuneResult(
        network=tuned,
        layer_index=layer_index,
        efficacy=efficacy,
        epochs_run=epochs_run,
        seconds=time.perf_counter() - start,
    )
