"""The FT baseline: fine-tune all parameters until the repair set is fixed.

Following the paper (§7, "Fine-Tuning Baselines"), FT runs plain SGD on the
entire network using only the repair set, stopping as soon as every repair
point is classified correctly (or an epoch limit is hit — the paper observed
FT diverging and timing out for some hyperparameter choices, which the
``converged`` flag reports faithfully).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.nn.network import Network
from repro.nn.train import SGDTrainer, TrainingConfig


@dataclass
class FineTuneResult:
    """Outcome of an FT run."""

    network: Network
    converged: bool
    epochs_run: int
    final_accuracy: float
    seconds: float

    @property
    def efficacy(self) -> float:
        """Accuracy on the repair set after fine-tuning (1.0 when converged)."""
        return self.final_accuracy


def fine_tune(
    network: Network,
    repair_inputs: np.ndarray,
    repair_labels: np.ndarray,
    *,
    learning_rate: float = 0.01,
    momentum: float = 0.0,
    batch_size: int = 16,
    max_epochs: int = 1000,
    seed: int = 0,
) -> FineTuneResult:
    """Fine-tune a copy of ``network`` until the repair set is fully correct.

    The original network is left untouched; the returned result holds the
    fine-tuned copy.  ``converged=False`` means the epoch limit was reached
    without reaching 100% accuracy on the repair set (the paper's "timed
    out / diverged" outcome).
    """
    start = time.perf_counter()
    tuned = network.copy()
    config = TrainingConfig(
        learning_rate=learning_rate,
        momentum=momentum,
        batch_size=batch_size,
        epochs=max_epochs,
        seed=seed,
    )
    trainer = SGDTrainer(tuned, config)
    history = trainer.train(
        repair_inputs, repair_labels, epochs=max_epochs, stop_at_full_accuracy=True
    )
    accuracy = history.final_accuracy
    return FineTuneResult(
        network=tuned,
        converged=accuracy >= 1.0,
        epochs_run=len(history.losses),
        final_accuracy=accuracy,
        seconds=time.perf_counter() - start,
    )
