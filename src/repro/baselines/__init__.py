"""Fine-tuning baselines the paper compares Provable Repair against.

* :func:`repro.baselines.fine_tune.fine_tune` — FT: gradient descent on all
  parameters until every repair point is classified correctly (Sinitsin et
  al. style; the paper's FT[1]/FT[2] differ only in hyperparameters).
* :func:`repro.baselines.modified_fine_tune.modified_fine_tune` — MFT: a
  single-layer fine-tune with a parameter-change penalty, a 25% holdout
  split of the repair set, and early stopping when holdout accuracy drops.
"""

from repro.baselines.fine_tune import FineTuneResult, fine_tune
from repro.baselines.modified_fine_tune import ModifiedFineTuneResult, modified_fine_tune

__all__ = [
    "fine_tune",
    "FineTuneResult",
    "modified_fine_tune",
    "ModifiedFineTuneResult",
]
