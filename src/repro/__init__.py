"""PRDNN: a reproduction of "Provable Repair of Deep Neural Networks".

The public API is re-exported here so that typical usage looks like::

    import repro

    network = repro.Network([...])
    spec = repro.PointRepairSpec.from_labels(points, labels, num_classes=10)
    result = repro.point_repair(network, layer_index=-1, spec=spec)
    repaired = result.network

The package is organized as:

``repro.core``
    The paper's contribution: Decoupled DNNs, provable point repair
    (Algorithm 1) and provable polytope repair (Algorithm 2).
``repro.nn``
    A from-scratch NumPy feed-forward network substrate (layers, forward
    evaluation, backpropagation, SGD training).
``repro.lp``
    A linear-programming substrate with ℓ1/ℓ∞ objectives and two backends
    (scipy HiGHS and a pure-Python two-phase simplex).
``repro.syrenn``
    Exact linear-region decompositions of piecewise-linear networks
    restricted to 1-D lines and 2-D planes.
``repro.polytope``
    Convex-geometry helpers used by ``repro.syrenn``.
``repro.verify``
    Violation search and certification: grid/random sampling verifiers and
    the exact SyReNN-based verifier.
``repro.driver``
    The counterexample-guided (CEGIS) repair driver that closes the loop
    between verification and repair.
``repro.engine``
    The parallel execution engine: sharded SyReNN decomposition across a
    worker pool, priority job scheduling, and a two-tier partition cache.
``repro.api``
    The one-import facade: :func:`repro.api.repair`,
    :func:`repro.api.verify`, and :func:`repro.api.submit` (jobs to a
    running repair daemon).
``repro.obs``
    Opt-in observability: a process-wide metrics registry, span-based
    tracing, Prometheus text exposition, and structured JSON logging.
    Disabled by default; never touches numerics.
``repro.service``
    Repair-as-a-service: a long-lived daemon that accepts declarative
    repair/verify jobs over a small stdlib HTTP API and multiplexes them
    over one warm engine and shared partition cache.
``repro.datasets``, ``repro.models``
    Synthetic stand-ins for the paper's three evaluation tasks.
``repro.baselines``
    The fine-tuning (FT) and modified fine-tuning (MFT) baselines.
``repro.experiments``
    Drivers that regenerate every table and figure of the evaluation.
"""

from repro.nn.network import Network
from repro.nn.linear import FullyConnectedLayer
from repro.nn.conv import Conv2DLayer
from repro.nn.activations import (
    ReLULayer,
    TanhLayer,
    SigmoidLayer,
    LeakyReLULayer,
    HardTanhLayer,
)
from repro.nn.pooling import AvgPool2DLayer, MaxPool2DLayer
from repro.nn.reshape import FlattenLayer
from repro.core.ddnn import DecoupledNetwork
from repro.core.specs import (
    PointRepairSpec,
    PolytopeRepairSpec,
    OutputConstraint,
    classification_constraint,
)
from repro.core.point_repair import point_repair
from repro.core.polytope_repair import polytope_repair
from repro.core.result import RepairResult, RepairTiming
from repro.lp.model import LPModel
from repro.lp.status import LPStatus
from repro.verify import (
    Counterexample,
    GridVerifier,
    RandomVerifier,
    SyrennVerifier,
    VerificationReport,
    VerificationSpec,
    Verifier,
    make_verifier,
)
from repro.driver import CounterexamplePool, DriverConfig, DriverReport, RepairDriver
from repro.engine import JobScheduler, PartitionCache, ShardedSyrennEngine
from repro import api
from repro import obs

__version__ = "1.2.0"

__all__ = [
    "Network",
    "FullyConnectedLayer",
    "Conv2DLayer",
    "ReLULayer",
    "TanhLayer",
    "SigmoidLayer",
    "LeakyReLULayer",
    "HardTanhLayer",
    "AvgPool2DLayer",
    "MaxPool2DLayer",
    "FlattenLayer",
    "DecoupledNetwork",
    "PointRepairSpec",
    "PolytopeRepairSpec",
    "OutputConstraint",
    "classification_constraint",
    "point_repair",
    "polytope_repair",
    "RepairResult",
    "RepairTiming",
    "LPModel",
    "LPStatus",
    "Verifier",
    "VerificationSpec",
    "VerificationReport",
    "Counterexample",
    "GridVerifier",
    "RandomVerifier",
    "SyrennVerifier",
    "make_verifier",
    "CounterexamplePool",
    "RepairDriver",
    "DriverConfig",
    "DriverReport",
    "ShardedSyrennEngine",
    "PartitionCache",
    "JobScheduler",
    "api",
    "obs",
    "__version__",
]
