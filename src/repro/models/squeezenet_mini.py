"""MiniSqueezeNet — the convolutional network for Task 1.

SqueezeNet's defining features are small convolutions organized into "fire"
modules (a 1×1 *squeeze* convolution followed by an *expand* convolution), a
convolutional classifier, and global average pooling instead of a dense
classifier head.  MiniSqueezeNet keeps that structure at a scale a NumPy
implementation can train and repair quickly on the synthetic 9-class image
dataset: eight convolutional (repairable) layers totalling a few thousand
parameters, ReLU activations, max
pooling between stages, and a global-average-pool classifier.

The repair experiments of Task 1 iterate over the convolutional layers the
same way the paper iterates over SqueezeNet's ten feed-forward layers
(Figure 7).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.imagenet_mini import DEFAULT_SIDE, MiniImageNet, NUM_CHANNELS
from repro.nn.activations import ReLULayer
from repro.nn.conv import Conv2DLayer
from repro.nn.network import Network
from repro.nn.pooling import GlobalAvgPoolLayer, MaxPool2DLayer
from repro.nn.reshape import NormalizeLayer
from repro.nn.train import SGDTrainer, TrainingConfig
from repro.utils.rng import ensure_rng


def build_mini_squeezenet(
    side: int = DEFAULT_SIDE,
    num_classes: int = 9,
    seed: int | np.random.Generator | None = 0,
) -> Network:
    """An untrained MiniSqueezeNet for ``3 × side × side`` images."""
    rng = ensure_rng(seed)
    input_size = NUM_CHANNELS * side * side
    layers = [
        NormalizeLayer(np.full(input_size, 0.5), np.full(input_size, 0.5)),
        # Stem convolution.
        Conv2DLayer.from_shape(
            NUM_CHANNELS, 12, 3, input_height=side, input_width=side, padding=1, rng=rng
        ),
        ReLULayer(12 * side * side),
        MaxPool2DLayer(12, side, side, pool_size=2),
    ]
    half = side // 2
    # Fire module 1: squeeze 12→8 (1×1), expand 8→16 (3×3).
    layers += [
        Conv2DLayer.from_shape(12, 8, 1, input_height=half, input_width=half, rng=rng),
        ReLULayer(8 * half * half),
        Conv2DLayer.from_shape(8, 16, 3, input_height=half, input_width=half, padding=1, rng=rng),
        ReLULayer(16 * half * half),
        MaxPool2DLayer(16, half, half, pool_size=2),
    ]
    quarter = half // 2
    # Fire module 2: squeeze 16→8 (1×1), expand 8→16 (3×3).
    layers += [
        Conv2DLayer.from_shape(16, 8, 1, input_height=quarter, input_width=quarter, rng=rng),
        ReLULayer(8 * quarter * quarter),
        Conv2DLayer.from_shape(8, 16, 3, input_height=quarter, input_width=quarter, padding=1, rng=rng),
        ReLULayer(16 * quarter * quarter),
    ]
    # Fire module 3: squeeze 16→12 (1×1), expand 12→24 (3×3).
    layers += [
        Conv2DLayer.from_shape(16, 12, 1, input_height=quarter, input_width=quarter, rng=rng),
        ReLULayer(12 * quarter * quarter),
        Conv2DLayer.from_shape(12, 24, 3, input_height=quarter, input_width=quarter, padding=1, rng=rng),
        ReLULayer(24 * quarter * quarter),
    ]
    # Convolutional classifier + global average pooling (as in SqueezeNet).
    # Unlike the original SqueezeNet we do not apply a ReLU to the classifier
    # convolution: leaving the logits unclipped both trains better with
    # cross-entropy and keeps the final layer fully repairable.
    layers += [
        Conv2DLayer.from_shape(
            24, num_classes, 1, input_height=quarter, input_width=quarter, rng=rng
        ),
        GlobalAvgPoolLayer(num_classes, quarter, quarter),
    ]
    return Network(layers)


def train_mini_squeezenet(
    dataset: MiniImageNet,
    epochs: int = 30,
    learning_rate: float = 0.01,
    seed: int = 0,
) -> Network:
    """Train MiniSqueezeNet on the synthetic 9-class image dataset."""
    network = build_mini_squeezenet(side=dataset.side, num_classes=dataset.num_classes, seed=seed)
    config = TrainingConfig(
        learning_rate=learning_rate,
        momentum=0.9,
        batch_size=16,
        epochs=epochs,
        seed=seed,
    )
    trainer = SGDTrainer(network, config)
    trainer.train(dataset.train_images, dataset.train_labels)
    return network


def repairable_layer_indices(network: Network) -> list[int]:
    """The convolutional layer indices of a MiniSqueezeNet (repair targets)."""
    return network.parameterized_layer_indices()
