"""The model zoo: trains task networks once and caches their parameters.

Experiments and benchmarks repeatedly need "the buggy network" for each
task.  Training one takes seconds to a couple of minutes in pure NumPy, so
the zoo caches trained parameters in ``.npz`` files keyed by a hash of the
build/training configuration.  Caching lives under
``~/.cache/repro-prdnn`` (override with the ``REPRO_CACHE_DIR`` environment
variable); delete the directory to force retraining.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.datasets.acas import AcasDataset, generate_acas_dataset
from repro.datasets.digits import DigitDataset, generate_digit_dataset
from repro.datasets.imagenet_mini import MiniImageNet, generate_mini_imagenet
from repro.models.acas_models import build_acas_network, train_acas_network
from repro.models.mnist_models import build_digit_network, train_digit_network
from repro.models.squeezenet_mini import build_mini_squeezenet, train_mini_squeezenet
from repro.nn.network import Network
from repro.utils.serialization import config_digest, default_cache_dir


@dataclass
class ModelZoo:
    """Builds (or loads from cache) the datasets and buggy networks per task."""

    cache_dir: Path | None = None
    use_cache: bool = True

    def _cache_path(self, name: str, config: dict) -> Path:
        base = self.cache_dir if self.cache_dir is not None else default_cache_dir()
        return Path(base) / f"{name}-{config_digest(config)}.npz"

    def _load_or_train(self, name: str, config: dict, build, train) -> Network:
        path = self._cache_path(name, config)
        if self.use_cache and path.exists():
            network = build()
            network.load_parameters(path)
            return network
        network = train()
        if self.use_cache:
            network.save_parameters(path)
        return network

    # ------------------------------------------------------------------
    # Task 2: digits
    # ------------------------------------------------------------------
    def digit_dataset(self, train_per_class: int = 60, test_per_class: int = 40, seed: int = 0) -> DigitDataset:
        """The synthetic digit dataset for Task 2."""
        return generate_digit_dataset(train_per_class, test_per_class, seed=seed)

    def digit_network(
        self,
        dataset: DigitDataset,
        hidden_sizes: tuple[int, int] = (64, 32),
        epochs: int = 30,
        seed: int = 0,
    ) -> Network:
        """The trained digit classifier (cached)."""
        config = {
            "input": dataset.input_size,
            "hidden": list(hidden_sizes),
            "epochs": epochs,
            "seed": seed,
            "train_size": int(dataset.train_images.shape[0]),
        }
        return self._load_or_train(
            "digit",
            config,
            build=lambda: build_digit_network(dataset.input_size, hidden_sizes, seed=seed),
            train=lambda: train_digit_network(dataset, hidden_sizes, epochs=epochs, seed=seed),
        )

    # ------------------------------------------------------------------
    # Task 1: mini ImageNet
    # ------------------------------------------------------------------
    def mini_imagenet(
        self,
        train_per_class: int = 40,
        validation_per_class: int = 20,
        adversarial_per_class: int = 25,
        seed: int = 0,
    ) -> MiniImageNet:
        """The synthetic 9-class image dataset plus the NAE pool for Task 1."""
        return generate_mini_imagenet(
            train_per_class, validation_per_class, adversarial_per_class, seed=seed
        )

    def mini_squeezenet(self, dataset: MiniImageNet, epochs: int = 25, seed: int = 0) -> Network:
        """The trained MiniSqueezeNet (cached)."""
        config = {
            "side": dataset.side,
            "classes": dataset.num_classes,
            "epochs": epochs,
            "seed": seed,
            "train_size": int(dataset.train_images.shape[0]),
        }
        return self._load_or_train(
            "mini_squeezenet",
            config,
            build=lambda: build_mini_squeezenet(side=dataset.side, num_classes=dataset.num_classes, seed=seed),
            train=lambda: train_mini_squeezenet(dataset, epochs=epochs, seed=seed),
        )

    # ------------------------------------------------------------------
    # Task 3: ACAS Xu
    # ------------------------------------------------------------------
    def acas_dataset(self, train_size: int = 4000, test_size: int = 1500, seed: int = 0) -> AcasDataset:
        """The simulator-labelled encounter dataset for Task 3."""
        return generate_acas_dataset(train_size, test_size, seed=seed)

    def acas_network(
        self,
        dataset: AcasDataset,
        hidden_size: int = 16,
        hidden_layers: int = 6,
        epochs: int = 40,
        seed: int = 0,
    ) -> Network:
        """The trained advisory network (cached)."""
        config = {
            "hidden_size": hidden_size,
            "hidden_layers": hidden_layers,
            "epochs": epochs,
            "seed": seed,
            "train_size": int(dataset.train_states.shape[0]),
        }
        return self._load_or_train(
            "acas",
            config,
            build=lambda: build_acas_network(hidden_size, hidden_layers, seed=seed),
            train=lambda: train_acas_network(
                dataset, hidden_size, hidden_layers, epochs=epochs, seed=seed
            ),
        )
