"""Model builders for the paper's running example and the three tasks.

* :mod:`repro.models.toy` — the 1-input/1-output ReLU networks of Figures
  3–5 (N₁ and N₂) used by the quickstart example and many tests.
* :mod:`repro.models.mnist_models` — the small fully-connected ReLU digit
  classifier standing in for the paper's MNIST ReLU-3-100 network (Task 2).
* :mod:`repro.models.squeezenet_mini` — MiniSqueezeNet, a small
  convolutional network with fire-style squeeze/expand blocks standing in
  for SqueezeNet (Task 1).
* :mod:`repro.models.acas_models` — the fully-connected advisory network
  standing in for ACAS Xu N₂,₉ (Task 3).
* :mod:`repro.models.zoo` — trains the three task networks on the synthetic
  datasets and caches the parameters on disk so repeated experiment runs do
  not retrain.
"""

from repro.models.toy import paper_network_n1, paper_network_n2
from repro.models.mnist_models import build_digit_network, train_digit_network
from repro.models.squeezenet_mini import build_mini_squeezenet, train_mini_squeezenet
from repro.models.acas_models import build_acas_network, train_acas_network
from repro.models.zoo import ModelZoo

__all__ = [
    "paper_network_n1",
    "paper_network_n2",
    "build_digit_network",
    "train_digit_network",
    "build_mini_squeezenet",
    "train_mini_squeezenet",
    "build_acas_network",
    "train_acas_network",
    "ModelZoo",
]
