"""The advisory network for Task 3 (the ACAS Xu N₂,₉ stand-in).

The real N₂,₉ is a fully-connected ReLU network with six hidden layers.  The
stand-in keeps that shape at a size the pure-Python 2-D SyReNN decomposition
handles comfortably: six hidden layers of 16 units (the paper's uses 50).
It is trained on the geometric collision-avoidance simulator of
:mod:`repro.datasets.acas`.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.acas import AcasDataset
from repro.nn.activations import ReLULayer
from repro.nn.linear import FullyConnectedLayer
from repro.nn.network import Network
from repro.nn.train import SGDTrainer, TrainingConfig
from repro.utils.rng import ensure_rng

#: Input dimension (ρ, θ, ψ, v_own, v_int) and number of advisories.
ACAS_INPUTS = 5
ACAS_OUTPUTS = 5


def build_acas_network(
    hidden_size: int = 16,
    hidden_layers: int = 6,
    seed: int | np.random.Generator | None = 0,
) -> Network:
    """An untrained fully-connected ReLU advisory network."""
    rng = ensure_rng(seed)
    layers = [FullyConnectedLayer.from_shape(ACAS_INPUTS, hidden_size, rng), ReLULayer(hidden_size)]
    for _ in range(hidden_layers - 1):
        layers.append(FullyConnectedLayer.from_shape(hidden_size, hidden_size, rng))
        layers.append(ReLULayer(hidden_size))
    layers.append(FullyConnectedLayer.from_shape(hidden_size, ACAS_OUTPUTS, rng))
    return Network(layers)


def train_acas_network(
    dataset: AcasDataset,
    hidden_size: int = 16,
    hidden_layers: int = 6,
    epochs: int = 40,
    learning_rate: float = 0.05,
    seed: int = 0,
) -> Network:
    """Train the advisory network on the simulator dataset."""
    network = build_acas_network(hidden_size, hidden_layers, seed=seed)
    config = TrainingConfig(
        learning_rate=learning_rate,
        momentum=0.9,
        batch_size=64,
        epochs=epochs,
        seed=seed,
    )
    trainer = SGDTrainer(network, config)
    trainer.train(dataset.train_states, dataset.train_labels)
    return network


def last_layer_index(network: Network) -> int:
    """Index of the output layer (the repair layer used by Task 3)."""
    return network.parameterized_layer_indices()[-1]
