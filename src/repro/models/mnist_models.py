"""The digit-classifier network for Task 2 (the MNIST ReLU-3-100 stand-in).

The paper repairs a three-layer fully-connected ReLU network.  The stand-in
has the same structure scaled to the synthetic digit images: three
fully-connected layers separated by ReLUs.  Layer indices of interest (in
the ``Network.layers`` list):

* index 0 — first fully-connected layer (reads the image; large),
* index 2 — second fully-connected layer ("Layer 2" in Table 2),
* index 4 — final fully-connected layer ("Layer 3" in Table 2).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.digits import DigitDataset
from repro.nn.activations import ReLULayer
from repro.nn.linear import FullyConnectedLayer
from repro.nn.network import Network
from repro.nn.train import SGDTrainer, TrainingConfig
from repro.utils.rng import ensure_rng

#: Layer indices used by the Task 2 experiments.
DIGIT_LAYER_2_INDEX = 2
DIGIT_LAYER_3_INDEX = 4


def build_digit_network(
    input_size: int,
    hidden_sizes: tuple[int, int] = (64, 32),
    num_classes: int = 10,
    seed: int | np.random.Generator | None = 0,
) -> Network:
    """An untrained three-layer fully-connected ReLU classifier."""
    rng = ensure_rng(seed)
    first_hidden, second_hidden = hidden_sizes
    return Network(
        [
            FullyConnectedLayer.from_shape(input_size, first_hidden, rng),
            ReLULayer(first_hidden),
            FullyConnectedLayer.from_shape(first_hidden, second_hidden, rng),
            ReLULayer(second_hidden),
            FullyConnectedLayer.from_shape(second_hidden, num_classes, rng),
        ]
    )


def train_digit_network(
    dataset: DigitDataset,
    hidden_sizes: tuple[int, int] = (64, 32),
    epochs: int = 30,
    learning_rate: float = 0.1,
    seed: int = 0,
) -> Network:
    """Train the digit classifier on the synthetic digit dataset."""
    network = build_digit_network(
        dataset.input_size, hidden_sizes, dataset.num_classes, seed=seed
    )
    config = TrainingConfig(
        learning_rate=learning_rate,
        momentum=0.9,
        batch_size=32,
        epochs=epochs,
        seed=seed,
    )
    trainer = SGDTrainer(network, config)
    trainer.train(dataset.train_images, dataset.train_labels)
    return network
