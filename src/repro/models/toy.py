"""The paper's running example networks (Figures 3–5).

``N₁`` is the 1-input, 1-output network with three ReLU hidden units whose
behaviour on ``[-1, 2]`` is plotted in Figure 3(c):

* ``N₁(0.5) = -0.5`` and ``N₁(1.5) = -1`` (§3.1);
* its linear regions on ``[-1, 2]`` are ``[-1, 0]``, ``[0, 1]``, ``[1, 2]``
  (Equation 1).

``N₂`` is ``N₁`` with the ``x → h₃`` weight changed from 1 to 2, which both
changes the green region's affine map and moves the region boundary to 0.5 —
the "coupling" phenomenon the paper's Figure 3(d) illustrates.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import ReLULayer
from repro.nn.linear import FullyConnectedLayer
from repro.nn.network import Network


def paper_network_n1() -> Network:
    """The network N₁ of Figure 3(a).

    Hidden units: ``h₁ = ReLU(-x)``, ``h₂ = ReLU(x)``, ``h₃ = ReLU(x - 1)``;
    output ``y = h₁ - h₂ + h₃``.
    """
    first = FullyConnectedLayer(
        np.array([[-1.0], [1.0], [1.0]]), np.array([0.0, 0.0, -1.0])
    )
    second = FullyConnectedLayer(np.array([[1.0, -1.0, 1.0]]), np.array([0.0]))
    return Network([first, ReLULayer(3), second])


def paper_network_n2() -> Network:
    """The network N₂ of Figure 3(b): N₁ with the x → h₃ weight set to 2."""
    first = FullyConnectedLayer(
        np.array([[-1.0], [1.0], [2.0]]), np.array([0.0, 0.0, -1.0])
    )
    second = FullyConnectedLayer(np.array([[1.0, -1.0, 1.0]]), np.array([0.0]))
    return Network([first, ReLULayer(3), second])
