"""Plain-text reporting helpers for the experiment tables.

The benchmark harness prints each reproduced table in a layout close to the
paper's (rows = repair-set sizes, columns = methods), using these helpers.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping


def format_seconds(seconds: float) -> str:
    """Format a duration the way the paper does (e.g. ``1m39.0s``, ``18.4s``)."""
    if seconds < 0:
        raise ValueError("seconds must be non-negative")
    hours, remainder = divmod(seconds, 3600.0)
    minutes, secs = divmod(remainder, 60.0)
    if hours >= 1:
        return f"{int(hours)}h{int(minutes)}m{secs:.1f}s"
    if minutes >= 1:
        return f"{int(minutes)}m{secs:.1f}s"
    return f"{secs:.1f}s"


def format_table(rows: Iterable[Mapping[str, object]], columns: list[str] | None = None) -> str:
    """Render a list of record dictionaries as an aligned text table."""
    rows = [dict(row) for row in rows]
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths)) for line in rendered
    )
    return "\n".join([header, separator, body])


def print_table(title: str, rows: Iterable[Mapping[str, object]], columns: list[str] | None = None) -> None:
    """Print a titled table (used by benchmarks and examples)."""
    print(f"\n== {title} ==")
    print(format_table(rows, columns))
