"""Task 1: pointwise repair of a convolutional image classifier.

Mirrors §7.1 of the paper: the buggy network is a convolutional classifier
(MiniSqueezeNet standing in for SqueezeNet), the repair set is drawn from a
pool of "natural adversarial" images the network misclassifies, the drawdown
set is the held-out clean validation set, and repairs are attempted at every
convolutional layer.  The outputs of this module feed Table 1, Table 4, and
Figure 7.

The module also hosts the *driver-certified* variant of the task: a
feasible-by-construction classifier-perturbation workload
(:func:`classifier_perturbation_workload`) scalable to 10⁵+ constraint rows,
its pointwise :class:`~repro.verify.base.VerificationSpec`
(:func:`pointwise_verification_spec`), and the closed-loop entry point
(:func:`driver_certified_repair`) that runs the full
:class:`~repro.driver.driver.RepairDriver` CEGIS loop — with the out-of-core
chunked Jacobian→LP pipeline and the spilling counterexample pool when a
``memory_budget`` is set — to a *certified* SqueezeNet-mini repair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.fine_tune import fine_tune
from repro.baselines.modified_fine_tune import modified_fine_tune
from repro.core.point_repair import point_repair
from repro.core.specs import PointRepairSpec, classification_constraint
from repro.driver.config import DriverConfig
from repro.driver.driver import DriverReport, RepairDriver
from repro.experiments.metrics import accuracy_percent, drawdown, efficacy
from repro.models.squeezenet_mini import build_mini_squeezenet
from repro.models.zoo import ModelZoo
from repro.nn.network import Network
from repro.utils.rng import ensure_rng
from repro.verify.base import VerificationSpec
from repro.verify.sampling import GridVerifier

#: Margin used for the "classified as label y" constraints; a small positive
#: margin keeps repaired classifications strict under floating-point noise.
CLASSIFICATION_MARGIN = 1e-3


@dataclass
class Task1Setup:
    """Everything Task 1 needs: the buggy network and the evaluation sets."""

    network: Network
    repair_pool_images: np.ndarray
    repair_pool_labels: np.ndarray
    drawdown_images: np.ndarray
    drawdown_labels: np.ndarray
    buggy_pool_accuracy: float
    buggy_drawdown_accuracy: float

    @property
    def repairable_layers(self) -> list[int]:
        """Indices of the convolutional (repairable) layers."""
        return self.network.parameterized_layer_indices()

    def repair_subset(self, num_points: int) -> tuple[np.ndarray, np.ndarray]:
        """The first ``num_points`` images of the adversarial pool."""
        count = min(num_points, self.repair_pool_images.shape[0])
        return self.repair_pool_images[:count], self.repair_pool_labels[:count]


def setup_task1(
    zoo: ModelZoo | None = None,
    *,
    train_per_class: int = 40,
    validation_per_class: int = 20,
    adversarial_per_class: int = 25,
    epochs: int = 25,
    seed: int = 0,
) -> Task1Setup:
    """Generate the data, train (or load) the buggy network, and bundle it up."""
    zoo = zoo if zoo is not None else ModelZoo()
    dataset = zoo.mini_imagenet(
        train_per_class=train_per_class,
        validation_per_class=validation_per_class,
        adversarial_per_class=adversarial_per_class,
        seed=seed,
    )
    network = zoo.mini_squeezenet(dataset, epochs=epochs, seed=seed)
    return Task1Setup(
        network=network,
        repair_pool_images=dataset.adversarial_images,
        repair_pool_labels=dataset.adversarial_labels,
        drawdown_images=dataset.validation_images,
        drawdown_labels=dataset.validation_labels,
        buggy_pool_accuracy=accuracy_percent(
            network, dataset.adversarial_images, dataset.adversarial_labels
        ),
        buggy_drawdown_accuracy=accuracy_percent(
            network, dataset.validation_images, dataset.validation_labels
        ),
    )


def provable_repair_per_layer(
    setup: Task1Setup,
    num_points: int,
    layer_indices: list[int] | None = None,
    *,
    norm: str = "linf",
    margin: float = CLASSIFICATION_MARGIN,
    backend: str | None = None,
) -> list[dict]:
    """Run Provable Repair at each requested layer; one record per layer.

    Each record carries feasibility, efficacy (100 when feasible), drawdown,
    and the timing breakdown — the raw material of Table 1/Table 4/Figure 7.
    """
    points, labels = setup.repair_subset(num_points)
    spec = PointRepairSpec.from_labels(
        points, labels, num_classes=setup.network.output_size, margin=margin
    )
    layer_indices = layer_indices if layer_indices is not None else setup.repairable_layers
    records = []
    for layer_index in layer_indices:
        result = point_repair(setup.network, layer_index, spec, norm=norm, backend=backend)
        record = {
            "method": "PR",
            "layer_index": layer_index,
            "num_points": points.shape[0],
            "feasible": result.feasible,
            **{f"time_{key}": value for key, value in result.timing.as_dict().items()},
        }
        if result.feasible:
            record["efficacy"] = efficacy(result.network, points, labels)
            record["drawdown"] = drawdown(
                setup.network, result.network, setup.drawdown_images, setup.drawdown_labels
            )
            record["delta_linf"] = result.delta_linf_norm
        else:
            record["efficacy"] = float("nan")
            record["drawdown"] = float("nan")
            record["delta_linf"] = float("nan")
        records.append(record)
    return records


def best_drawdown_record(records: list[dict]) -> dict:
    """The feasible per-layer record with the smallest drawdown (Table 1's "BD")."""
    feasible = [record for record in records if record["feasible"]]
    if not feasible:
        raise ValueError("no layer admitted a feasible repair")
    return min(feasible, key=lambda record: record["drawdown"])


def fine_tune_baseline(
    setup: Task1Setup,
    num_points: int,
    *,
    learning_rate: float = 0.01,
    batch_size: int = 2,
    max_epochs: int = 200,
    seed: int = 0,
) -> dict:
    """The FT baseline on the same repair set (one hyperparameter setting)."""
    points, labels = setup.repair_subset(num_points)
    result = fine_tune(
        setup.network,
        points,
        labels,
        learning_rate=learning_rate,
        batch_size=batch_size,
        max_epochs=max_epochs,
        seed=seed,
    )
    return {
        "method": "FT",
        "num_points": points.shape[0],
        "converged": result.converged,
        "efficacy": 100.0 * result.final_accuracy,
        "drawdown": drawdown(
            setup.network, result.network, setup.drawdown_images, setup.drawdown_labels
        ),
        "time_total": result.seconds,
    }


def modified_fine_tune_baseline(
    setup: Task1Setup,
    num_points: int,
    layer_indices: list[int] | None = None,
    *,
    learning_rate: float = 0.01,
    batch_size: int = 2,
    max_epochs: int = 60,
    seed: int = 0,
) -> dict:
    """The MFT baseline: tune each layer separately, report the best drawdown."""
    points, labels = setup.repair_subset(num_points)
    layer_indices = layer_indices if layer_indices is not None else setup.repairable_layers
    best: dict | None = None
    for layer_index in layer_indices:
        result = modified_fine_tune(
            setup.network,
            points,
            labels,
            layer_index,
            learning_rate=learning_rate,
            batch_size=batch_size,
            max_epochs=max_epochs,
            seed=seed,
        )
        record = {
            "method": "MFT",
            "layer_index": layer_index,
            "num_points": points.shape[0],
            "efficacy": 100.0 * result.efficacy,
            "drawdown": drawdown(
                setup.network, result.network, setup.drawdown_images, setup.drawdown_labels
            ),
            "time_total": result.seconds,
        }
        if best is None or record["drawdown"] < best["drawdown"]:
            best = record
    assert best is not None
    return best


def table1(
    setup: Task1Setup,
    point_counts: list[int],
    *,
    norm: str = "linf",
    ft_hyperparameters: tuple[dict, dict] | None = None,
    mft_hyperparameters: tuple[dict, dict] | None = None,
) -> list[dict]:
    """Reproduce Table 1: one row per repair-set size.

    Each row reports the best-drawdown Provable Repair layer, the two FT
    hyperparameter settings, and the two MFT settings (best layer each).
    """
    if ft_hyperparameters is None:
        ft_hyperparameters = (
            {"learning_rate": 0.01, "batch_size": 2},
            {"learning_rate": 0.01, "batch_size": 16},
        )
    if mft_hyperparameters is None:
        mft_hyperparameters = (
            {"learning_rate": 0.01, "batch_size": 2},
            {"learning_rate": 0.01, "batch_size": 16},
        )
    rows = []
    for num_points in point_counts:
        pr_records = provable_repair_per_layer(setup, num_points, norm=norm)
        pr_best = best_drawdown_record(pr_records)
        ft_first = fine_tune_baseline(setup, num_points, **ft_hyperparameters[0])
        ft_second = fine_tune_baseline(setup, num_points, **ft_hyperparameters[1])
        mft_first = modified_fine_tune_baseline(setup, num_points, **mft_hyperparameters[0])
        mft_second = modified_fine_tune_baseline(setup, num_points, **mft_hyperparameters[1])
        rows.append(
            {
                "points": num_points,
                "pr_drawdown": pr_best["drawdown"],
                "pr_time": pr_best["time_total"],
                "ft1_drawdown": ft_first["drawdown"],
                "ft1_time": ft_first["time_total"],
                "ft2_drawdown": ft_second["drawdown"],
                "ft2_time": ft_second["time_total"],
                "mft1_efficacy": mft_first["efficacy"],
                "mft1_drawdown": mft_first["drawdown"],
                "mft1_time": mft_first["time_total"],
                "mft2_efficacy": mft_second["efficacy"],
                "mft2_drawdown": mft_second["drawdown"],
                "mft2_time": mft_second["time_total"],
            }
        )
    return rows


def pointwise_verification_spec(
    points: np.ndarray,
    labels: np.ndarray,
    num_classes: int,
    *,
    margin: float = CLASSIFICATION_MARGIN,
) -> VerificationSpec:
    """A verification spec with one degenerate box per classification point.

    Each point becomes a single-point :class:`~repro.verify.base.Box`
    region paired with a "classified as ``labels[i]`` by ``margin``"
    polytope — the closed-loop mirror of
    :meth:`PointRepairSpec.from_labels`.  Single-point regions are exactly
    what :class:`~repro.verify.sampling.GridVerifier` with
    ``certify_exhaustive=True`` can both sweep in one stacked pass and
    *certify*, so a driver run over this spec can terminate ``certified``.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    labels = np.asarray(labels, dtype=int).ravel()
    if points.shape[0] != labels.size:
        raise ValueError("one label per point is required")
    spec = VerificationSpec()
    for index in range(points.shape[0]):
        spec.add_box(
            points[index],
            points[index],
            classification_constraint(num_classes, int(labels[index]), margin),
            name=f"point-{index}",
        )
    return spec


@dataclass
class PointwiseRepairWorkload:
    """A feasible-by-construction driver workload over MiniSqueezeNet.

    ``buggy`` is ``original`` with its classifier convolution perturbed by a
    known delta; ``points`` are inputs the original network classifies with
    a comfortable margin but the buggy network does not.  Restoring the
    classifier parameters exactly reproduces the original's outputs (the
    classifier feeds only the linear global-average pool, so no activation
    pattern downstream of the perturbation exists to disagree), so the
    repair LP is feasible at *any* number of points — which is what lets
    the workload scale to 10⁵+ constraint rows while staying certifiable.
    """

    original: Network
    buggy: Network
    points: np.ndarray
    labels: np.ndarray
    classifier_layer: int
    num_classes: int

    @property
    def num_points(self) -> int:
        """Number of repair points in the workload."""
        return self.points.shape[0]

    @property
    def constraint_rows(self) -> int:
        """LP constraint rows the pointwise spec expands to."""
        return self.num_points * (self.num_classes - 1)

    def verification_spec(self, margin: float = CLASSIFICATION_MARGIN) -> VerificationSpec:
        """The pointwise verification spec of this workload."""
        return pointwise_verification_spec(
            self.points, self.labels, self.num_classes, margin=margin
        )


def _argmax_margins(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-row margin of ``labels`` over the best competing class."""
    rows = np.arange(logits.shape[0])
    masked = logits.copy()
    masked[rows, labels] = -np.inf
    return logits[rows, labels] - np.max(masked, axis=1)


def classifier_perturbation_workload(
    num_points: int,
    *,
    side: int = 16,
    num_classes: int = 9,
    seed: int = 0,
    bug_class: int = 0,
    label_margin: float = 1e-2,
    violation_margin: float = 1e-4,
    batch_size: int = 1024,
) -> PointwiseRepairWorkload:
    """Build a scalable, certifiably repairable classification workload.

    An untrained MiniSqueezeNet's logits are dominated by the classifier
    biases (it classifies everything as one class), so the classifier
    biases are first *calibrated* — shifted so every class's mean logit
    over a probe batch is zero — which makes the argmax input-driven.  The
    bug is then a targeted boost of ``bug_class``'s classifier bias, sized
    from the probe batch's measured margin distribution so that the buggy
    network misclassifies the vast majority of inputs whose true label is
    another class.  Candidate inputs are drawn uniformly from the image
    cube and kept when the calibrated network's own argmax margin exceeds
    ``label_margin`` *and* the buggy network violates the classification
    constraint by more than ``violation_margin`` — so round 1 of a driver
    run pools every spec point, and the exact inverse of the bias boost
    witnesses LP feasibility at any workload size.  Candidates are
    generated in ``batch_size`` chunks to bound the working set regardless
    of ``num_points``.
    """
    if num_points < 1:
        raise ValueError("num_points must be positive")
    if not 0 <= bug_class < num_classes:
        raise ValueError("bug_class must name one of the classes")
    rng = ensure_rng(seed)
    original = build_mini_squeezenet(side=side, num_classes=num_classes, seed=seed)
    classifier_layer = original.parameterized_layer_indices()[-1]
    layer = original.layers[classifier_layer]

    # Calibrate: a classifier-conv bias shifts its class's global-average
    # logit one-for-one, so subtracting the probe-batch mean logits centers
    # every class and the argmax becomes input-driven.
    probe = rng.uniform(0.0, 1.0, size=(batch_size, original.input_size))
    parameters = layer.get_parameters()
    parameters[-num_classes:] -= np.mean(original.compute(probe), axis=0)
    layer.set_parameters(parameters)

    # Size the bug from the calibrated margin distribution: boosting
    # ``bug_class`` past the 95th percentile of (label logit − bug-class
    # logit) flips ~95% of other-class inputs to the bug class.
    logits = original.compute(probe)
    labels = np.argmax(logits, axis=1)
    others = labels != bug_class
    gaps = logits[others, labels[others]] - logits[others, bug_class]
    boost = float(np.percentile(gaps, 95)) + label_margin + CLASSIFICATION_MARGIN

    buggy = original.copy()
    parameters = buggy.layers[classifier_layer].get_parameters()
    parameters[-num_classes + bug_class] += boost
    buggy.layers[classifier_layer].set_parameters(parameters)

    kept_points: list[np.ndarray] = []
    kept_labels: list[np.ndarray] = []
    kept = 0
    for _ in range(max(64, 8 * -(-num_points // batch_size))):
        if kept >= num_points:
            break
        candidates = rng.uniform(0.0, 1.0, size=(batch_size, original.input_size))
        original_logits = original.compute(candidates)
        labels = np.argmax(original_logits, axis=1)
        original_margin = _argmax_margins(original_logits, labels)
        buggy_margin = _argmax_margins(buggy.compute(candidates), labels)
        selected = np.where(
            (original_margin >= label_margin)
            & (buggy_margin < CLASSIFICATION_MARGIN - violation_margin)
        )[0]
        if selected.size:
            selected = selected[: num_points - kept]
            kept_points.append(candidates[selected])
            kept_labels.append(labels[selected])
            kept += selected.size
    if kept < num_points:
        raise RuntimeError(
            f"only {kept}/{num_points} violating candidates found; "
            "loosen label_margin or change the seed"
        )
    return PointwiseRepairWorkload(
        original=original,
        buggy=buggy,
        points=np.vstack(kept_points),
        labels=np.concatenate(kept_labels),
        classifier_layer=classifier_layer,
        num_classes=num_classes,
    )


def driver_certified_repair(
    workload: PointwiseRepairWorkload,
    *,
    memory_budget: int | None = None,
    backend: str | None = None,
    engine=None,
    max_rounds: int = 4,
    budget_seconds: float | None = None,
    checkpoint_path=None,
    on_round=None,
) -> tuple[DriverReport, RepairDriver]:
    """Run the full CEGIS driver on a pointwise workload, aiming for *certified*.

    This is the first driver-certified path through the Task 1 models: the
    exhaustively-certifying grid verifier sweeps the pointwise spec in one
    stacked pass per round, the incremental sparse LP session absorbs the
    pooled points, and — when ``memory_budget`` is set — constraint rows
    stream through :class:`~repro.core.jacobian.JacobianChunkStream` while
    old pool entries spill to disk, keeping peak memory bounded at 10⁵+
    rows.  Returns ``(report, driver)`` so callers can inspect the pool's
    spill statistics alongside the report.
    """
    verifier = GridVerifier(certify_exhaustive=True)
    config = DriverConfig(
        layer_schedule=(workload.classifier_layer,),
        incremental=True,
        sparse=True,
        backend=backend,
        max_rounds=max_rounds,
        budget_seconds=budget_seconds,
        memory_budget=memory_budget,
    )
    driver = RepairDriver(
        workload.buggy,
        workload.verification_spec(),
        verifier,
        config=config,
        engine=engine,
        checkpoint_path=checkpoint_path,
        on_round=on_round,
    )
    return driver.run(), driver


def table4(setup: Task1Setup, point_counts: list[int], *, norm: str = "linf") -> list[dict]:
    """Reproduce the appendix Table 4: per-size layer feasibility and extremes."""
    rows = []
    for num_points in point_counts:
        records = provable_repair_per_layer(setup, num_points, norm=norm)
        feasible = [record for record in records if record["feasible"]]
        drawdowns = [record["drawdown"] for record in feasible]
        times = [record["time_total"] for record in feasible]
        best = best_drawdown_record(records) if feasible else None
        rows.append(
            {
                "points": num_points,
                "feasible_layers": len(feasible),
                "total_layers": len(records),
                "best_drawdown": min(drawdowns) if drawdowns else float("nan"),
                "worst_drawdown": max(drawdowns) if drawdowns else float("nan"),
                "fastest_time": min(times) if times else float("nan"),
                "slowest_time": max(times) if times else float("nan"),
                "best_drawdown_time": best["time_total"] if best else float("nan"),
            }
        )
    return rows
