"""Task 1: pointwise repair of a convolutional image classifier.

Mirrors §7.1 of the paper: the buggy network is a convolutional classifier
(MiniSqueezeNet standing in for SqueezeNet), the repair set is drawn from a
pool of "natural adversarial" images the network misclassifies, the drawdown
set is the held-out clean validation set, and repairs are attempted at every
convolutional layer.  The outputs of this module feed Table 1, Table 4, and
Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.fine_tune import fine_tune
from repro.baselines.modified_fine_tune import modified_fine_tune
from repro.core.point_repair import point_repair
from repro.core.specs import PointRepairSpec
from repro.experiments.metrics import accuracy_percent, drawdown, efficacy
from repro.models.zoo import ModelZoo
from repro.nn.network import Network

#: Margin used for the "classified as label y" constraints; a small positive
#: margin keeps repaired classifications strict under floating-point noise.
CLASSIFICATION_MARGIN = 1e-3


@dataclass
class Task1Setup:
    """Everything Task 1 needs: the buggy network and the evaluation sets."""

    network: Network
    repair_pool_images: np.ndarray
    repair_pool_labels: np.ndarray
    drawdown_images: np.ndarray
    drawdown_labels: np.ndarray
    buggy_pool_accuracy: float
    buggy_drawdown_accuracy: float

    @property
    def repairable_layers(self) -> list[int]:
        """Indices of the convolutional (repairable) layers."""
        return self.network.parameterized_layer_indices()

    def repair_subset(self, num_points: int) -> tuple[np.ndarray, np.ndarray]:
        """The first ``num_points`` images of the adversarial pool."""
        count = min(num_points, self.repair_pool_images.shape[0])
        return self.repair_pool_images[:count], self.repair_pool_labels[:count]


def setup_task1(
    zoo: ModelZoo | None = None,
    *,
    train_per_class: int = 40,
    validation_per_class: int = 20,
    adversarial_per_class: int = 25,
    epochs: int = 25,
    seed: int = 0,
) -> Task1Setup:
    """Generate the data, train (or load) the buggy network, and bundle it up."""
    zoo = zoo if zoo is not None else ModelZoo()
    dataset = zoo.mini_imagenet(
        train_per_class=train_per_class,
        validation_per_class=validation_per_class,
        adversarial_per_class=adversarial_per_class,
        seed=seed,
    )
    network = zoo.mini_squeezenet(dataset, epochs=epochs, seed=seed)
    return Task1Setup(
        network=network,
        repair_pool_images=dataset.adversarial_images,
        repair_pool_labels=dataset.adversarial_labels,
        drawdown_images=dataset.validation_images,
        drawdown_labels=dataset.validation_labels,
        buggy_pool_accuracy=accuracy_percent(
            network, dataset.adversarial_images, dataset.adversarial_labels
        ),
        buggy_drawdown_accuracy=accuracy_percent(
            network, dataset.validation_images, dataset.validation_labels
        ),
    )


def provable_repair_per_layer(
    setup: Task1Setup,
    num_points: int,
    layer_indices: list[int] | None = None,
    *,
    norm: str = "linf",
    margin: float = CLASSIFICATION_MARGIN,
    backend: str | None = None,
) -> list[dict]:
    """Run Provable Repair at each requested layer; one record per layer.

    Each record carries feasibility, efficacy (100 when feasible), drawdown,
    and the timing breakdown — the raw material of Table 1/Table 4/Figure 7.
    """
    points, labels = setup.repair_subset(num_points)
    spec = PointRepairSpec.from_labels(
        points, labels, num_classes=setup.network.output_size, margin=margin
    )
    layer_indices = layer_indices if layer_indices is not None else setup.repairable_layers
    records = []
    for layer_index in layer_indices:
        result = point_repair(setup.network, layer_index, spec, norm=norm, backend=backend)
        record = {
            "method": "PR",
            "layer_index": layer_index,
            "num_points": points.shape[0],
            "feasible": result.feasible,
            **{f"time_{key}": value for key, value in result.timing.as_dict().items()},
        }
        if result.feasible:
            record["efficacy"] = efficacy(result.network, points, labels)
            record["drawdown"] = drawdown(
                setup.network, result.network, setup.drawdown_images, setup.drawdown_labels
            )
            record["delta_linf"] = result.delta_linf_norm
        else:
            record["efficacy"] = float("nan")
            record["drawdown"] = float("nan")
            record["delta_linf"] = float("nan")
        records.append(record)
    return records


def best_drawdown_record(records: list[dict]) -> dict:
    """The feasible per-layer record with the smallest drawdown (Table 1's "BD")."""
    feasible = [record for record in records if record["feasible"]]
    if not feasible:
        raise ValueError("no layer admitted a feasible repair")
    return min(feasible, key=lambda record: record["drawdown"])


def fine_tune_baseline(
    setup: Task1Setup,
    num_points: int,
    *,
    learning_rate: float = 0.01,
    batch_size: int = 2,
    max_epochs: int = 200,
    seed: int = 0,
) -> dict:
    """The FT baseline on the same repair set (one hyperparameter setting)."""
    points, labels = setup.repair_subset(num_points)
    result = fine_tune(
        setup.network,
        points,
        labels,
        learning_rate=learning_rate,
        batch_size=batch_size,
        max_epochs=max_epochs,
        seed=seed,
    )
    return {
        "method": "FT",
        "num_points": points.shape[0],
        "converged": result.converged,
        "efficacy": 100.0 * result.final_accuracy,
        "drawdown": drawdown(
            setup.network, result.network, setup.drawdown_images, setup.drawdown_labels
        ),
        "time_total": result.seconds,
    }


def modified_fine_tune_baseline(
    setup: Task1Setup,
    num_points: int,
    layer_indices: list[int] | None = None,
    *,
    learning_rate: float = 0.01,
    batch_size: int = 2,
    max_epochs: int = 60,
    seed: int = 0,
) -> dict:
    """The MFT baseline: tune each layer separately, report the best drawdown."""
    points, labels = setup.repair_subset(num_points)
    layer_indices = layer_indices if layer_indices is not None else setup.repairable_layers
    best: dict | None = None
    for layer_index in layer_indices:
        result = modified_fine_tune(
            setup.network,
            points,
            labels,
            layer_index,
            learning_rate=learning_rate,
            batch_size=batch_size,
            max_epochs=max_epochs,
            seed=seed,
        )
        record = {
            "method": "MFT",
            "layer_index": layer_index,
            "num_points": points.shape[0],
            "efficacy": 100.0 * result.efficacy,
            "drawdown": drawdown(
                setup.network, result.network, setup.drawdown_images, setup.drawdown_labels
            ),
            "time_total": result.seconds,
        }
        if best is None or record["drawdown"] < best["drawdown"]:
            best = record
    assert best is not None
    return best


def table1(
    setup: Task1Setup,
    point_counts: list[int],
    *,
    norm: str = "linf",
    ft_hyperparameters: tuple[dict, dict] | None = None,
    mft_hyperparameters: tuple[dict, dict] | None = None,
) -> list[dict]:
    """Reproduce Table 1: one row per repair-set size.

    Each row reports the best-drawdown Provable Repair layer, the two FT
    hyperparameter settings, and the two MFT settings (best layer each).
    """
    if ft_hyperparameters is None:
        ft_hyperparameters = (
            {"learning_rate": 0.01, "batch_size": 2},
            {"learning_rate": 0.01, "batch_size": 16},
        )
    if mft_hyperparameters is None:
        mft_hyperparameters = (
            {"learning_rate": 0.01, "batch_size": 2},
            {"learning_rate": 0.01, "batch_size": 16},
        )
    rows = []
    for num_points in point_counts:
        pr_records = provable_repair_per_layer(setup, num_points, norm=norm)
        pr_best = best_drawdown_record(pr_records)
        ft_first = fine_tune_baseline(setup, num_points, **ft_hyperparameters[0])
        ft_second = fine_tune_baseline(setup, num_points, **ft_hyperparameters[1])
        mft_first = modified_fine_tune_baseline(setup, num_points, **mft_hyperparameters[0])
        mft_second = modified_fine_tune_baseline(setup, num_points, **mft_hyperparameters[1])
        rows.append(
            {
                "points": num_points,
                "pr_drawdown": pr_best["drawdown"],
                "pr_time": pr_best["time_total"],
                "ft1_drawdown": ft_first["drawdown"],
                "ft1_time": ft_first["time_total"],
                "ft2_drawdown": ft_second["drawdown"],
                "ft2_time": ft_second["time_total"],
                "mft1_efficacy": mft_first["efficacy"],
                "mft1_drawdown": mft_first["drawdown"],
                "mft1_time": mft_first["time_total"],
                "mft2_efficacy": mft_second["efficacy"],
                "mft2_drawdown": mft_second["drawdown"],
                "mft2_time": mft_second["time_total"],
            }
        )
    return rows


def table4(setup: Task1Setup, point_counts: list[int], *, norm: str = "linf") -> list[dict]:
    """Reproduce the appendix Table 4: per-size layer feasibility and extremes."""
    rows = []
    for num_points in point_counts:
        records = provable_repair_per_layer(setup, num_points, norm=norm)
        feasible = [record for record in records if record["feasible"]]
        drawdowns = [record["drawdown"] for record in feasible]
        times = [record["time_total"] for record in feasible]
        best = best_drawdown_record(records) if feasible else None
        rows.append(
            {
                "points": num_points,
                "feasible_layers": len(feasible),
                "total_layers": len(records),
                "best_drawdown": min(drawdowns) if drawdowns else float("nan"),
                "worst_drawdown": max(drawdowns) if drawdowns else float("nan"),
                "fastest_time": min(times) if times else float("nan"),
                "slowest_time": max(times) if times else float("nan"),
                "best_drawdown_time": best["time_total"] if best else float("nan"),
            }
        )
    return rows
