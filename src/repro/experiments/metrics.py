"""Efficacy, drawdown, and generalization metrics (paper §7, "Terms used").

* *Efficacy* — accuracy of the repaired network on the repair set (Provable
  Repair guarantees 100%; the baselines do not).
* *Drawdown* — accuracy of the *buggy* network on the drawdown set minus the
  accuracy of the *repaired* network on it.  Lower is better; negative
  drawdown means the repair incidentally improved the drawdown set.
* *Generalization* — accuracy of the *repaired* network on the
  generalization set minus the accuracy of the *buggy* network on it.
  Higher is better.

All three helpers accept anything with an ``accuracy(inputs, labels)``
method (both :class:`repro.nn.network.Network` and
:class:`repro.core.ddnn.DecoupledNetwork` qualify).
"""

from __future__ import annotations

import numpy as np


def efficacy(repaired, repair_inputs: np.ndarray, repair_labels: np.ndarray) -> float:
    """Accuracy of the repaired network on the repair set, as a percentage."""
    return 100.0 * repaired.accuracy(repair_inputs, repair_labels)


def drawdown(
    buggy,
    repaired,
    drawdown_inputs: np.ndarray,
    drawdown_labels: np.ndarray,
) -> float:
    """Percentage-point accuracy drop on the drawdown set (lower is better)."""
    before = buggy.accuracy(drawdown_inputs, drawdown_labels)
    after = repaired.accuracy(drawdown_inputs, drawdown_labels)
    return 100.0 * (before - after)


def generalization(
    buggy,
    repaired,
    generalization_inputs: np.ndarray,
    generalization_labels: np.ndarray,
) -> float:
    """Percentage-point accuracy gain on the generalization set (higher is better)."""
    before = buggy.accuracy(generalization_inputs, generalization_labels)
    after = repaired.accuracy(generalization_inputs, generalization_labels)
    return 100.0 * (after - before)


def accuracy_percent(network, inputs: np.ndarray, labels: np.ndarray) -> float:
    """Plain accuracy as a percentage (convenience for reporting)."""
    return 100.0 * network.accuracy(inputs, labels)
