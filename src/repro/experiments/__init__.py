"""Experiment drivers that regenerate the paper's tables and figures.

Each task module exposes a ``setup_*`` function that builds (or loads from
the model-zoo cache) the buggy network and datasets, plus ``run_*`` functions
that perform the repairs and return plain records (lists of dictionaries)
which the benchmark harness and the reporting helpers turn into the paper's
tables:

* :mod:`repro.experiments.task1_imagenet` — Task 1 (pointwise repair of a
  convolutional image classifier); Table 1, Table 4, Figure 7.
* :mod:`repro.experiments.task2_mnist_lines` — Task 2 (1-D polytope repair
  of a digit classifier on fog lines); Table 2, Table 3.
* :mod:`repro.experiments.task3_acas` — Task 3 (2-D polytope repair of the
  collision-avoidance network); §7.3 results.
* :mod:`repro.experiments.metrics` — efficacy / drawdown / generalization.
* :mod:`repro.experiments.figures` — the data series behind Figures 3–5 and 7.
* :mod:`repro.experiments.reporting` — plain-text table formatting.
"""

from repro.experiments.metrics import drawdown, efficacy, generalization
from repro.experiments.reporting import format_seconds, format_table

__all__ = [
    "drawdown",
    "efficacy",
    "generalization",
    "format_seconds",
    "format_table",
]
