"""Data series behind the paper's figures.

No plotting library is available offline, so each helper returns the numeric
series a plot would show; the figure benchmarks print them and
EXPERIMENTS.md records the qualitative comparison against the paper.

* Figures 3–5 — the running example: input–output curves and linear-region
  boundaries of N₁/N₂ and of the pointwise/polytope-repaired networks.
* Figure 7 — per-layer drawdown and per-layer timing breakdown of Task 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ddnn import DecoupledNetwork
from repro.nn.network import Network
from repro.polytope.segment import LineSegment
from repro.syrenn.line import transform_line


@dataclass
class CurveData:
    """An input–output curve plus the linear-region boundaries on the x axis."""

    inputs: np.ndarray
    outputs: np.ndarray
    region_boundaries: np.ndarray


def input_output_curve(
    network: Network | DecoupledNetwork,
    low: float = -1.0,
    high: float = 2.0,
    samples: int = 121,
) -> CurveData:
    """The data of Figures 3(c)/(d), 4(c)/(d), 5(c)/(d) for a 1-D network.

    ``network`` must map a 1-dimensional input to a 1-dimensional output.
    Region boundaries are computed with the SyReNN line decomposition on the
    activation channel (for a DDNN) or the network itself.
    """
    if network.input_size != 1 or network.output_size != 1:
        raise ValueError("input_output_curve expects a 1-input/1-output network")
    inputs = np.linspace(low, high, samples)
    outputs = np.array([float(network.compute(np.array([value]))[0]) for value in inputs])
    pwl_network = network.activation if isinstance(network, DecoupledNetwork) else network
    partition = transform_line(pwl_network, LineSegment(np.array([low]), np.array([high])))
    boundaries = partition.breakpoint_inputs.ravel()
    return CurveData(inputs=inputs, outputs=outputs, region_boundaries=boundaries)


def per_layer_drawdown_series(records: list[dict]) -> dict[str, np.ndarray]:
    """Figure 7(a): drawdown per repaired layer from Task 1 per-layer records.

    ``records`` is the output of
    :func:`repro.experiments.task1_imagenet.provable_repair_per_layer`.
    Infeasible layers are reported as NaN drawdown.
    """
    layers = np.array([record["layer_index"] for record in records])
    drawdowns = np.array(
        [record["drawdown"] if record["feasible"] else np.nan for record in records]
    )
    return {"layer_index": layers, "drawdown": drawdowns}


def per_layer_timing_series(records: list[dict]) -> dict[str, np.ndarray]:
    """Figure 7(b): per-layer repair time split into Jacobian / LP / other."""
    layers = np.array([record["layer_index"] for record in records])
    jacobian = np.array([record["time_jacobian"] for record in records])
    lp = np.array([record["time_lp"] for record in records])
    other = np.array([record["time_other"] + record["time_linregions"] for record in records])
    return {"layer_index": layers, "jacobian": jacobian, "lp": lp, "other": other}
