"""Task 2: 1-D polytope repair of a digit classifier on fog lines.

Mirrors §7.2 of the paper: each repair polytope is the line segment from a
clean digit image to its fog-corrupted version, and the specification
requires every point of the line to be classified as the clean image's
label.  Provable Polytope Repair is compared against FT and MFT, which are
only given finitely many sampled points from the lines.  The outputs of this
module feed Table 2 and Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.fine_tune import fine_tune
from repro.baselines.modified_fine_tune import modified_fine_tune
from repro.core.polytope_repair import polytope_repair, reduce_to_key_points
from repro.core.specs import PolytopeRepairSpec, classification_constraint
from repro.datasets.corruptions import corrupt_batch, fog_corrupt
from repro.datasets.digits import DigitDataset
from repro.experiments.metrics import accuracy_percent, drawdown, generalization
from repro.models.mnist_models import DIGIT_LAYER_2_INDEX, DIGIT_LAYER_3_INDEX
from repro.models.zoo import ModelZoo
from repro.nn.network import Network
from repro.polytope.segment import LineSegment
from repro.utils.rng import ensure_rng

#: Margin for the classification constraints along the repaired lines.
CLASSIFICATION_MARGIN = 1e-3


@dataclass
class Task2Setup:
    """The buggy digit network, the fog lines, and the evaluation sets."""

    network: Network
    dataset: DigitDataset
    lines: list[LineSegment]
    line_labels: np.ndarray
    generalization_images: np.ndarray
    generalization_labels: np.ndarray
    drawdown_images: np.ndarray
    drawdown_labels: np.ndarray
    buggy_fog_accuracy: float
    buggy_clean_accuracy: float

    @property
    def layer_2_index(self) -> int:
        """Index of the middle fully-connected layer ("Layer 2" of Table 2)."""
        return DIGIT_LAYER_2_INDEX

    @property
    def layer_3_index(self) -> int:
        """Index of the final fully-connected layer ("Layer 3" of Table 2)."""
        return DIGIT_LAYER_3_INDEX


def setup_task2(
    zoo: ModelZoo | None = None,
    *,
    max_lines: int = 100,
    train_per_class: int = 60,
    test_per_class: int = 40,
    epochs: int = 30,
    fog_severity: float = 1.0,
    hidden_sizes: tuple[int, int] = (64, 32),
    seed: int = 0,
) -> Task2Setup:
    """Generate data, train (or load) the digit network, and build fog lines.

    ``hidden_sizes`` selects the classifier width; the zoo caches one
    trained network per configuration, so sweeps over widths (or smaller
    smoke-test networks) do not retrain the default.
    """
    zoo = zoo if zoo is not None else ModelZoo()
    rng = ensure_rng(seed)
    dataset = zoo.digit_dataset(train_per_class, test_per_class, seed=seed)
    network = zoo.digit_network(dataset, hidden_sizes=hidden_sizes, epochs=epochs, seed=seed)

    # Fog-corrupted copy of the whole test set (the generalization set).
    fog_images = corrupt_batch(
        dataset.test_images, fog_corrupt, severity=fog_severity, rng=rng, side=dataset.side
    )

    # Lines from clean test images to their fog-corrupted versions.  The paper
    # builds its lines from the images it wants repaired; we take the first
    # ``max_lines`` test images (their fog endpoints are typically
    # misclassified by the buggy network).
    lines = [
        LineSegment(dataset.test_images[index], fog_images[index]) for index in range(max_lines)
    ]
    line_labels = dataset.test_labels[:max_lines].copy()

    return Task2Setup(
        network=network,
        dataset=dataset,
        lines=lines,
        line_labels=line_labels,
        generalization_images=fog_images,
        generalization_labels=dataset.test_labels.copy(),
        drawdown_images=dataset.test_images.copy(),
        drawdown_labels=dataset.test_labels.copy(),
        buggy_fog_accuracy=accuracy_percent(network, fog_images, dataset.test_labels),
        buggy_clean_accuracy=accuracy_percent(
            network, dataset.test_images, dataset.test_labels
        ),
    )


def line_specification(setup: Task2Setup, num_lines: int, margin: float = CLASSIFICATION_MARGIN) -> PolytopeRepairSpec:
    """The polytope specification over the first ``num_lines`` fog lines."""
    num_lines = min(num_lines, len(setup.lines))
    spec = PolytopeRepairSpec()
    for index in range(num_lines):
        constraint = classification_constraint(
            setup.network.output_size, int(setup.line_labels[index]), margin
        )
        spec.add_segment(setup.lines[index], constraint)
    return spec


#: Margin of the strengthened fog-line specification (see below).
STRENGTHENED_MARGIN = 5e-2


def strengthened_line_specification(
    setup: Task2Setup, num_lines: int, margin: float = STRENGTHENED_MARGIN
) -> PolytopeRepairSpec:
    """The fog-line specification with a decisively strengthened margin.

    Same lines and labels as :func:`line_specification`, but the winning
    logit must beat every other logit by ``margin`` (default 0.05 instead of
    0.001) at *every* point of every line.  The stronger obligation violates
    many more linear regions — including regions whose classification was
    already correct but marginal — which is the regime the polytope-CEGIS
    driver exists for: many rounds of region discovery, incremental LP
    growth, and cached re-verification.
    """
    return line_specification(setup, num_lines, margin=margin)


def provable_line_repair(
    setup: Task2Setup,
    num_lines: int,
    layer_index: int,
    *,
    norm: str = "linf",
    backend: str | None = None,
) -> dict:
    """Provable Polytope Repair of ``layer_index`` on the first ``num_lines`` lines."""
    spec = line_specification(setup, num_lines)
    result = polytope_repair(setup.network, layer_index, spec, norm=norm, backend=backend)
    record = {
        "method": "PR",
        "layer_index": layer_index,
        "lines": min(num_lines, len(setup.lines)),
        "key_points": result.num_key_points,
        "feasible": result.feasible,
        **{f"time_{key}": value for key, value in result.timing.as_dict().items()},
    }
    if result.feasible:
        record["drawdown"] = drawdown(
            setup.network, result.network, setup.drawdown_images, setup.drawdown_labels
        )
        record["generalization"] = generalization(
            setup.network,
            result.network,
            setup.generalization_images,
            setup.generalization_labels,
        )
        # Efficacy check on dense samples along the repaired lines (the
        # guarantee covers *all* points; sampling is only a sanity check).
        record["efficacy"] = _line_efficacy(result.network, setup, num_lines)
    else:
        record["drawdown"] = float("nan")
        record["generalization"] = float("nan")
        record["efficacy"] = float("nan")
    return record


def _line_efficacy(network, setup: Task2Setup, num_lines: int, samples_per_line: int = 9) -> float:
    """Accuracy of ``network`` on dense samples of the repaired lines (percent)."""
    num_lines = min(num_lines, len(setup.lines))
    ratios = np.linspace(0.0, 1.0, samples_per_line)
    points, labels = [], []
    for index in range(num_lines):
        points.append(setup.lines[index].points_at(ratios))
        labels.extend([setup.line_labels[index]] * samples_per_line)
    return 100.0 * network.accuracy(np.vstack(points), np.array(labels, dtype=int))


def sampled_line_points(
    setup: Task2Setup, num_lines: int, total_points: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Finite samples from the lines for the FT/MFT baselines.

    The paper gives the baselines "the same number of randomly-sampled points
    as key points in the PR algorithm"; callers pass that count as
    ``total_points``.
    """
    num_lines = min(num_lines, len(setup.lines))
    rng = ensure_rng(seed)
    per_line = max(2, int(np.ceil(total_points / num_lines)))
    points, labels = [], []
    for index in range(num_lines):
        sampled = setup.lines[index].sample(per_line, rng)
        points.append(sampled)
        labels.extend([setup.line_labels[index]] * per_line)
    points = np.vstack(points)[:total_points]
    labels = np.array(labels, dtype=int)[:total_points]
    return points, labels


def fine_tune_lines(
    setup: Task2Setup,
    num_lines: int,
    num_sample_points: int,
    *,
    learning_rate: float = 0.05,
    momentum: float = 0.9,
    batch_size: int = 16,
    max_epochs: int = 500,
    seed: int = 0,
) -> dict:
    """The FT baseline on sampled line points."""
    points, labels = sampled_line_points(setup, num_lines, num_sample_points, seed=seed)
    result = fine_tune(
        setup.network,
        points,
        labels,
        learning_rate=learning_rate,
        momentum=momentum,
        batch_size=batch_size,
        max_epochs=max_epochs,
        seed=seed,
    )
    return {
        "method": "FT",
        "lines": min(num_lines, len(setup.lines)),
        "converged": result.converged,
        "efficacy": 100.0 * result.final_accuracy,
        "drawdown": drawdown(
            setup.network, result.network, setup.drawdown_images, setup.drawdown_labels
        ),
        "generalization": generalization(
            setup.network, result.network, setup.generalization_images, setup.generalization_labels
        ),
        "time_total": result.seconds,
    }


def modified_fine_tune_lines(
    setup: Task2Setup,
    num_lines: int,
    num_sample_points: int,
    layer_index: int,
    *,
    learning_rate: float = 0.05,
    momentum: float = 0.9,
    batch_size: int = 16,
    max_epochs: int = 100,
    seed: int = 0,
) -> dict:
    """The MFT baseline on sampled line points, tuning a single layer."""
    points, labels = sampled_line_points(setup, num_lines, num_sample_points, seed=seed)
    result = modified_fine_tune(
        setup.network,
        points,
        labels,
        layer_index,
        learning_rate=learning_rate,
        momentum=momentum,
        batch_size=batch_size,
        max_epochs=max_epochs,
        seed=seed,
    )
    return {
        "method": "MFT",
        "layer_index": layer_index,
        "lines": min(num_lines, len(setup.lines)),
        "efficacy": 100.0 * result.efficacy,
        "drawdown": drawdown(
            setup.network, result.network, setup.drawdown_images, setup.drawdown_labels
        ),
        "generalization": generalization(
            setup.network, result.network, setup.generalization_images, setup.generalization_labels
        ),
        "time_total": result.seconds,
    }


def table2(
    setup: Task2Setup,
    line_counts: list[int],
    *,
    norm: str = "linf",
    ft_hyperparameters: tuple[dict, dict] | None = None,
) -> list[dict]:
    """Reproduce Table 2: PR (layers 2 and 3) vs FT[1]/FT[2] per line count."""
    if ft_hyperparameters is None:
        ft_hyperparameters = (
            {"learning_rate": 0.05, "batch_size": 16},
            {"learning_rate": 0.01, "batch_size": 16},
        )
    rows = []
    for num_lines in line_counts:
        pr_layer2 = provable_line_repair(setup, num_lines, setup.layer_2_index, norm=norm)
        pr_layer3 = provable_line_repair(setup, num_lines, setup.layer_3_index, norm=norm)
        key_points = pr_layer3["key_points"]
        ft_first = fine_tune_lines(setup, num_lines, key_points, **ft_hyperparameters[0])
        ft_second = fine_tune_lines(setup, num_lines, key_points, **ft_hyperparameters[1])
        rows.append(
            {
                "lines": num_lines,
                "key_points": key_points,
                "pr2_drawdown": pr_layer2["drawdown"],
                "pr2_generalization": pr_layer2["generalization"],
                "pr2_time": pr_layer2["time_total"],
                "pr3_drawdown": pr_layer3["drawdown"],
                "pr3_generalization": pr_layer3["generalization"],
                "pr3_time": pr_layer3["time_total"],
                "ft1_drawdown": ft_first["drawdown"],
                "ft1_generalization": ft_first["generalization"],
                "ft1_time": ft_first["time_total"],
                "ft2_drawdown": ft_second["drawdown"],
                "ft2_generalization": ft_second["generalization"],
                "ft2_time": ft_second["time_total"],
            }
        )
    return rows


def table3(
    setup: Task2Setup,
    line_counts: list[int],
    *,
    mft_hyperparameters: tuple[dict, dict] | None = None,
) -> list[dict]:
    """Reproduce Table 3: MFT on layers 2 and 3 for two hyperparameter settings."""
    if mft_hyperparameters is None:
        mft_hyperparameters = (
            {"learning_rate": 0.05, "batch_size": 16},
            {"learning_rate": 0.01, "batch_size": 16},
        )
    rows = []
    for num_lines in line_counts:
        spec = line_specification(setup, num_lines)
        key_points = len(reduce_to_key_points(setup.network, spec)[0])
        row: dict = {"lines": num_lines, "key_points": key_points}
        for setting_index, hyper in enumerate(mft_hyperparameters, start=1):
            for layer_name, layer_index in (
                ("layer2", setup.layer_2_index),
                ("layer3", setup.layer_3_index),
            ):
                record = modified_fine_tune_lines(
                    setup, num_lines, key_points, layer_index, **hyper
                )
                prefix = f"mft{setting_index}_{layer_name}"
                row[f"{prefix}_efficacy"] = record["efficacy"]
                row[f"{prefix}_drawdown"] = record["drawdown"]
                row[f"{prefix}_generalization"] = record["generalization"]
                row[f"{prefix}_time"] = record["time_total"]
        rows.append(row)
    return rows
