"""Task 3: 2-D polytope repair of the collision-avoidance network.

Mirrors §7.3 of the paper: the buggy network violates a φ8-style safety
property ("advise clear-of-conflict or weak left") on parts of a box of
encounters.  The repair specification consists of two-dimensional slices of
that box containing violations.  Because the property allows *two*
advisories (a disjunction an LP cannot encode), it is strengthened per
linear region: within each region the allowed advisory that the buggy
network already scores higher at the region's interior point becomes the
required advisory for that whole region.  Any network satisfying the
strengthened specification also satisfies the property.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.fine_tune import fine_tune
from repro.baselines.modified_fine_tune import modified_fine_tune
from repro.core.point_repair import point_repair
from repro.core.result import RepairTiming
from repro.core.specs import PointRepairSpec, PolytopeRepairSpec
from repro.datasets.acas import SafetyProperty, phi8_property
from repro.driver import DriverReport, RepairDriver
from repro.polytope.hpolytope import HPolytope
from repro.models.zoo import ModelZoo
from repro.nn.network import Network
from repro.syrenn.plane import transform_plane
from repro.utils.rng import ensure_rng
from repro.verify import SyrennVerifier, VerificationSpec, Verifier

#: Margin for the strengthened per-region classification constraints.
CLASSIFICATION_MARGIN = 1e-4


@dataclass
class Task3Setup:
    """The buggy advisory network, the property, and the evaluation sets."""

    network: Network
    safety_property: SafetyProperty
    repair_slices: list[np.ndarray]
    generalization_points: np.ndarray
    drawdown_points: np.ndarray
    buggy_violation_count: int

    @property
    def last_layer_index(self) -> int:
        """Index of the output layer (the layer Task 3 repairs)."""
        return self.network.parameterized_layer_indices()[-1]


def property_satisfaction(network, safety_property: SafetyProperty, points: np.ndarray) -> np.ndarray:
    """Boolean mask: which ``points`` the network maps to an allowed advisory."""
    predictions = np.atleast_1d(network.predict(points))
    return safety_property.satisfied_on(predictions)


def setup_task3(
    zoo: ModelZoo | None = None,
    *,
    num_slices: int = 10,
    candidate_slices: int = 80,
    samples_per_slice: int = 64,
    evaluation_points: int = 1500,
    train_size: int = 4000,
    epochs: int = 40,
    seed: int = 0,
) -> Task3Setup:
    """Train (or load) the network and find property-violating 2-D slices.

    Random axis-aligned 2-D slices of the property box are screened by
    sampling; slices on which the buggy network violates the property become
    the repair set (up to ``num_slices``).  Violating points from the
    remaining screened slices form the generalization set; an equal number of
    sampled points the buggy network already handles correctly form the
    drawdown set.
    """
    zoo = zoo if zoo is not None else ModelZoo()
    rng = ensure_rng(seed)
    dataset = zoo.acas_dataset(train_size=train_size, seed=seed)
    network = zoo.acas_network(dataset, epochs=epochs, seed=seed)
    safety_property = phi8_property()

    repair_slices: list[np.ndarray] = []
    other_violations: list[np.ndarray] = []
    grid = _slice_sample_grid(samples_per_slice)
    for _ in range(candidate_slices):
        slice_vertices = safety_property.random_slice(rng)
        samples = _points_on_slice(slice_vertices, grid)
        satisfied = property_satisfaction(network, safety_property, samples)
        violating = samples[~satisfied]
        if violating.shape[0] == 0:
            continue
        if len(repair_slices) < num_slices:
            repair_slices.append(slice_vertices)
        else:
            other_violations.append(violating)

    # Counterexamples not covered by the repair slices form the
    # generalization set; property-box samples the buggy network already
    # handles correctly form the drawdown set (as in the paper, the two sets
    # are disjoint from the repair slices and from each other).
    box_samples = safety_property.sample_states(evaluation_points, rng)
    satisfied_mask = property_satisfaction(network, safety_property, box_samples)
    drawdown_points = box_samples[satisfied_mask]
    box_violations = box_samples[~satisfied_mask]
    if other_violations:
        generalization_points = np.vstack(other_violations + [box_violations])
    else:
        generalization_points = box_violations
    if generalization_points.shape[0] > drawdown_points.shape[0]:
        generalization_points = generalization_points[: drawdown_points.shape[0]]

    return Task3Setup(
        network=network,
        safety_property=safety_property,
        repair_slices=repair_slices,
        generalization_points=generalization_points,
        drawdown_points=drawdown_points,
        buggy_violation_count=int(np.sum(~satisfied_mask)),
    )


def _slice_sample_grid(samples: int) -> np.ndarray:
    """Barycentric-style sample weights over a quadrilateral's corners."""
    side = max(2, int(np.sqrt(samples)))
    u_values = np.linspace(0.0, 1.0, side)
    v_values = np.linspace(0.0, 1.0, side)
    weights = []
    for u in u_values:
        for v in v_values:
            weights.append(
                [(1 - u) * (1 - v), u * (1 - v), u * v, (1 - u) * v]
            )
    return np.array(weights)


def _points_on_slice(slice_vertices: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Sample points on a quadrilateral slice given corner weights."""
    return grid @ slice_vertices


def safe_advisory_constraint(
    num_advisories: int,
    winner: int,
    allowed: tuple[int, ...],
    margin: float = CLASSIFICATION_MARGIN,
) -> HPolytope:
    """The constraint "advisory ``winner`` beats every *disallowed* advisory".

    This is the per-region strengthening of the property used by Task 3.  It
    requires ``out[winner] ≥ out[k] + margin`` only for advisories ``k`` that
    the property forbids; the other allowed advisory is left unconstrained.
    If every vertex of a linear region satisfies this constraint then, by
    linearity, every point of the region has some allowed advisory as its
    argmax — hence the region satisfies the property.  Unlike requiring a
    full argmax, this strengthening never conflicts with itself on vertices
    shared between adjacent regions whose chosen winners differ.
    """
    rows, bounds = [], []
    for other in range(num_advisories):
        if other == winner or other in allowed:
            continue
        row = np.zeros(num_advisories)
        row[other] = 1.0
        row[winner] = -1.0
        rows.append(row)
        bounds.append(-margin)
    return HPolytope(np.array(rows), np.array(bounds))


def strengthened_specification(
    network: Network, setup: Task3Setup, *, margin: float = CLASSIFICATION_MARGIN
) -> tuple[PointRepairSpec, float]:
    """Reduce the repair slices to key points with per-region strengthened labels.

    Each linear region of each repair slice chooses, as its "winner", the
    allowed advisory the buggy network already scores higher at the region's
    interior point; the region's vertices are then constrained with
    :func:`safe_advisory_constraint`.  Returns the pointwise specification
    plus the seconds spent computing the linear regions (reported separately,
    as in the paper's RQ4 analysis).
    """
    start = time.perf_counter()
    allowed = setup.safety_property.allowed
    points, activation_points, constraints = [], [], []
    for slice_vertices in setup.repair_slices:
        partition = transform_plane(network, slice_vertices)
        for region in partition.regions:
            interior = region.interior_point
            scores = network.compute(interior)
            winner = max(allowed, key=lambda advisory: scores[advisory])
            constraint = safe_advisory_constraint(
                network.output_size, winner, allowed, margin
            )
            for vertex in region.input_vertices:
                points.append(vertex)
                activation_points.append(interior)
                constraints.append(constraint)
    linregions_seconds = time.perf_counter() - start
    spec = PointRepairSpec(
        points=np.array(points),
        constraints=constraints,
        activation_points=np.array(activation_points),
    )
    return spec, linregions_seconds


def strengthened_verification_spec(
    network: Network,
    setup: Task3Setup,
    *,
    margin: float = CLASSIFICATION_MARGIN,
    engine=None,
) -> VerificationSpec:
    """The repair slices as verification targets, strengthened per linear region.

    φ8 allows *two* advisories — a disjunction no single output polytope can
    express — so each linear region of each repair slice becomes its own
    verification region whose constraint requires the allowed advisory the
    buggy network already prefers at the region's interior point (the same
    strengthening :func:`strengthened_specification` applies for one-shot
    repair).  The strengthening stays valid across driver rounds because the
    DDNN's activation channel — and therefore the linear-region geometry —
    never changes under value-channel repair (Theorem 4.6).
    """
    allowed = setup.safety_property.allowed
    spec = VerificationSpec()
    if engine is not None:
        partitions = engine.transform_planes(network, setup.repair_slices)
    else:
        partitions = [
            transform_plane(network, slice_vertices)
            for slice_vertices in setup.repair_slices
        ]
    for slice_index, partition in enumerate(partitions):
        for region_index, region in enumerate(partition.regions):
            scores = network.compute(region.interior_point)
            winner = max(allowed, key=lambda advisory: scores[advisory])
            constraint = safe_advisory_constraint(
                network.output_size, winner, allowed, margin
            )
            spec.add_plane(
                region.input_vertices,
                constraint,
                name=f"slice{slice_index}/region{region_index}",
            )
    return spec


def strengthened_polytope_spec(
    network: Network,
    setup: Task3Setup,
    *,
    margin: float = CLASSIFICATION_MARGIN,
    engine=None,
) -> PolytopeRepairSpec:
    """The strengthened φ8 slices as a *polytope repair* specification.

    The same per-linear-region strengthening as
    :func:`strengthened_verification_spec`, packaged as a
    :class:`~repro.core.specs.PolytopeRepairSpec` so it can drive both
    one-shot :func:`~repro.core.polytope_repair.polytope_repair` and the
    polytope-mode CEGIS driver on identical obligations (the
    ``bench_polytope_driver`` comparison).  Each strengthened region is a
    planar polygon; decomposing it again inside Algorithm 2 is exact and,
    with a shared ``engine``, hits the same partition-cache entries the
    verification rounds use.
    """
    verification = strengthened_verification_spec(
        network, setup, margin=margin, engine=engine
    )
    spec = PolytopeRepairSpec()
    for region in verification.regions:
        spec.add_plane(region.region, region.constraint)
    return spec


def driver_slice_repair(
    setup: Task3Setup,
    layer_index: int | None = None,
    *,
    norm: str = "linf",
    backend: str | None = None,
    verifier: Verifier | None = None,
    max_rounds: int = 5,
    budget_seconds: float | None = None,
    checkpoint_path=None,
    engine=None,
    efficacy_samples_per_slice: int = 64,
) -> tuple[dict, DriverReport]:
    """Closed-loop CEGIS repair of the repair slices (strengthened φ8).

    Unlike :func:`provable_slice_repair`, which hands the whole strengthened
    specification to one LP, the driver starts from an *empty* specification
    and lets the verifier discover which region vertices actually need
    repair, iterating verify → pool → repair until the exact verifier
    certifies every region.  Returns ``(record, driver_report)`` where
    ``record`` has the same safety-metric keys as the other Task 3 methods.

    ``engine`` routes both the strengthened-spec decomposition and every
    driver round's verification through a
    :class:`repro.engine.ShardedSyrennEngine` worker pool (its partition
    cache makes the spec decomposition and round 0 share work).
    """
    chosen = layer_index if layer_index is not None else setup.last_layer_index
    schedule = [chosen] + [
        index
        for index in reversed(setup.network.parameterized_layer_indices())
        if index != chosen
    ]
    spec = strengthened_verification_spec(setup.network, setup, engine=engine)
    # Drawdown is tracked per round as prediction churn on the already-safe
    # holdout encounters (the buggy network's own advisories are the labels).
    holdout_labels = np.atleast_1d(setup.network.predict(setup.drawdown_points))
    driver = RepairDriver(
        setup.network,
        spec,
        verifier if verifier is not None else SyrennVerifier(),
        layer_schedule=schedule,
        norm=norm,
        backend=backend,
        max_rounds=max_rounds,
        budget_seconds=budget_seconds,
        holdout=(setup.drawdown_points, holdout_labels),
        checkpoint_path=checkpoint_path,
        engine=engine,
    )
    report = driver.run()
    record = {
        "method": "CEGIS",
        "layer_index": chosen,
        "num_slices": len(setup.repair_slices),
        "regions": spec.num_regions,
        "rounds": report.num_rounds,
        "status": report.status,
        "certified": report.certified,
        "pool_size": report.pool_size,
        "remaining_violations": report.remaining_violations,
        **{f"time_{key}": value for key, value in report.timing.as_dict().items()},
    }
    if report.status in ("certified", "clean"):
        record.update(
            _safety_metrics(setup, report.network, efficacy_samples_per_slice)
        )
    else:
        record.update(
            {"efficacy": float("nan"), "drawdown": float("nan"), "generalization": float("nan")}
        )
    return record, report


def provable_slice_repair(
    setup: Task3Setup,
    layer_index: int | None = None,
    *,
    norm: str = "linf",
    backend: str | None = None,
    efficacy_samples_per_slice: int = 64,
) -> dict:
    """Provable Polytope Repair of the repair slices (strengthened φ8)."""
    layer_index = layer_index if layer_index is not None else setup.last_layer_index
    spec, linregions_seconds = strengthened_specification(setup.network, setup)
    timing = RepairTiming(linregions_seconds=linregions_seconds)
    result = point_repair(
        setup.network, layer_index, spec, norm=norm, backend=backend, timing=timing
    )
    record = {
        "method": "PR",
        "layer_index": layer_index,
        "num_slices": len(setup.repair_slices),
        "key_points": spec.num_points,
        "feasible": result.feasible,
        **{f"time_{key}": value for key, value in result.timing.as_dict().items()},
    }
    if result.feasible:
        record.update(_safety_metrics(setup, result.network, efficacy_samples_per_slice))
    else:
        record.update(
            {"efficacy": float("nan"), "drawdown": float("nan"), "generalization": float("nan")}
        )
    return record


def _safety_metrics(setup: Task3Setup, repaired, samples_per_slice: int) -> dict:
    """Efficacy / drawdown / generalization in property-satisfaction terms."""
    grid = _slice_sample_grid(samples_per_slice)
    slice_points = np.vstack(
        [_points_on_slice(vertices, grid) for vertices in setup.repair_slices]
    )
    efficacy = 100.0 * float(
        np.mean(property_satisfaction(repaired, setup.safety_property, slice_points))
    )
    if setup.drawdown_points.shape[0]:
        still_satisfied = property_satisfaction(
            repaired, setup.safety_property, setup.drawdown_points
        )
        drawdown = 100.0 * float(np.mean(~still_satisfied))
    else:
        drawdown = float("nan")
    if setup.generalization_points.shape[0]:
        now_satisfied = property_satisfaction(
            repaired, setup.safety_property, setup.generalization_points
        )
        generalization = 100.0 * float(np.mean(now_satisfied))
    else:
        generalization = float("nan")
    return {"efficacy": efficacy, "drawdown": drawdown, "generalization": generalization}


def _baseline_repair_points(
    setup: Task3Setup, points_per_slice: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Sampled (point, strengthened label) pairs for the FT/MFT baselines."""
    rng = ensure_rng(seed)
    allowed = setup.safety_property.allowed
    points, labels = [], []
    for slice_vertices in setup.repair_slices:
        weights = rng.dirichlet(np.ones(slice_vertices.shape[0]), size=points_per_slice)
        sampled = weights @ slice_vertices
        for point in sampled:
            scores = setup.network.compute(point)
            winner = max(allowed, key=lambda advisory: scores[advisory])
            points.append(point)
            labels.append(winner)
    return np.array(points), np.array(labels, dtype=int)


def fine_tune_slices(
    setup: Task3Setup,
    points_per_slice: int = 50,
    *,
    learning_rate: float = 0.001,
    momentum: float = 0.9,
    batch_size: int = 16,
    max_epochs: int = 300,
    seed: int = 0,
) -> dict:
    """The FT baseline on sampled slice points with strengthened labels."""
    points, labels = _baseline_repair_points(setup, points_per_slice, seed=seed)
    result = fine_tune(
        setup.network,
        points,
        labels,
        learning_rate=learning_rate,
        momentum=momentum,
        batch_size=batch_size,
        max_epochs=max_epochs,
        seed=seed,
    )
    record = {
        "method": "FT",
        "converged": result.converged,
        "sampled_points": points.shape[0],
        "time_total": result.seconds,
    }
    record.update(_safety_metrics(setup, result.network, samples_per_slice=64))
    return record


def modified_fine_tune_slices(
    setup: Task3Setup,
    points_per_slice: int = 50,
    layer_index: int | None = None,
    *,
    learning_rate: float = 0.001,
    momentum: float = 0.9,
    batch_size: int = 16,
    max_epochs: int = 100,
    seed: int = 0,
) -> dict:
    """The MFT baseline on sampled slice points, tuning a single layer."""
    layer_index = layer_index if layer_index is not None else setup.last_layer_index
    points, labels = _baseline_repair_points(setup, points_per_slice, seed=seed)
    result = modified_fine_tune(
        setup.network,
        points,
        labels,
        layer_index,
        learning_rate=learning_rate,
        momentum=momentum,
        batch_size=batch_size,
        max_epochs=max_epochs,
        seed=seed,
    )
    record = {
        "method": "MFT",
        "layer_index": layer_index,
        "sampled_points": points.shape[0],
        "time_total": result.seconds,
    }
    record.update(_safety_metrics(setup, result.network, samples_per_slice=64))
    return record
