"""Exception hierarchy used across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ShapeError(ReproError):
    """An array argument had an unexpected shape."""


class LayerError(ReproError):
    """A layer was constructed or used incorrectly."""


class SpecificationError(ReproError):
    """A repair specification is malformed."""


class RepairError(ReproError):
    """A repair could not be carried out (distinct from infeasibility)."""


class LPError(ReproError):
    """The LP substrate was used incorrectly or the solver failed."""


class UnsupportedLayerError(RepairError):
    """The requested repair layer does not carry repairable parameters."""


class NotPiecewiseLinearError(RepairError):
    """Polytope repair was requested on a non-piecewise-linear network."""


class EngineError(ReproError):
    """The parallel execution engine was configured or used incorrectly."""


class JobCancelledError(EngineError):
    """A scheduled job was cancelled (explicitly or by an exhausted budget)."""
