"""The one-import facade over the repair pipeline.

Three verbs cover the typical workflows:

* :func:`repair` — run the full CEGIS driver in-process and return its
  :class:`~repro.driver.driver.DriverReport`.
* :func:`verify` — run one verification pass and return its
  :class:`~repro.verify.base.VerificationReport`.
* :func:`submit` — hand the same work to a running repair daemon
  (:mod:`repro.service`) as a JSON job and, by default, wait for the result.

All three take the verifier *declaratively* (a registry kind plus keyword
parameters, e.g. ``verifier="grid", resolution=32``) or as a ready
:class:`~repro.verify.base.Verifier` instance; :func:`repair` takes the
algorithm knobs either as a :class:`~repro.driver.config.DriverConfig` (or
its ``to_dict()`` form) or as the historical loose keywords::

    import repro

    report = repro.api.repair(network, spec, max_rounds=6, incremental=True)
    report = repro.api.verify(network, spec, verifier="random", seed=7)
    result = repro.api.submit(network, spec, url="http://127.0.0.1:8642",
                              config={"max_rounds": 6})
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.driver.config import DriverConfig
from repro.driver.driver import DriverReport, RepairDriver
from repro.verify.base import VerificationReport, VerificationSpec, Verifier
from repro.verify.registry import make_verifier

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.engine import Engine

__all__ = ["repair", "submit", "verify"]


def _resolve_verifier(verifier, params: dict, engine) -> Verifier:
    if isinstance(verifier, Verifier):
        if params:
            raise TypeError(
                "verifier parameters only apply when the verifier is named by "
                f"kind, not when an instance is passed (got {sorted(params)})"
            )
        return verifier
    return make_verifier(verifier, engine=engine, **params)


def _resolve_config(config, knobs: dict) -> DriverConfig:
    if config is None:
        return DriverConfig(**knobs)
    if knobs:
        raise TypeError(
            "pass algorithm knobs either via config=... or as keywords, "
            f"not both (got {sorted(knobs)} alongside a config)"
        )
    if isinstance(config, DriverConfig):
        return config
    return DriverConfig.from_dict(config)


def verify(
    network,
    spec: VerificationSpec,
    *,
    verifier: str | Verifier = "syrenn",
    engine: Engine | None = None,
    **verifier_params,
) -> VerificationReport:
    """One verification pass of ``network`` against ``spec``."""
    return _resolve_verifier(verifier, verifier_params, engine).verify(network, spec)


def repair(
    network,
    spec,
    *,
    verifier: str | Verifier = "syrenn",
    verifier_params: dict | None = None,
    config: DriverConfig | dict | None = None,
    engine: Engine | None = None,
    holdout: tuple | None = None,
    checkpoint_path=None,
    on_round=None,
    **knobs,
) -> DriverReport:
    """Run the CEGIS repair driver in-process.

    ``verifier_params`` configures a kind-named verifier (it is a separate
    mapping, not loose keywords, because the loose keywords are the
    :class:`DriverConfig` back-compat shim).
    """
    driver = RepairDriver(
        network,
        spec,
        _resolve_verifier(verifier, dict(verifier_params or {}), engine),
        config=_resolve_config(config, knobs),
        engine=engine,
        holdout=holdout,
        checkpoint_path=checkpoint_path,
        on_round=on_round,
    )
    return driver.run()


def submit(
    network,
    spec: VerificationSpec,
    *,
    url: str,
    kind: str = "repair",
    verifier: dict | str | None = None,
    config: DriverConfig | dict | None = None,
    wait: bool = True,
    timeout: float | None = None,
    poll_interval: float = 0.2,
):
    """Submit a job to a running repair daemon at ``url``.

    Returns the finished job document (``wait=True``, the default) or the
    job id string (``wait=False``; poll with
    :class:`repro.service.ServiceClient`).  ``verifier`` is either a kind
    string or a ``{"kind": ..., **params}`` dictionary; ``config`` only
    applies to ``kind="repair"`` jobs.
    """
    # Imported lazily so ``import repro`` stays free of the service layer.
    from repro.service.client import ServiceClient
    from repro.service.protocol import make_job

    client = ServiceClient(url)
    job_id = client.submit(
        make_job(kind, network, spec, verifier=verifier, config=config)
    )
    if not wait:
        return job_id
    return client.wait(job_id, timeout=timeout, poll_interval=poll_interval)
