"""Structured JSON logging for the daemon.

One JSON object per line on the configured stream: ``{"ts": ..., "level":
..., "event": ..., **fields}``.  This replaces the stdlib
``BaseHTTPRequestHandler`` stderr noise with lines that are grep-able and
machine-parseable, and lets job ids be correlated with trace ids.

The logger is a plain object (not the :mod:`logging` module) because the
daemon needs exactly one sink, one format, and level filtering — and must
never interleave partial lines from concurrent job threads, which the
single ``write(line)`` call per event guarantees on line-buffered streams.
"""

from __future__ import annotations

import json
import sys
import threading
import time

__all__ = ["JsonLogger", "LEVELS"]

LEVELS = ("debug", "info", "warning", "error", "off")
_RANKS = {name: rank for rank, name in enumerate(LEVELS)}


class JsonLogger:
    """Level-filtered one-line-JSON event logger."""

    def __init__(self, level: str = "info", stream=None) -> None:
        if level not in _RANKS:
            raise ValueError(f"unknown log level {level!r}; expected one of {LEVELS}")
        self.level = level
        self._rank = _RANKS[level]
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()

    def enabled_for(self, level: str) -> bool:
        return self.level != "off" and _RANKS[level] >= self._rank

    def log(self, level: str, event: str, **fields) -> None:
        """Emit one event line; non-serialisable field values become strings."""
        if not self.enabled_for(level):
            return
        record = {"ts": time.time(), "level": level, "event": event}
        record.update(fields)
        line = json.dumps(record, sort_keys=False, default=str)
        with self._lock:
            self._stream.write(line + "\n")
            # Flush so daemon logs stay live under pipes/files, where the
            # stream is block-buffered rather than line-buffered.
            self._stream.flush()

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)
