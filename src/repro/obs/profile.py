"""A thread-based sampling profiler with folded-stack output.

Spans (:mod:`repro.obs.trace`) say *that* ``driver.verify`` took 1.8s; they
cannot say *where inside it* the time went without instrumenting every
function.  :class:`SamplingProfiler` fills that gap the observational way: a
background thread wakes every ``interval`` seconds, reads the target
threads' current frames out of :func:`sys._current_frames`, and folds each
stack into ``root;caller;...;leaf`` counts — the exact text format
flamegraph tooling (``flamegraph.pl``, speedscope, inferno) consumes.

Like everything in :mod:`repro.obs`, the profiler is observational only: it
reads interpreter frame objects and touches no numeric state, so running it
cannot change a repair's bytes (pinned alongside the obs-on/off matrix in
``tests/test_obs_differential.py``).  The daemon starts one per job when
telemetry is enabled and serves the result at ``GET /jobs/<id>/profile``.

One forced sample of the target thread is taken synchronously at
:meth:`start` — so even a job that finishes inside one sampling interval
produces a non-empty profile — and sampling overhead is bounded by the
interval: the default 5ms costs well under 1% of one core.
"""

from __future__ import annotations

import sys
import threading

__all__ = ["SamplingProfiler"]


def _fold_frame(frame) -> str:
    """``module:function:line`` for one frame, stable across runs.

    The *definition* line (``f_code.co_firstlineno``), not the currently
    executing line, keeps a function's samples aggregated under one name.
    """
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{code.co_name}:{code.co_firstlineno}"


def _fold_stack(frame, max_depth: int) -> str:
    """The frame's whole stack folded root-first, semicolon-separated."""
    parts: list[str] = []
    while frame is not None and len(parts) < max_depth:
        parts.append(_fold_frame(frame))
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Sample one (or every) thread's stack into folded-stack counts.

    Parameters
    ----------
    interval:
        Seconds between samples (default 5ms).
    thread_ids:
        The thread idents to sample; ``None`` samples every thread except
        the profiler's own.  The daemon passes the job thread's ident.
    max_depth:
        Stack-depth cap per sample, so a pathological recursion cannot
        balloon one folded line without bound.

    Use as a context manager or with explicit :meth:`start` / :meth:`stop`.
    ``stop`` is idempotent and joins the sampler thread, after which
    :meth:`folded` and :meth:`as_dict` are stable.
    """

    def __init__(
        self,
        interval: float = 0.005,
        thread_ids: tuple[int, ...] | None = None,
        max_depth: int = 128,
    ) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval = float(interval)
        self.thread_ids = tuple(thread_ids) if thread_ids is not None else None
        self.max_depth = int(max_depth)
        self._counts: dict[str, int] = {}
        self._samples = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        """Begin sampling (no-op if already running)."""
        if self._thread is not None:
            return self
        self._stop.clear()
        # One synchronous sample before the thread exists: the caller's own
        # stack (or the targets') is captured even if the profiled work
        # finishes before the first interval elapses.
        self._sample(exclude_ident=None)
        self._thread = threading.Thread(
            target=self._run, name="obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling and join the sampler thread."""
        thread = self._thread
        if thread is None:
            return self
        self._stop.set()
        thread.join(timeout=10.0)
        self._thread = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    def _run(self) -> None:
        own_ident = threading.get_ident()
        while not self._stop.wait(self.interval):
            self._sample(exclude_ident=own_ident)

    def _sample(self, exclude_ident: int | None) -> None:
        frames = sys._current_frames()
        with self._lock:
            self._samples += 1
            for ident, frame in frames.items():
                if self.thread_ids is not None:
                    if ident not in self.thread_ids:
                        continue
                elif ident == exclude_ident:
                    continue
                stack = _fold_stack(frame, self.max_depth)
                if stack:
                    self._counts[stack] = self._counts.get(stack, 0) + 1

    # ------------------------------------------------------------------
    @property
    def sample_count(self) -> int:
        """How many sampling ticks have run (including the start sample)."""
        with self._lock:
            return self._samples

    def folded(self) -> str:
        """Folded-stack text: one ``stack count`` line, sorted by stack.

        Feed directly to flamegraph tooling::

            flamegraph.pl profile.folded > profile.svg
        """
        with self._lock:
            return "\n".join(
                f"{stack} {count}" for stack, count in sorted(self._counts.items())
            )

    def as_dict(self) -> dict:
        """JSON-ready document: metadata plus the folded stacks."""
        with self._lock:
            return {
                "interval_seconds": self.interval,
                "samples": self._samples,
                "stacks": dict(sorted(self._counts.items())),
                "folded": "\n".join(
                    f"{stack} {count}" for stack, count in sorted(self._counts.items())
                ),
            }
