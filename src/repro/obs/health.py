"""Declarative SLOs: window-scoped metric queries graded into verdicts.

An :class:`SloSpec` names one question about the telemetry window — "what is
the p99 of ``repro_service_job_seconds`` over the last 300s?", "what share
of job transitions were ``failed``?" — plus the thresholds that grade its
answer.  :func:`evaluate` runs a list of specs against a
:class:`~repro.obs.window.WindowStore` and produces a JSON-ready document
with per-SLO verdicts (``healthy`` / ``degraded`` / ``unhealthy``, each with
a human-readable reason) and the worst verdict overall — exactly what
``GET /healthz`` and ``GET /slo`` serve and what a load balancer or pager
acts on.

Specs are plain data: :meth:`SloSpec.as_dict` / :meth:`SloSpec.from_dict`
round-trip losslessly through JSON, so a deployment can ship its SLOs in a
config file instead of code.  Supported aggregations:

============  ====================================================
``rate``      counter increments per second over the window
``total``     counter increments over the window (a plain sum)
``ratio``     share of a counter family matching ``numerator``
``mean``      mean histogram observation over the window
``p50/p95/p99`` (any ``pNN``) bucket-interpolated histogram quantile
============  ====================================================

A spec with no data in its window (no traffic, empty store) is *vacuously
healthy* — a daemon that has served nothing is not degraded, it is idle —
and says so in its reason.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.obs.window import WindowStore

__all__ = ["HEALTHY", "DEGRADED", "UNHEALTHY", "SloSpec", "evaluate"]

HEALTHY, DEGRADED, UNHEALTHY = "healthy", "degraded", "unhealthy"

#: Verdict severity order (index = badness).
_SEVERITY = (HEALTHY, DEGRADED, UNHEALTHY)

_QUANTILE_PATTERN = re.compile(r"p(\d{1,2})\Z")
_SCALAR_AGGS = ("rate", "total", "ratio", "mean")


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over a windowed metric aggregate.

    Parameters
    ----------
    name:
        Stable identifier for dashboards and reasons (``"job_p99"``).
    series:
        The metric family the aggregate reads.
    agg:
        One of ``rate``, ``total``, ``ratio``, ``mean``, or ``pNN``.
    degraded:
        Crossing this threshold grades the SLO ``degraded``.
    unhealthy:
        Crossing this (worse) threshold grades it ``unhealthy``; omit to
        make the SLO two-state (healthy/degraded only).
    op:
        ``"<="`` (default) means *smaller is good*: the measured value must
        stay at or below the thresholds.  ``">="`` means *larger is good*
        (e.g. a cache hit ratio that should not collapse).
    window:
        Lookback in seconds (``None`` = the store's whole retained window).
    labels:
        Label subset the aggregated series must match.
    numerator:
        For ``ratio`` only: the label subset counted in the numerator
        (``labels`` selects the denominator).
    """

    name: str
    series: str
    agg: str
    degraded: float
    unhealthy: float | None = None
    op: str = "<="
    window: float | None = 300.0
    labels: dict = field(default_factory=dict)
    numerator: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op not in ("<=", ">="):
            raise ValueError(f"SLO op must be '<=' or '>=', got {self.op!r}")
        if self.agg not in _SCALAR_AGGS and not _QUANTILE_PATTERN.match(self.agg):
            raise ValueError(f"unknown SLO aggregation {self.agg!r}")
        if self.agg == "ratio" and not self.numerator:
            raise ValueError("ratio SLOs need a numerator label subset")
        if self.unhealthy is not None:
            ordered = (
                self.degraded <= self.unhealthy
                if self.op == "<="
                else self.degraded >= self.unhealthy
            )
            if not ordered:
                raise ValueError(
                    f"SLO {self.name!r}: unhealthy threshold must be beyond "
                    f"the degraded one for op {self.op!r}"
                )

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """The spec as a JSON-ready dictionary (lossless round trip)."""
        document = {
            "name": self.name,
            "series": self.series,
            "agg": self.agg,
            "degraded": self.degraded,
            "op": self.op,
            "window": self.window,
        }
        if self.unhealthy is not None:
            document["unhealthy"] = self.unhealthy
        if self.labels:
            document["labels"] = dict(self.labels)
        if self.numerator:
            document["numerator"] = dict(self.numerator)
        return document

    @classmethod
    def from_dict(cls, document: dict) -> "SloSpec":
        """Rebuild a spec from :meth:`as_dict` output (or a config file)."""
        known = {
            "name", "series", "agg", "degraded", "unhealthy", "op",
            "window", "labels", "numerator",
        }
        unknown = set(document) - known
        if unknown:
            raise ValueError(f"unknown SLO spec fields: {sorted(unknown)}")
        return cls(
            name=document["name"],
            series=document["series"],
            agg=document["agg"],
            degraded=float(document["degraded"]),
            unhealthy=(
                float(document["unhealthy"]) if document.get("unhealthy") is not None else None
            ),
            op=document.get("op", "<="),
            window=document.get("window", 300.0),
            labels=dict(document.get("labels", {})),
            numerator=dict(document.get("numerator", {})),
        )

    # ------------------------------------------------------------------
    def measure(self, store: WindowStore) -> float | None:
        """The spec's aggregate over the store (``None`` = no data)."""
        if self.agg == "rate":
            return store.rate(self.series, self.labels or None, self.window)
        if self.agg == "total":
            if not store.deltas(self.window):
                return None
            return store.counter_sum(self.series, self.labels or None, self.window)
        if self.agg == "ratio":
            return store.ratio(
                self.series, self.numerator, self.labels or None, self.window
            )
        if self.agg == "mean":
            return store.mean(self.series, self.labels or None, self.window)
        match = _QUANTILE_PATTERN.match(self.agg)
        quantile = int(match.group(1)) / 100.0
        return store.quantile(self.series, quantile, self.labels or None, self.window)

    def grade(self, value: float | None) -> tuple[str, str]:
        """(status, human-readable reason) for a measured value."""
        if value is None:
            return HEALTHY, f"{self.name}: no data in window (vacuously healthy)"
        breached_unhealthy = self.unhealthy is not None and not self._within(
            value, self.unhealthy
        )
        if breached_unhealthy:
            return UNHEALTHY, (
                f"{self.name}: {self.agg}({self.series}) = {value:.6g} "
                f"violates {self.op} {self.unhealthy:.6g}"
            )
        if not self._within(value, self.degraded):
            return DEGRADED, (
                f"{self.name}: {self.agg}({self.series}) = {value:.6g} "
                f"violates {self.op} {self.degraded:.6g}"
            )
        return HEALTHY, (
            f"{self.name}: {self.agg}({self.series}) = {value:.6g} "
            f"within {self.op} {self.degraded:.6g}"
        )

    def _within(self, value: float, threshold: float) -> bool:
        return value <= threshold if self.op == "<=" else value >= threshold


def evaluate(specs: list[SloSpec], store: WindowStore) -> dict:
    """Grade every spec against the store; JSON-ready verdict document.

    The overall ``status`` is the worst individual verdict, and ``reasons``
    collects the non-healthy explanations so the top of the document reads
    like a pager line.
    """
    results = []
    worst = 0
    reasons: list[str] = []
    for spec in specs:
        value = spec.measure(store)
        status, reason = spec.grade(value)
        worst = max(worst, _SEVERITY.index(status))
        if status != HEALTHY:
            reasons.append(reason)
        results.append(
            {
                "name": spec.name,
                "status": status,
                "value": value,
                "reason": reason,
                "spec": spec.as_dict(),
            }
        )
    return {
        "status": _SEVERITY[worst],
        "reasons": reasons,
        "window_seconds": store.span_seconds(),
        "slos": results,
    }
