"""Prometheus text exposition (format 0.0.4) and a human summary table.

Pure functions over :meth:`repro.obs.registry.MetricsRegistry.snapshot`
documents, so the same renderers serve the live ``/metrics`` endpoint, the
golden tests, and offline bench reports.  stdlib-only by design.
"""

from __future__ import annotations

import math

from repro.obs.registry import COUNTER, GAUGE, HISTOGRAM

__all__ = ["render_prometheus", "render_summary"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    # Label order follows the family's sorted label names (labels is built
    # from them); the extra ``le`` label renders last, as Prometheus expects.
    parts = [f'{name}="{_escape_label_value(str(value))}"' for name, value in merged.items()]
    return "{" + ",".join(parts) + "}"


def render_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot in Prometheus text format.

    Families come out in snapshot (name-sorted) order; histogram buckets are
    cumulated here, with the canonical ``+Inf`` bucket and ``_sum``/``_count``
    series.
    """
    lines: list[str] = []
    for name in snapshot:
        entry = snapshot[name]
        kind = entry["kind"]
        lines.append(f"# HELP {name} {_escape_help(entry.get('help', ''))}")
        lines.append(f"# TYPE {name} {kind}")
        if kind in (COUNTER, GAUGE):
            for series in entry["series"]:
                lines.append(
                    f"{name}{_labels_text(series['labels'])} "
                    f"{_format_value(series['value'])}"
                )
        elif kind == HISTOGRAM:
            bounds = entry["bounds"]
            for series in entry["series"]:
                cumulative = 0
                for boundary, count in zip(bounds, series["buckets"]):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_labels_text(series['labels'], {'le': _format_value(boundary)})} "
                        f"{cumulative}"
                    )
                cumulative += series["buckets"][-1]
                lines.append(
                    f"{name}_bucket{_labels_text(series['labels'], {'le': '+Inf'})} "
                    f"{cumulative}"
                )
                lines.append(
                    f"{name}_sum{_labels_text(series['labels'])} "
                    f"{_format_value(series['sum'])}"
                )
                lines.append(
                    f"{name}_count{_labels_text(series['labels'])} {series['count']}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def render_summary(snapshot: dict) -> str:
    """A fixed-width table of the snapshot for CLI and bench output.

    Counters and gauges print their value; histograms print count, mean,
    and max-bucket information compactly.
    """
    rows: list[tuple[str, str]] = []
    for name in snapshot:
        entry = snapshot[name]
        kind = entry["kind"]
        for series in entry["series"]:
            labels = series["labels"]
            label_text = ",".join(f"{key}={labels[key]}" for key in labels)
            display = f"{name}{{{label_text}}}" if label_text else name
            if kind == HISTOGRAM:
                count = series["count"]
                mean = series["sum"] / count if count else 0.0
                rows.append((display, f"n={count} mean={mean:.6f}s"))
            else:
                rows.append((display, _format_value(series["value"])))
    if not rows:
        return "(no metrics recorded)"
    width = max(len(display) for display, _ in rows)
    return "\n".join(f"{display:<{width}}  {value}" for display, value in rows)
