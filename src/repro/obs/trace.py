"""Span-based tracing: per-run span trees with wall and CPU time.

A :class:`Trace` is one tree of :class:`Span` nodes — one per traced run
(a repair job, a bench sweep, a CLI invocation).  Spans are opened with
``obs.span("lp.solve", backend="scipy")`` and nest via a per-trace stack;
the *current* trace is carried in a :mod:`contextvars` variable so each
daemon job thread gets its own tree without any global mutable handoff.

Durations come from :func:`repro.utils.timing.wall_cpu_now` — wall time on
``perf_counter`` and CPU time on ``process_time`` — never ``time.time()``
deltas.  The single wall-clock timestamp (``started_unix`` on the root) is
informational only and never subtracted from anything.

Worker propagation: spawn-started engine workers cannot share the parent's
tree, so each worker task records into a fresh local trace, exports it with
:meth:`Trace.export`, and the parent grafts the exported children under its
own active span with :meth:`Span.adopt` — in task order, which is what
keeps the merged tree deterministic for any worker count.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from contextlib import contextmanager

from repro.utils.timing import wall_cpu_now

__all__ = ["Span", "Trace", "current_trace", "use_trace"]


class Span:
    """One timed operation: name, attributes, wall/CPU seconds, children."""

    __slots__ = (
        "name",
        "attributes",
        "children",
        "wall_seconds",
        "cpu_seconds",
        "_start_wall",
        "_start_cpu",
    )

    def __init__(self, name: str, attributes: dict | None = None) -> None:
        self.name = name
        self.attributes = dict(attributes) if attributes else {}
        self.children: list[Span] = []
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self._start_wall = 0.0
        self._start_cpu = 0.0

    def _open(self) -> None:
        self._start_wall, self._start_cpu = wall_cpu_now()

    def _close(self) -> None:
        wall, cpu = wall_cpu_now()
        self.wall_seconds = wall - self._start_wall
        self.cpu_seconds = cpu - self._start_cpu

    def adopt(self, exported: dict) -> None:
        """Graft an exported span (from :meth:`export`) as a child.

        Used by the engine to merge worker-side traces into the parent tree;
        callers adopt in task order so the tree is deterministic.
        """
        self.children.append(_from_export(exported))

    def export(self) -> dict:
        """This span (and its subtree) as a JSON-ready dict."""
        document: dict = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
        }
        if self.attributes:
            document["attributes"] = {
                key: self.attributes[key] for key in sorted(self.attributes)
            }
        if self.children:
            document["children"] = [child.export() for child in self.children]
        return document


def _from_export(document: dict) -> Span:
    span = Span(document["name"], document.get("attributes"))
    span.wall_seconds = float(document.get("wall_seconds", 0.0))
    span.cpu_seconds = float(document.get("cpu_seconds", 0.0))
    for child in document.get("children", ()):
        span.children.append(_from_export(child))
    return span


_TRACE_IDS = itertools.count(1)


class Trace:
    """One span tree plus the open-span stack that builds it.

    The stack is guarded by a lock because the daemon can close a job's
    trace from a different thread than the one that ran it; within one
    repair run all spans open and close on a single thread, so the lock is
    uncontended on the hot path.
    """

    def __init__(self, name: str = "run", trace_id: str | None = None) -> None:
        # ``started_unix`` is a timestamp for humans (trace listings), not
        # an input to any duration arithmetic.
        self.trace_id = trace_id or f"trace-{next(_TRACE_IDS)}"
        self.started_unix = time.time()
        self.root = Span(name)
        self.root._open()
        self._stack: list[Span] = [self.root]
        self._lock = threading.Lock()

    @contextmanager
    def span(self, name: str, **attributes):
        """Open a child span under the innermost open span."""
        node = Span(name, attributes)
        with self._lock:
            self._stack[-1].children.append(node)
            self._stack.append(node)
        node._open()
        try:
            yield node
        finally:
            node._close()
            with self._lock:
                # Remove the innermost *matching* entry: exception unwinding
                # can close spans out of order without corrupting the stack.
                for index in range(len(self._stack) - 1, 0, -1):
                    if self._stack[index] is node:
                        del self._stack[index]
                        break

    def finish(self) -> None:
        """Close the root span (idempotent enough for the daemon's purposes)."""
        self.root._close()

    def adopt(self, exported: dict) -> None:
        """Graft an exported worker span under the innermost open span."""
        with self._lock:
            self._stack[-1].adopt(exported)

    def export(self) -> dict:
        """The whole trace as a JSON-ready dict (``/jobs/<id>/trace`` body)."""
        return {
            "trace_id": self.trace_id,
            "started_unix": self.started_unix,
            "root": self.root.export(),
        }


#: The trace the current thread/context records into (None = no tracing).
_CURRENT: contextvars.ContextVar[Trace | None] = contextvars.ContextVar(
    "repro_obs_trace", default=None
)


def current_trace() -> Trace | None:
    """The active trace for this context, if any."""
    return _CURRENT.get()


@contextmanager
def use_trace(trace: Trace | None):
    """Make ``trace`` the active trace for the dynamic extent of the block."""
    token = _CURRENT.set(trace)
    try:
        yield trace
    finally:
        _CURRENT.reset(token)
