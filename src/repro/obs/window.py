"""Rolling time-window aggregation over registry snapshots.

The registry (:mod:`repro.obs.registry`) only ever accumulates: counters and
histogram buckets grow monotonically for the life of the process.  That is
the right shape for a Prometheus scrape, but operational questions are about
*recent* behaviour — jobs/sec over the last minute, the p99 job latency over
the last five.  This module turns cumulative snapshots into windows:

* :func:`snapshot_delta` — the per-series difference of two snapshots, with
  counter-reset detection (a series that went *backwards* means the source
  restarted; the current value is then the whole delta, never a negative);
* :class:`WindowStore` — a bounded deque of timestamped deltas built from
  successive :meth:`~repro.obs.registry.MetricsRegistry.snapshot` documents,
  with window-scoped ``rate`` / ``ratio`` / ``quantile`` / ``mean`` queries;
* :func:`histogram_quantile` — Prometheus-style quantile estimation by
  linear interpolation inside the fixed histogram buckets, shared by the
  window store, the SLO evaluator (:mod:`repro.obs.health`), and the
  benchmark harness (which previously ran ``np.percentile`` over a handful
  of samples and fabricated a p99 out of thin air).

Everything here is a pure function of the snapshots and the timestamps the
caller provides — :meth:`WindowStore.observe` takes ``at`` explicitly (a
monotonic reading), so tests drive the store with synthetic clocks and get
bit-reproducible aggregates.  Two stores observing disjoint shards of the
same system can be combined with :meth:`WindowStore.merge`; deltas are
interleaved by end-timestamp, which keeps the merge associative.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.obs.registry import COUNTER, GAUGE, HISTOGRAM

__all__ = [
    "WindowDelta",
    "WindowStore",
    "histogram_quantile",
    "quantiles_with_count",
    "snapshot_delta",
]


def _series_key(labels: dict) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _index_series(entry: dict) -> dict[tuple, dict]:
    return {_series_key(series["labels"]): series for series in entry["series"]}


def snapshot_delta(previous: dict, current: dict) -> dict:
    """``current - previous``, per family and series, reset-safe.

    Counters subtract; histogram buckets/sum/count subtract element-wise;
    gauges take the current value (a gauge has no meaningful delta).  Any
    series whose counter value, histogram count, or bucket went *down*
    is treated as reset: its delta is the current (post-restart) value in
    full, so windows never see negative rates after a daemon bounce.
    Families or series absent from ``previous`` contribute their full
    current value.  The result has the same document shape as a snapshot.
    """
    delta: dict = {}
    for name in sorted(current):
        entry = current[name]
        kind = entry["kind"]
        out_entry = {
            "kind": kind,
            "help": entry.get("help", ""),
            "labels": list(entry.get("labels", ())),
            "series": [],
        }
        if "bounds" in entry:
            out_entry["bounds"] = list(entry["bounds"])
        previous_series = (
            _index_series(previous[name]) if name in previous else {}
        )
        for series in entry["series"]:
            before = previous_series.get(_series_key(series["labels"]))
            if kind == GAUGE:
                out_entry["series"].append(dict(series))
                continue
            if kind == COUNTER:
                value = float(series["value"])
                if before is not None and float(before["value"]) <= value:
                    value -= float(before["value"])
                out_entry["series"].append({"labels": dict(series["labels"]), "value": value})
                continue
            buckets = [int(count) for count in series["buckets"]]
            total = int(series["count"])
            sum_value = float(series["sum"])
            if before is not None:
                before_buckets = [int(count) for count in before["buckets"]]
                reset = (
                    int(before["count"]) > total
                    or len(before_buckets) != len(buckets)
                    or any(b > c for b, c in zip(before_buckets, buckets))
                )
                if not reset:
                    buckets = [c - b for b, c in zip(before_buckets, buckets)]
                    total -= int(before["count"])
                    sum_value -= float(before["sum"])
            out_entry["series"].append(
                {
                    "labels": dict(series["labels"]),
                    "buckets": buckets,
                    "sum": sum_value,
                    "count": total,
                }
            )
        delta[name] = out_entry
    return delta


def histogram_quantile(
    bounds: list[float] | tuple[float, ...],
    bucket_counts: list[int] | tuple[int, ...],
    quantile: float,
) -> float | None:
    """Estimate a quantile from fixed-bucket histogram state.

    ``bucket_counts`` is non-cumulative with the overflow (+Inf) bucket
    last, matching :class:`~repro.obs.registry.MetricFamily` series.  Uses
    Prometheus-style linear interpolation inside the target bucket (the
    lower edge of the first bucket is 0 — every recorded series here is a
    non-negative duration).  An estimate that lands in the overflow bucket
    clamps to the top finite boundary; ``None`` when the histogram is empty.
    """
    if not 0.0 <= quantile <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {quantile}")
    total = sum(bucket_counts)
    if total == 0:
        return None
    rank = quantile * total
    cumulative = 0
    for index, count in enumerate(bucket_counts):
        cumulative += count
        if cumulative >= rank and count:
            if index >= len(bounds):  # overflow bucket: no finite upper edge
                return float(bounds[-1]) if bounds else None
            lower = float(bounds[index - 1]) if index else 0.0
            upper = float(bounds[index])
            position = (rank - (cumulative - count)) / count
            return lower + (upper - lower) * position
    return float(bounds[-1]) if bounds else None


def quantiles_with_count(
    values,
    quantiles: tuple[float, ...],
    bounds: tuple[float, ...],
) -> dict:
    """Histogram-based quantiles of raw ``values`` plus the honest ``n``.

    The shared helper behind benchmark latency reporting: instead of
    ``np.percentile`` over a handful of samples (which interpolates a "p99"
    that no request ever experienced), the values are binned into the same
    fixed buckets the live histograms use and quantiles are estimated the
    same way the window store estimates them — and the sample count rides
    along so every consumer can judge how much the estimate is worth.
    """
    counts = [0] * (len(bounds) + 1)
    n = 0
    for value in values:
        value = float(value)
        index = len(bounds)
        for position, boundary in enumerate(bounds):
            if value <= boundary:
                index = position
                break
        counts[index] += 1
        n += 1
    result: dict = {"n": n}
    for quantile in quantiles:
        key = f"p{int(round(quantile * 100)):02d}"
        result[key] = histogram_quantile(bounds, counts, quantile)
    return result


@dataclass(frozen=True)
class WindowDelta:
    """One inter-snapshot delta: ``[start, end]`` timestamps plus the diff."""

    start: float
    end: float
    delta: dict


class WindowStore:
    """A bounded rolling window of snapshot deltas with aggregate queries.

    Feed it successive registry snapshots (``store.observe(obs.snapshot(),
    at=time.monotonic())``); it keeps the most recent ``max_deltas``
    inter-snapshot deltas and answers window-scoped questions::

        store.rate("repro_service_jobs_total", {"status": "done"})   # per second
        store.ratio("repro_cache_requests_total", {"result": "hit"}) # hit share
        store.quantile("repro_service_job_seconds", 0.99)            # seconds

    Queries take an optional ``window`` in seconds (measured back from the
    newest delta's end); default is the whole retained window.  Label
    filters match a *subset* of a series' labels, so ``{"status": "done"}``
    sums over every ``kind``.  Not thread-safe by itself — the daemon calls
    it under its own lock.
    """

    def __init__(self, max_deltas: int = 128) -> None:
        if max_deltas < 1:
            raise ValueError("max_deltas must be >= 1")
        self.max_deltas = int(max_deltas)
        self._deltas: deque[WindowDelta] = deque(maxlen=self.max_deltas)
        self._last_snapshot: dict | None = None
        self._last_at: float | None = None

    # ------------------------------------------------------------------
    def observe(self, snapshot: dict, at: float) -> None:
        """Record one snapshot taken at monotonic time ``at``.

        The first observation only anchors the baseline; every later one
        appends the delta against its predecessor.  A non-increasing ``at``
        (clock confusion, merged stores) re-anchors instead of producing a
        zero-or-negative-width delta.
        """
        if self._last_snapshot is not None and self._last_at is not None and at > self._last_at:
            self._deltas.append(
                WindowDelta(self._last_at, at, snapshot_delta(self._last_snapshot, snapshot))
            )
        self._last_snapshot = snapshot
        self._last_at = at

    def merge(self, other: "WindowStore") -> "WindowStore":
        """A new store holding both stores' deltas, interleaved by end time.

        The merged store keeps the larger ``max_deltas`` of the two and is
        query-only in spirit: its baseline snapshot is unset, so the next
        :meth:`observe` re-anchors rather than differencing across sources.
        """
        merged = WindowStore(max(self.max_deltas, other.max_deltas))
        for delta in sorted(
            [*self._deltas, *other._deltas], key=lambda d: (d.end, d.start)
        ):
            merged._deltas.append(delta)
        return merged

    # ------------------------------------------------------------------
    def _select(self, window: float | None) -> list[WindowDelta]:
        if not self._deltas:
            return []
        if window is None:
            return list(self._deltas)
        horizon = self._deltas[-1].end - float(window)
        return [delta for delta in self._deltas if delta.end > horizon]

    def span_seconds(self, window: float | None = None) -> float:
        """Total seconds covered by the selected deltas."""
        return sum(delta.end - delta.start for delta in self._select(window))

    def deltas(self, window: float | None = None) -> list[WindowDelta]:
        """The retained deltas (newest last), optionally window-limited."""
        return self._select(window)

    # ------------------------------------------------------------------
    def counter_sum(
        self, name: str, labels: dict | None = None, window: float | None = None
    ) -> float:
        """Sum of counter increments for series matching the label subset."""
        total = 0.0
        want = set((labels or {}).items())
        for delta in self._select(window):
            entry = delta.delta.get(name)
            if entry is None or entry["kind"] != COUNTER:
                continue
            for series in entry["series"]:
                if want <= set(series["labels"].items()):
                    total += float(series["value"])
        return total

    def rate(
        self, name: str, labels: dict | None = None, window: float | None = None
    ) -> float | None:
        """Increments per second over the window (``None`` with no window)."""
        seconds = self.span_seconds(window)
        if seconds <= 0.0:
            return None
        return self.counter_sum(name, labels, window) / seconds

    def ratio(
        self,
        name: str,
        numerator: dict,
        denominator: dict | None = None,
        window: float | None = None,
    ) -> float | None:
        """Share of a counter family's increments matching ``numerator``.

        ``denominator`` defaults to the whole family; ``None`` when the
        denominator saw no increments in the window (no traffic — callers
        decide whether that is vacuously healthy).
        """
        total = self.counter_sum(name, denominator, window)
        if total <= 0.0:
            return None
        return self.counter_sum(name, numerator, window) / total

    def _histogram_state(
        self, name: str, labels: dict | None, window: float | None
    ) -> tuple[list[float], list[int], float, int] | None:
        bounds: list[float] | None = None
        counts: list[int] | None = None
        sum_value = 0.0
        total = 0
        want = set((labels or {}).items())
        for delta in self._select(window):
            entry = delta.delta.get(name)
            if entry is None or entry["kind"] != HISTOGRAM:
                continue
            if bounds is None:
                bounds = [float(b) for b in entry["bounds"]]
                counts = [0] * (len(bounds) + 1)
            for series in entry["series"]:
                if want <= set(series["labels"].items()):
                    for index, count in enumerate(series["buckets"]):
                        counts[index] += int(count)
                    sum_value += float(series["sum"])
                    total += int(series["count"])
        if bounds is None or counts is None:
            return None
        return bounds, counts, sum_value, total

    def quantile(
        self,
        name: str,
        quantile: float,
        labels: dict | None = None,
        window: float | None = None,
    ) -> float | None:
        """A bucket-interpolated quantile of a histogram family's window."""
        state = self._histogram_state(name, labels, window)
        if state is None:
            return None
        bounds, counts, _, _ = state
        return histogram_quantile(bounds, counts, quantile)

    def mean(
        self, name: str, labels: dict | None = None, window: float | None = None
    ) -> float | None:
        """Mean observation of a histogram family over the window."""
        state = self._histogram_state(name, labels, window)
        if state is None or state[3] == 0:
            return None
        return state[2] / state[3]

    def observation_count(
        self, name: str, labels: dict | None = None, window: float | None = None
    ) -> int:
        """How many observations the window's histogram state holds."""
        state = self._histogram_state(name, labels, window)
        return 0 if state is None else state[3]
