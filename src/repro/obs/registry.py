"""The process-wide metrics registry: counters, gauges, and histograms.

One :class:`MetricsRegistry` holds every metric family the process publishes
(cache hit/miss counters, LP solve-time histograms, driver round counters,
job gauges …).  A family is created on first use — ``registry.counter(name,
help, labels)`` — and re-requesting it returns the same object, so call
sites never hold module-level metric state of their own.

Design constraints, in order:

1. **Determinism.**  :meth:`MetricsRegistry.snapshot` is a pure function of
   the recorded values: families and series are emitted in sorted order,
   label names are sorted at family creation, and merging two snapshots is
   associative (counters and histograms add; gauges take the last write).
   This is what lets the engine merge worker-process telemetry in task
   order and get the same registry content at any worker count.
2. **stdlib only.**  No prometheus_client; the text exposition lives in
   :mod:`repro.obs.prometheus`.
3. **Cheap.**  All mutation runs under one registry lock; the hot paths
   that must stay near-zero when telemetry is disabled never reach this
   module at all (they are guarded at the :func:`repro.obs.enabled` branch).
"""

from __future__ import annotations

import re
import threading

__all__ = [
    "COUNTER",
    "DEFAULT_BUCKETS",
    "GAUGE",
    "HISTOGRAM",
    "JOB_SECONDS_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
]

COUNTER, GAUGE, HISTOGRAM = "counter", "gauge", "histogram"

#: Default histogram boundaries, in seconds: spans LP solves (sub-ms on toy
#: models) through multi-minute verification passes.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 120.0,
)

#: Coarser boundaries for whole-job durations: a repair job's run time lives
#: in the tens-of-milliseconds-to-minutes range, where the sub-ms resolution
#: of :data:`DEFAULT_BUCKETS` wastes half its buckets and tops out too early
#: to separate "slow" from "stuck".
JOB_SECONDS_BUCKETS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 120.0, 300.0, 600.0, 1800.0,
)

_NAME_PATTERN = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_PATTERN = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


class _Series:
    """One labeled child of a family: a scalar, or histogram state."""

    __slots__ = ("value", "bucket_counts", "sum", "count")

    def __init__(self, num_buckets: int = 0) -> None:
        self.value = 0.0
        # ``num_buckets`` boundaries plus one overflow (+Inf) bucket; counts
        # are per-bucket (non-cumulative) — the exposition cumulates.
        self.bucket_counts = [0] * (num_buckets + 1) if num_buckets else None
        self.sum = 0.0
        self.count = 0


class MetricFamily:
    """A named metric plus all of its labeled series.

    Callers use the kind-appropriate method — :meth:`inc` (counter),
    :meth:`set` (gauge), :meth:`observe` (histogram) — passing label values
    as keyword arguments::

        family.inc(tier="memory", result="hit")
        family.observe(0.012, backend="scipy")
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] | None,
        lock: threading.RLock,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        #: Sorted at creation so series keys and exposition order never
        #: depend on call-site keyword order.
        self.label_names = tuple(sorted(label_names))
        self.buckets = tuple(buckets) if buckets is not None else None
        self._lock = lock
        self._series: dict[tuple[str, ...], _Series] = {}

    # ------------------------------------------------------------------
    def _key(self, labels: dict) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _child(self, key: tuple[str, ...]) -> _Series:
        series = self._series.get(key)
        if series is None:
            series = _Series(len(self.buckets) if self.buckets is not None else 0)
            self._series[key] = series
        return series

    # ------------------------------------------------------------------
    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (counters only; must be non-negative)."""
        if self.kind != COUNTER:
            raise ValueError(f"{self.name!r} is a {self.kind}, not a counter")
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._child(self._key(labels)).value += float(amount)

    def set(self, value: float, **labels) -> None:
        """Set the current value (gauges only)."""
        if self.kind != GAUGE:
            raise ValueError(f"{self.name!r} is a {self.kind}, not a gauge")
        with self._lock:
            self._child(self._key(labels)).value = float(value)

    def observe(self, value: float, **labels) -> None:
        """Record one observation (histograms only)."""
        if self.kind != HISTOGRAM:
            raise ValueError(f"{self.name!r} is a {self.kind}, not a histogram")
        value = float(value)
        with self._lock:
            series = self._child(self._key(labels))
            index = len(self.buckets)  # overflow bucket
            for position, boundary in enumerate(self.buckets):
                if value <= boundary:
                    index = position
                    break
            series.bucket_counts[index] += 1
            series.sum += value
            series.count += 1

    def value(self, **labels) -> float:
        """The scalar value of one series (0.0 if never touched)."""
        with self._lock:
            series = self._series.get(self._key(labels))
            return series.value if series is not None else 0.0

    # ------------------------------------------------------------------
    def _merge_series(self, key: tuple[str, ...], payload: dict) -> None:
        """Fold one snapshot series into this family (caller holds the lock)."""
        series = self._child(key)
        if self.kind == COUNTER:
            series.value += float(payload["value"])
        elif self.kind == GAUGE:
            series.value = float(payload["value"])
        else:
            counts = payload["buckets"]
            if len(counts) != len(series.bucket_counts):
                raise ValueError(
                    f"histogram {self.name!r}: snapshot has {len(counts)} buckets, "
                    f"family has {len(series.bucket_counts)}"
                )
            for index, count in enumerate(counts):
                series.bucket_counts[index] += int(count)
            series.sum += float(payload["sum"])
            series.count += int(payload["count"])

    def snapshot_series(self) -> list[dict]:
        """All series as JSON-ready dictionaries, sorted by label values."""
        with self._lock:
            rows = []
            for key in sorted(self._series):
                series = self._series[key]
                labels = dict(zip(self.label_names, key))
                if self.kind == HISTOGRAM:
                    rows.append(
                        {
                            "labels": labels,
                            "buckets": list(series.bucket_counts),
                            "sum": series.sum,
                            "count": series.count,
                        }
                    )
                else:
                    rows.append({"labels": labels, "value": series.value})
            return rows


class MetricsRegistry:
    """All metric families of one process (or one captured worker task)."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> MetricFamily:
        if not _NAME_PATTERN.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_PATTERN.match(label):
                raise ValueError(f"invalid label name {label!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help_text, tuple(labels), buckets, self._lock)
                self._families[name] = family
                return family
        if family.kind != kind:
            raise ValueError(f"metric {name!r} is already registered as a {family.kind}")
        if family.label_names != tuple(sorted(labels)):
            raise ValueError(
                f"metric {name!r} is already registered with labels "
                f"{list(family.label_names)}"
            )
        if buckets is not None and family.buckets != tuple(buckets):
            # Two call sites silently disagreeing on boundaries would merge
            # incompatible bucket vectors; make the disagreement loud.
            raise ValueError(
                f"histogram {name!r} is already registered with buckets "
                f"{list(family.buckets)}"
            )
        return family

    def counter(self, name: str, help_text: str = "", labels: tuple[str, ...] = ()) -> MetricFamily:
        """Get-or-create a counter family."""
        return self._family(name, COUNTER, help_text, labels)

    def gauge(self, name: str, help_text: str = "", labels: tuple[str, ...] = ()) -> MetricFamily:
        """Get-or-create a gauge family."""
        return self._family(name, GAUGE, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Get-or-create a histogram family with fixed bucket boundaries."""
        boundaries = tuple(float(b) for b in buckets)
        if list(boundaries) != sorted(set(boundaries)):
            raise ValueError("histogram buckets must be strictly increasing")
        return self._family(name, HISTOGRAM, help_text, labels, boundaries)

    # ------------------------------------------------------------------
    def families(self) -> list[MetricFamily]:
        """All families, sorted by name."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def snapshot(self, kinds: tuple[str, ...] | None = None) -> dict:
        """The whole registry as a JSON-ready, deterministically-ordered dict.

        ``kinds`` restricts the dump (e.g. ``("counter",)`` for the compact
        per-round snapshots the driver streams through ``RoundRecord``).
        """
        document: dict = {}
        for family in self.families():
            if kinds is not None and family.kind not in kinds:
                continue
            entry: dict = {
                "kind": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "series": family.snapshot_series(),
            }
            if family.buckets is not None:
                entry["bounds"] = list(family.buckets)
            document[family.name] = entry
        return document

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` document into this registry.

        Counters and histograms add; gauges take the snapshot's value.
        Merging is associative and — because families and series are keyed,
        not ordered — independent of the order snapshots arrive in, which
        is what makes worker-telemetry merges deterministic.
        """
        for name in sorted(snapshot):
            entry = snapshot[name]
            family = self._family(
                name,
                entry["kind"],
                entry.get("help", ""),
                tuple(entry.get("labels", ())),
                tuple(entry["bounds"]) if "bounds" in entry else None,
            )
            with self._lock:
                for payload in entry["series"]:
                    key = tuple(
                        str(payload["labels"][label]) for label in family.label_names
                    )
                    family._merge_series(key, payload)

    def reset(self) -> None:
        """Drop every family (tests and bench harness isolation)."""
        with self._lock:
            self._families.clear()
