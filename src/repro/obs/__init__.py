"""repro.obs — unified telemetry: metrics registry, tracing spans, surfacing.

The facade every other subsystem imports (always as ``from repro.obs import
...`` — never ``from repro import obs`` — so partially-initialised package
state during ``import repro`` can't bite).  Three pieces:

* a process-wide :class:`~repro.obs.registry.MetricsRegistry` reached
  through :func:`counter` / :func:`gauge` / :func:`histogram`;
* span-based tracing — ``with span("lp.solve", backend=...)`` — recording
  into the contextvar-carried current :class:`~repro.obs.trace.Trace`;
* renderers (:func:`render_prometheus`, :func:`render_summary`) and the
  worker-side :func:`capture` / parent-side :func:`absorb` pair that moves
  telemetry across spawn process boundaries deterministically.

**Telemetry is off by default** and the disabled path is near-zero cost:
every instrumented call site is guarded by a single ``if enabled():``
branch, and :func:`span` returns a shared no-op context manager.  Nothing
in this package reads or writes network parameters, LP tableaus, or any
other numeric state — enabling it must never change a repair's bytes, and
the differential tests in ``tests/test_obs_differential.py`` pin that.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.health import DEGRADED, HEALTHY, UNHEALTHY, SloSpec, evaluate
from repro.obs.logs import LEVELS, JsonLogger
from repro.obs.profile import SamplingProfiler
from repro.obs.prometheus import CONTENT_TYPE
from repro.obs.prometheus import render_prometheus as _render_prometheus
from repro.obs.prometheus import render_summary as _render_summary
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    JOB_SECONDS_BUCKETS,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.trace import Span, Trace, current_trace, use_trace
from repro.obs.window import (
    WindowStore,
    histogram_quantile,
    quantiles_with_count,
    snapshot_delta,
)

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_BUCKETS",
    "DEGRADED",
    "HEALTHY",
    "JOB_SECONDS_BUCKETS",
    "LEVELS",
    "UNHEALTHY",
    "JsonLogger",
    "MetricFamily",
    "MetricsRegistry",
    "SamplingProfiler",
    "SloSpec",
    "Span",
    "Trace",
    "WindowStore",
    "absorb",
    "capture",
    "counter",
    "current_trace",
    "disable",
    "enable",
    "enabled",
    "evaluate",
    "gauge",
    "histogram",
    "histogram_quantile",
    "isolated",
    "quantiles_with_count",
    "registry",
    "render_prometheus",
    "render_summary",
    "reset",
    "snapshot",
    "snapshot_delta",
    "span",
    "use_trace",
]

_ENABLED = False
_REGISTRY = MetricsRegistry()


def enabled() -> bool:
    """The one branch every instrumented call site guards on."""
    return _ENABLED


def enable() -> None:
    """Turn telemetry on for this process."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn telemetry off (the registry keeps whatever it has recorded)."""
    global _ENABLED
    _ENABLED = False


def registry() -> MetricsRegistry:
    """The active registry (process-wide, unless inside :func:`capture`)."""
    return _REGISTRY


def counter(name: str, help_text: str = "", labels: tuple[str, ...] = ()) -> MetricFamily:
    """Get-or-create a counter family in the active registry."""
    return _REGISTRY.counter(name, help_text, labels)


def gauge(name: str, help_text: str = "", labels: tuple[str, ...] = ()) -> MetricFamily:
    """Get-or-create a gauge family in the active registry."""
    return _REGISTRY.gauge(name, help_text, labels)


def histogram(
    name: str,
    help_text: str = "",
    labels: tuple[str, ...] = (),
    buckets: tuple[float, ...] = DEFAULT_BUCKETS,
) -> MetricFamily:
    """Get-or-create a histogram family in the active registry."""
    return _REGISTRY.histogram(name, help_text, labels, buckets)


def snapshot(kinds: tuple[str, ...] | None = None) -> dict:
    """A deterministic JSON-ready dump of the active registry."""
    return _REGISTRY.snapshot(kinds)


def reset() -> None:
    """Drop everything in the active registry (tests / bench isolation)."""
    _REGISTRY.reset()


def render_prometheus(document: dict | None = None) -> str:
    """Prometheus text exposition of ``document`` (default: live snapshot)."""
    return _render_prometheus(document if document is not None else snapshot())


def render_summary(document: dict | None = None) -> str:
    """Human-readable metrics table of ``document`` (default: live snapshot)."""
    return _render_summary(document if document is not None else snapshot())


# ----------------------------------------------------------------------
# Spans
class _NoopSpan:
    """Shared do-nothing span so the disabled path allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP = _NoopSpan()


def span(name: str, **attributes):
    """Open a traced span, or the shared no-op when telemetry can't record.

    No-op when telemetry is disabled *or* no trace is active in this
    context — so library code can call it unconditionally and only pays a
    real span when someone (daemon job, bench harness, test) installed a
    :class:`Trace` via :func:`use_trace`.
    """
    if not _ENABLED:
        return _NOOP
    trace = current_trace()
    if trace is None:
        return _NOOP
    return trace.span(name, **attributes)


# ----------------------------------------------------------------------
# Cross-process propagation (spawn workers) and test isolation
class _Capture:
    """Handle yielded by :func:`capture`: the task-local registry and trace."""

    __slots__ = ("registry", "trace")

    def __init__(self, captured_registry: MetricsRegistry, trace: Trace) -> None:
        self.registry = captured_registry
        self.trace = trace

    def telemetry(self) -> dict:
        """The captured delta, ready to pickle back to the parent."""
        return {
            "metrics": self.registry.snapshot(),
            "trace": self.trace.root.export(),
        }


@contextmanager
def capture(root_name: str = "worker.task", **attributes):
    """Record into a fresh registry + trace for the extent of the block.

    Worker processes run this around each telemetry-wrapped engine task:
    the yielded handle's :meth:`~_Capture.telemetry` holds only that task's
    delta (workers are reused across batches — a cumulative snapshot would
    double-count on the parent).  Swaps the module-global registry, so it
    must not run concurrently with other instrumented work in the same
    process; engine workers execute one task at a time, which satisfies
    that.
    """
    global _REGISTRY, _ENABLED
    fresh = MetricsRegistry()
    trace = Trace(root_name)
    trace.root.attributes.update(attributes)
    previous_registry, previous_enabled = _REGISTRY, _ENABLED
    _REGISTRY, _ENABLED = fresh, True
    try:
        with use_trace(trace):
            yield _Capture(fresh, trace)
    finally:
        trace.finish()
        _REGISTRY, _ENABLED = previous_registry, previous_enabled


def absorb(telemetry: dict) -> None:
    """Fold a :meth:`_Capture.telemetry` payload into the parent's state.

    Metrics merge into the active registry; the worker's span tree is
    adopted under the current span of the active trace (if any).  Callers
    absorb payloads in task order, making the result deterministic.
    """
    _REGISTRY.merge_snapshot(telemetry["metrics"])
    trace = current_trace()
    if trace is not None:
        trace.adopt(telemetry["trace"])


@contextmanager
def isolated(start_enabled: bool = True):
    """A private registry + enabled flag for tests; restores both on exit."""
    global _REGISTRY, _ENABLED
    previous_registry, previous_enabled = _REGISTRY, _ENABLED
    _REGISTRY, _ENABLED = MetricsRegistry(), start_enabled
    try:
        yield _REGISTRY
    finally:
        _REGISTRY, _ENABLED = previous_registry, previous_enabled
