"""Line segments in the input space of a network.

A :class:`LineSegment` is the 1-D convex polytope used by the paper's Task 2
(the line from a clean MNIST image to its fog-corrupted counterpart).  Points
on the segment are addressed by a ratio ``t ∈ [0, 1]``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.utils.validation import check_vector


class LineSegment:
    """The segment ``{(1 - t)·start + t·end : t ∈ [0, 1]}``."""

    def __init__(self, start, end) -> None:
        self.start = check_vector(start, "start")
        self.end = check_vector(end, "end", size=self.start.size)

    @property
    def dimension(self) -> int:
        """Dimension of the ambient input space."""
        return self.start.size

    @property
    def direction(self) -> np.ndarray:
        """The (unnormalized) direction vector ``end - start``."""
        return self.end - self.start

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return float(np.linalg.norm(self.direction))

    def point_at(self, t: float) -> np.ndarray:
        """The point at ratio ``t`` (``t`` may lie outside [0, 1])."""
        return (1.0 - t) * self.start + t * self.end

    def points_at(self, ts) -> np.ndarray:
        """Points at an array of ratios; shape ``(len(ts), dimension)``."""
        ts = np.asarray(ts, dtype=np.float64)
        if ts.ndim != 1:
            raise ShapeError("ts must be a 1-D array of ratios")
        return (1.0 - ts)[:, None] * self.start[None, :] + ts[:, None] * self.end[None, :]

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """``count`` uniformly random points on the segment (for baselines)."""
        ts = rng.uniform(0.0, 1.0, size=count)
        return self.points_at(ts)

    def midpoint(self) -> np.ndarray:
        """The point at ``t = 0.5``."""
        return self.point_at(0.5)

    def subdivide(self, count: int) -> list["LineSegment"]:
        """``count`` equal sub-segments, in order from ``start`` to ``end``.

        All breakpoints come from one vectorized :meth:`points_at` call, so
        sharding a segment does not cost a per-vertex Python loop.
        """
        if count < 1:
            raise ValueError("count must be positive")
        points = self.points_at(np.linspace(0.0, 1.0, count + 1))
        return [LineSegment(points[i], points[i + 1]) for i in range(count)]

    def __repr__(self) -> str:
        return f"LineSegment(dim={self.dimension}, length={self.length:.4g})"
