"""Output-space polytopes in half-space representation.

Every repair specification in the paper maps a point (or an input polytope)
into an output polytope ``{y : A y ≤ b}``.  :class:`HPolytope` is that
right-hand side, with constructors for the common cases (intervals and
"class i wins" argmax regions).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SpecificationError
from repro.utils.validation import check_matrix, check_vector


class HPolytope:
    """The set ``{y ∈ R^m : A y ≤ b}``."""

    def __init__(self, a, b) -> None:
        self.a = check_matrix(a, "A")
        self.b = check_vector(b, "b", size=self.a.shape[0])

    @property
    def output_dimension(self) -> int:
        """Dimension ``m`` of the ambient output space."""
        return self.a.shape[1]

    @property
    def num_constraints(self) -> int:
        """Number of half-space constraints."""
        return self.a.shape[0]

    def contains(self, point: np.ndarray, tolerance: float = 1e-7) -> bool:
        """Whether ``point`` satisfies every constraint (up to ``tolerance``)."""
        point = check_vector(point, "point", size=self.output_dimension)
        return bool(np.all(self.a @ point <= self.b + tolerance))

    def violation(self, point: np.ndarray) -> float:
        """Largest constraint violation at ``point`` (≤ 0 means satisfied)."""
        point = check_vector(point, "point", size=self.output_dimension)
        return float(np.max(self.a @ point - self.b))

    def contains_batch(self, points: np.ndarray, tolerance: float = 1e-7) -> np.ndarray:
        """Vectorized :meth:`contains`: boolean mask for a ``(k, m)`` batch.

        The verification subsystem checks thousands of sampled outputs per
        region; one matmul over the batch replaces the per-point Python loop.
        """
        points = check_matrix(points, "points", cols=self.output_dimension)
        return np.all(points @ self.a.T <= self.b + tolerance, axis=1)

    def violation_batch(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`violation`: per-point margins for a ``(k, m)`` batch."""
        points = check_matrix(points, "points", cols=self.output_dimension)
        return np.max(points @ self.a.T - self.b, axis=1)

    def intersect(self, other: "HPolytope") -> "HPolytope":
        """The intersection of two polytopes over the same output space."""
        if other.output_dimension != self.output_dimension:
            raise SpecificationError("cannot intersect polytopes of different dimensions")
        return HPolytope(np.vstack([self.a, other.a]), np.concatenate([self.b, other.b]))

    # ------------------------------------------------------------------
    # Constructors for the common specification shapes
    # ------------------------------------------------------------------
    @classmethod
    def from_interval(cls, dimension: int, index: int, lower: float, upper: float) -> "HPolytope":
        """``lower ≤ y[index] ≤ upper`` inside an m-dimensional output space."""
        if not 0 <= index < dimension:
            raise SpecificationError(f"index {index} out of range for dimension {dimension}")
        if lower > upper:
            raise SpecificationError("interval lower bound exceeds upper bound")
        row = np.zeros(dimension)
        row[index] = 1.0
        a = np.vstack([row, -row])
        b = np.array([upper, -lower])
        return cls(a, b)

    @classmethod
    def argmax_region(cls, num_classes: int, winner: int, margin: float = 0.0) -> "HPolytope":
        """The region where output ``winner`` exceeds every other output.

        Encodes ``y[j] - y[winner] ≤ -margin`` for every ``j ≠ winner``,
        which is the "classified as ``winner``" constraint used throughout
        the paper's evaluation.
        """
        if not 0 <= winner < num_classes:
            raise SpecificationError(f"winner {winner} out of range for {num_classes} classes")
        if margin < 0:
            raise SpecificationError("margin must be non-negative")
        rows = []
        for other in range(num_classes):
            if other == winner:
                continue
            row = np.zeros(num_classes)
            row[other] = 1.0
            row[winner] = -1.0
            rows.append(row)
        a = np.array(rows)
        b = np.full(num_classes - 1, -margin)
        return cls(a, b)

    def __repr__(self) -> str:
        return f"HPolytope(constraints={self.num_constraints}, dim={self.output_dimension})"
