"""Convex-geometry helpers.

These utilities underpin the SyReNN substrate (:mod:`repro.syrenn`) and the
repair specifications:

* :mod:`repro.polytope.segment` — line segments in input space (the 1-D
  polytopes used by the MNIST fog-line repair task).
* :mod:`repro.polytope.polygon` — planar convex polygons with arbitrary
  per-vertex attribute vectors, plus half-plane clipping (used by the 2-D
  SyReNN decomposition and the ACAS Xu task).
* :mod:`repro.polytope.hpolytope` — output-space polytopes in half-space
  representation ``{y : A y ≤ b}`` (the right-hand side of every repair
  specification).
"""

from repro.polytope.segment import LineSegment
from repro.polytope.polygon import (
    VertexPolygon,
    clip_by_function,
    split_by_function,
    polygon_area,
    convex_hull,
)
from repro.polytope.hpolytope import HPolytope

__all__ = [
    "LineSegment",
    "VertexPolygon",
    "clip_by_function",
    "split_by_function",
    "polygon_area",
    "convex_hull",
    "HPolytope",
]
