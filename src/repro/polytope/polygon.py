"""Planar convex polygons with per-vertex attributes and half-plane clipping.

The 2-D SyReNN decomposition keeps, for every polygon of the current
partition, its vertices both as points of the (2-D) input plane and as the
corresponding intermediate values at the current network layer.  Splitting a
polygon by the zero set of an affine function only requires the function's
values at the vertices, and linear interpolation of *all* vertex attributes
at the crossing points.  :class:`VertexPolygon` packages that bookkeeping.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError

#: Vertices whose clip function magnitude is below this are treated as lying
#: exactly on the clipping line.
CLIP_TOLERANCE = 1e-9

#: Polygons with fewer than three vertices or (relative) area below this are
#: discarded by the splitting routines.
DEGENERATE_AREA = 1e-12


def polygon_area(points: np.ndarray) -> float:
    """Unsigned area of a planar polygon given as an ordered vertex list."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ShapeError("polygon_area expects an (k, 2) array")
    if points.shape[0] < 3:
        return 0.0
    x, y = points[:, 0], points[:, 1]
    rolled_x, rolled_y = np.roll(x, -1), np.roll(y, -1)
    return float(abs(np.dot(x, rolled_y) - np.dot(rolled_x, y)) / 2.0)


def convex_hull(points: np.ndarray) -> np.ndarray:
    """Counter-clockwise convex hull of a set of 2-D points (monotone chain)."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ShapeError("convex_hull expects an (k, 2) array")
    unique = np.unique(points, axis=0)
    if unique.shape[0] <= 2:
        return unique
    ordered = unique[np.lexsort((unique[:, 1], unique[:, 0]))]

    def half_hull(candidates):
        hull: list[np.ndarray] = []
        for point in candidates:
            while len(hull) >= 2:
                # 2-D cross product written out (np.cross dropped 2-D support).
                first, second = hull[-1] - hull[-2], point - hull[-2]
                cross = first[0] * second[1] - first[1] * second[0]
                if cross <= 0:
                    hull.pop()
                else:
                    break
            hull.append(point)
        return hull

    lower = half_hull(ordered)
    upper = half_hull(ordered[::-1])
    return np.array(lower[:-1] + upper[:-1])


def clip_by_function(vertices: np.ndarray, function_values: np.ndarray, keep_positive: bool) -> np.ndarray:
    """Clip an ordered polygon to one side of an affine function's zero set.

    ``vertices`` is an ``(k, d)`` array of vertex attribute rows (the first
    two columns need not be the plane coordinates — clipping only uses the
    affine function values).  ``function_values`` gives the affine function
    at each vertex.  Returns the ordered vertices of the sub-polygon where
    the function is ``>= 0`` (``keep_positive``) or ``<= 0``.

    The edge walk is fully vectorized: each edge ``i`` contributes its start
    vertex when that vertex is inside, then the crossing point when the edge
    crosses the zero set, and the per-slot selection preserves exactly that
    emission order.
    """
    vertices = np.asarray(vertices, dtype=np.float64)
    values = np.asarray(function_values, dtype=np.float64)
    if vertices.shape[0] != values.shape[0]:
        raise ShapeError("one function value per vertex is required")
    if not keep_positive:
        values = -values

    count = vertices.shape[0]
    if count == 0:
        return np.zeros((0, vertices.shape[1]))
    next_vertices = np.roll(vertices, -1, axis=0)
    next_values = np.roll(values, -1)
    inside = values >= -CLIP_TOLERANCE
    crosses = ((values > CLIP_TOLERANCE) & (next_values < -CLIP_TOLERANCE)) | (
        (values < -CLIP_TOLERANCE) & (next_values > CLIP_TOLERANCE)
    )
    denominator = np.where(crosses, values - next_values, 1.0)
    ratios = values / denominator
    crossings = vertices + ratios[:, None] * (next_vertices - vertices)
    # Slot layout per edge: [start vertex, crossing point]; boolean selection
    # over the stacked (count, 2, d) array walks the slots in edge order.
    slots = np.stack([inside, crosses], axis=1)
    candidates = np.stack([vertices, crossings], axis=1)
    kept = candidates[slots]
    if kept.shape[0] == 0:
        return np.zeros((0, vertices.shape[1]))
    return kept


def fan_wedges(vertices: np.ndarray, num_wedges: int) -> list[np.ndarray]:
    """Subdivide a convex polygon into contiguous convex wedges sharing vertex 0.

    The polygon's fan triangulation has ``k - 2`` triangles; grouping runs of
    consecutive triangles yields at most ``k - 2`` convex sub-polygons
    ``[v0, v_a, ..., v_b]`` whose union is the original polygon and whose
    interiors are disjoint.  This is the geometry-sharding primitive of the
    execution engine: each wedge can be decomposed independently and the
    results concatenated.  The cut indices are a pure function of
    ``(k, num_wedges)``, so the subdivision is deterministic.
    """
    vertices = np.asarray(vertices, dtype=np.float64)
    if vertices.ndim != 2 or vertices.shape[0] < 3:
        raise ShapeError("fan_wedges expects a (k >= 3, d) vertex array")
    if num_wedges < 1:
        raise ValueError("num_wedges must be positive")
    count = vertices.shape[0]
    wedges = min(num_wedges, count - 2)
    if wedges == 1:
        return [vertices]
    cuts = np.unique(np.linspace(1, count - 1, wedges + 1).round().astype(int))
    return [
        np.vstack([vertices[:1], vertices[start : stop + 1]])
        for start, stop in zip(cuts[:-1], cuts[1:])
    ]


def split_by_function(vertices: np.ndarray, function_values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split an ordered polygon into its ``>= 0`` and ``<= 0`` parts."""
    positive = clip_by_function(vertices, function_values, keep_positive=True)
    negative = clip_by_function(vertices, function_values, keep_positive=False)
    return positive, negative


class VertexPolygon:
    """An ordered convex polygon whose vertices carry attribute vectors.

    Attributes are stored as an ``(k, 2 + d)`` array: the first two columns
    are the polygon's own planar coordinates (used for area/degeneracy
    checks) and the remaining ``d`` columns are arbitrary attributes (for
    SyReNN: the input-space point followed by the current-layer values).
    """

    def __init__(self, plane_points: np.ndarray, attributes: np.ndarray) -> None:
        plane_points = np.asarray(plane_points, dtype=np.float64)
        attributes = np.asarray(attributes, dtype=np.float64)
        if plane_points.ndim != 2 or plane_points.shape[1] != 2:
            raise ShapeError("plane_points must be (k, 2)")
        if attributes.ndim != 2 or attributes.shape[0] != plane_points.shape[0]:
            raise ShapeError("attributes must have one row per vertex")
        self.plane_points = plane_points
        self.attributes = attributes

    @property
    def num_vertices(self) -> int:
        return self.plane_points.shape[0]

    @property
    def area(self) -> float:
        """Area in the polygon's own planar coordinates."""
        return polygon_area(self.plane_points)

    def is_degenerate(self, reference_area: float = 1.0) -> bool:
        """True if the polygon is too small to represent a linear region."""
        if self.num_vertices < 3:
            return True
        return self.area <= DEGENERATE_AREA * max(reference_area, 1.0)

    def centroid_attributes(self) -> np.ndarray:
        """Mean of the vertex attributes (an interior point for convex sets)."""
        return self.attributes.mean(axis=0)

    def centroid_plane_point(self) -> np.ndarray:
        """Mean of the planar coordinates."""
        return self.plane_points.mean(axis=0)

    def split(self, function_values: np.ndarray) -> tuple["VertexPolygon | None", "VertexPolygon | None"]:
        """Split by the zero set of an affine function given at the vertices."""
        combined = np.hstack([self.plane_points, self.attributes])
        positive, negative = split_by_function(combined, function_values)

        def build(rows: np.ndarray) -> "VertexPolygon | None":
            if rows.shape[0] < 3:
                return None
            polygon = VertexPolygon(rows[:, :2], rows[:, 2:])
            if polygon.is_degenerate(self.area):
                return None
            return polygon

        return build(positive), build(negative)

    def replace_attributes(self, attributes: np.ndarray) -> "VertexPolygon":
        """A copy of the polygon with new per-vertex attributes."""
        return VertexPolygon(self.plane_points.copy(), np.asarray(attributes, dtype=np.float64))

    def __repr__(self) -> str:
        return f"VertexPolygon(vertices={self.num_vertices}, area={self.area:.4g})"
