"""Planar convex polygons with per-vertex attributes and half-plane clipping.

The 2-D SyReNN decomposition keeps, for every polygon of the current
partition, its vertices both as points of the (2-D) input plane and as the
corresponding intermediate values at the current network layer.  Splitting a
polygon by the zero set of an affine function only requires the function's
values at the vertices, and linear interpolation of *all* vertex attributes
at the crossing points.  :class:`VertexPolygon` packages that bookkeeping.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError

#: Vertices whose clip function magnitude is below this are treated as lying
#: exactly on the clipping line.
CLIP_TOLERANCE = 1e-9

#: Polygons with fewer than three vertices or (relative) area below this are
#: discarded by the splitting routines.
DEGENERATE_AREA = 1e-12


def polygon_area(points: np.ndarray) -> float:
    """Unsigned area of a planar polygon given as an ordered vertex list."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ShapeError("polygon_area expects an (k, 2) array")
    if points.shape[0] < 3:
        return 0.0
    x, y = points[:, 0], points[:, 1]
    rolled_x, rolled_y = np.roll(x, -1), np.roll(y, -1)
    return float(abs(np.dot(x, rolled_y) - np.dot(rolled_x, y)) / 2.0)


def convex_hull(points: np.ndarray) -> np.ndarray:
    """Counter-clockwise convex hull of a set of 2-D points (monotone chain)."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ShapeError("convex_hull expects an (k, 2) array")
    unique = np.unique(points, axis=0)
    if unique.shape[0] <= 2:
        return unique
    ordered = unique[np.lexsort((unique[:, 1], unique[:, 0]))]

    def half_hull(candidates):
        hull: list[np.ndarray] = []
        for point in candidates:
            while len(hull) >= 2:
                cross = np.cross(hull[-1] - hull[-2], point - hull[-2])
                if cross <= 0:
                    hull.pop()
                else:
                    break
            hull.append(point)
        return hull

    lower = half_hull(ordered)
    upper = half_hull(ordered[::-1])
    return np.array(lower[:-1] + upper[:-1])


def _interpolate(first: np.ndarray, second: np.ndarray, ratio: float) -> np.ndarray:
    return first + ratio * (second - first)


def clip_by_function(vertices: np.ndarray, function_values: np.ndarray, keep_positive: bool) -> np.ndarray:
    """Clip an ordered polygon to one side of an affine function's zero set.

    ``vertices`` is an ``(k, d)`` array of vertex attribute rows (the first
    two columns need not be the plane coordinates — clipping only uses the
    affine function values).  ``function_values`` gives the affine function
    at each vertex.  Returns the ordered vertices of the sub-polygon where
    the function is ``>= 0`` (``keep_positive``) or ``<= 0``.
    """
    vertices = np.asarray(vertices, dtype=np.float64)
    values = np.asarray(function_values, dtype=np.float64)
    if vertices.shape[0] != values.shape[0]:
        raise ShapeError("one function value per vertex is required")
    if not keep_positive:
        values = -values

    kept_rows: list[np.ndarray] = []
    count = vertices.shape[0]
    for index in range(count):
        current, nxt = vertices[index], vertices[(index + 1) % count]
        current_value, next_value = values[index], values[(index + 1) % count]
        inside = current_value >= -CLIP_TOLERANCE
        next_inside = next_value >= -CLIP_TOLERANCE
        if inside:
            kept_rows.append(current)
        crosses = (current_value > CLIP_TOLERANCE and next_value < -CLIP_TOLERANCE) or (
            current_value < -CLIP_TOLERANCE and next_value > CLIP_TOLERANCE
        )
        if crosses:
            ratio = current_value / (current_value - next_value)
            kept_rows.append(_interpolate(current, nxt, ratio))
    if not kept_rows:
        return np.zeros((0, vertices.shape[1]))
    return np.array(kept_rows)


def split_by_function(vertices: np.ndarray, function_values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split an ordered polygon into its ``>= 0`` and ``<= 0`` parts."""
    positive = clip_by_function(vertices, function_values, keep_positive=True)
    negative = clip_by_function(vertices, function_values, keep_positive=False)
    return positive, negative


class VertexPolygon:
    """An ordered convex polygon whose vertices carry attribute vectors.

    Attributes are stored as an ``(k, 2 + d)`` array: the first two columns
    are the polygon's own planar coordinates (used for area/degeneracy
    checks) and the remaining ``d`` columns are arbitrary attributes (for
    SyReNN: the input-space point followed by the current-layer values).
    """

    def __init__(self, plane_points: np.ndarray, attributes: np.ndarray) -> None:
        plane_points = np.asarray(plane_points, dtype=np.float64)
        attributes = np.asarray(attributes, dtype=np.float64)
        if plane_points.ndim != 2 or plane_points.shape[1] != 2:
            raise ShapeError("plane_points must be (k, 2)")
        if attributes.ndim != 2 or attributes.shape[0] != plane_points.shape[0]:
            raise ShapeError("attributes must have one row per vertex")
        self.plane_points = plane_points
        self.attributes = attributes

    @property
    def num_vertices(self) -> int:
        return self.plane_points.shape[0]

    @property
    def area(self) -> float:
        """Area in the polygon's own planar coordinates."""
        return polygon_area(self.plane_points)

    def is_degenerate(self, reference_area: float = 1.0) -> bool:
        """True if the polygon is too small to represent a linear region."""
        if self.num_vertices < 3:
            return True
        return self.area <= DEGENERATE_AREA * max(reference_area, 1.0)

    def centroid_attributes(self) -> np.ndarray:
        """Mean of the vertex attributes (an interior point for convex sets)."""
        return self.attributes.mean(axis=0)

    def centroid_plane_point(self) -> np.ndarray:
        """Mean of the planar coordinates."""
        return self.plane_points.mean(axis=0)

    def split(self, function_values: np.ndarray) -> tuple["VertexPolygon | None", "VertexPolygon | None"]:
        """Split by the zero set of an affine function given at the vertices."""
        combined = np.hstack([self.plane_points, self.attributes])
        positive, negative = split_by_function(combined, function_values)

        def build(rows: np.ndarray) -> "VertexPolygon | None":
            if rows.shape[0] < 3:
                return None
            polygon = VertexPolygon(rows[:, :2], rows[:, 2:])
            if polygon.is_degenerate(self.area):
                return None
            return polygon

        return build(positive), build(negative)

    def replace_attributes(self, attributes: np.ndarray) -> "VertexPolygon":
        """A copy of the polygon with new per-vertex attributes."""
        return VertexPolygon(self.plane_points.copy(), np.asarray(attributes, dtype=np.float64))

    def __repr__(self) -> str:
        return f"VertexPolygon(vertices={self.num_vertices}, area={self.area:.4g})"
