"""A from-scratch NumPy feed-forward neural-network substrate.

The paper's experiments require a DNN framework capable of:

* forward evaluation of fully-connected and convolutional networks with a
  variety of activation functions (ReLU, Tanh, Sigmoid, LeakyReLU, HardTanh,
  max/average pooling);
* backpropagation and SGD training (to train the buggy networks and to run
  the FT/MFT fine-tuning baselines);
* exposing, for each layer, the linear structure required by the Decoupled
  DNN construction of the paper (input Jacobians, parameter Jacobians, and
  linearizations of activation functions around a point).

Every layer maps a batch of flat vectors ``(batch, n_in) → (batch, n_out)``;
convolution and pooling layers carry their own spatial metadata and reshape
internally.  This keeps the repair machinery (which reasons about vectors)
uniform across architectures.
"""

from repro.nn.layer import Layer, LayerKind
from repro.nn.linear import FullyConnectedLayer
from repro.nn.conv import Conv2DLayer
from repro.nn.activations import (
    ReLULayer,
    LeakyReLULayer,
    TanhLayer,
    SigmoidLayer,
    HardTanhLayer,
)
from repro.nn.pooling import MaxPool2DLayer, AvgPool2DLayer
from repro.nn.reshape import FlattenLayer, NormalizeLayer
from repro.nn.network import Network
from repro.nn.train import SGDTrainer, TrainingConfig, cross_entropy_loss

__all__ = [
    "Layer",
    "LayerKind",
    "FullyConnectedLayer",
    "Conv2DLayer",
    "ReLULayer",
    "LeakyReLULayer",
    "TanhLayer",
    "SigmoidLayer",
    "HardTanhLayer",
    "MaxPool2DLayer",
    "AvgPool2DLayer",
    "FlattenLayer",
    "NormalizeLayer",
    "Network",
    "SGDTrainer",
    "TrainingConfig",
    "cross_entropy_loss",
]
