"""Backpropagation and SGD training.

This module provides the training substrate needed to (a) train the buggy
networks used by the three evaluation tasks and (b) run the fine-tuning (FT)
and modified fine-tuning (MFT) baselines the paper compares against.

Only what those uses require is implemented: softmax cross-entropy loss,
mini-batch SGD with momentum, optional restriction of the update to a single
layer, and optional extra loss terms (used by MFT's norm penalty).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.layer import LayerKind
from repro.nn.network import Network
from repro.utils.rng import ensure_rng


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exponentials = np.exp(shifted)
    return exponentials / exponentials.sum(axis=-1, keepdims=True)


def cross_entropy_loss(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean softmax cross-entropy and its gradient with respect to logits."""
    logits = np.atleast_2d(np.asarray(logits, dtype=np.float64))
    labels = np.asarray(labels, dtype=int)
    probabilities = softmax(logits)
    batch = logits.shape[0]
    clipped = np.clip(probabilities[np.arange(batch), labels], 1e-12, None)
    loss = float(-np.mean(np.log(clipped)))
    grad = probabilities.copy()
    grad[np.arange(batch), labels] -= 1.0
    grad /= batch
    return loss, grad


def network_gradients(
    network: Network,
    inputs: np.ndarray,
    labels: np.ndarray,
    only_layer: int | None = None,
) -> tuple[float, dict[int, np.ndarray]]:
    """Loss and per-layer parameter gradients for one mini-batch.

    ``only_layer`` restricts the returned gradients to a single layer index
    (the backward pass still runs through every layer).
    """
    layer_values = network.layer_inputs(inputs)
    loss, grad = cross_entropy_loss(layer_values[-1], labels)
    gradients: dict[int, np.ndarray] = {}
    for index in range(len(network.layers) - 1, -1, -1):
        layer = network.layers[index]
        layer_input = layer_values[index]
        if layer.kind is LayerKind.PARAMETERIZED and (only_layer is None or index == only_layer):
            gradients[index] = layer.backward_parameters(grad, layer_input)
        if index > 0:
            grad = layer.backward_input(grad, layer_input)
    return loss, gradients


@dataclass
class TrainingConfig:
    """Hyperparameters for :class:`SGDTrainer`."""

    learning_rate: float = 0.01
    momentum: float = 0.9
    batch_size: int = 32
    epochs: int = 10
    shuffle: bool = True
    only_layer: int | None = None
    weight_decay: float = 0.0
    seed: int | None = 0


@dataclass
class TrainingHistory:
    """Per-epoch training statistics."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else float("nan")


class SGDTrainer:
    """Mini-batch stochastic gradient descent with momentum."""

    def __init__(self, network: Network, config: TrainingConfig | None = None) -> None:
        self.network = network
        self.config = config or TrainingConfig()
        self._velocity: dict[int, np.ndarray] = {}

    def _apply_update(self, gradients: dict[int, np.ndarray]) -> None:
        config = self.config
        for index, gradient in gradients.items():
            layer = self.network.layers[index]
            parameters = layer.get_parameters()
            if config.weight_decay:
                gradient = gradient + config.weight_decay * parameters
            velocity = self._velocity.get(index)
            if velocity is None:
                velocity = np.zeros_like(gradient)
            velocity = config.momentum * velocity - config.learning_rate * gradient
            self._velocity[index] = velocity
            layer.set_parameters(parameters + velocity)

    def train_epoch(self, inputs: np.ndarray, labels: np.ndarray, rng=None) -> float:
        """Run one epoch over ``(inputs, labels)``; return the mean loss."""
        rng = ensure_rng(rng if rng is not None else self.config.seed)
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        labels = np.asarray(labels, dtype=int)
        order = np.arange(inputs.shape[0])
        if self.config.shuffle:
            rng.shuffle(order)
        losses = []
        for start in range(0, order.size, self.config.batch_size):
            batch = order[start:start + self.config.batch_size]
            loss, gradients = network_gradients(
                self.network, inputs[batch], labels[batch], only_layer=self.config.only_layer
            )
            self._apply_update(gradients)
            losses.append(loss)
        return float(np.mean(losses)) if losses else 0.0

    def train(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        *,
        epochs: int | None = None,
        stop_at_full_accuracy: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` epochs (default: the config's epoch count).

        With ``stop_at_full_accuracy`` the loop exits as soon as every
        training example is classified correctly — this mirrors the paper's
        FT baseline, which "runs gradient descent until all repair set points
        are correctly classified".
        """
        rng = ensure_rng(self.config.seed)
        history = TrainingHistory()
        total_epochs = epochs if epochs is not None else self.config.epochs
        for _ in range(total_epochs):
            loss = self.train_epoch(inputs, labels, rng=rng)
            accuracy = self.network.accuracy(inputs, labels)
            history.losses.append(loss)
            history.accuracies.append(accuracy)
            if stop_at_full_accuracy and accuracy >= 1.0:
                break
        return history
