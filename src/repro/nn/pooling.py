"""Pooling layers.

``MaxPool2DLayer`` is a piecewise-linear *activation* layer: in a Decoupled
DNN its value-channel replacement is the selection map determined by the
activation channel's argmax (a :class:`SelectionLinearization`).
``AvgPool2DLayer`` is a fixed linear map and therefore a *static* layer.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.conv import window_indices
from repro.nn.layer import Layer, LayerKind, Linearization, SelectionLinearization


class _Pool2DBase(Layer):
    """Shared geometry handling for 2-D pooling layers."""

    def __init__(
        self,
        channels: int,
        input_height: int,
        input_width: int,
        pool_size: int = 2,
        stride: int | None = None,
    ) -> None:
        self.channels = int(channels)
        self.input_height = int(input_height)
        self.input_width = int(input_width)
        self.pool_size = int(pool_size)
        self.stride = int(stride) if stride is not None else self.pool_size
        rows, cols, out_h, out_w = window_indices(
            self.input_height,
            self.input_width,
            self.pool_size,
            self.pool_size,
            self.stride,
            padding=0,
        )
        self.output_height = out_h
        self.output_width = out_w
        # Flat spatial index of every window element for every output position.
        self._window_flat = rows * self.input_width + cols  # (k*k, P)

    @property
    def input_size(self) -> int:
        return self.channels * self.input_height * self.input_width

    @property
    def output_size(self) -> int:
        return self.channels * self.output_height * self.output_width

    def _windows(self, values: np.ndarray) -> np.ndarray:
        """Gather pooling windows: ``(batch, channels, k*k, P)``."""
        batch = values.shape[0]
        maps = values.reshape(batch, self.channels, -1)
        return maps[:, :, self._window_flat]


class MaxPool2DLayer(_Pool2DBase):
    """Max pooling; a piecewise-linear activation layer."""

    kind = LayerKind.ACTIVATION
    is_piecewise_linear = True

    def forward(self, values: np.ndarray) -> np.ndarray:
        values = np.atleast_2d(np.asarray(values, dtype=np.float64))
        if values.shape[1] != self.input_size:
            raise ShapeError(f"expected input of size {self.input_size}, got {values.shape[1]}")
        windows = self._windows(values)
        return windows.max(axis=2).reshape(values.shape[0], -1)

    def _argmax_flat_indices(self, vector: np.ndarray) -> np.ndarray:
        """Flat input index selected by each output coordinate at ``vector``."""
        return self._argmax_flat_indices_batch(vector.reshape(1, -1))[0]

    def _argmax_flat_indices_batch(self, batch: np.ndarray) -> np.ndarray:
        """Flat input index selected by each output coordinate, per batch row.

        Returns ``(batch, output_size)`` indices into the flat input.
        """
        windows = self._windows(batch)                              # (B, C, k*k, P)
        winners = windows.argmax(axis=2)                            # (B, C, P)
        spatial = np.take_along_axis(
            np.broadcast_to(self._window_flat, windows.shape), winners[:, :, None, :], axis=2
        )[:, :, 0, :]
        channel_offsets = (
            np.arange(self.channels)[None, :, None] * self.input_height * self.input_width
        )
        return (spatial + channel_offsets).reshape(batch.shape[0], -1)

    def backward_input(self, grad_output: np.ndarray, forward_input: np.ndarray) -> np.ndarray:
        grad_output = np.atleast_2d(np.asarray(grad_output, dtype=np.float64))
        forward_input = np.atleast_2d(np.asarray(forward_input, dtype=np.float64))
        grad_input = np.zeros_like(forward_input)
        for row in range(forward_input.shape[0]):
            indices = self._argmax_flat_indices(forward_input[row])
            np.add.at(grad_input[row], indices, grad_output[row])
        return grad_input

    def linearize(self, preactivation: np.ndarray) -> Linearization:
        indices = self._argmax_flat_indices(np.asarray(preactivation, dtype=np.float64).ravel())
        return SelectionLinearization(indices, self.input_size)

    def batch_linearize_backward(
        self, grad_output: np.ndarray, preactivations: np.ndarray
    ) -> np.ndarray:
        """See :meth:`Layer.batch_linearize_backward`.

        The transposed selection map scatters each output column of every
        point's matrix onto the input coordinate its pooling window selected;
        a single ``np.add.at`` handles the whole stack.
        """
        grad_output = np.asarray(grad_output, dtype=np.float64)
        preactivations = np.atleast_2d(np.asarray(preactivations, dtype=np.float64))
        k, m, _ = grad_output.shape
        selected = self._argmax_flat_indices_batch(preactivations)  # (k, output_size)
        grad_input = np.zeros((k, self.input_size, m))
        np.add.at(
            grad_input,
            (np.arange(k)[:, None], selected),
            np.transpose(grad_output, (0, 2, 1)),
        )
        return np.transpose(grad_input, (0, 2, 1))

    def decoupled_forward(
        self, activation_preactivation: np.ndarray, value_preactivation: np.ndarray
    ) -> np.ndarray:
        activation_batch = np.atleast_2d(np.asarray(activation_preactivation, dtype=np.float64))
        value_batch = np.atleast_2d(np.asarray(value_preactivation, dtype=np.float64))
        activation_windows = self._windows(activation_batch)       # (B, C, k*k, P)
        value_windows = self._windows(value_batch)
        winners = activation_windows.argmax(axis=2)                 # (B, C, P)
        selected = np.take_along_axis(value_windows, winners[:, :, None, :], axis=2)[:, :, 0, :]
        return selected.reshape(value_batch.shape[0], -1)


class AvgPool2DLayer(_Pool2DBase):
    """Average pooling; a fixed linear (static) layer."""

    kind = LayerKind.STATIC

    def forward(self, values: np.ndarray) -> np.ndarray:
        values = np.atleast_2d(np.asarray(values, dtype=np.float64))
        if values.shape[1] != self.input_size:
            raise ShapeError(f"expected input of size {self.input_size}, got {values.shape[1]}")
        windows = self._windows(values)
        return windows.mean(axis=2).reshape(values.shape[0], -1)

    def backward_input(self, grad_output: np.ndarray, forward_input: np.ndarray) -> np.ndarray:
        grad_output = np.atleast_2d(np.asarray(grad_output, dtype=np.float64))
        batch = grad_output.shape[0]
        grad_maps = grad_output.reshape(batch, self.channels, -1)
        share = grad_maps / float(self.pool_size * self.pool_size)
        grad_input = np.zeros((batch, self.channels, self.input_height * self.input_width))
        window = np.broadcast_to(
            self._window_flat, (self.pool_size * self.pool_size, grad_maps.shape[2])
        )
        for element in range(window.shape[0]):
            np.add.at(grad_input, (slice(None), slice(None), window[element]), share)
        return grad_input.reshape(batch, -1)


class GlobalAvgPoolLayer(Layer):
    """Average over all spatial positions of each channel (static layer).

    Used as the final spatial reduction of the MiniSqueezeNet model, mirroring
    SqueezeNet's global average pooling before the classifier.
    """

    kind = LayerKind.STATIC

    def __init__(self, channels: int, input_height: int, input_width: int) -> None:
        self.channels = int(channels)
        self.input_height = int(input_height)
        self.input_width = int(input_width)

    @property
    def input_size(self) -> int:
        return self.channels * self.input_height * self.input_width

    @property
    def output_size(self) -> int:
        return self.channels

    def forward(self, values: np.ndarray) -> np.ndarray:
        values = np.atleast_2d(np.asarray(values, dtype=np.float64))
        maps = values.reshape(values.shape[0], self.channels, -1)
        return maps.mean(axis=2)

    def backward_input(self, grad_output: np.ndarray, forward_input: np.ndarray) -> np.ndarray:
        grad_output = np.atleast_2d(np.asarray(grad_output, dtype=np.float64))
        positions = self.input_height * self.input_width
        spread = np.repeat(grad_output[:, :, None] / positions, positions, axis=2)
        return spread.reshape(grad_output.shape[0], -1)
