"""2-D convolution layers (im2col based).

The layer operates on flat vectors like every other layer in the framework;
it carries its own ``(channels, height, width)`` metadata and reshapes
internally.  The im2col/col2im index arrays are precomputed once per layer so
forward evaluation, input backward, and parameter Jacobians all reuse them.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import LayerError, ShapeError
from repro.nn.layer import Layer, LayerKind


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    usable = size + 2 * padding - kernel
    if usable < 0 or usable % stride != 0:
        raise LayerError(
            f"incompatible convolution geometry: size={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return usable // stride + 1


def window_indices(
    height: int,
    width: int,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Row/column gather indices for im2col over a padded image.

    Returns ``(rows, cols, out_h, out_w)`` where ``rows`` and ``cols`` have
    shape ``(kernel_h * kernel_w, out_h * out_w)`` and index into the padded
    image.
    """
    out_h = conv_output_size(height, kernel_h, stride, padding)
    out_w = conv_output_size(width, kernel_w, stride, padding)
    kernel_rows = np.repeat(np.arange(kernel_h), kernel_w)
    kernel_cols = np.tile(np.arange(kernel_w), kernel_h)
    start_rows = stride * np.repeat(np.arange(out_h), out_w)
    start_cols = stride * np.tile(np.arange(out_w), out_h)
    rows = kernel_rows[:, None] + start_rows[None, :]
    cols = kernel_cols[:, None] + start_cols[None, :]
    return rows, cols, out_h, out_w


class Conv2DLayer(Layer):
    """A 2-D convolution ``z = K * x + b``.

    Parameters are flattened as the kernel tensor ``(out_channels,
    in_channels, kernel_h, kernel_w)`` in row-major order followed by the
    per-output-channel bias.  The layer input/output are flat vectors in
    ``(channels, height, width)`` row-major layout.
    """

    kind = LayerKind.PARAMETERIZED

    def __init__(
        self,
        kernels,
        biases=None,
        *,
        input_height: int,
        input_width: int,
        stride: int = 1,
        padding: int = 0,
    ) -> None:
        self.kernels = np.asarray(kernels, dtype=np.float64)
        if self.kernels.ndim != 4:
            raise ShapeError("kernels must have shape (out_ch, in_ch, kh, kw)")
        self.out_channels, self.in_channels, self.kernel_h, self.kernel_w = self.kernels.shape
        if biases is None:
            self.biases = np.zeros(self.out_channels)
        else:
            self.biases = np.asarray(biases, dtype=np.float64).ravel()
            if self.biases.size != self.out_channels:
                raise ShapeError("biases must have one entry per output channel")
        self.input_height = int(input_height)
        self.input_width = int(input_width)
        self.stride = int(stride)
        self.padding = int(padding)
        rows, cols, out_h, out_w = window_indices(
            self.input_height,
            self.input_width,
            self.kernel_h,
            self.kernel_w,
            self.stride,
            self.padding,
        )
        self._rows = rows
        self._cols = cols
        self.output_height = out_h
        self.output_width = out_w

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_shape(
        cls,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        *,
        input_height: int,
        input_width: int,
        stride: int = 1,
        padding: int = 0,
        rng: np.random.Generator,
    ) -> "Conv2DLayer":
        """He-style random initialization."""
        fan_in = in_channels * kernel_size * kernel_size
        scale = np.sqrt(2.0 / max(1, fan_in))
        kernels = rng.normal(0.0, scale, size=(out_channels, in_channels, kernel_size, kernel_size))
        return cls(
            kernels,
            np.zeros(out_channels),
            input_height=input_height,
            input_width=input_width,
            stride=stride,
            padding=padding,
        )

    # ------------------------------------------------------------------
    # Shape info
    # ------------------------------------------------------------------
    @property
    def input_size(self) -> int:
        return self.in_channels * self.input_height * self.input_width

    @property
    def output_size(self) -> int:
        return self.out_channels * self.output_height * self.output_width

    @property
    def num_positions(self) -> int:
        """Number of spatial output positions."""
        return self.output_height * self.output_width

    # ------------------------------------------------------------------
    # im2col helpers
    # ------------------------------------------------------------------
    def _pad(self, images: np.ndarray) -> np.ndarray:
        if self.padding == 0:
            return images
        pad = self.padding
        return np.pad(images, ((0, 0), (0, 0), (pad, pad), (pad, pad)))

    def _im2col(self, values: np.ndarray) -> np.ndarray:
        """Return im2col patches of shape ``(batch, in_ch * kh * kw, P)``."""
        batch = values.shape[0]
        images = values.reshape(batch, self.in_channels, self.input_height, self.input_width)
        padded = self._pad(images)
        patches = padded[:, :, self._rows, self._cols]
        return patches.reshape(batch, self.in_channels * self.kernel_h * self.kernel_w, -1)

    def _col2im(self, grad_patches: np.ndarray) -> np.ndarray:
        """Scatter patch gradients back to flat input gradients."""
        batch = grad_patches.shape[0]
        padded_h = self.input_height + 2 * self.padding
        padded_w = self.input_width + 2 * self.padding
        grad_padded = np.zeros((batch, self.in_channels, padded_h, padded_w))
        grad_patches = grad_patches.reshape(
            batch, self.in_channels, self.kernel_h * self.kernel_w, -1
        )
        np.add.at(grad_padded, (slice(None), slice(None), self._rows, self._cols), grad_patches)
        if self.padding:
            pad = self.padding
            grad_padded = grad_padded[:, :, pad:-pad, pad:-pad]
        return grad_padded.reshape(batch, -1)

    def _kernel_matrix(self) -> np.ndarray:
        """The kernel tensor reshaped to ``(out_ch, in_ch * kh * kw)``."""
        return self.kernels.reshape(self.out_channels, -1)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def forward(self, values: np.ndarray) -> np.ndarray:
        values = np.atleast_2d(np.asarray(values, dtype=np.float64))
        if values.shape[1] != self.input_size:
            raise ShapeError(
                f"expected input of size {self.input_size}, got {values.shape[1]}"
            )
        patches = self._im2col(values)
        response = np.einsum("oq,bqp->bop", self._kernel_matrix(), patches)
        response += self.biases[None, :, None]
        return response.reshape(values.shape[0], -1)

    def backward_input(self, grad_output: np.ndarray, forward_input: np.ndarray) -> np.ndarray:
        grad_output = np.atleast_2d(np.asarray(grad_output, dtype=np.float64))
        grad_maps = grad_output.reshape(grad_output.shape[0], self.out_channels, -1)
        grad_patches = np.einsum("oq,bop->bqp", self._kernel_matrix(), grad_maps)
        return self._col2im(grad_patches)

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return self.kernels.size + self.biases.size

    def get_parameters(self) -> np.ndarray:
        return np.concatenate([self.kernels.ravel(), self.biases])

    def set_parameters(self, flat: np.ndarray) -> None:
        flat = np.asarray(flat, dtype=np.float64).ravel()
        if flat.size != self.num_parameters:
            raise LayerError(f"expected {self.num_parameters} parameters, got {flat.size}")
        split = self.kernels.size
        self.kernels = flat[:split].reshape(self.kernels.shape).copy()
        self.biases = flat[split:].copy()

    def parameter_jacobian(self, downstream: np.ndarray, forward_input: np.ndarray) -> np.ndarray:
        """See :meth:`Layer.parameter_jacobian`.

        With ``Z[c, p] = Σ_q K[c, q] · cols[q, p] + b[c]`` and downstream map
        ``A`` (reshaped to ``(m, out_ch, P)``) we get
        ``∂(A z)/∂K[c, q] = Σ_p A[:, c, p] · cols[q, p]`` and
        ``∂(A z)/∂b[c] = Σ_p A[:, c, p]``.
        """
        downstream = np.asarray(downstream, dtype=np.float64)
        if downstream.shape[1] != self.output_size:
            raise ShapeError(
                f"downstream map has {downstream.shape[1]} columns, expected {self.output_size}"
            )
        u = np.asarray(forward_input, dtype=np.float64).reshape(1, -1)
        cols = self._im2col(u)[0]
        reshaped = downstream.reshape(downstream.shape[0], self.out_channels, -1)
        kernel_block = np.einsum("mcp,qp->mcq", reshaped, cols)
        kernel_block = kernel_block.reshape(downstream.shape[0], -1)
        bias_block = reshaped.sum(axis=2)
        return np.hstack([kernel_block, bias_block])

    def batch_parameter_jacobian(
        self, downstream: np.ndarray, forward_inputs: np.ndarray
    ) -> np.ndarray:
        """See :meth:`Layer.batch_parameter_jacobian`.

        The im2col patches of all points are gathered in one shot and a
        single einsum contracts them against the stacked downstream maps.
        """
        downstream = np.asarray(downstream, dtype=np.float64)
        forward_inputs = np.atleast_2d(np.asarray(forward_inputs, dtype=np.float64))
        if downstream.shape[2] != self.output_size:
            raise ShapeError(
                f"downstream maps have {downstream.shape[2]} columns, expected {self.output_size}"
            )
        k, m, _ = downstream.shape
        cols = self._im2col(forward_inputs)                                   # (k, q, P)
        reshaped = downstream.reshape(k, m, self.out_channels, -1)            # (k, m, c, P)
        kernel_block = np.einsum("kmcp,kqp->kmcq", reshaped, cols).reshape(k, m, -1)
        bias_block = reshaped.sum(axis=3)
        return np.concatenate([kernel_block, bias_block], axis=2)

    def backward_parameters(self, grad_output: np.ndarray, forward_input: np.ndarray) -> np.ndarray:
        grad_output = np.atleast_2d(np.asarray(grad_output, dtype=np.float64))
        forward_input = np.atleast_2d(np.asarray(forward_input, dtype=np.float64))
        patches = self._im2col(forward_input)
        grad_maps = grad_output.reshape(grad_output.shape[0], self.out_channels, -1)
        grad_kernels = np.einsum("bop,bqp->oq", grad_maps, patches)
        grad_biases = grad_maps.sum(axis=(0, 2))
        return np.concatenate([grad_kernels.ravel(), grad_biases])
