"""Element-wise activation layers.

Each activation layer knows how to:

* evaluate itself (``forward``),
* apply its transposed input Jacobian at a point (``backward_input``), and
* produce the affine map ``Linearize[σ, z₀]`` used by the value channel of a
  Decoupled DNN (``linearize``; Definition 4.2 of the paper).

Piecewise-linear activations additionally expose their breakpoints so the
SyReNN substrate can locate linear-region boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layer import ElementwiseLinearization, Layer, LayerKind, Linearization


class _ElementwiseActivation(Layer):
    """Shared plumbing for element-wise activation layers of a fixed size."""

    kind = LayerKind.ACTIVATION

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("activation size must be positive")
        self._size = int(size)

    @property
    def input_size(self) -> int:
        return self._size

    @property
    def output_size(self) -> int:
        return self._size

    # Subclasses implement value/derivative on raw arrays.
    def _value(self, z: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _derivative(self, z: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def forward(self, values: np.ndarray) -> np.ndarray:
        return self._value(np.asarray(values, dtype=np.float64))

    def backward_input(self, grad_output: np.ndarray, forward_input: np.ndarray) -> np.ndarray:
        return np.asarray(grad_output, dtype=np.float64) * self._derivative(
            np.asarray(forward_input, dtype=np.float64)
        )

    def linearize(self, preactivation: np.ndarray) -> Linearization:
        z0 = np.asarray(preactivation, dtype=np.float64).ravel()
        slope = self._derivative(z0)
        intercept = self._value(z0) - slope * z0
        return ElementwiseLinearization(slope, intercept)

    def decoupled_forward(
        self, activation_preactivation: np.ndarray, value_preactivation: np.ndarray
    ) -> np.ndarray:
        z0 = np.asarray(activation_preactivation, dtype=np.float64)
        z_value = np.asarray(value_preactivation, dtype=np.float64)
        slope = self._derivative(z0)
        intercept = self._value(z0) - slope * z0
        return slope * z_value + intercept

    def batch_linearize_backward(
        self, grad_output: np.ndarray, preactivations: np.ndarray
    ) -> np.ndarray:
        """See :meth:`Layer.batch_linearize_backward`.

        The transposed linearization of an element-wise activation is a
        diagonal scaling by the per-point slopes, so the whole stack reduces
        to one broadcast multiply.
        """
        slopes = self._derivative(np.atleast_2d(np.asarray(preactivations, dtype=np.float64)))
        return np.asarray(grad_output, dtype=np.float64) * slopes[:, None, :]


class ReLULayer(_ElementwiseActivation):
    """``ReLU(z) = max(z, 0)``.  Piecewise linear with a breakpoint at 0.

    At exactly 0 the function is non-differentiable; following Appendix C of
    the paper we consistently pick the zero linearization there.
    """

    is_piecewise_linear = True

    def _value(self, z: np.ndarray) -> np.ndarray:
        return np.maximum(z, 0.0)

    def _derivative(self, z: np.ndarray) -> np.ndarray:
        return (z > 0.0).astype(np.float64)

    def decoupled_forward(
        self, activation_preactivation: np.ndarray, value_preactivation: np.ndarray
    ) -> np.ndarray:
        # The generic slope/intercept path builds several temporaries; for
        # ReLU the linearization is just "pass through where the activation
        # channel is positive", which matters on the batched hot path.
        return np.where(
            np.asarray(activation_preactivation, dtype=np.float64) > 0.0,
            np.asarray(value_preactivation, dtype=np.float64),
            0.0,
        )

    def piecewise_breakpoints(self) -> tuple[float, ...]:
        return (0.0,)


class LeakyReLULayer(_ElementwiseActivation):
    """``LeakyReLU(z) = z`` for ``z > 0`` and ``αz`` otherwise."""

    is_piecewise_linear = True

    def __init__(self, size: int, negative_slope: float = 0.01) -> None:
        super().__init__(size)
        self.negative_slope = float(negative_slope)

    def _value(self, z: np.ndarray) -> np.ndarray:
        return np.where(z > 0.0, z, self.negative_slope * z)

    def _derivative(self, z: np.ndarray) -> np.ndarray:
        return np.where(z > 0.0, 1.0, self.negative_slope)

    def piecewise_breakpoints(self) -> tuple[float, ...]:
        return (0.0,)


class HardTanhLayer(_ElementwiseActivation):
    """``HardTanh(z) = clip(z, -1, 1)``.  Piecewise linear with breaks ±1."""

    is_piecewise_linear = True

    def _value(self, z: np.ndarray) -> np.ndarray:
        return np.clip(z, -1.0, 1.0)

    def _derivative(self, z: np.ndarray) -> np.ndarray:
        return ((z > -1.0) & (z < 1.0)).astype(np.float64)

    def piecewise_breakpoints(self) -> tuple[float, ...]:
        return (-1.0, 1.0)


class TanhLayer(_ElementwiseActivation):
    """Hyperbolic tangent.  Smooth (not piecewise linear)."""

    is_piecewise_linear = False

    def _value(self, z: np.ndarray) -> np.ndarray:
        return np.tanh(z)

    def _derivative(self, z: np.ndarray) -> np.ndarray:
        return 1.0 - np.tanh(z) ** 2


class SigmoidLayer(_ElementwiseActivation):
    """Logistic sigmoid.  Smooth (not piecewise linear)."""

    is_piecewise_linear = False

    def _value(self, z: np.ndarray) -> np.ndarray:
        out = np.empty_like(z)
        positive = z >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
        exp_z = np.exp(z[~positive])
        out[~positive] = exp_z / (1.0 + exp_z)
        return out

    def _derivative(self, z: np.ndarray) -> np.ndarray:
        value = self._value(z)
        return value * (1.0 - value)
