"""Fully-connected (dense) layers."""

from __future__ import annotations

import numpy as np

from repro.exceptions import LayerError, ShapeError
from repro.nn.layer import Layer, LayerKind
from repro.utils.validation import check_matrix, check_vector


class FullyConnectedLayer(Layer):
    """An affine layer ``z = W x + b``.

    Parameters are flattened as the weight matrix in row-major order followed
    by the bias vector, i.e. ``[W[0,0], W[0,1], ..., W[out-1,in-1], b[0], ...,
    b[out-1]]``.  This ordering is relied upon by
    :meth:`parameter_jacobian` and by the repair algorithms when they add the
    LP solution back into the layer.
    """

    kind = LayerKind.PARAMETERIZED

    def __init__(self, weights, biases=None) -> None:
        self.weights = check_matrix(weights, "weights")
        out_size = self.weights.shape[0]
        if biases is None:
            self.biases = np.zeros(out_size)
        else:
            self.biases = check_vector(biases, "biases", size=out_size)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_shape(
        cls,
        input_size: int,
        output_size: int,
        rng: np.random.Generator,
        scale: float | None = None,
    ) -> "FullyConnectedLayer":
        """He-style random initialization for a layer of the given shape."""
        if scale is None:
            scale = float(np.sqrt(2.0 / max(1, input_size)))
        weights = rng.normal(0.0, scale, size=(output_size, input_size))
        return cls(weights, np.zeros(output_size))

    # ------------------------------------------------------------------
    # Shape info
    # ------------------------------------------------------------------
    @property
    def input_size(self) -> int:
        return self.weights.shape[1]

    @property
    def output_size(self) -> int:
        return self.weights.shape[0]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def forward(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.shape[-1] != self.input_size:
            raise ShapeError(
                f"expected input of size {self.input_size}, got {values.shape[-1]}"
            )
        return values @ self.weights.T + self.biases

    def backward_input(self, grad_output: np.ndarray, forward_input: np.ndarray) -> np.ndarray:
        return np.asarray(grad_output, dtype=np.float64) @ self.weights

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return self.weights.size + self.biases.size

    def get_parameters(self) -> np.ndarray:
        return np.concatenate([self.weights.ravel(), self.biases])

    def set_parameters(self, flat: np.ndarray) -> None:
        flat = np.asarray(flat, dtype=np.float64).ravel()
        if flat.size != self.num_parameters:
            raise LayerError(
                f"expected {self.num_parameters} parameters, got {flat.size}"
            )
        split = self.weights.size
        self.weights = flat[:split].reshape(self.weights.shape).copy()
        self.biases = flat[split:].copy()

    def parameter_jacobian(self, downstream: np.ndarray, forward_input: np.ndarray) -> np.ndarray:
        """See :meth:`Layer.parameter_jacobian`.

        With ``z = W u + b`` and downstream linear map ``A`` we have
        ``∂(A z)/∂W[k, l] = A[:, k] * u[l]`` and ``∂(A z)/∂b[k] = A[:, k]``.
        """
        downstream = np.asarray(downstream, dtype=np.float64)
        u = np.asarray(forward_input, dtype=np.float64).ravel()
        if downstream.shape[1] != self.output_size:
            raise ShapeError(
                f"downstream map has {downstream.shape[1]} columns, expected {self.output_size}"
            )
        if u.size != self.input_size:
            raise ShapeError(f"forward input has size {u.size}, expected {self.input_size}")
        weight_block = np.einsum("mk,l->mkl", downstream, u).reshape(downstream.shape[0], -1)
        return np.hstack([weight_block, downstream])

    def batch_parameter_jacobian(
        self, downstream: np.ndarray, forward_inputs: np.ndarray
    ) -> np.ndarray:
        """See :meth:`Layer.batch_parameter_jacobian`.

        One einsum builds the weight blocks of all points at once; the bias
        blocks are the downstream maps themselves.
        """
        downstream = np.asarray(downstream, dtype=np.float64)
        forward_inputs = np.atleast_2d(np.asarray(forward_inputs, dtype=np.float64))
        if downstream.shape[2] != self.output_size:
            raise ShapeError(
                f"downstream maps have {downstream.shape[2]} columns, expected {self.output_size}"
            )
        if forward_inputs.shape[1] != self.input_size:
            raise ShapeError(
                f"forward inputs have size {forward_inputs.shape[1]}, expected {self.input_size}"
            )
        k, m, _ = downstream.shape
        weight_block = np.einsum("kmo,ki->kmoi", downstream, forward_inputs).reshape(k, m, -1)
        return np.concatenate([weight_block, downstream], axis=2)

    def backward_parameters(self, grad_output: np.ndarray, forward_input: np.ndarray) -> np.ndarray:
        grad_output = np.atleast_2d(np.asarray(grad_output, dtype=np.float64))
        forward_input = np.atleast_2d(np.asarray(forward_input, dtype=np.float64))
        grad_weights = grad_output.T @ forward_input
        grad_biases = grad_output.sum(axis=0)
        return np.concatenate([grad_weights.ravel(), grad_biases])
