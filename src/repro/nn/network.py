"""The sequential network container."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.exceptions import LayerError, ShapeError
from repro.nn.layer import Layer, LayerKind, as_batch


class Network:
    """A feed-forward network: an ordered list of layers.

    This corresponds to the paper's Definition 2.1/2.2 generalized to allow
    convolutional, pooling, and normalization layers in addition to the
    alternating linear/activation structure of the formal definition.
    """

    def __init__(self, layers: list[Layer]) -> None:
        if not layers:
            raise LayerError("a network needs at least one layer")
        for earlier, later in zip(layers, layers[1:]):
            if earlier.output_size != later.input_size:
                raise LayerError(
                    f"layer size mismatch: {earlier!r} feeds {later!r} "
                    f"({earlier.output_size} != {later.input_size})"
                )
        self.layers = list(layers)

    # ------------------------------------------------------------------
    # Shape info
    # ------------------------------------------------------------------
    @property
    def input_size(self) -> int:
        """Number of input features."""
        return self.layers[0].input_size

    @property
    def output_size(self) -> int:
        """Number of output features (e.g. classes)."""
        return self.layers[-1].output_size

    @property
    def num_parameters(self) -> int:
        """Total number of trainable parameters across all layers."""
        return sum(layer.num_parameters for layer in self.layers)

    def parameterized_layer_indices(self) -> list[int]:
        """Indices of layers that carry repairable parameters."""
        return [
            index
            for index, layer in enumerate(self.layers)
            if layer.kind is LayerKind.PARAMETERIZED
        ]

    def is_piecewise_linear(self) -> bool:
        """True if every activation layer is piecewise linear."""
        return all(
            layer.is_piecewise_linear
            for layer in self.layers
            if layer.kind is LayerKind.ACTIVATION
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def compute(self, values: np.ndarray) -> np.ndarray:
        """Evaluate the network; accepts a vector or a batch of vectors."""
        batch, was_vector = as_batch(values)
        if batch.shape[1] != self.input_size:
            raise ShapeError(
                f"expected inputs of size {self.input_size}, got {batch.shape[1]}"
            )
        current = batch
        for layer in self.layers:
            current = layer.forward(current)
        return current[0] if was_vector else current

    __call__ = compute

    def layer_inputs(self, values: np.ndarray) -> list[np.ndarray]:
        """Inputs seen by every layer, plus the final output, for a batch.

        Returns a list of ``len(layers) + 1`` arrays; entry ``i`` is the
        input to layer ``i`` and the last entry is the network output.
        """
        batch, _ = as_batch(values)
        if batch.shape[1] != self.input_size:
            raise ShapeError(
                f"expected inputs of size {self.input_size}, got {batch.shape[1]}"
            )
        inputs = [batch]
        current = batch
        for layer in self.layers:
            current = layer.forward(current)
            inputs.append(current)
        return inputs

    def predict(self, values: np.ndarray) -> np.ndarray:
        """Argmax class predictions for a batch of inputs."""
        outputs = self.compute(values)
        outputs = np.atleast_2d(outputs)
        return outputs.argmax(axis=1)

    def accuracy(self, values: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on ``(values, labels)``."""
        labels = np.asarray(labels, dtype=int)
        if labels.size == 0:
            raise ShapeError("cannot compute accuracy on an empty set")
        return float(np.mean(self.predict(values) == labels))

    def activation_pattern(self, value: np.ndarray) -> list[np.ndarray]:
        """The sign pattern of every piecewise-linear activation layer.

        Returns one boolean array per activation layer recording, for
        element-wise activations, which units lie strictly in the "upper"
        piece (e.g. which ReLUs are on).  Used for analysis and tests; the
        repair algorithms do not need it directly.
        """
        inputs = self.layer_inputs(np.asarray(value, dtype=np.float64))
        pattern = []
        for index, layer in enumerate(self.layers):
            if layer.kind is LayerKind.ACTIVATION and layer.is_piecewise_linear:
                pattern.append(inputs[index][0] > 0.0)
        return pattern

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    def get_all_parameters(self) -> dict[int, np.ndarray]:
        """Flat parameter vectors keyed by parameterized layer index."""
        return {
            index: self.layers[index].get_parameters()
            for index in self.parameterized_layer_indices()
        }

    def set_all_parameters(self, parameters: dict[int, np.ndarray]) -> None:
        """Overwrite parameters from a mapping produced by ``get_all_parameters``."""
        for index, flat in parameters.items():
            self.layers[index].set_parameters(flat)

    def copy(self) -> "Network":
        """A deep copy of the network."""
        return Network([layer.copy() for layer in self.layers])

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save_parameters(self, path: str | Path) -> None:
        """Save all layer parameters to an ``.npz`` file."""
        arrays = {
            f"layer_{index}": flat for index, flat in self.get_all_parameters().items()
        }
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(path, **arrays)

    def load_parameters(self, path: str | Path) -> None:
        """Load parameters saved by :meth:`save_parameters` into this network."""
        with np.load(Path(path)) as data:
            for key in data.files:
                index = int(key.split("_", 1)[1])
                self.layers[index].set_parameters(np.array(data[key]))

    def __repr__(self) -> str:
        inner = ", ".join(type(layer).__name__ for layer in self.layers)
        return f"Network([{inner}])"
