"""Fixed affine layers: flatten and input normalization.

Because every layer in this framework already operates on flat vectors,
``FlattenLayer`` is the identity on values; it exists so that architectures
ported from channel/height/width descriptions keep their familiar structure
and so layer indices line up with the original model descriptions.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layer import Layer, LayerKind
from repro.utils.validation import check_vector


class FlattenLayer(Layer):
    """Identity on flat vectors; marks the conv→dense transition."""

    kind = LayerKind.STATIC

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self._size = int(size)

    @property
    def input_size(self) -> int:
        return self._size

    @property
    def output_size(self) -> int:
        return self._size

    def forward(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=np.float64)

    def backward_input(self, grad_output: np.ndarray, forward_input: np.ndarray) -> np.ndarray:
        return np.asarray(grad_output, dtype=np.float64)


class NormalizeLayer(Layer):
    """Fixed per-feature affine normalization ``(x - mean) / std``.

    Used as the first layer of the image networks so raw pixel inputs can be
    fed directly to the network (mirroring the normalization baked into the
    original SqueezeNet/MNIST pipelines).
    """

    kind = LayerKind.STATIC

    def __init__(self, means, stds) -> None:
        self.means = check_vector(means, "means")
        self.stds = check_vector(stds, "stds", size=self.means.size)
        if np.any(self.stds <= 0):
            raise ValueError("stds must be strictly positive")

    @property
    def input_size(self) -> int:
        return self.means.size

    @property
    def output_size(self) -> int:
        return self.means.size

    def forward(self, values: np.ndarray) -> np.ndarray:
        return (np.asarray(values, dtype=np.float64) - self.means) / self.stds

    def backward_input(self, grad_output: np.ndarray, forward_input: np.ndarray) -> np.ndarray:
        return np.asarray(grad_output, dtype=np.float64) / self.stds
