"""Layer base classes and the linearization abstraction.

Three kinds of layers exist (see :class:`LayerKind`):

``PARAMETERIZED``
    Affine in their input *and* in their parameters (fully-connected,
    convolution).  These are the layers the repair algorithms modify.
``ACTIVATION``
    Possibly non-linear functions of their input with no trainable
    parameters (ReLU, Tanh, max-pooling, ...).  The Decoupled DNN replaces
    them in the value channel by their linearization around the activation
    channel's pre-activation (Definition 4.2 of the paper); the
    :class:`Linearization` objects returned by :meth:`Layer.linearize`
    implement that replacement.
``STATIC``
    Fixed affine maps (flatten, average-pooling, input normalization); they
    behave identically in both channels.
"""

from __future__ import annotations

import abc
import enum

import numpy as np

from repro.exceptions import LayerError


class LayerKind(enum.Enum):
    """Taxonomy used by the Decoupled DNN construction."""

    PARAMETERIZED = "parameterized"
    ACTIVATION = "activation"
    STATIC = "static"


class Linearization(abc.ABC):
    """The affine map ``Linearize[σ, z₀]`` around a pre-activation ``z₀``."""

    @abc.abstractmethod
    def apply(self, values: np.ndarray) -> np.ndarray:
        """Apply the linearized activation to a ``(batch, n)`` array."""

    @abc.abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Apply the transpose of the linear part to a ``(batch, n)`` array."""


class ElementwiseLinearization(Linearization):
    """``out = slope * z + intercept`` applied element-wise."""

    def __init__(self, slope: np.ndarray, intercept: np.ndarray) -> None:
        self.slope = np.asarray(slope, dtype=np.float64)
        self.intercept = np.asarray(intercept, dtype=np.float64)

    def apply(self, values: np.ndarray) -> np.ndarray:
        return values * self.slope + self.intercept

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self.slope


class SelectionLinearization(Linearization):
    """``out[j] = z[indices[j]]`` — the linearization of max-pooling.

    ``indices`` maps each output coordinate to the input coordinate selected
    by the pooling window around the activation channel's pre-activation.
    """

    def __init__(self, indices: np.ndarray, input_size: int) -> None:
        self.indices = np.asarray(indices, dtype=int)
        self.input_size = int(input_size)

    def apply(self, values: np.ndarray) -> np.ndarray:
        return values[:, self.indices]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_input = np.zeros((grad_output.shape[0], self.input_size))
        np.add.at(grad_input, (slice(None), self.indices), grad_output)
        return grad_input


class Layer(abc.ABC):
    """Base class for all layers.

    Every layer maps ``(batch, input_size) → (batch, output_size)``.
    Subclasses implement :meth:`forward` and :meth:`backward_input`;
    parameterized layers additionally implement the parameter API
    (:meth:`get_parameters`, :meth:`set_parameters`, :meth:`parameter_jacobian`,
    :meth:`backward_parameters`); activation layers implement
    :meth:`linearize`.
    """

    #: Layer kind; overridden by subclasses.
    kind: LayerKind = LayerKind.STATIC

    @property
    @abc.abstractmethod
    def input_size(self) -> int:
        """Number of (flat) input features."""

    @property
    @abc.abstractmethod
    def output_size(self) -> int:
        """Number of (flat) output features."""

    @abc.abstractmethod
    def forward(self, values: np.ndarray) -> np.ndarray:
        """Evaluate the layer on a ``(batch, input_size)`` array."""

    @abc.abstractmethod
    def backward_input(self, grad_output: np.ndarray, forward_input: np.ndarray) -> np.ndarray:
        """Apply the transposed input Jacobian at ``forward_input``.

        ``grad_output`` has shape ``(batch, output_size)``; the result has
        shape ``(batch, input_size)``.  For layers that are affine in their
        input the Jacobian is independent of ``forward_input``.
        """

    # ------------------------------------------------------------------
    # Parameter API (parameterized layers only)
    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        """Number of trainable parameters (0 for non-parameterized layers)."""
        return 0

    def get_parameters(self) -> np.ndarray:
        """Flattened copy of the layer's parameters."""
        if self.kind is not LayerKind.PARAMETERIZED:
            return np.zeros(0)
        raise NotImplementedError

    def set_parameters(self, flat: np.ndarray) -> None:
        """Overwrite the layer's parameters from a flat vector."""
        raise LayerError(f"{type(self).__name__} has no parameters to set")

    def parameter_jacobian(self, downstream: np.ndarray, forward_input: np.ndarray) -> np.ndarray:
        """Jacobian of ``downstream @ layer(input)`` with respect to parameters.

        ``downstream`` is an ``(m, output_size)`` matrix representing the
        linear map from this layer's output to the network output (in the
        value channel); ``forward_input`` is the single input vector
        ``(input_size,)`` seen by this layer.  Returns ``(m, num_parameters)``
        with parameters flattened in the order of :meth:`get_parameters`.
        """
        raise LayerError(f"{type(self).__name__} does not support parameter Jacobians")

    def backward_parameters(self, grad_output: np.ndarray, forward_input: np.ndarray) -> np.ndarray:
        """Gradient of a scalar loss with respect to the flat parameters.

        ``grad_output`` is ``(batch, output_size)``; the result is summed
        over the batch and has shape ``(num_parameters,)``.
        """
        raise LayerError(f"{type(self).__name__} has no parameters")

    def batch_parameter_jacobian(
        self, downstream: np.ndarray, forward_inputs: np.ndarray
    ) -> np.ndarray:
        """Multi-point version of :meth:`parameter_jacobian`.

        ``downstream`` has shape ``(k, m, output_size)`` — one downstream
        linear map per point — and ``forward_inputs`` has shape
        ``(k, input_size)``.  Returns ``(k, m, num_parameters)``.  The default
        implementation loops over the points; :class:`FullyConnectedLayer`
        and :class:`Conv2DLayer` override it with a single einsum so the
        batched repair engine never drops into a Python loop.
        """
        downstream = np.asarray(downstream, dtype=np.float64)
        forward_inputs = np.atleast_2d(np.asarray(forward_inputs, dtype=np.float64))
        return np.stack(
            [
                self.parameter_jacobian(downstream[index], forward_inputs[index])
                for index in range(downstream.shape[0])
            ]
        )

    # ------------------------------------------------------------------
    # Batched downstream maps (batched repair engine)
    # ------------------------------------------------------------------
    def batch_backward_input(self, grad_output: np.ndarray, forward_inputs: np.ndarray) -> np.ndarray:
        """Apply the transposed input Jacobian to a stack of matrices.

        ``grad_output`` has shape ``(k, m, output_size)``; the result has
        shape ``(k, m, input_size)``.  Only valid for layers that are affine
        in their input (``PARAMETERIZED`` and ``STATIC`` kinds), whose input
        Jacobian is independent of ``forward_inputs``; activation layers are
        handled through :meth:`batch_linearize_backward` instead.
        """
        grad_output = np.asarray(grad_output, dtype=np.float64)
        k, m, out = grad_output.shape
        flat = self.backward_input(grad_output.reshape(k * m, out), forward_inputs)
        return flat.reshape(k, m, self.input_size)

    def batch_linearize_backward(
        self, grad_output: np.ndarray, preactivations: np.ndarray
    ) -> np.ndarray:
        """Apply per-point transposed linearizations to a stack of matrices.

        For every point ``i``, applies ``Linearize[σ, preactivations[i]]``
        transposed to ``grad_output[i]`` (shape ``(m, output_size)``); the
        result has shape ``(k, m, input_size)``.  The default implementation
        builds one :class:`Linearization` per point; element-wise activations
        and max-pooling override it with fully vectorized versions.
        """
        grad_output = np.asarray(grad_output, dtype=np.float64)
        preactivations = np.atleast_2d(np.asarray(preactivations, dtype=np.float64))
        return np.stack(
            [
                self.linearize(preactivations[index]).backward(grad_output[index])
                for index in range(grad_output.shape[0])
            ]
        )

    # ------------------------------------------------------------------
    # Activation API (activation layers only)
    # ------------------------------------------------------------------
    @property
    def is_piecewise_linear(self) -> bool:
        """Whether this layer is a piecewise-linear function of its input."""
        return True

    def linearize(self, preactivation: np.ndarray) -> Linearization:
        """Linearization of the layer around ``preactivation`` (a vector)."""
        raise LayerError(f"{type(self).__name__} is not an activation layer")

    def piecewise_breakpoints(self) -> tuple[float, ...]:
        """Input thresholds where an element-wise PWL activation changes piece.

        Only meaningful for element-wise piecewise-linear activations; used
        by the SyReNN substrate to find linear-region boundaries.
        """
        raise LayerError(f"{type(self).__name__} has no element-wise breakpoints")

    def decoupled_forward(
        self, activation_preactivation: np.ndarray, value_preactivation: np.ndarray
    ) -> np.ndarray:
        """Batched value-channel evaluation of an activation layer.

        Applies ``Linearize[σ, activation_preactivation[i]]`` to
        ``value_preactivation[i]`` for every batch row ``i`` (Definition 4.3
        of the paper).  Activation layers override this with a vectorized
        implementation; other layer kinds never call it.
        """
        raise LayerError(f"{type(self).__name__} does not support decoupled evaluation")

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def copy(self) -> "Layer":
        """A deep copy of the layer (parameters included)."""
        import copy as _copy

        return _copy.deepcopy(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(in={self.input_size}, out={self.output_size})"


def as_batch(values: np.ndarray) -> tuple[np.ndarray, bool]:
    """Return ``values`` as a 2-D batch and whether it was originally 1-D."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim == 1:
        return array[None, :], True
    if array.ndim == 2:
        return array, False
    raise LayerError(f"expected a vector or batch of vectors, got shape {array.shape}")
