"""Repair-as-a-service: a long-lived job daemon over the repair pipeline.

* :mod:`repro.service.daemon` — :class:`RepairService` (shared warm engine +
  partition cache, durable job queue, crash recovery) and its stdlib HTTP
  front-end; ``python -m repro.service`` runs it.
* :mod:`repro.service.protocol` — the JSON wire format for jobs and results.
* :mod:`repro.service.client` — :class:`ServiceClient`, a ``urllib``-only
  submit/poll/result client.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import (
    DEFAULT_SLOS,
    JobRecord,
    RepairService,
    ServiceHTTPServer,
    SharedEngine,
    serve,
)
from repro.service.protocol import (
    ParsedJob,
    decode_network_b64,
    encode_network_b64,
    make_job,
    parse_job,
)

__all__ = [
    "DEFAULT_SLOS",
    "JobRecord",
    "ParsedJob",
    "RepairService",
    "ServiceClient",
    "ServiceError",
    "ServiceHTTPServer",
    "SharedEngine",
    "decode_network_b64",
    "encode_network_b64",
    "make_job",
    "parse_job",
    "serve",
]
