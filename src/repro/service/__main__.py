"""Command-line entry point: ``python -m repro.service``.

Runs the repair daemon in the foreground until SIGINT/SIGTERM, then shuts
the HTTP server and job workers down cleanly.  The one line printed on
startup (``listening on http://host:port``) doubles as the readiness signal
for supervisors and tests.
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro.obs import LEVELS
from repro.service.daemon import serve


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run the provable-repair job daemon.",
    )
    parser.add_argument("--state-dir", required=True,
                        help="durable root for job documents, pool checkpoints, cache")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (keep it loopback: jobs carry pickled networks)")
    parser.add_argument("--port", type=int, default=8642,
                        help="bind port (0 picks an ephemeral port)")
    parser.add_argument("--engine-workers", type=int, default=1,
                        help="worker processes of the shared SyReNN engine")
    parser.add_argument("--job-workers", type=int, default=2,
                        help="how many jobs run concurrently")
    parser.add_argument("--log-level", default="info", choices=LEVELS,
                        help="structured JSON log level on stderr ('off' silences it)")
    options = parser.parse_args(argv)

    server = serve(
        options.state_dir,
        host=options.host,
        port=options.port,
        engine_workers=options.engine_workers,
        job_workers=options.job_workers,
        log_level=options.log_level,
    )
    host, port = server.server_address[:2]
    print(f"listening on http://{host}:{port}", flush=True)

    def _terminate(*_):
        # Calling server.shutdown() from the serving thread would deadlock;
        # unwinding via KeyboardInterrupt exits serve_forever the same way
        # Ctrl-C does.
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        server.service.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
