"""A small stdlib HTTP client for the repair daemon.

:class:`ServiceClient` speaks the daemon's JSON routes with nothing beyond
``urllib.request``; higher-level helpers build the job documents
(:func:`repro.service.protocol.make_job`, or :func:`repro.api.submit` which
wraps the whole submit→wait round trip)::

    client = ServiceClient("http://127.0.0.1:8642")
    job_id = client.submit(make_job("repair", network, spec, config=config))
    for status in iter(lambda: client.status(job_id), None):
        ...                       # status["rounds"] streams RoundRecords
    result = client.wait(job_id)  # {"report": ..., "network": base64}
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import repro.obs as obs
from repro.exceptions import ReproError

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ReproError):
    """An HTTP-level or daemon-reported job submission/lookup failure."""

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Submit, poll, and collect jobs from a running repair daemon."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, path: str, body: dict | None = None, *, body_on: tuple[int, ...] = ()) -> dict:
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=None if body is None else json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="GET" if body is None else "POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            payload = error.read()
            if error.code in body_on:
                # Routes like /healthz answer 503 *with* their verdict
                # document; for these the body is the point.
                try:
                    return json.loads(payload.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    pass
            try:
                detail = json.loads(payload.decode("utf-8")).get("error", "")
            except (ValueError, UnicodeDecodeError):
                detail = ""
            raise ServiceError(
                f"{request.method} {path} -> HTTP {error.code}"
                + (f": {detail}" if detail else ""),
                status=error.code,
            ) from error
        except urllib.error.URLError as error:
            raise ServiceError(f"cannot reach daemon at {self.base_url}: {error.reason}") from error

    # ------------------------------------------------------------------
    def submit(self, job: dict) -> str:
        """POST a job document; returns the daemon-assigned job id."""
        return self._request("/jobs", body=job)["id"]

    def status(self, job_id: str) -> dict:
        """The job's status document, including its round-by-round progress."""
        return self._request(f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The finished job's result document (HTTP 409 while in flight)."""
        return self._request(f"/jobs/{job_id}/result")

    def trace(self, job_id: str) -> dict:
        """The job's exported span tree (HTTP 409 until the job starts)."""
        return self._request(f"/jobs/{job_id}/trace")

    def metrics(self) -> str:
        """The daemon's live metrics in Prometheus text exposition format."""
        request = urllib.request.Request(f"{self.base_url}/metrics", method="GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ServiceError(
                f"GET /metrics -> HTTP {error.code}", status=error.code
            ) from error
        except urllib.error.URLError as error:
            raise ServiceError(f"cannot reach daemon at {self.base_url}: {error.reason}") from error

    def jobs(self) -> list[dict]:
        """Summaries of every job the daemon knows about."""
        return self._request("/jobs")["jobs"]

    def health(self) -> dict:
        """The daemon's liveness/statistics document."""
        return self._request("/health")

    def healthz(self) -> dict:
        """The SLO-graded health verdict (parsed even when it is a 503)."""
        return self._request("/healthz", body_on=(503,))

    def readyz(self) -> dict:
        """The readiness document (parsed even when it is a 503)."""
        return self._request("/readyz", body_on=(503,))

    def slo(self) -> dict:
        """The full SLO evaluation document."""
        return self._request("/slo")

    def profile(self, job_id: str) -> dict:
        """The job's sampled folded-stack profile (HTTP 409 until it starts)."""
        return self._request(f"/jobs/{job_id}/profile")

    def wait(
        self,
        job_id: str,
        *,
        timeout: float | None = None,
        poll_interval: float = 0.05,
        max_poll_interval: float = 2.0,
    ) -> dict:
        """Poll until the job finishes; returns its result document.

        The poll schedule is capped exponential backoff — ``poll_interval``,
        doubling each attempt up to ``max_poll_interval`` — deterministic
        (no jitter), so N clients against one daemon produce a bounded,
        reproducible request pattern instead of a fixed-frequency hammer.
        Every poll increments the ``repro_client_polls_total`` counter when
        telemetry is enabled.

        Connection errors during the poll are retried until ``timeout`` —
        a daemon restarting mid-job (crash recovery) looks like a brief
        connection gap to a patient client.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        interval = max(1e-4, float(poll_interval))
        cap = max(interval, float(max_poll_interval))
        while True:
            if obs.enabled():
                obs.counter(
                    "repro_client_polls_total",
                    "Status polls issued by ServiceClient.wait.",
                ).inc()
            try:
                status = self.status(job_id)["status"]
                if status in ("done", "failed"):
                    return self.result(job_id)
            except ServiceError as error:
                if error.status is not None and error.status != 409:
                    raise  # 404 etc.: the job is genuinely unknown
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} unfinished after {timeout}s")
            time.sleep(interval)
            interval = min(interval * 2.0, cap)
