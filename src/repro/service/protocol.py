"""The repair daemon's wire format: jobs and results as JSON documents.

A job is one dictionary that a client could equally well have written by
hand::

    {
      "version": 1,
      "kind": "repair",                      # or "verify"
      "network": "<base64 payload>",         # encode_network_b64(...)
      "spec": {"regions": [...]},            # VerificationSpec.as_dict()
      "verifier": {"kind": "syrenn"},        # registry kind + parameters
      "config": {"max_rounds": 6, ...}       # DriverConfig.to_dict(), repair only
    }

Everything numeric round-trips exactly: arrays travel as nested lists of
Python floats (``repr`` serialization recovers identical float64 bit
patterns) and the network travels as a base64-wrapped
:func:`repro.utils.serialization.encode_network` payload, so a daemon-side
run is byte-identical to the same run executed in-process.

:func:`parse_job` is the single validation gate — the daemon accepts a raw
dictionary from the HTTP layer and everything malformed surfaces as a
:class:`~repro.exceptions.SpecificationError` *before* the job is queued.
"""

from __future__ import annotations

import base64
import binascii
import pickle
from dataclasses import dataclass, field

from repro.core.ddnn import DecoupledNetwork
from repro.driver.config import DriverConfig
from repro.exceptions import RepairError, SpecificationError
from repro.nn.network import Network
from repro.utils.serialization import decode_network, encode_network
from repro.verify.base import VerificationSpec
from repro.verify.registry import verifier_kinds

__all__ = [
    "PROTOCOL_VERSION",
    "JOB_KINDS",
    "ParsedJob",
    "encode_network_b64",
    "decode_network_b64",
    "make_job",
    "parse_job",
]

PROTOCOL_VERSION = 1
JOB_KINDS = ("repair", "verify")


def encode_network_b64(network: Network | DecoupledNetwork) -> str:
    """A network as a JSON-safe string (base64 over the pickle payload)."""
    return base64.b64encode(encode_network(network)).decode("ascii")


def decode_network_b64(text: str):
    """Inverse of :func:`encode_network_b64`."""
    try:
        payload = base64.b64decode(text.encode("ascii"), validate=True)
        network = decode_network(payload)
    except (binascii.Error, UnicodeEncodeError, pickle.UnpicklingError, EOFError,
            AttributeError, TypeError, ValueError) as error:
        raise SpecificationError(f"undecodable network payload: {error}") from error
    if not isinstance(network, (Network, DecoupledNetwork)):
        raise SpecificationError(
            f"network payload decoded to {type(network).__name__}, "
            "expected a Network or DecoupledNetwork"
        )
    return network


def make_job(
    kind: str,
    network: Network | DecoupledNetwork,
    spec: VerificationSpec,
    *,
    verifier: dict | str | None = None,
    config: DriverConfig | dict | None = None,
) -> dict:
    """Build a wire-format job dictionary from in-process objects."""
    if isinstance(verifier, str):
        verifier = {"kind": verifier}
    job = {
        "version": PROTOCOL_VERSION,
        "kind": kind,
        "network": encode_network_b64(network),
        "spec": spec.as_dict(),
    }
    if verifier is not None:
        job["verifier"] = dict(verifier)
    if config is not None:
        job["config"] = config.to_dict() if isinstance(config, DriverConfig) else dict(config)
    return parse_job(job).payload  # validate eagerly, on the client side


@dataclass
class ParsedJob:
    """A validated job: the original payload plus its decoded pieces."""

    payload: dict
    kind: str
    network: Network | DecoupledNetwork
    spec: VerificationSpec
    verifier_kind: str
    verifier_params: dict = field(default_factory=dict)
    config: DriverConfig = field(default_factory=DriverConfig)


def parse_job(payload: dict) -> ParsedJob:
    """Validate and decode one job dictionary (the daemon's intake gate)."""
    if not isinstance(payload, dict):
        raise SpecificationError("a job must be a JSON object")
    version = payload.get("version", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise SpecificationError(
            f"unsupported protocol version {version!r} (this daemon speaks "
            f"{PROTOCOL_VERSION})"
        )
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise SpecificationError(f"job kind must be one of {list(JOB_KINDS)}, got {kind!r}")
    if "network" not in payload:
        raise SpecificationError('a job needs a "network" payload')
    if "spec" not in payload:
        raise SpecificationError('a job needs a "spec" document')
    network = decode_network_b64(payload["network"])
    spec = VerificationSpec.from_dict(payload["spec"])

    verifier = payload.get("verifier", {"kind": "syrenn"})
    if isinstance(verifier, str):
        verifier = {"kind": verifier}
    if not isinstance(verifier, dict):
        raise SpecificationError('"verifier" must be a kind string or an object')
    verifier = dict(verifier)
    verifier_kind = verifier.pop("kind", "syrenn")
    if verifier_kind not in verifier_kinds():
        raise SpecificationError(
            f"unknown verifier kind {verifier_kind!r}; registered kinds: "
            f"{verifier_kinds()}"
        )

    config_payload = payload.get("config")
    if config_payload is not None and kind != "repair":
        raise SpecificationError('"config" only applies to repair jobs')
    if config_payload is None:
        config = DriverConfig()
    else:
        try:
            config = DriverConfig.from_dict(config_payload)
        except RepairError as error:
            # Malformed jobs surface uniformly as specification errors (the
            # daemon maps those to HTTP 400 at submit time).
            raise SpecificationError(f"bad driver config: {error}") from error
    return ParsedJob(
        payload=payload,
        kind=kind,
        network=network,
        spec=spec,
        verifier_kind=verifier_kind,
        verifier_params=verifier,
        config=config,
    )
