"""Repair-as-a-service: the long-lived job daemon.

:class:`RepairService` owns the warm state that makes a shared daemon worth
running — one :class:`~repro.engine.engine.ShardedSyrennEngine` worker pool
and one fingerprint-keyed :class:`~repro.engine.cache.PartitionCache` — and
multiplexes any number of concurrent repair/verify jobs over them from a
small thread pool.  Because value-channel repair never moves linear regions,
decompositions cached by one job are hits for every later job on the same
network fingerprint, which is where the warm-versus-cold speedup of
``benchmarks/bench_service.py`` comes from.

The engine is *not* thread-safe (its :class:`~repro.engine.jobs.JobScheduler`
keeps per-dispatch state), so jobs reach it through :class:`SharedEngine`, a
proxy that serializes every engine call under one lock.  Each call is
self-contained and deterministic — results depend only on the inputs and the
(value-independent) cache — so interleaving calls from concurrent jobs
changes nothing about any job's bytes, only their wall-clock.

Every job is durably persisted under ``state_dir/jobs`` as a JSON document
(atomically: temp file + ``os.replace``) at every state transition *and*
after every driver round, alongside the driver's counterexample-pool
checkpoint (``<job-id>.pool.npz``).  A daemon killed mid-job and restarted
on the same ``state_dir`` requeues the interrupted job and the driver
resumes from the checkpointed pool instead of rediscovering it.

:class:`ServiceHTTPServer` fronts a service with the stdlib HTTP layer::

    POST /jobs            submit a job document     -> {"id": ...}
    GET  /jobs            list job summaries
    GET  /jobs/<id>       status + per-round progress (no result payload)
    GET  /jobs/<id>/result
                          the finished result (409 while still running)
    GET  /health          liveness + job counts + engine/cache statistics

Trust model: jobs carry pickled networks, so the daemon executes whatever
its clients send — bind it to localhost (the default) or an equally trusted
network only.
"""

from __future__ import annotations

import functools
import json
import os
import queue
import re
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.driver.driver import RepairDriver, RoundRecord
from repro.engine import PartitionCache, ShardedSyrennEngine
from repro.exceptions import SpecificationError
from repro.service.protocol import ParsedJob, encode_network_b64, parse_job
from repro.verify.registry import make_verifier

__all__ = [
    "JobRecord",
    "RepairService",
    "ServiceHTTPServer",
    "SharedEngine",
    "serve",
]

#: Job lifecycle states (``queued`` → ``running`` → ``done``/``failed``).
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"

_ENGINE_CALLS = (
    "transform_line",
    "transform_lines",
    "transform_plane",
    "transform_planes",
    "decompose",
    "evaluate_batches",
    "evaluate_regions",
    "sample_regions",
    "stats",
)


class SharedEngine:
    """A lock-serializing proxy that makes one engine safe to share.

    The wrapped engine's scheduler is single-threaded state; this proxy
    funnels every engine entry point through one lock so concurrent jobs
    interleave *between* engine calls, never inside one.  It duck-types
    :class:`~repro.engine.Engine` for the verifiers and the driver.
    """

    def __init__(self, engine: ShardedSyrennEngine) -> None:
        self._engine = engine
        self._lock = threading.Lock()

    @property
    def cache(self) -> PartitionCache | None:
        return self._engine.cache

    @property
    def workers(self) -> int:
        return self._engine.workers

    def close(self) -> None:
        with self._lock:
            self._engine.close()

    def __getattr__(self, name: str):
        if name not in _ENGINE_CALLS:
            raise AttributeError(name)
        method = getattr(self._engine, name)

        @functools.wraps(method)
        def locked(*args, **kwargs):
            with self._lock:
                return method(*args, **kwargs)

        return locked


@dataclass
class JobRecord:
    """One job's full server-side state (also its persisted JSON document)."""

    job_id: str
    payload: dict
    status: str = QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    rounds: list[dict] = field(default_factory=list)
    result: dict | None = None
    error: str | None = None

    def document(self, *, include_result: bool = True) -> dict:
        """The record as a JSON-ready dictionary."""
        document = {
            "id": self.job_id,
            "kind": self.payload.get("kind"),
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "rounds": list(self.rounds),
            "error": self.error,
            "job": self.payload,
        }
        if include_result:
            document["result"] = self.result
        return document

    def summary(self) -> dict:
        """The short form used by job listings and the health endpoint."""
        return {
            "id": self.job_id,
            "kind": self.payload.get("kind"),
            "status": self.status,
            "rounds": len(self.rounds),
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }


class RepairService:
    """The job daemon's core: shared warm engine + durable job queue.

    Parameters
    ----------
    state_dir:
        Durable root.  Job documents live in ``state_dir/jobs`` and the
        partition cache's disk tier in ``state_dir/cache`` (unless an
        explicit ``cache`` is given).  Restarting a service on the same
        directory requeues every job that was queued or running.
    engine_workers:
        Worker processes of the shared engine (``1`` runs engine tasks
        inline, which is the right default for small jobs and tests).
    job_workers:
        How many jobs run concurrently (each on its own thread, multiplexed
        over the one shared engine).
    cache:
        An explicit :class:`PartitionCache` to share, for embedding the
        service in-process next to other engine users.
    """

    def __init__(
        self,
        state_dir: str | Path,
        *,
        engine_workers: int = 1,
        job_workers: int = 2,
        cache: PartitionCache | None = None,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.jobs_dir = self.state_dir / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        if cache is None:
            cache = PartitionCache(directory=self.state_dir / "cache")
        self.cache = cache
        self.engine = SharedEngine(
            ShardedSyrennEngine(workers=engine_workers, cache=cache)
        )
        self._records: dict[str, JobRecord] = {}
        self._lock = threading.Lock()
        self._queue: queue.Queue = queue.Queue()
        self._stop = threading.Event()
        self._next_index = 1
        self._recover()
        self._threads = [
            threading.Thread(target=self._worker, name=f"repair-job-{i}", daemon=True)
            for i in range(max(1, int(job_workers)))
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Public API (what the HTTP layer calls)
    # ------------------------------------------------------------------
    def submit(self, payload: dict) -> str:
        """Validate and enqueue one job; returns its id.

        Validation happens *here*, synchronously, so a malformed job is the
        submitter's error (HTTP 400), never a failed job.
        """
        parsed = parse_job(payload)
        with self._lock:
            job_id = f"job-{self._next_index:06d}"
            self._next_index += 1
            record = JobRecord(
                job_id=job_id, payload=parsed.payload, submitted_at=time.time()
            )
            self._records[job_id] = record
            self._persist_locked(record)
        self._queue.put(job_id)
        return job_id

    def status(self, job_id: str) -> dict:
        """The job's document, sans result payload (cheap to poll)."""
        record = self._get(job_id)
        with self._lock:  # snapshot rounds consistently with the worker's appends
            return record.document(include_result=False)

    def result(self, job_id: str) -> dict:
        """The finished job's result document (raises while unfinished)."""
        record = self._get(job_id)
        with self._lock:
            if record.status not in (DONE, FAILED):
                raise _JobUnfinished(job_id, record.status)
            return {
                "id": record.job_id,
                "status": record.status,
                "error": record.error,
                "result": record.result,
            }

    def jobs(self) -> list[dict]:
        """Summaries of every known job, oldest first."""
        with self._lock:
            return [
                self._records[job_id].summary() for job_id in sorted(self._records)
            ]

    def health(self) -> dict:
        """Liveness document: job counts plus engine/cache statistics."""
        with self._lock:
            counts: dict[str, int] = {}
            for record in self._records.values():
                counts[record.status] = counts.get(record.status, 0) + 1
        return {"ok": True, "jobs": counts, "engine": self.engine.stats()}

    def wait(self, job_id: str, timeout: float | None = None, poll: float = 0.02) -> dict:
        """Block until the job finishes; returns its result document."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            record = self._get(job_id)
            with self._lock:
                finished = record.status in (DONE, FAILED)
            if finished:
                return self.result(job_id)
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still {record.status} after {timeout}s")
            time.sleep(poll)

    def stop(self) -> None:
        """Stop accepting work, let idle workers exit, shut the engine down.

        A job already running finishes (there is no safe preemption point
        inside an LP solve); its completion is persisted as usual.
        """
        self._stop.set()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=30.0)
        self.engine.close()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None or self._stop.is_set():
                return
            record = self._get(job_id)
            try:
                parsed = parse_job(record.payload)
                self._transition(record, RUNNING)
                result = self._execute(record, parsed)
            except Exception as error:  # noqa: BLE001 - any failure fails the job, not the worker
                with self._lock:
                    record.error = f"{type(error).__name__}: {error}"
                self._transition(record, FAILED)
            else:
                with self._lock:
                    record.result = result
                self._transition(record, DONE)

    def _execute(self, record: JobRecord, parsed: ParsedJob) -> dict:
        verifier = make_verifier(
            parsed.verifier_kind, engine=self.engine, **parsed.verifier_params
        )
        if parsed.kind == "verify":
            report = verifier.verify(parsed.network, parsed.spec)
            return {"report": report.as_dict()}

        def on_round(round_record: RoundRecord) -> None:
            with self._lock:
                record.rounds.append(round_record.as_dict())
                self._persist_locked(record)

        driver = RepairDriver(
            parsed.network,
            parsed.spec,
            verifier,
            config=parsed.config,
            engine=self.engine,
            checkpoint_path=self._checkpoint_path(record.job_id),
            on_round=on_round,
        )
        report = driver.run()
        return {
            "report": report.as_dict(),
            "network": encode_network_b64(report.network),
        }

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def _checkpoint_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.pool.npz"

    def _persist_locked(self, record: JobRecord) -> None:
        """Atomically write the record's document (caller holds the lock)."""
        path = self.jobs_dir / f"{record.job_id}.json"
        temporary = path.with_suffix(".json.tmp")
        temporary.write_text(json.dumps(record.document()))
        os.replace(temporary, path)

    def _transition(self, record: JobRecord, status: str) -> None:
        with self._lock:
            record.status = status
            now = time.time()
            if status == RUNNING:
                record.started_at = now
            else:
                record.finished_at = now
            self._persist_locked(record)

    def _recover(self) -> None:
        """Reload persisted jobs; requeue any the previous daemon never finished.

        A requeued job restarts its driver from round zero, but against the
        checkpointed counterexample pool (``<job-id>.pool.npz``), so the
        violations already discovered before the crash are repaired in the
        very first round instead of being rediscovered one round at a time.
        """
        for path in sorted(self.jobs_dir.glob("job-*.json")):
            try:
                document = json.loads(path.read_text())
                record = JobRecord(
                    job_id=document["id"],
                    payload=document["job"],
                    status=document["status"],
                    submitted_at=document.get("submitted_at", 0.0),
                    started_at=document.get("started_at"),
                    finished_at=document.get("finished_at"),
                    rounds=list(document.get("rounds", [])),
                    result=document.get("result"),
                    error=document.get("error"),
                )
            except (json.JSONDecodeError, KeyError, TypeError):
                continue  # a torn write of the *temp* file can never land here
            self._records[record.job_id] = record
            match = re.fullmatch(r"job-(\d+)", record.job_id)
            if match is not None:
                self._next_index = max(self._next_index, int(match.group(1)) + 1)
            if record.status in (QUEUED, RUNNING):
                record.status = QUEUED
                record.rounds = []  # the resumed run re-emits its own rounds
                record.result = None
                self._persist_locked(record)
                self._queue.put(record.job_id)

    def _get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            raise KeyError(job_id)
        return record


class _JobUnfinished(Exception):
    """Raised when a result is requested for a job still in flight."""

    def __init__(self, job_id: str, status: str) -> None:
        super().__init__(f"job {job_id} is still {status}")
        self.status = status


# ----------------------------------------------------------------------
# HTTP front-end
# ----------------------------------------------------------------------
class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`RepairService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: RepairService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> RepairService:
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # polling clients would otherwise flood stderr

    def _reply(self, code: int, document: dict) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/health":
                self._reply(200, self.service.health())
            elif self.path == "/jobs":
                self._reply(200, {"jobs": self.service.jobs()})
            else:
                match = re.fullmatch(r"/jobs/([\w-]+)(/result)?", self.path)
                if match is None:
                    self._reply(404, {"error": f"no such route: {self.path}"})
                elif match.group(2):
                    self._reply(200, self.service.result(match.group(1)))
                else:
                    self._reply(200, self.service.status(match.group(1)))
        except KeyError as error:
            self._reply(404, {"error": f"no such job: {error.args[0]}"})
        except _JobUnfinished as error:
            self._reply(409, {"error": str(error), "status": error.status})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/jobs":
            self._reply(404, {"error": f"no such route: {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            self._reply(400, {"error": f"unreadable job body: {error}"})
            return
        try:
            job_id = self.service.submit(payload)
        except SpecificationError as error:
            self._reply(400, {"error": str(error)})
            return
        self._reply(200, {"id": job_id})


def serve(
    state_dir: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 8642,
    engine_workers: int = 1,
    job_workers: int = 2,
) -> ServiceHTTPServer:
    """Build a service and bind its HTTP server (does not start serving).

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address``.  Call ``server.serve_forever()`` to run and
    ``server.service.stop()`` after ``server.shutdown()`` to tear down.
    """
    service = RepairService(
        state_dir, engine_workers=engine_workers, job_workers=job_workers
    )
    return ServiceHTTPServer((host, port), service)
