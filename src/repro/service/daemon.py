"""Repair-as-a-service: the long-lived job daemon.

:class:`RepairService` owns the warm state that makes a shared daemon worth
running — one :class:`~repro.engine.engine.ShardedSyrennEngine` worker pool
and one fingerprint-keyed :class:`~repro.engine.cache.PartitionCache` — and
multiplexes any number of concurrent repair/verify jobs over them from a
small thread pool.  Because value-channel repair never moves linear regions,
decompositions cached by one job are hits for every later job on the same
network fingerprint, which is where the warm-versus-cold speedup of
``benchmarks/bench_service.py`` comes from.

The engine is *not* thread-safe (its :class:`~repro.engine.jobs.JobScheduler`
keeps per-dispatch state), so jobs reach it through :class:`SharedEngine`, a
proxy that serializes every engine call under one lock.  Each call is
self-contained and deterministic — results depend only on the inputs and the
(value-independent) cache — so interleaving calls from concurrent jobs
changes nothing about any job's bytes, only their wall-clock.

Every job is durably persisted under ``state_dir/jobs`` as a JSON document
(atomically: temp file + ``os.replace``) at every state transition *and*
after every driver round, alongside the driver's counterexample-pool
checkpoint (``<job-id>.pool.npz``).  A daemon killed mid-job and restarted
on the same ``state_dir`` requeues the interrupted job and the driver
resumes from the checkpointed pool instead of rediscovering it.

:class:`ServiceHTTPServer` fronts a service with the stdlib HTTP layer::

    POST /jobs            submit a job document     -> {"id": ...}
    GET  /jobs            list job summaries
    GET  /jobs/<id>       status + per-round progress (no result payload)
    GET  /jobs/<id>/result
                          the finished result (409 while still running)
    GET  /jobs/<id>/trace
                          the job's span tree (409 until the job starts)
    GET  /jobs/<id>/profile
                          the job's sampled folded-stack profile (409 until
                          the job starts)
    GET  /health          liveness + job counts + engine/cache statistics
    GET  /healthz         SLO-graded health (healthy/degraded -> 200,
                          unhealthy -> 503) with human-readable reasons
    GET  /readyz          readiness: engine pool warm + state dir writable
                          (200, else 503)
    GET  /slo             the full SLO evaluation document
    GET  /metrics         Prometheus text exposition of the live registry

Health interpretation is windowed: each ``/healthz``/``/slo`` request folds
a fresh registry snapshot into a rolling :class:`~repro.obs.WindowStore`
and grades the :class:`~repro.obs.SloSpec` list (:data:`DEFAULT_SLOS`
unless the service was built with its own) against the recent deltas — so
verdicts reflect what the daemon did lately, not since boot.  When
telemetry is enabled each job also runs under a
:class:`~repro.obs.SamplingProfiler` aimed at its worker thread, giving
``/jobs/<id>/profile`` sub-span resolution at a bounded sampling cost.

The service owns the telemetry lifecycle: constructing one enables
:mod:`repro.obs` (and ``stop()`` restores the prior state), each job runs
under its own :class:`~repro.obs.Trace` whose id embeds the job id, and the
daemon emits one structured JSON log line per request and per job-state
transition (:class:`~repro.obs.JsonLogger`; level via ``serve(...,
log_level=)``).  All request/job latencies are computed from monotonic
clocks; the ``*_at`` wall-clock fields are timestamps for humans only.

Trust model: jobs carry pickled networks, so the daemon executes whatever
its clients send — bind it to localhost (the default) or an equally trusted
network only.
"""

from __future__ import annotations

import functools
import json
import os
import queue
import re
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import repro.obs as obs
from repro.driver.driver import RepairDriver, RoundRecord
from repro.engine import PartitionCache, ShardedSyrennEngine
from repro.exceptions import SpecificationError
from repro.obs import (
    JOB_SECONDS_BUCKETS,
    UNHEALTHY,
    JsonLogger,
    SamplingProfiler,
    SloSpec,
    Trace,
    WindowStore,
    evaluate,
    use_trace,
)
from repro.service.protocol import ParsedJob, encode_network_b64, parse_job
from repro.verify.registry import make_verifier

__all__ = [
    "DEFAULT_SLOS",
    "JobRecord",
    "RepairService",
    "ServiceHTTPServer",
    "SharedEngine",
    "serve",
]

#: The daemon's stock objectives, graded over the last five minutes of
#: window deltas.  Deployments with different latency envelopes pass their
#: own list (or :meth:`~repro.obs.SloSpec.from_dict` documents) to
#: :class:`RepairService`.
DEFAULT_SLOS = (
    # Whole-job latency: p99 of the run-time histogram.  Repairs on this
    # service are seconds-scale; half a minute is degraded, two minutes of
    # p99 means the queue is in real trouble.
    SloSpec(
        name="job_p99_seconds",
        series="repro_service_job_seconds",
        agg="p99",
        degraded=30.0,
        unhealthy=120.0,
    ),
    # Job failure share over all terminal transitions.
    SloSpec(
        name="job_failure_ratio",
        series="repro_service_jobs_total",
        agg="ratio",
        numerator={"status": "failed"},
        degraded=0.1,
        unhealthy=0.5,
    ),
    # HTTP 5xx share of all handled requests (4xx are the client's fault).
    SloSpec(
        name="http_5xx_ratio",
        series="repro_service_requests_total",
        agg="ratio",
        numerator={"code": "500"},
        degraded=0.02,
        unhealthy=0.2,
    ),
)

#: Job lifecycle states (``queued`` → ``running`` → ``done``/``failed``).
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"

_ENGINE_CALLS = (
    "transform_line",
    "transform_lines",
    "transform_plane",
    "transform_planes",
    "decompose",
    "evaluate_batches",
    "evaluate_regions",
    "sample_regions",
    "stats",
)


class SharedEngine:
    """A lock-serializing proxy that makes one engine safe to share.

    The wrapped engine's scheduler is single-threaded state; this proxy
    funnels every engine entry point through one lock so concurrent jobs
    interleave *between* engine calls, never inside one.  It duck-types
    :class:`~repro.engine.Engine` for the verifiers and the driver.
    """

    def __init__(self, engine: ShardedSyrennEngine) -> None:
        self._engine = engine
        self._lock = threading.Lock()

    @property
    def cache(self) -> PartitionCache | None:
        return self._engine.cache

    @property
    def workers(self) -> int:
        return self._engine.workers

    def close(self) -> None:
        with self._lock:
            self._engine.close()

    def __getattr__(self, name: str):
        if name not in _ENGINE_CALLS:
            raise AttributeError(name)
        method = getattr(self._engine, name)

        @functools.wraps(method)
        def locked(*args, **kwargs):
            with self._lock:
                return method(*args, **kwargs)

        return locked


@dataclass
class JobRecord:
    """One job's full server-side state (also its persisted JSON document).

    The ``*_at`` fields are wall-clock timestamps (display only).  Latencies
    are computed separately, from the monotonic anchors ``submitted_mono``
    and ``started_mono``: ``queued_seconds`` (submit → start),
    ``run_seconds`` (start → finish), and ``latency_seconds`` (submit →
    finish) — never as differences of ``time.time()`` readings, which jump
    with clock adjustments.  The anchors themselves are process-local and
    are not persisted; a job recovered from disk keeps whatever latency
    fields its document already carried.
    """

    job_id: str
    payload: dict
    status: str = QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    rounds: list[dict] = field(default_factory=list)
    result: dict | None = None
    error: str | None = None
    queued_seconds: float | None = None
    run_seconds: float | None = None
    latency_seconds: float | None = None
    submitted_mono: float | None = field(default=None, repr=False, compare=False)
    started_mono: float | None = field(default=None, repr=False, compare=False)

    def document(self, *, include_result: bool = True) -> dict:
        """The record as a JSON-ready dictionary."""
        document = {
            "id": self.job_id,
            "kind": self.payload.get("kind"),
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queued_seconds": self.queued_seconds,
            "run_seconds": self.run_seconds,
            "latency_seconds": self.latency_seconds,
            "rounds": list(self.rounds),
            "error": self.error,
            "job": self.payload,
        }
        if include_result:
            document["result"] = self.result
        return document

    def summary(self) -> dict:
        """The short form used by job listings and the health endpoint."""
        return {
            "id": self.job_id,
            "kind": self.payload.get("kind"),
            "status": self.status,
            "rounds": len(self.rounds),
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "latency_seconds": self.latency_seconds,
        }


class RepairService:
    """The job daemon's core: shared warm engine + durable job queue.

    Parameters
    ----------
    state_dir:
        Durable root.  Job documents live in ``state_dir/jobs`` and the
        partition cache's disk tier in ``state_dir/cache`` (unless an
        explicit ``cache`` is given).  Restarting a service on the same
        directory requeues every job that was queued or running.
    engine_workers:
        Worker processes of the shared engine (``1`` runs engine tasks
        inline, which is the right default for small jobs and tests).
    job_workers:
        How many jobs run concurrently (each on its own thread, multiplexed
        over the one shared engine).
    cache:
        An explicit :class:`PartitionCache` to share, for embedding the
        service in-process next to other engine users.
    log_level:
        Structured-logging threshold (``"debug"``/``"info"``/``"warning"``/
        ``"error"``/``"off"``).  The default ``"off"`` keeps embedded and
        test use silent; the CLI front-end defaults to ``"info"``.
    log_stream:
        Where JSON log lines go (default ``sys.stderr``); tests pass a
        ``StringIO``.
    slos:
        The :class:`~repro.obs.SloSpec` list ``/healthz`` and ``/slo``
        grade (default :data:`DEFAULT_SLOS`).
    profile_interval:
        Per-job sampling-profiler interval in seconds (``0`` disables
        profiling even with telemetry on).
    """

    def __init__(
        self,
        state_dir: str | Path,
        *,
        engine_workers: int = 1,
        job_workers: int = 2,
        cache: PartitionCache | None = None,
        log_level: str = "off",
        log_stream=None,
        slos: tuple[SloSpec, ...] | list[SloSpec] | None = None,
        profile_interval: float = 0.005,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.jobs_dir = self.state_dir / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.log = JsonLogger(log_level, stream=log_stream)
        # The daemon is the live telemetry surface: it turns obs on for its
        # lifetime and stop() puts the previous state back, so embedding a
        # service in a test process never leaks an enabled registry.
        self._obs_was_enabled = obs.enabled()
        obs.enable()
        self._traces: dict[str, Trace] = {}
        self._profiles: dict[str, SamplingProfiler] = {}
        self.profile_interval = float(profile_interval)
        self.slos = tuple(slos) if slos is not None else DEFAULT_SLOS
        self.window = WindowStore()
        self._window_lock = threading.Lock()
        if cache is None:
            cache = PartitionCache(directory=self.state_dir / "cache")
        self.cache = cache
        self.engine = SharedEngine(
            ShardedSyrennEngine(workers=engine_workers, cache=cache)
        )
        self._records: dict[str, JobRecord] = {}
        self._lock = threading.Lock()
        self._queue: queue.Queue = queue.Queue()
        self._stop = threading.Event()
        self._next_index = 1
        self._recover()
        self._threads = [
            threading.Thread(target=self._worker, name=f"repair-job-{i}", daemon=True)
            for i in range(max(1, int(job_workers)))
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Public API (what the HTTP layer calls)
    # ------------------------------------------------------------------
    def submit(self, payload: dict) -> str:
        """Validate and enqueue one job; returns its id.

        Validation happens *here*, synchronously, so a malformed job is the
        submitter's error (HTTP 400), never a failed job.
        """
        parsed = parse_job(payload)
        with self._lock:
            job_id = f"job-{self._next_index:06d}"
            self._next_index += 1
            record = JobRecord(
                job_id=job_id,
                payload=parsed.payload,
                submitted_at=time.time(),
                submitted_mono=time.monotonic(),
            )
            self._records[job_id] = record
            self._persist_locked(record)
        self.log.info(
            "job_submitted", job_id=job_id, kind=parsed.payload.get("kind")
        )
        self._queue.put(job_id)
        return job_id

    def status(self, job_id: str) -> dict:
        """The job's document, sans result payload (cheap to poll)."""
        record = self._get(job_id)
        with self._lock:  # snapshot rounds consistently with the worker's appends
            return record.document(include_result=False)

    def result(self, job_id: str) -> dict:
        """The finished job's result document (raises while unfinished)."""
        record = self._get(job_id)
        with self._lock:
            if record.status not in (DONE, FAILED):
                raise _JobUnfinished(job_id, record.status)
            return {
                "id": record.job_id,
                "status": record.status,
                "error": record.error,
                "result": record.result,
            }

    def jobs(self) -> list[dict]:
        """Summaries of every known job, oldest first."""
        with self._lock:
            return [
                self._records[job_id].summary() for job_id in sorted(self._records)
            ]

    def health(self) -> dict:
        """Liveness document: job counts plus engine/cache statistics."""
        with self._lock:
            counts: dict[str, int] = {}
            for record in self._records.values():
                counts[record.status] = counts.get(record.status, 0) + 1
        return {"ok": True, "jobs": counts, "engine": self.engine.stats()}

    def observe_window(self) -> None:
        """Fold a fresh registry snapshot into the rolling window store."""
        with self._window_lock:
            self.window.observe(obs.snapshot(), at=time.monotonic())

    def slo(self) -> dict:
        """Grade the service's SLOs against the rolling telemetry window."""
        self.observe_window()
        with self._window_lock:
            return evaluate(list(self.slos), self.window)

    def healthz(self) -> dict:
        """The operator-facing verdict: SLO grade + job counts.

        ``degraded`` still answers HTTP 200 (the service works, but someone
        should look); only ``unhealthy`` becomes 503 — that mapping lives in
        the HTTP layer, keyed off this document's ``status``.
        """
        verdict = self.slo()
        with self._lock:
            counts: dict[str, int] = {}
            for record in self._records.values():
                counts[record.status] = counts.get(record.status, 0) + 1
        return {
            "status": verdict["status"],
            "reasons": verdict["reasons"],
            "jobs": counts,
            "window_seconds": verdict["window_seconds"],
        }

    def readyz(self) -> dict:
        """Readiness: the engine answers and the state dir takes writes.

        A load balancer should not route jobs here until both hold — a
        daemon with a dead worker pool or a read-only state volume accepts
        submissions it can never durably run.
        """
        checks: dict[str, bool] = {}
        try:
            stats = self.engine.stats()
            checks["engine_pool"] = stats["workers"] >= 1 and not self._stop.is_set()
        except Exception:  # noqa: BLE001 - any engine failure is "not ready"
            checks["engine_pool"] = False
        probe = self.jobs_dir / ".readyz-probe"
        try:
            probe.write_text("ok")
            probe.unlink()
            checks["state_dir_writable"] = True
        except OSError:
            checks["state_dir_writable"] = False
        return {"ready": all(checks.values()), "checks": checks}

    def profile(self, job_id: str) -> dict:
        """The job's sampled profile (raises :class:`_JobUnfinished` until it starts).

        Profiles are in-memory only, like traces: a job recovered from a
        previous daemon's disk state has no profile until it runs again.
        """
        self._get(job_id)  # 404 semantics for unknown ids
        with self._lock:
            profiler = self._profiles.get(job_id)
        if profiler is None:
            record = self._get(job_id)
            raise _JobUnfinished(job_id, record.status)
        document = profiler.as_dict()
        document["job_id"] = job_id
        return document

    def trace(self, job_id: str) -> dict:
        """The job's span tree (raises :class:`_JobUnfinished` until it starts).

        Traces are in-memory only: a job recovered from a previous daemon's
        disk state has no trace until its resumed run produces one.
        """
        self._get(job_id)  # 404 semantics for unknown ids
        with self._lock:
            trace = self._traces.get(job_id)
        if trace is None:
            record = self._get(job_id)
            raise _JobUnfinished(job_id, record.status)
        return trace.export()

    def metrics_text(self) -> str:
        """The live registry in Prometheus text exposition format."""
        return obs.render_prometheus()

    def wait(self, job_id: str, timeout: float | None = None, poll: float = 0.02) -> dict:
        """Block until the job finishes; returns its result document."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            record = self._get(job_id)
            with self._lock:
                finished = record.status in (DONE, FAILED)
            if finished:
                return self.result(job_id)
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still {record.status} after {timeout}s")
            time.sleep(poll)

    def stop(self) -> None:
        """Stop accepting work, let idle workers exit, shut the engine down.

        A job already running finishes (there is no safe preemption point
        inside an LP solve); its completion is persisted as usual.
        """
        self._stop.set()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=30.0)
        self.engine.close()
        self.log.info("service_stopped", state_dir=str(self.state_dir))
        if not self._obs_was_enabled:
            obs.disable()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None or self._stop.is_set():
                return
            record = self._get(job_id)
            try:
                parsed = parse_job(record.payload)
                self._transition(record, RUNNING)
                result = self._execute(record, parsed)
            except Exception as error:  # noqa: BLE001 - any failure fails the job, not the worker
                with self._lock:
                    record.error = f"{type(error).__name__}: {error}"
                self._transition(record, FAILED)
            else:
                with self._lock:
                    record.result = result
                self._transition(record, DONE)

    def _execute(self, record: JobRecord, parsed: ParsedJob) -> dict:
        # One trace per job, its id derived from the job id so log lines,
        # job documents, and GET /jobs/<id>/trace all correlate trivially.
        trace = Trace(name=f"job.{parsed.kind}", trace_id=f"{record.job_id}-trace")
        trace.root.attributes["job_id"] = record.job_id
        # One sampling profiler per job, aimed at this worker thread only —
        # observational (reads interpreter frames, never numeric state), so
        # the job's bytes are identical with and without it.
        profiler = None
        if obs.enabled() and self.profile_interval > 0:
            profiler = SamplingProfiler(
                interval=self.profile_interval,
                thread_ids=(threading.get_ident(),),
            )
        with self._lock:
            self._traces[record.job_id] = trace
            if profiler is not None:
                self._profiles[record.job_id] = profiler
        try:
            if profiler is not None:
                profiler.start()
            with use_trace(trace):
                return self._execute_traced(record, parsed)
        finally:
            if profiler is not None:
                profiler.stop()
            trace.finish()

    def _execute_traced(self, record: JobRecord, parsed: ParsedJob) -> dict:
        verifier = make_verifier(
            parsed.verifier_kind, engine=self.engine, **parsed.verifier_params
        )
        if parsed.kind == "verify":
            with obs.span("job.verify", job_id=record.job_id):
                report = verifier.verify(parsed.network, parsed.spec)
            return {"report": report.as_dict()}

        def on_round(round_record: RoundRecord) -> None:
            with self._lock:
                record.rounds.append(round_record.as_dict())
                self._persist_locked(record)
            obs.counter(
                "repro_service_job_rounds_total",
                "Driver rounds completed, per job.",
                labels=("job",),
            ).inc(job=record.job_id)
            self.log.debug(
                "job_round",
                job_id=record.job_id,
                round=round_record.round_index,
                violated=round_record.regions_violated,
                pool_size=round_record.pool_size,
            )

        driver = RepairDriver(
            parsed.network,
            parsed.spec,
            verifier,
            config=parsed.config,
            engine=self.engine,
            checkpoint_path=self._checkpoint_path(record.job_id),
            on_round=on_round,
        )
        report = driver.run()
        return {
            "report": report.as_dict(),
            "network": encode_network_b64(report.network),
        }

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def _checkpoint_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.pool.npz"

    def _persist_locked(self, record: JobRecord) -> None:
        """Atomically write the record's document (caller holds the lock)."""
        path = self.jobs_dir / f"{record.job_id}.json"
        temporary = path.with_suffix(".json.tmp")
        temporary.write_text(json.dumps(record.document()))
        os.replace(temporary, path)

    def _transition(self, record: JobRecord, status: str) -> None:
        with self._lock:
            record.status = status
            now = time.time()
            mono = time.monotonic()
            if status == RUNNING:
                record.started_at = now
                record.started_mono = mono
                if record.submitted_mono is not None:
                    record.queued_seconds = mono - record.submitted_mono
            else:
                record.finished_at = now
                if record.started_mono is not None:
                    record.run_seconds = mono - record.started_mono
                if record.submitted_mono is not None:
                    record.latency_seconds = mono - record.submitted_mono
            self._persist_locked(record)
        obs.counter(
            "repro_service_jobs_total",
            "Job state transitions, by new state.",
            labels=("status",),
        ).inc(status=status)
        if status in (DONE, FAILED) and record.run_seconds is not None:
            obs.histogram(
                "repro_service_job_seconds",
                "Job run time (start to finish), by kind.",
                labels=("kind",),
                # Whole jobs run for seconds-to-minutes; the default sub-ms
                # LP-solve boundaries would dump every job in two buckets.
                buckets=JOB_SECONDS_BUCKETS,
            ).observe(record.run_seconds, kind=record.payload.get("kind") or "unknown")
        self.log.log(
            "error" if status == FAILED else "info",
            "job_state",
            job_id=record.job_id,
            status=status,
            trace_id=f"{record.job_id}-trace",
            queued_seconds=record.queued_seconds,
            run_seconds=record.run_seconds,
            error=record.error,
        )

    def _recover(self) -> None:
        """Reload persisted jobs; requeue any the previous daemon never finished.

        A requeued job restarts its driver from round zero, but against the
        checkpointed counterexample pool (``<job-id>.pool.npz``), so the
        violations already discovered before the crash are repaired in the
        very first round instead of being rediscovered one round at a time.
        """
        for path in sorted(self.jobs_dir.glob("job-*.json")):
            try:
                document = json.loads(path.read_text())
                record = JobRecord(
                    job_id=document["id"],
                    payload=document["job"],
                    status=document["status"],
                    submitted_at=document.get("submitted_at", 0.0),
                    started_at=document.get("started_at"),
                    finished_at=document.get("finished_at"),
                    rounds=list(document.get("rounds", [])),
                    result=document.get("result"),
                    error=document.get("error"),
                    queued_seconds=document.get("queued_seconds"),
                    run_seconds=document.get("run_seconds"),
                    latency_seconds=document.get("latency_seconds"),
                )
            except (json.JSONDecodeError, KeyError, TypeError):
                continue  # a torn write of the *temp* file can never land here
            self._records[record.job_id] = record
            match = re.fullmatch(r"job-(\d+)", record.job_id)
            if match is not None:
                self._next_index = max(self._next_index, int(match.group(1)) + 1)
            if record.status in (QUEUED, RUNNING):
                record.status = QUEUED
                record.rounds = []  # the resumed run re-emits its own rounds
                record.result = None
                # Latency restarts from the requeue: the previous process's
                # monotonic clock is meaningless here.
                record.submitted_mono = time.monotonic()
                record.queued_seconds = None
                record.run_seconds = None
                record.latency_seconds = None
                self._persist_locked(record)
                self.log.info("job_recovered", job_id=record.job_id)
                self._queue.put(record.job_id)

    def _get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            raise KeyError(job_id)
        return record


class _JobUnfinished(Exception):
    """Raised when a result is requested for a job still in flight."""

    def __init__(self, job_id: str, status: str) -> None:
        super().__init__(f"job {job_id} is still {status}")
        self.status = status


# ----------------------------------------------------------------------
# HTTP front-end
# ----------------------------------------------------------------------
class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`RepairService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: RepairService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> RepairService:
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # replaced by the service's structured one-line-JSON request log

    def _finish_request(self, code: int, started_mono: float) -> None:
        """One structured log line + request metrics per handled request."""
        elapsed = time.monotonic() - started_mono
        obs.counter(
            "repro_service_requests_total",
            "HTTP requests handled, by method and status code.",
            labels=("method", "code"),
        ).inc(method=self.command, code=str(code))
        self.service.log.info(
            "request",
            method=self.command,
            path=self.path,
            code=code,
            seconds=elapsed,
        )

    def _reply(self, code: int, document: dict, *, started_mono: float) -> None:
        body = json.dumps(document).encode("utf-8")
        self._send(code, body, "application/json", started_mono)

    def _reply_text(self, code: int, text: str, content_type: str, *, started_mono: float) -> None:
        self._send(code, text.encode("utf-8"), content_type, started_mono)

    def _send(self, code: int, body: bytes, content_type: str, started_mono: float) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self._finish_request(code, started_mono)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        started_mono = time.monotonic()
        try:
            if self.path == "/health":
                self._reply(200, self.service.health(), started_mono=started_mono)
            elif self.path == "/healthz":
                document = self.service.healthz()
                code = 503 if document["status"] == UNHEALTHY else 200
                self._reply(code, document, started_mono=started_mono)
            elif self.path == "/readyz":
                document = self.service.readyz()
                self._reply(
                    200 if document["ready"] else 503,
                    document,
                    started_mono=started_mono,
                )
            elif self.path == "/slo":
                self._reply(200, self.service.slo(), started_mono=started_mono)
            elif self.path == "/metrics":
                self._reply_text(
                    200,
                    self.service.metrics_text(),
                    obs.CONTENT_TYPE,
                    started_mono=started_mono,
                )
            elif self.path == "/jobs":
                self._reply(200, {"jobs": self.service.jobs()}, started_mono=started_mono)
            else:
                match = re.fullmatch(r"/jobs/([\w-]+)(/result|/trace|/profile)?", self.path)
                if match is None:
                    self._reply(
                        404,
                        {"error": f"no such route: {self.path}"},
                        started_mono=started_mono,
                    )
                elif match.group(2) == "/result":
                    self._reply(
                        200, self.service.result(match.group(1)), started_mono=started_mono
                    )
                elif match.group(2) == "/trace":
                    self._reply(
                        200, self.service.trace(match.group(1)), started_mono=started_mono
                    )
                elif match.group(2) == "/profile":
                    self._reply(
                        200, self.service.profile(match.group(1)), started_mono=started_mono
                    )
                else:
                    self._reply(
                        200, self.service.status(match.group(1)), started_mono=started_mono
                    )
        except KeyError as error:
            self._reply(
                404, {"error": f"no such job: {error.args[0]}"}, started_mono=started_mono
            )
        except _JobUnfinished as error:
            self._reply(
                409,
                {"error": str(error), "status": error.status},
                started_mono=started_mono,
            )

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        started_mono = time.monotonic()
        if self.path != "/jobs":
            self._reply(
                404, {"error": f"no such route: {self.path}"}, started_mono=started_mono
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            self._reply(
                400, {"error": f"unreadable job body: {error}"}, started_mono=started_mono
            )
            return
        try:
            job_id = self.service.submit(payload)
        except SpecificationError as error:
            self._reply(400, {"error": str(error)}, started_mono=started_mono)
            return
        self._reply(200, {"id": job_id}, started_mono=started_mono)


def serve(
    state_dir: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 8642,
    engine_workers: int = 1,
    job_workers: int = 2,
    log_level: str = "off",
    log_stream=None,
    slos: tuple[SloSpec, ...] | list[SloSpec] | None = None,
    profile_interval: float = 0.005,
) -> ServiceHTTPServer:
    """Build a service and bind its HTTP server (does not start serving).

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address``.  Call ``server.serve_forever()`` to run and
    ``server.service.stop()`` after ``server.shutdown()`` to tear down.
    ``log_level`` controls the structured JSON request/job log (one of
    :data:`repro.obs.LEVELS`; ``"off"`` keeps the daemon silent).
    """
    service = RepairService(
        state_dir,
        engine_workers=engine_workers,
        job_workers=job_workers,
        log_level=log_level,
        log_stream=log_stream,
        slos=slos,
        profile_interval=profile_interval,
    )
    return ServiceHTTPServer((host, port), service)
